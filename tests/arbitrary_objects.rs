//! Opacity over arbitrary objects — exercising the model's central design
//! requirement (Section 1: "in a model (a) with arbitrary objects, beyond
//! simple read/write variables").
//!
//! The sequential specification is an *input parameter* of the criterion:
//! the same event pattern can be opaque under one object's semantics and
//! non-opaque under another's.

use std::sync::Arc;

use opacity_tm::model::objects::{
    pqueue, AppendLog, CasRegister, FifoQueue, IntSet, KvMap, PriorityQueue, Stack,
};
use opacity_tm::model::{HistoryBuilder, OpName, SpecRegistry, Value};
use opacity_tm::opacity::opacity::is_opaque;

fn queue_specs() -> SpecRegistry {
    SpecRegistry::new().with("q", Arc::new(FifoQueue))
}

#[test]
fn producer_consumer_queue_is_opaque() {
    let h = HistoryBuilder::new()
        .op(1, "q", OpName::Enq, vec![Value::int(10)], Value::Ok)
        .op(1, "q", OpName::Enq, vec![Value::int(20)], Value::Ok)
        .commit_ok(1)
        .op(2, "q", OpName::Deq, vec![], Value::int(10))
        .commit_ok(2)
        .op(3, "q", OpName::Deq, vec![], Value::int(20))
        .commit_ok(3)
        .build();
    assert!(is_opaque(&h, &queue_specs()).unwrap().opaque);
}

#[test]
fn double_delivery_is_not_opaque() {
    // Two committed consumers dequeue the SAME element: no sequential
    // FIFO-queue execution allows it.
    let h = HistoryBuilder::new()
        .op(1, "q", OpName::Enq, vec![Value::int(10)], Value::Ok)
        .commit_ok(1)
        .op(2, "q", OpName::Deq, vec![], Value::int(10))
        .op(3, "q", OpName::Deq, vec![], Value::int(10))
        .commit_ok(2)
        .commit_ok(3)
        .build();
    assert!(!is_opaque(&h, &queue_specs()).unwrap().opaque);
}

#[test]
fn aborted_consumer_redelivery_is_opaque() {
    // The aborted consumer's dequeue is discarded, so the committed one may
    // deliver the same element — queues need this for at-least-once
    // semantics under aborts.
    let h = HistoryBuilder::new()
        .op(1, "q", OpName::Enq, vec![Value::int(10)], Value::Ok)
        .commit_ok(1)
        .op(2, "q", OpName::Deq, vec![], Value::int(10))
        .try_abort(2)
        .abort(2)
        .op(3, "q", OpName::Deq, vec![], Value::int(10))
        .commit_ok(3)
        .build();
    assert!(is_opaque(&h, &queue_specs()).unwrap().opaque);
}

#[test]
fn fifo_order_violation_is_not_opaque() {
    let h = HistoryBuilder::new()
        .op(1, "q", OpName::Enq, vec![Value::int(10)], Value::Ok)
        .op(1, "q", OpName::Enq, vec![Value::int(20)], Value::Ok)
        .commit_ok(1)
        .op(2, "q", OpName::Deq, vec![], Value::int(20)) // LIFO!
        .commit_ok(2)
        .build();
    assert!(!is_opaque(&h, &queue_specs()).unwrap().opaque);
    // The very same event pattern IS opaque if "q" is a stack.
    let stack_specs = SpecRegistry::new().with("q", Arc::new(Stack));
    let h_stack = HistoryBuilder::new()
        .op(1, "q", OpName::Push, vec![Value::int(10)], Value::Ok)
        .op(1, "q", OpName::Push, vec![Value::int(20)], Value::Ok)
        .commit_ok(1)
        .op(2, "q", OpName::Pop, vec![], Value::int(20))
        .commit_ok(2)
        .build();
    assert!(is_opaque(&h_stack, &stack_specs).unwrap().opaque);
}

#[test]
fn live_consumer_must_see_consistent_queue() {
    // A live transaction dequeues a value that was never enqueued by any
    // committed-or-commit-pending transaction: not opaque even though the
    // consumer never commits.
    let h = HistoryBuilder::new()
        .op(1, "q", OpName::Enq, vec![Value::int(10)], Value::Ok) // T1 live!
        .op(2, "q", OpName::Deq, vec![], Value::int(10))
        .build();
    // T1 is live (not commit-pending): it can only be aborted in any
    // completion, so T2's dequeue observes a phantom element.
    assert!(!is_opaque(&h, &queue_specs()).unwrap().opaque);
    // With T1 commit-pending instead, the dual semantics save it.
    let h = HistoryBuilder::new()
        .op(1, "q", OpName::Enq, vec![Value::int(10)], Value::Ok)
        .try_commit(1)
        .op(2, "q", OpName::Deq, vec![], Value::int(10))
        .build();
    assert!(is_opaque(&h, &queue_specs()).unwrap().opaque);
}

#[test]
fn cas_register_semantics() {
    let specs = SpecRegistry::new().with("c", Arc::new(CasRegister::new(0)));
    // Two concurrent CAS(0→v): only one may succeed among committed txs.
    let both_succeed = HistoryBuilder::new()
        .op(
            1,
            "c",
            OpName::Cas,
            vec![Value::int(0), Value::int(1)],
            Value::Bool(true),
        )
        .op(
            2,
            "c",
            OpName::Cas,
            vec![Value::int(0), Value::int(2)],
            Value::Bool(true),
        )
        .commit_ok(1)
        .commit_ok(2)
        .build();
    assert!(!is_opaque(&both_succeed, &specs).unwrap().opaque);
    let one_fails = HistoryBuilder::new()
        .op(
            1,
            "c",
            OpName::Cas,
            vec![Value::int(0), Value::int(1)],
            Value::Bool(true),
        )
        .op(
            2,
            "c",
            OpName::Cas,
            vec![Value::int(0), Value::int(2)],
            Value::Bool(false),
        )
        .commit_ok(1)
        .commit_ok(2)
        .build();
    assert!(is_opaque(&one_fails, &specs).unwrap().opaque);
}

#[test]
fn set_membership_consistency() {
    let specs = SpecRegistry::new().with("s", Arc::new(IntSet));
    // T2 sees 5 present; T3 (starting after T2 commits) sees it absent with
    // no remover anywhere: not opaque.
    let h = HistoryBuilder::new()
        .op(
            1,
            "s",
            OpName::Insert,
            vec![Value::int(5)],
            Value::Bool(true),
        )
        .commit_ok(1)
        .op(
            2,
            "s",
            OpName::Contains,
            vec![Value::int(5)],
            Value::Bool(true),
        )
        .commit_ok(2)
        .op(
            3,
            "s",
            OpName::Contains,
            vec![Value::int(5)],
            Value::Bool(false),
        )
        .commit_ok(3)
        .build();
    assert!(!is_opaque(&h, &specs).unwrap().opaque);
    // With a remover in between, it is.
    let h = HistoryBuilder::new()
        .op(
            1,
            "s",
            OpName::Insert,
            vec![Value::int(5)],
            Value::Bool(true),
        )
        .commit_ok(1)
        .op(
            2,
            "s",
            OpName::Remove,
            vec![Value::int(5)],
            Value::Bool(true),
        )
        .commit_ok(2)
        .op(
            3,
            "s",
            OpName::Contains,
            vec![Value::int(5)],
            Value::Bool(false),
        )
        .commit_ok(3)
        .build();
    assert!(is_opaque(&h, &specs).unwrap().opaque);
}

#[test]
fn append_log_blind_writers_commute_like_counters() {
    let specs = SpecRegistry::new().with("l", Arc::new(AppendLog));
    // Concurrent appends all commit; a reader must observe them in SOME
    // serialization order.
    let h = HistoryBuilder::new()
        .op(1, "l", OpName::Append, vec![Value::int(1)], Value::Ok)
        .op(2, "l", OpName::Append, vec![Value::int(2)], Value::Ok)
        .commit_ok(1)
        .commit_ok(2)
        .op(
            3,
            "l",
            OpName::Read,
            vec![],
            Value::List(vec![Value::int(2), Value::int(1)]),
        )
        .commit_ok(3)
        .build();
    assert!(
        is_opaque(&h, &specs).unwrap().opaque,
        "order 2,1 is a valid serialization"
    );
    // But not an order that interleaves phantom entries.
    let h = HistoryBuilder::new()
        .op(1, "l", OpName::Append, vec![Value::int(1)], Value::Ok)
        .op(2, "l", OpName::Append, vec![Value::int(2)], Value::Ok)
        .commit_ok(1)
        .commit_ok(2)
        .op(
            3,
            "l",
            OpName::Read,
            vec![],
            Value::List(vec![Value::int(9)]),
        )
        .commit_ok(3)
        .build();
    assert!(!is_opaque(&h, &specs).unwrap().opaque);
}

#[test]
fn mixed_object_universe() {
    // Registers, a queue, and a counter in one history — the registry
    // routes each object to its own specification.
    let specs = SpecRegistry::registers()
        .with("q", Arc::new(FifoQueue))
        .with("c", Arc::new(opacity_tm::model::objects::Counter));
    let h = HistoryBuilder::new()
        .write(1, "x", 7)
        .op(1, "q", OpName::Enq, vec![Value::int(7)], Value::Ok)
        .inc(1, "c")
        .commit_ok(1)
        .read(2, "x", 7)
        .op(2, "q", OpName::Deq, vec![], Value::int(7))
        .get(2, "c", 1)
        .commit_ok(2)
        .build();
    assert!(is_opaque(&h, &specs).unwrap().opaque);
}

// ---- priority queue (user-defined OpName::Custom operations) --------------

fn pqueue_specs() -> SpecRegistry {
    SpecRegistry::new().with("pq", Arc::new(PriorityQueue))
}

#[test]
fn priority_order_delivery_is_opaque() {
    let h = HistoryBuilder::new()
        .op(1, "pq", OpName::Insert, vec![Value::int(5)], Value::Ok)
        .op(1, "pq", OpName::Insert, vec![Value::int(2)], Value::Ok)
        .commit_ok(1)
        .op(2, "pq", pqueue::extract_min(), vec![], Value::int(2))
        .commit_ok(2)
        .op(3, "pq", pqueue::extract_min(), vec![], Value::int(5))
        .commit_ok(3)
        .build();
    assert!(is_opaque(&h, &pqueue_specs()).unwrap().opaque);
}

#[test]
fn priority_inversion_is_not_opaque() {
    // Delivering 5 while 2 is still queued contradicts every sequential
    // min-queue execution.
    let h = HistoryBuilder::new()
        .op(1, "pq", OpName::Insert, vec![Value::int(5)], Value::Ok)
        .op(1, "pq", OpName::Insert, vec![Value::int(2)], Value::Ok)
        .commit_ok(1)
        .op(2, "pq", pqueue::extract_min(), vec![], Value::int(5))
        .commit_ok(2)
        .build();
    assert!(!is_opaque(&h, &pqueue_specs()).unwrap().opaque);
}

#[test]
fn live_peek_must_be_snapshot_consistent() {
    // A live transaction peeks the min twice around a concurrent committed
    // insert of a smaller element; observing both the old and the new min
    // (2 then 1) is a fractured view — non-opaque even though each value
    // was the true min at its own instant.
    let h = HistoryBuilder::new()
        .op(1, "pq", OpName::Insert, vec![Value::int(2)], Value::Ok)
        .commit_ok(1)
        .op(2, "pq", pqueue::peek_min(), vec![], Value::int(2))
        .op(3, "pq", OpName::Insert, vec![Value::int(1)], Value::Ok)
        .commit_ok(3)
        .op(2, "pq", pqueue::peek_min(), vec![], Value::int(1))
        .try_commit(2)
        .abort(2)
        .build();
    assert!(!is_opaque(&h, &pqueue_specs()).unwrap().opaque);
}

#[test]
fn aborted_extractor_element_redelivered() {
    // As with the FIFO queue: an aborted extract_min is discarded, so the
    // element may be delivered again by a committed transaction.
    let h = HistoryBuilder::new()
        .op(1, "pq", OpName::Insert, vec![Value::int(7)], Value::Ok)
        .commit_ok(1)
        .op(2, "pq", pqueue::extract_min(), vec![], Value::int(7))
        .try_abort(2)
        .abort(2)
        .op(3, "pq", pqueue::extract_min(), vec![], Value::int(7))
        .commit_ok(3)
        .build();
    assert!(is_opaque(&h, &pqueue_specs()).unwrap().opaque);
}

// ---- key-value map ---------------------------------------------------------

fn map_specs() -> SpecRegistry {
    SpecRegistry::new().with("m", Arc::new(KvMap))
}

#[test]
fn map_put_get_sequence_is_opaque() {
    let h = HistoryBuilder::new()
        .op(
            1,
            "m",
            OpName::Insert,
            vec![Value::int(1), Value::int(10)],
            Value::Unit,
        )
        .commit_ok(1)
        .op(
            2,
            "m",
            OpName::Insert,
            vec![Value::int(1), Value::int(20)],
            Value::int(10),
        )
        .commit_ok(2)
        .op(3, "m", OpName::Get, vec![Value::int(1)], Value::int(20))
        .commit_ok(3)
        .build();
    assert!(is_opaque(&h, &map_specs()).unwrap().opaque);
}

#[test]
fn map_puts_on_distinct_keys_commute() {
    // Two concurrent committed puts to different keys serialize either way
    // — the Section 3.4 argument, on a dictionary.
    let h = HistoryBuilder::new()
        .op(
            1,
            "m",
            OpName::Insert,
            vec![Value::int(1), Value::int(10)],
            Value::Unit,
        )
        .op(
            2,
            "m",
            OpName::Insert,
            vec![Value::int(2), Value::int(20)],
            Value::Unit,
        )
        .commit_ok(2)
        .commit_ok(1)
        .op(3, "m", OpName::Get, vec![Value::int(1)], Value::int(10))
        .op(3, "m", OpName::Get, vec![Value::int(2)], Value::int(20))
        .commit_ok(3)
        .build();
    assert!(is_opaque(&h, &map_specs()).unwrap().opaque);
}

#[test]
fn map_stale_previous_binding_is_not_opaque() {
    // T2's put observes ⊥ as the previous binding although T1's put of the
    // same key committed strictly earlier — a lost-update shape caught by
    // the put's observer half.
    let h = HistoryBuilder::new()
        .op(
            1,
            "m",
            OpName::Insert,
            vec![Value::int(1), Value::int(10)],
            Value::Unit,
        )
        .commit_ok(1)
        .op(
            2,
            "m",
            OpName::Insert,
            vec![Value::int(1), Value::int(20)],
            Value::Unit,
        )
        .commit_ok(2)
        .build();
    assert!(!is_opaque(&h, &map_specs()).unwrap().opaque);
}

#[test]
fn live_map_reader_sees_consistent_bindings() {
    // A live transaction must not observe key 1 from before T3's commit and
    // key 2 from after it.
    let h = HistoryBuilder::new()
        .op(
            1,
            "m",
            OpName::Insert,
            vec![Value::int(1), Value::int(10)],
            Value::Unit,
        )
        .op(
            1,
            "m",
            OpName::Insert,
            vec![Value::int(2), Value::int(10)],
            Value::Unit,
        )
        .commit_ok(1)
        .op(2, "m", OpName::Get, vec![Value::int(1)], Value::int(10))
        .op(
            3,
            "m",
            OpName::Insert,
            vec![Value::int(1), Value::int(99)],
            Value::int(10),
        )
        .op(
            3,
            "m",
            OpName::Insert,
            vec![Value::int(2), Value::int(99)],
            Value::int(10),
        )
        .commit_ok(3)
        .op(2, "m", OpName::Get, vec![Value::int(2)], Value::int(99))
        .try_commit(2)
        .abort(2)
        .build();
    assert!(!is_opaque(&h, &map_specs()).unwrap().opaque);
}
