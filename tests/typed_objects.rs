//! End-to-end exercise of the typed transactional-object subsystem through
//! the facade crate: encodings over real TMs, object-level recording, the
//! conformance battery's headline verdicts, and the online monitor running
//! against a rich-object history.

use opacity_tm::harness::{
    execute_objects, object_conformance, ObjOp, ObjProgram, ObjScript, ObjectKind,
};
use opacity_tm::model::{ObjId, OpName, Value};
use opacity_tm::opacity::incremental::OpacityMonitor;
use opacity_tm::opacity::opacity::is_opaque;
use opacity_tm::stm::objects::encodings::{CounterEnc, QueueEnc, SetEnc};
use opacity_tm::stm::objects::{run_typed_tx, TypedSpace, TypedStm};
use opacity_tm::stm::{SiStm, Stm, Tl2Stm};

fn factory(name: &'static str) -> impl Fn(usize) -> Box<dyn Stm> + Sync {
    opacity_tm::stm::factory_by_name(name)
}

/// The paper-level claim of this subsystem, end to end: snapshot isolation
/// commits a write-skew outcome on a *set* that no serial execution allows,
/// and the recorded object-level history convicts it — while TL2, driven
/// through the very same probe, stays opaque in every interleaving.
#[test]
fn object_level_write_skew_separates_si_from_opacity() {
    let si = object_conformance(&factory("sistm"), &[ObjectKind::Set], 2);
    let skew = si.probe("set-write-skew").expect("probe selected");
    assert!(skew.well_formed);
    assert!(!skew.opaque && !skew.serializable, "SI must be convicted");
    assert!(!skew.violations.is_empty(), "violations carry the schedule");

    let tl2 = object_conformance(&factory("tl2"), &[ObjectKind::Set], 2);
    assert!(
        tl2.all_clean(),
        "an opaque TM is acquitted on the same probe"
    );
}

/// One concrete convicting interleaving, pinned: both SI transactions read
/// the empty set and both insert — the committed history admits no legal
/// serialization of the set object.
#[test]
fn si_write_skew_on_a_set_reproduced_by_hand() {
    let space = TypedSpace::builder()
        .with("s", SetEnc { domain: 4 })
        .build();
    let tm = TypedStm::new(space, |k| Box::new(SiStm::new(k)));
    let program = ObjProgram {
        threads: vec![
            ObjScript {
                ops: vec![
                    ObjOp {
                        obj: "s",
                        op: OpName::Contains,
                        args: vec![Value::int(1)],
                    },
                    ObjOp {
                        obj: "s",
                        op: OpName::Contains,
                        args: vec![Value::int(2)],
                    },
                    ObjOp {
                        obj: "s",
                        op: OpName::Insert,
                        args: vec![Value::int(1)],
                    },
                ],
            },
            ObjScript {
                ops: vec![
                    ObjOp {
                        obj: "s",
                        op: OpName::Contains,
                        args: vec![Value::int(1)],
                    },
                    ObjOp {
                        obj: "s",
                        op: OpName::Contains,
                        args: vec![Value::int(2)],
                    },
                    ObjOp {
                        obj: "s",
                        op: OpName::Insert,
                        args: vec![Value::int(2)],
                    },
                ],
            },
        ],
    };
    // Fully interleaved: both read their snapshots before either commits.
    let out = execute_objects(&tm, &program, &[0, 1, 0, 1, 0, 1, 0, 1]);
    assert!(
        out.txs[0].committed && out.txs[1].committed,
        "SI commits both"
    );
    assert_eq!(
        out.txs[1].returns,
        vec![Value::Bool(false), Value::Bool(false), Value::Bool(true)],
        "T2 saw the empty snapshot and inserted"
    );
    let h = tm.history();
    let report = is_opaque(&h, &tm.registry()).unwrap();
    assert!(!report.opaque, "write skew on the set: {h}");
}

/// The resumable online monitor consumes a typed history incrementally
/// under the object registry — rich specs ride the same search core.
#[test]
fn online_monitor_follows_a_typed_history() {
    let space = TypedSpace::builder()
        .with("c", CounterEnc)
        .with("q", QueueEnc { cap: 16 })
        .build();
    let tm = TypedStm::new(space, |k| Box::new(Tl2Stm::new(k)));
    let c = tm.handle("c");
    let q = tm.handle("q");
    for round in 0..4 {
        run_typed_tx(&tm, 0, |tx| {
            tx.inc(c)?;
            tx.enq(q, round)
        });
        run_typed_tx(&tm, 1, |tx| {
            tx.get(c)?;
            tx.deq(q)
        });
    }
    let h = tm.history();
    let specs = tm.registry();
    let mut monitor = OpacityMonitor::new(&specs);
    assert_eq!(
        monitor.feed_all(&h).expect("typed history is well-formed"),
        None,
        "every prefix of the TL2 typed run is opaque"
    );
    // The recorded history speaks object names, not register names.
    assert!(h.events().iter().all(|e| e
        .obj()
        .map_or(true, |o| o == &ObjId::new("c") || o == &ObjId::new("q"))));
}

/// Retry loops, handles, and invariants work across every TM via the
/// facade — the "zero per-TM changes" claim.
#[test]
fn typed_counter_conserves_increments_on_every_tm() {
    for make in opacity_tm::stm::all_stms(1)
        .into_iter()
        .map(|s| factory(s.name()))
    {
        let typed = TypedStm::new(ObjectKind::Counter.standard_space(64), |k| make(k));
        let total = 10;
        for i in 0..total {
            run_typed_tx(&typed, i % 2, |tx| tx.inc(tx.handle("o")));
        }
        let (v, _) = run_typed_tx(&typed, 0, |tx| tx.get(tx.handle("o")));
        assert_eq!(v, total as i64, "{}", typed.name());
    }
}
