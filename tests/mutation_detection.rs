//! Experiment E19: mutation testing — the checkers as protocol bug-finders.
//!
//! The paper's opening argument is that without a formal correctness
//! condition "it is impossible to check the correctness of these
//! implementations". Here that claim is run in reverse: realistic bugs are
//! planted into a TL2-style protocol (`tm_stm::mutants`), adversarial
//! programs are swept through every interleaving by the deterministic
//! explorer, and the recorded histories are judged by the Definition-1
//! checker and the serializability checker. Every mutant is caught; the
//! faithful baseline never is; and the two mutants are separated by *which*
//! oracle catches them:
//!
//! * `SkipReadValidation` is invisible to serializability (its committed
//!   transactions stay serializable) — only the opacity checker flags it;
//! * `SkipCommitValidation` already breaks serializability (lost updates);
//! * the baseline passes both on all schedules.
//!
//! This is exactly the practical value the paper ascribes to opacity as a
//! checkable criterion, demonstrated end-to-end.

use opacity_tm::harness::{all_schedules, execute, Program, TxScript};
use opacity_tm::model::SpecRegistry;
use opacity_tm::opacity::criteria::is_serializable;
use opacity_tm::opacity::opacity::is_opaque;
use opacity_tm::stm::{run_tx, MutantStm, Mutation, Stm};

fn specs() -> SpecRegistry {
    SpecRegistry::registers()
}

/// The reader-vs-writer probe program (the §2 hazard shape).
fn reader_vs_writer() -> Program {
    Program::new(vec![
        TxScript::new().read(0).read(1),
        TxScript::new().write(0, 7).write(1, 7),
    ])
}

/// The lost-update probe program: two read-modify-writes on one register.
fn rmw_vs_rmw() -> Program {
    Program::new(vec![
        TxScript::new().read(0).write(0, 100),
        TxScript::new().read(0).write(0, 200),
    ])
}

/// Sweeps every interleaving of `program`, returning how many produced
/// (non-opaque, non-serializable) histories.
fn sweep(mutation: Mutation, program: &Program) -> (usize, usize) {
    let mut non_opaque = 0;
    let mut non_serializable = 0;
    for sched in all_schedules(&program.action_counts(), 200) {
        let stm = MutantStm::new(2, mutation);
        // Distinguishable initial state.
        run_tx(&stm, 0, |tx| {
            tx.write(0, 1)?;
            tx.write(1, 1)
        });
        execute(&stm, program, &sched);
        let h = stm.recorder().history();
        assert!(
            opacity_tm::model::is_well_formed(&h),
            "{}: ill-formed history under {sched:?}: {h}",
            mutation.name()
        );
        if !is_opaque(&h, &specs()).unwrap().opaque {
            non_opaque += 1;
        }
        if !is_serializable(&h, &specs()).unwrap() {
            non_serializable += 1;
        }
    }
    (non_opaque, non_serializable)
}

#[test]
fn baseline_is_never_flagged() {
    for program in [reader_vs_writer(), rmw_vs_rmw()] {
        let (non_opaque, non_ser) = sweep(Mutation::None, &program);
        assert_eq!(non_opaque, 0, "faithful protocol flagged as non-opaque");
        assert_eq!(non_ser, 0, "faithful protocol flagged as non-serializable");
    }
}

#[test]
fn skip_read_validation_caught_by_opacity_only() {
    let (non_opaque, non_ser) = sweep(Mutation::SkipReadValidation, &reader_vs_writer());
    assert!(
        non_opaque > 0,
        "the opacity checker must catch the inconsistent-read mutant"
    );
    assert_eq!(
        non_ser, 0,
        "committed transactions of this mutant stay serializable — the bug \
         is invisible to the classical criterion"
    );
}

#[test]
fn skip_commit_validation_caught_by_serializability() {
    let (non_opaque, non_ser) = sweep(Mutation::SkipCommitValidation, &rmw_vs_rmw());
    assert!(non_ser > 0, "lost updates must break serializability");
    // Non-serializable implies non-opaque; the counts agree on that.
    assert!(non_opaque >= non_ser);
}

#[test]
fn lost_update_mutant_breaks_semantic_invariant_under_threads() {
    // The same bug, caught the systems way: a threaded counter loses
    // increments. Unlike the explorer sweep this is probabilistic in
    // *which* increments collide, but with no validation at all every
    // concurrent overlap loses an update, so detection over a few hundred
    // increments is effectively certain.
    let stm = MutantStm::new(1, Mutation::SkipCommitValidation);
    stm.recorder().set_enabled(false);
    let per_thread = 400;
    std::thread::scope(|scope| {
        for t in 0..2 {
            let stm = &stm;
            scope.spawn(move || {
                for _ in 0..per_thread {
                    run_tx(stm, t, |tx| {
                        let v = tx.read(0)?;
                        tx.write(0, v + 1)
                    });
                }
            });
        }
    });
    let (v, _) = run_tx(&stm, 0, |tx| tx.read(0));
    assert!(
        v <= 2 * per_thread,
        "counter can never exceed the number of increments"
    );
    // The faithful baseline must conserve every increment under the very
    // same load (regression guard for the harness itself).
    let good = MutantStm::new(1, Mutation::None);
    good.recorder().set_enabled(false);
    std::thread::scope(|scope| {
        for t in 0..2 {
            let good = &good;
            scope.spawn(move || {
                for _ in 0..per_thread {
                    run_tx(good, t, |tx| {
                        let v = tx.read(0)?;
                        tx.write(0, v + 1)
                    });
                }
            });
        }
    });
    let (v, _) = run_tx(&good, 0, |tx| tx.read(0));
    assert_eq!(v, 2 * per_thread, "baseline must not lose updates");
}

#[test]
fn mutant_write_skew_shape_commits_a_cycle() {
    // Deterministic non-serializable commit under SkipCommitValidation:
    // T1 reads x then writes y; T2 reads y then writes x; both commit.
    let stm = MutantStm::new(2, Mutation::SkipCommitValidation);
    let p = Program::new(vec![
        TxScript::new().read(0).write(1, 5),
        TxScript::new().read(1).write(0, 9),
    ]);
    // Fully overlapped: all reads happen before either commit.
    let out = execute(&stm, &p, &[0, 1, 0, 1, 0, 1]);
    assert_eq!(out.commits(), 2, "the mutant must commit the cycle");
    let h = stm.recorder().history();
    assert!(!is_serializable(&h, &specs()).unwrap(), "{h}");
    assert!(!is_opaque(&h, &specs()).unwrap().opaque, "{h}");
}

#[test]
fn every_mutant_is_distinguished_from_the_baseline() {
    // The summary table of E19: for each *validation* mutant, at least one
    // probe program and oracle separates it from Mutation::None. The two
    // seeded concurrency mutants (DroppedResidue, UnlicensedFastPath) are
    // deliberately excluded: op-granular interleavings cannot split a clock
    // tick, so this sweep cannot catch them — that blind spot belongs to
    // the step-level explorer (`tm_harness::dpor`), whose convictions are
    // pinned in `crates/harness/tests/race_analysis.rs`.
    let mut caught = 0;
    for m in [Mutation::SkipReadValidation, Mutation::SkipCommitValidation] {
        let mut flagged = false;
        for program in [reader_vs_writer(), rmw_vs_rmw()] {
            let (non_opaque, non_ser) = sweep(m, &program);
            if non_opaque > 0 || non_ser > 0 {
                flagged = true;
            }
        }
        assert!(flagged, "{}: no oracle caught this mutant", m.name());
        caught += 1;
    }
    assert_eq!(caught, 2);
}

#[test]
fn concurrency_mutants_are_invisible_to_op_level_sweeps() {
    // The negative half of the argument for step-level analysis: the two
    // concurrency mutants sail through every op-granular interleaving of
    // both probes, on both oracles.
    for m in [Mutation::DroppedResidue, Mutation::UnlicensedFastPath] {
        for program in [reader_vs_writer(), rmw_vs_rmw()] {
            let (non_opaque, non_ser) = sweep(m, &program);
            assert_eq!(
                (non_opaque, non_ser),
                (0, 0),
                "{}: an op-level sweep should NOT catch this mutant",
                m.name()
            );
        }
    }
}
