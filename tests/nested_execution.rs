//! Experiment E22: closed nesting, executable (Section 7).
//!
//! E15 validates the Section 7 *translation* on hand-built histories; this
//! suite runs actual nested transactions on the lazy-acquire TM (`AstmTx`'s
//! scope API), records parent and child under separate transaction ids,
//! flattens with `tm_model::flatten`, and judges the result with the
//! ordinary opacity machinery — the full path from executable nesting to
//! the paper's flat model.
//!
//! The semantics exercised:
//! * a child observes the parent's buffered writes ("a nested transaction
//!   should observe the changes done by its parent");
//! * a committed closed child merges into the parent (its `tryC`/`C` are
//!   internal);
//! * an aborted child is a *partial* abort: the parent's redo log is
//!   restored and the parent proceeds — something the flat interface
//!   cannot express;
//! * the aborted child's legality is judged against the parent context
//!   (the flatten splice), and the whole flattened history is opaque.

use opacity_tm::model::{flatten, SpecRegistry, TxId};
use opacity_tm::opacity::opacity::is_opaque;
use opacity_tm::stm::astm::AstmStm;
use opacity_tm::stm::{run_tx, Stm, Tx};

fn specs() -> SpecRegistry {
    SpecRegistry::registers()
}

/// Flatten the TM's recorded history with its own nesting info and check
/// opacity.
fn flat_opaque(stm: &AstmStm) -> bool {
    let h = stm.recorder().history();
    let flat = flatten(&h, &stm.nesting_info());
    assert!(opacity_tm::model::is_well_formed(&flat), "{flat}");
    is_opaque(&flat, &specs()).unwrap().opaque
}

#[test]
fn child_sees_parent_buffered_writes() {
    let stm = AstmStm::new(2);
    let mut t = stm.begin_astm(0);
    t.write(0, 42).unwrap(); // parent's write, not yet committed anywhere
    t.begin_nested();
    assert_eq!(
        t.read(0).unwrap(),
        42,
        "the child must see the parent's write"
    );
    t.commit_nested();
    Box::new(t).commit().unwrap();
    assert!(flat_opaque(&stm));
}

#[test]
fn committed_child_merges_into_parent() {
    let stm = AstmStm::new(2);
    let mut t = stm.begin_astm(0);
    t.write(0, 1).unwrap();
    t.begin_nested();
    t.write(1, 2).unwrap();
    t.commit_nested();
    Box::new(t).commit().unwrap();
    // Both writes are durable.
    let ((a, b), _) = run_tx(&stm, 0, |tx| Ok((tx.read(0)?, tx.read(1)?)));
    assert_eq!((a, b), (1, 2));
    // The flattened history contains a single committed transaction.
    let flat = flatten(&stm.recorder().history(), &stm.nesting_info());
    let parent_committed = flat
        .txs()
        .iter()
        .filter(|&&t| flat.status(t).is_committed())
        .count();
    assert_eq!(parent_committed, 2, "the worker + the reader, no child tx");
    assert!(is_opaque(&flat, &specs()).unwrap().opaque);
}

#[test]
fn aborted_child_is_a_partial_abort() {
    let stm = AstmStm::new(3);
    let mut t = stm.begin_astm(0);
    t.write(0, 10).unwrap(); // parent work before the child
    t.begin_nested();
    t.write(0, 99).unwrap(); // child overwrites the parent's buffer…
    t.write(1, 99).unwrap(); // …and touches a new register
    t.abort_nested(); // partial abort
    assert_eq!(t.read(0).unwrap(), 10, "the parent's own write is restored");
    t.write(2, 30).unwrap(); // the parent continues productively
    Box::new(t).commit().unwrap();
    let ((a, b, c), _) = run_tx(&stm, 0, |tx| Ok((tx.read(0)?, tx.read(1)?, tx.read(2)?)));
    assert_eq!((a, b, c), (10, 0, 30), "no child effect may survive");
    assert!(flat_opaque(&stm));
}

#[test]
fn aborted_child_read_of_parent_buffer_is_legal_via_the_splice() {
    // The child reads the parent's uncommitted write and aborts. In the
    // flat history that read is only legal because flatten prefixes the
    // child with the parent's preceding operations — exactly the paper's
    // "together with all the preceding operations of its parent".
    let stm = AstmStm::new(2);
    let mut t = stm.begin_astm(0);
    t.write(0, 7).unwrap();
    t.begin_nested();
    assert_eq!(t.read(0).unwrap(), 7);
    t.abort_nested();
    Box::new(t).commit().unwrap();
    assert!(flat_opaque(&stm));
    // Without the splice the child would be judged against the committed
    // state (0) and the flat history would be rejected; verify the child
    // transaction exists as aborted in the flattened view.
    let flat = flatten(&stm.recorder().history(), &stm.nesting_info());
    assert!(
        flat.txs().iter().any(|&t| flat.status(t).is_aborted()),
        "the aborted child survives flattening under its own id: {flat}"
    );
}

#[test]
fn child_reads_do_not_constrain_the_parent_after_child_abort() {
    // The child reads r1; a concurrent writer then commits to r1; the
    // child aborts. The parent never read r1 itself, so it must still
    // commit — the child's footprint died with it.
    let stm = AstmStm::new(2);
    let mut t = stm.begin_astm(0);
    t.write(0, 5).unwrap();
    t.begin_nested();
    assert_eq!(t.read(1).unwrap(), 0);
    t.abort_nested();
    run_tx(&stm, 1, |tx| tx.write(1, 77)); // invalidates the child's read
    Box::new(t)
        .commit()
        .expect("parent unaffected by the dead child's reads");
    assert!(flat_opaque(&stm));
}

#[test]
fn forced_abort_inside_child_kills_parent_and_child() {
    // Timing subtlety, worth its own documentation: the model has no
    // "begin" event, so a nested child's span starts at its first
    // *operation*. The child must perform an operation before the
    // conflicting writer commits — otherwise the flat model (rightly)
    // places the whole child after the writer, and the spliced parent
    // context would be judged against the post-writer state. The child's
    // read of r1 below both pins its span and seeds the validation that
    // later kills it.
    let stm = AstmStm::new(2);
    let mut t = stm.begin_astm(0);
    assert_eq!(t.read(0).unwrap(), 0); // parent read, to be invalidated
    t.begin_nested();
    assert_eq!(t.read(1).unwrap(), 0); // child op: pins the child's span
    run_tx(&stm, 1, |tx| tx.write(0, 9)); // concurrent conflicting commit
                                          // The child's next read triggers whole-read-set validation → abort
                                          // (the parent's r0 entry is stale), answering the child's invocation
                                          // with A and aborting the parent too.
    assert!(t.read(1).is_err(), "stale parent read must abort");
    drop(t);
    let h = stm.recorder().history();
    let flat = flatten(&h, &stm.nesting_info());
    assert!(opacity_tm::model::is_well_formed(&flat), "{flat}");
    assert!(is_opaque(&flat, &specs()).unwrap().opaque, "{flat}");
    // Everyone except the writer is aborted.
    let committed = flat
        .txs()
        .iter()
        .filter(|&&t| flat.status(t).is_committed())
        .count();
    assert_eq!(committed, 1);
}

#[test]
fn nested_histories_from_many_runs_stay_opaque() {
    // A small battery mixing commits, child aborts, and plain transactions.
    let stm = AstmStm::new(3);
    for round in 0..5i64 {
        let mut t = stm.begin_astm(0);
        if t.write(0, 100 + round).is_ok() {
            t.begin_nested();
            let keep = t.read(1).map(|v| v % 2 == 0).unwrap_or(false);
            if t.write(1, 200 + round).is_err() {
                drop(t);
                continue;
            }
            if keep {
                t.commit_nested();
            } else {
                t.abort_nested();
            }
            let _ = Box::new(t).commit();
        }
        run_tx(&stm, 1, |tx| {
            let v = tx.read(2)?;
            tx.write(2, v + 1)
        });
    }
    assert!(flat_opaque(&stm));
}

#[test]
#[should_panic(expected = "one level deep")]
fn deep_nesting_is_rejected() {
    let stm = AstmStm::new(1);
    let mut t = stm.begin_astm(0);
    t.begin_nested();
    t.begin_nested();
}

#[test]
fn open_scope_at_commit_is_aborted_conservatively() {
    let stm = AstmStm::new(2);
    let mut t = stm.begin_astm(0);
    t.write(0, 1).unwrap();
    t.begin_nested();
    t.write(1, 99).unwrap();
    // Committing with the scope still open: the child is aborted first.
    Box::new(t).commit().unwrap();
    let ((a, b), _) = run_tx(&stm, 0, |tx| Ok((tx.read(0)?, tx.read(1)?)));
    assert_eq!((a, b), (1, 0), "the unterminated child's write must vanish");
    assert!(flat_opaque(&stm));
}

#[test]
fn nesting_info_reflects_all_scopes() {
    let stm = AstmStm::new(1);
    let mut t = stm.begin_astm(0);
    t.begin_nested();
    t.commit_nested();
    t.begin_nested();
    t.abort_nested();
    Box::new(t).commit().unwrap();
    let info = stm.nesting_info();
    let h = stm.recorder().history();
    let nested_txs: Vec<TxId> = h
        .txs()
        .into_iter()
        .filter(|&t| info.parent_of(t).is_some())
        .collect();
    assert_eq!(nested_txs.len(), 2, "both children registered");
}
