//! Experiment E11: the paper's Section 1 claim — "most TM systems we know
//! of do ensure opacity" — validated behaviourally.
//!
//! Every opaque-by-design TM must produce opaque histories under
//! (a) exhaustive interleavings of small adversarial programs, (b) seeded
//! random interleavings of bigger ones, and (c) genuinely concurrent
//! threads. The deliberately non-opaque TM must produce at least one
//! serializable-but-not-opaque history — exhibiting exactly the gap the
//! paper's lower bound is about.

use opacity_tm::harness::{all_schedules, execute, random_schedule, Program, TxScript};
use opacity_tm::model::{History, SpecRegistry};
use opacity_tm::opacity::criteria::is_serializable;
use opacity_tm::opacity::opacity::is_opaque;
use opacity_tm::stm::{run_tx, NonOpaqueStm, Stm};

fn specs() -> SpecRegistry {
    SpecRegistry::registers()
}

fn assert_opaque(h: &History, who: &str, context: &str) {
    let r = is_opaque(h, &specs()).unwrap();
    assert!(
        r.opaque,
        "{who} produced a non-opaque history under {context}:\n{h}"
    );
}

/// The adversarial two-thread program: a scanning reader racing a
/// multi-object writer — the shape that exposes inconsistent snapshots.
fn reader_vs_writer() -> Program {
    Program::new(vec![
        TxScript::new().read(0).read(1),
        TxScript::new().write(0, 7).write(1, 7),
    ])
}

/// A three-thread mix: reader, writer, read-modify-write.
fn three_way() -> Program {
    Program::new(vec![
        TxScript::new().read(0).read(1),
        TxScript::new().write(0, 5),
        TxScript::new().read(1).write(1, 9),
    ])
}

#[test]
fn opaque_stms_exhaustive_interleavings_reader_vs_writer() {
    let p = reader_vs_writer();
    let schedules = all_schedules(&p.action_counts(), 100);
    assert_eq!(schedules.len(), 20);
    for sched in &schedules {
        for stm in opacity_tm::stm::opaque_stms(2) {
            if stm.blocking() {
                continue;
            }
            execute(stm.as_ref(), &p, sched);
            assert_opaque(
                &stm.recorder().history(),
                stm.name(),
                &format!("schedule {sched:?}"),
            );
        }
    }
}

#[test]
fn opaque_stms_exhaustive_interleavings_three_way() {
    let p = three_way();
    // (2+1, 1+1, 2+1) actions: 8!/(3!2!3!) = 560 interleavings.
    let schedules = all_schedules(&p.action_counts(), 1000);
    assert_eq!(schedules.len(), 560);
    for (i, sched) in schedules.iter().enumerate() {
        // Exhaustive interleavings over all TMs is expensive with the
        // checker in the loop; sample every third schedule for breadth.
        if i % 3 != 0 {
            continue;
        }
        for stm in opacity_tm::stm::opaque_stms(2) {
            if stm.blocking() {
                continue;
            }
            execute(stm.as_ref(), &p, sched);
            assert_opaque(
                &stm.recorder().history(),
                stm.name(),
                &format!("schedule {sched:?}"),
            );
        }
    }
}

#[test]
fn opaque_stms_random_interleavings_larger_program() {
    let p = Program::new(vec![
        TxScript::new().read(0).read(1).read(2).read(3),
        TxScript::new().write(0, 1).write(2, 1),
        TxScript::new().write(1, 2).write(3, 2),
        TxScript::new().read(2).write(3, 3),
    ]);
    for seed in 0..40 {
        let sched = random_schedule(&p, seed);
        for stm in opacity_tm::stm::opaque_stms(4) {
            if stm.blocking() {
                continue;
            }
            execute(stm.as_ref(), &p, &sched);
            assert_opaque(
                &stm.recorder().history(),
                stm.name(),
                &format!("seed {seed}"),
            );
        }
    }
}

#[test]
fn opaque_stms_threaded_histories_are_opaque() {
    // Real threads, real races; small scale so the checker stays fast.
    for stm in opacity_tm::stm::opaque_stms(3) {
        let stm = stm.as_ref();
        std::thread::scope(|s| {
            s.spawn(|| {
                for _ in 0..2 {
                    run_tx(stm, 0, |tx| {
                        let a = tx.read(0)?;
                        tx.write(1, a + 1)
                    });
                }
            });
            s.spawn(|| {
                for _ in 0..2 {
                    run_tx(stm, 1, |tx| {
                        tx.write(0, 10)?;
                        tx.write(2, 20)
                    });
                }
            });
        });
        assert_opaque(&stm.recorder().history(), stm.name(), "2 threads × 2 txs");
    }
}

#[test]
fn nonopaque_stm_produces_serializable_but_not_opaque_history() {
    // The deterministic witness: reader sees r0 before the writer commits
    // and r1 after — the Figure-1 anomaly, live.
    let stm = NonOpaqueStm::new(2);
    // Seed the registers so values are distinguishable.
    run_tx(&stm, 0, |tx| {
        tx.write(0, 1)?;
        tx.write(1, 1)
    });
    let p = reader_vs_writer();
    let sched = vec![0usize, 1, 1, 1, 0, 0];
    let out = execute(&stm, &p, &sched);
    assert_eq!(out.txs[0].reads, vec![1, 7], "the mixed snapshot");
    let h = stm.recorder().history();
    let r = is_opaque(&h, &specs()).unwrap();
    assert!(!r.opaque, "the recorded history must violate opacity:\n{h}");
    assert!(
        is_serializable(&h, &specs()).unwrap(),
        "committed transactions remain serializable:\n{h}"
    );
}

#[test]
fn nonopaque_violations_found_by_exhaustive_search() {
    // Sweep all interleavings; count how many produce opacity violations.
    let p = reader_vs_writer();
    let mut violations = 0;
    for sched in all_schedules(&p.action_counts(), 100) {
        let stm = NonOpaqueStm::new(2);
        run_tx(&stm, 0, |tx| {
            tx.write(0, 1)?;
            tx.write(1, 1)
        });
        execute(&stm, &p, &sched);
        let h = stm.recorder().history();
        if !is_opaque(&h, &specs()).unwrap().opaque {
            violations += 1;
        }
    }
    assert!(
        violations > 0,
        "commit-time-only validation must violate opacity in some interleaving"
    );
}
