//! Experiment E18: rigorous scheduling, executable — Section 3.6 on live
//! executions.
//!
//! The paper argues rigorousness (the strongest member of the
//! recoverability family, what strict two-phase locking provides) is
//! *sufficient but too strong* for TM. With the 2PL TM in the suite, both
//! halves become measurable — plus a finding the formal model makes sharp:
//!
//! * **rigorousness is inherently blocking.** Our 2PL resolves conflicts by
//!   *wounding* (the older transaction force-aborts the younger and repairs
//!   the lock itself) so that it stays non-blocking and explorable. At the
//!   history level the victim's abort event appears only when the victim
//!   next acts — so the wounder's repair overlaps a still-live transaction,
//!   and the recorded history fails *literal* rigorousness while remaining
//!   opaque. Executions that resolve without wounds (dies, or no conflicts)
//!   are rigorous. A TM whose every history is rigorous must make the
//!   conflicting requester *wait*, which no obstruction-free design does —
//!   a miniature of the paper's point that rigorousness over-constrains TM.
//! * the 2PL TM forbids the §3.6 blind-writer overlap (at most one commits
//!   from a fully interleaved schedule), while the commit-time validator
//!   commits them all — opaquely but non-rigorously, separating the
//!   criteria on real executions.

use opacity_tm::harness::{all_schedules, execute, Program, TxScript};
use opacity_tm::model::SpecRegistry;
use opacity_tm::opacity::criteria::{is_serializable, ScheduleProperties};
use opacity_tm::opacity::opacity::is_opaque;
use opacity_tm::stm::{NonOpaqueStm, Stm, Tl2Stm, TplStm};

fn specs() -> SpecRegistry {
    SpecRegistry::registers()
}

/// §3.6's shape, scaled down to explorer size: two writers blindly writing
/// the same two registers.
fn blind_writers() -> Program {
    Program::new(vec![
        TxScript::new().write(0, 1).write(1, 1),
        TxScript::new().write(0, 2).write(1, 2),
    ])
}

#[test]
fn tpl_always_opaque_and_rigorous_when_wound_free() {
    let p = blind_writers();
    let mut rigorous_count = 0;
    let mut wounded_count = 0;
    for sched in all_schedules(&p.action_counts(), 100) {
        let stm = TplStm::new(2);
        let out = execute(&stm, &p, &sched);
        let h = stm.recorder().history();
        assert!(
            is_opaque(&h, &specs()).unwrap().opaque,
            "2PL must be opaque under {sched:?}:\n{h}"
        );
        assert!(is_serializable(&h, &specs()).unwrap(), "{sched:?}:\n{h}");
        let props = ScheduleProperties::of(&h);
        if out.commits() == 2 {
            // Both committed ⇒ no wound or die happened ⇒ every lock was
            // respected for its holder's whole lifetime ⇒ rigorous.
            assert!(
                props.rigorous,
                "wound-free run must be rigorous {sched:?}:\n{h}"
            );
        }
        if props.rigorous {
            rigorous_count += 1;
        } else {
            wounded_count += 1;
        }
    }
    // Both regimes occur: serial-ish schedules are rigorous; wounding
    // schedules are opaque-but-not-rigorous (the blocking trade-off).
    assert!(
        rigorous_count > 0,
        "some schedules must resolve without wounds"
    );
    assert!(
        wounded_count > 0,
        "some schedules must wound — rigorousness without blocking is impossible"
    );
}

#[test]
fn tpl_serial_schedules_are_rigorous() {
    let p = blind_writers();
    for sched in [vec![0, 0, 0, 1, 1, 1], vec![1, 1, 1, 0, 0, 0]] {
        let stm = TplStm::new(2);
        let out = execute(&stm, &p, &sched);
        assert_eq!(out.commits(), 2);
        let h = stm.recorder().history();
        assert!(ScheduleProperties::of(&h).rigorous, "{sched:?}:\n{h}");
    }
}

#[test]
fn tpl_serializes_the_blind_writers() {
    // Under 2PL the overlapping writers can never both commit from a fully
    // interleaved schedule — one dies or is wounded (the §3.6 objection).
    let stm = TplStm::new(2);
    let p = blind_writers();
    let out = execute(&stm, &p, &[0, 1, 0, 1, 0, 1]);
    assert_eq!(
        out.commits(),
        1,
        "rigorous-style locking forbids the overlap"
    );
}

#[test]
fn commit_time_validator_commits_the_overlap_opaquely_but_not_rigorously() {
    // The §3.6 separation on a real execution: the commit-time validator
    // commits BOTH overlapping blind writers (blind writes conflict on
    // nothing it checks); the history is opaque yet not rigorous.
    let mut separated = false;
    let p = blind_writers();
    for sched in all_schedules(&p.action_counts(), 100) {
        let stm = NonOpaqueStm::new(2);
        let out = execute(&stm, &p, &sched);
        let h = stm.recorder().history();
        assert!(
            is_opaque(&h, &specs()).unwrap().opaque,
            "blind writers alone cannot violate opacity {sched:?}: {h}"
        );
        if out.commits() == 2 && !ScheduleProperties::of(&h).rigorous {
            separated = true;
        }
    }
    assert!(
        separated,
        "some interleaving must commit both writers non-rigorously"
    );
}

#[test]
fn tl2_refuses_the_same_set_overlap() {
    // TL2's commit-time lock acquisition checks versions against rv: two
    // fully overlapped writers of the same registers can never both
    // commit — TL2 is *more* conservative than §3.6's user needs, though
    // less than 2PL (it only aborts at commit time).
    let p = blind_writers();
    let stm = Tl2Stm::new(2);
    let out = execute(&stm, &p, &[0, 1, 0, 1, 0, 1]);
    assert_eq!(out.commits(), 1);
}

#[test]
fn tpl_readers_never_observe_fractured_views() {
    // 2PL read locks mean the writer can only proceed by wounding the
    // reader, and a wounded reader never completes another read — so any
    // reader that finishes both reads saw a consistent pair.
    let p = Program::new(vec![
        TxScript::new().read(0).read(1),
        TxScript::new().write(0, 7).write(1, 7),
    ]);
    for sched in all_schedules(&p.action_counts(), 100) {
        let stm = TplStm::new(2);
        let out = execute(&stm, &p, &sched);
        if out.txs[0].reads.len() == 2 {
            assert_eq!(
                out.txs[0].reads[0], out.txs[0].reads[1],
                "{sched:?}: fractured view under 2PL"
            );
        }
        assert!(
            is_opaque(&stm.recorder().history(), &specs())
                .unwrap()
                .opaque
        );
    }
}

#[test]
fn wound_priority_keeps_the_oldest_writer_alive() {
    // Progress guarantee behind the non-blocking design: the transaction
    // that begins first (smallest id) always commits, whatever the
    // interleaving — so the scheme cannot livelock.
    let p = blind_writers();
    for sched in all_schedules(&p.action_counts(), 100) {
        if sched[0] != 0 {
            continue;
        }
        let stm = TplStm::new(2);
        let out = execute(&stm, &p, &sched);
        assert!(
            out.txs[0].committed,
            "{sched:?}: the older transaction must win"
        );
    }
}
