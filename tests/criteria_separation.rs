//! Experiments E5/E6: the Section 3 separations between opacity and the
//! classical criteria, on the paper's own motivating scenarios.

use std::sync::Arc;

use opacity_tm::model::objects::Counter;
use opacity_tm::model::{HistoryBuilder, SpecRegistry};
use opacity_tm::opacity::criteria::{classify, ScheduleProperties};
use opacity_tm::opacity::opacity::is_opaque;

/// E5 — the Section 3.4 counter: k transactions concurrently increment a
/// shared counter (without reading it).
///
/// * with **counter semantics**, all of them may commit — the history is
///   opaque (and serializable);
/// * **recoverability in its strong form** (strictness) rejects the
///   concurrency: "each modifies the same shared object";
/// * with the **read/write encoding**, transactions that read the same
///   value cannot all commit — the same concurrency becomes non-opaque.
#[test]
fn e5_counter_semantics_vs_recoverability() {
    let k = 8;
    let specs = SpecRegistry::new().with("c", Arc::new(Counter));

    // All increments interleaved, then all commits.
    let mut b = HistoryBuilder::new();
    for t in 1..=k {
        b = b.inc(t, "c");
    }
    for t in 1..=k {
        b = b.commit_ok(t);
    }
    let h = b.build();

    // Opaque with counter semantics (increments commute).
    assert!(is_opaque(&h, &specs).unwrap().opaque);
    // A subsequent reader sees the sum of all increments.
    let mut b = HistoryBuilder::new();
    for t in 1..=k {
        b = b.inc(t, "c");
    }
    for t in 1..=k {
        b = b.commit_ok(t);
    }
    let h_with_reader = b.get(99, "c", k as i64).commit_ok(99).build();
    assert!(is_opaque(&h_with_reader, &specs).unwrap().opaque);

    // Strict recoverability forbids the very same concurrency.
    let sched = ScheduleProperties::of(&h);
    assert!(
        !sched.strict,
        "strong recoverability must reject concurrent increments"
    );
    assert!(
        sched.recoverable,
        "plain recoverability is vacuous without reads"
    );

    // Read/write encoding (Section 3.4): each transaction reads the
    // counter then writes back the incremented value. "Among the
    // transactions that read the same value from x, only one can commit."
    let rw_specs = SpecRegistry::registers();
    let mut b = HistoryBuilder::new();
    for t in 1..=3u32 {
        b = b.read(t, "c", 0);
    }
    for t in 1..=3u32 {
        b = b.write(t, "c", 1);
    }
    for t in 1..=3u32 {
        b = b.commit_ok(t);
    }
    let rw_all_commit = b.build();
    assert!(
        !is_opaque(&rw_all_commit, &rw_specs).unwrap().opaque,
        "read/write encoding: concurrent increments cannot all commit"
    );
    // With exactly one committer (the others aborted), the encoding is fine.
    let mut b = HistoryBuilder::new();
    for t in 1..=3u32 {
        b = b.read(t, "c", 0);
    }
    for t in 1..=3u32 {
        b = b.write(t, "c", 1);
    }
    let rw_one_commit = b
        .commit_ok(1)
        .try_commit(2)
        .abort(2)
        .try_commit(3)
        .abort(3)
        .build();
    assert!(is_opaque(&rw_one_commit, &rw_specs).unwrap().opaque);
}

/// E6 — the Section 3.6 overlapping blind writers: k transactions write
/// x, y, z concurrently. Rigorous scheduling demands that all but one be
/// blocked or aborted; opacity accepts the history as long as the final
/// state is some transaction's complete write set.
#[test]
fn e6_blind_writers_rigorousness_too_strong() {
    let k = 4u32;
    let specs = SpecRegistry::registers();
    // Interleave all writes (each tx writes x, y, z), then commit everyone.
    let mut b = HistoryBuilder::new();
    for t in 1..=k {
        b = b.write(t, "x", t as i64);
    }
    for t in 1..=k {
        b = b.write(t, "y", t as i64);
    }
    for t in 1..=k {
        b = b.write(t, "z", t as i64);
    }
    for t in 1..=k {
        b = b.commit_ok(t);
    }
    let h = b.build();

    // Opaque: any serialization of the committed blind writers is legal
    // (the user-visible end state is x = y = z = some single t).
    assert!(is_opaque(&h, &specs).unwrap().opaque);

    // A subsequent reader observing a *consistent* end state keeps it
    // opaque; a fractured state does not.
    let reader_ok = {
        let mut b = HistoryBuilder::new();
        for t in 1..=k {
            b = b
                .write(t, "x", t as i64)
                .write(t, "y", t as i64)
                .write(t, "z", t as i64);
        }
        for t in 1..=k {
            b = b.commit_ok(t);
        }
        b.read(9, "x", 2)
            .read(9, "y", 2)
            .read(9, "z", 2)
            .commit_ok(9)
            .build()
    };
    assert!(is_opaque(&reader_ok, &specs).unwrap().opaque);

    let reader_fractured = {
        let mut b = HistoryBuilder::new();
        for t in 1..=k {
            b = b
                .write(t, "x", t as i64)
                .write(t, "y", t as i64)
                .write(t, "z", t as i64);
        }
        for t in 1..=k {
            b = b.commit_ok(t);
        }
        b.read(9, "x", 1)
            .read(9, "y", 2)
            .read(9, "z", 1)
            .commit_ok(9)
            .build()
    };
    assert!(
        !is_opaque(&reader_fractured, &specs).unwrap().opaque,
        "x = 1, y = 2, z = 1 is not the write set of any single transaction"
    );

    // Rigorous scheduling rejects the concurrency outright.
    let sched = ScheduleProperties::of(&h);
    assert!(!sched.strict && !sched.rigorous);
}

/// The full criteria lattice on a battery of crafted histories: opacity is
/// strictly stronger than strict serializability, incomparable with the
/// recoverability family.
#[test]
fn criteria_lattice_relationships() {
    let specs = SpecRegistry::registers();

    // (a) opaque ⟹ strictly serializable ⟹ serializable.
    let opaque_h = HistoryBuilder::new()
        .write(1, "x", 1)
        .commit_ok(1)
        .read(2, "x", 1)
        .commit_ok(2)
        .build();
    let p = classify(&opaque_h, &specs).unwrap();
    assert!(p.opaque && p.strictly_serializable && p.serializable);

    // (b) strictly serializable but not opaque (H1-style): aborted reader
    // sees a fractured state.
    let h = HistoryBuilder::new()
        .write(1, "x", 1)
        .write(1, "y", 1)
        .commit_ok(1)
        .read(2, "x", 1)
        .write(3, "x", 2)
        .write(3, "y", 2)
        .commit_ok(3)
        .read(2, "y", 2)
        .try_commit(2)
        .abort(2)
        .build();
    let p = classify(&h, &specs).unwrap();
    assert!(p.strictly_serializable && !p.opaque);

    // (c) opaque but not rigorous (E6's blind writers): opacity tolerates
    // concurrency the scheduling criteria forbid.
    let blind = HistoryBuilder::new()
        .write(1, "x", 1)
        .write(2, "x", 2)
        .commit_ok(1)
        .commit_ok(2)
        .build();
    let p = classify(&blind, &specs).unwrap();
    assert!(p.opaque && !p.strict);

    // (d) rigorous but not opaque is impossible for *complete* register
    // histories with consistent reads... but rigorous and non-serializable
    // reads can coexist when a read returns a never-written value:
    let garbage = HistoryBuilder::new().read(1, "x", 42).commit_ok(1).build();
    let p = classify(&garbage, &specs).unwrap();
    assert!(p.rigorous, "schedule-level criteria do not inspect values");
    assert!(!p.serializable && !p.opaque);
}

/// The snapshot-isolation column of the report's criteria table (E17):
/// SI sits strictly between "anything goes" and opacity, and is
/// *incomparable* with serializability.
#[test]
fn snapshot_isolation_position_in_the_lattice() {
    use opacity_tm::model::builder::paper;
    use opacity_tm::opacity::criteria::snapshot_isolated;
    let specs = SpecRegistry::registers();

    // The pinned verdicts for the paper's histories (cf. the report bin).
    let expected = [
        ("H1", paper::h1(), false), // fractured aborted read: no snapshot
        ("H2", paper::h2(), false), // equivalent to H1, sequential
        ("H3", paper::h3(), true),
        ("H4", paper::h4(), true), // commit-pending duals handled like V
        ("H5", paper::h5(), true),
    ];
    for (name, h, si) in expected {
        assert_eq!(
            snapshot_isolated(&h, &specs).unwrap(),
            si,
            "{name}: unexpected SI verdict"
        );
    }

    // Incomparability with serializability, both directions:
    // (a) serializable but not SI — H1;
    let p = classify(&paper::h1(), &specs).unwrap();
    assert!(p.serializable);
    assert!(!snapshot_isolated(&paper::h1(), &specs).unwrap());
    // (b) SI but not serializable — write skew.
    let skew = HistoryBuilder::new()
        .read(1, "x", 0)
        .read(1, "y", 0)
        .read(2, "x", 0)
        .read(2, "y", 0)
        .write(1, "x", -1)
        .write(2, "y", -1)
        .commit_ok(1)
        .commit_ok(2)
        .build();
    let p = classify(&skew, &specs).unwrap();
    assert!(!p.serializable && !p.opaque);
    assert!(snapshot_isolated(&skew, &specs).unwrap());
}
