//! Experiments E1–E4: the paper's worked examples, verified end-to-end.
//!
//! Every concrete claim the paper makes about its example histories H1–H5
//! (Figures 1 and 2, Sections 4 and 5) is asserted here against the
//! executable model and checkers.

use opacity_tm::model::builder::paper;
use opacity_tm::model::{
    complete_histories, is_well_formed, preserves_real_time, RealTimeOrder, SpecRegistry, TxId,
    TxStatus,
};
use opacity_tm::opacity::criteria::{
    is_global_atomic, is_serializable, is_strictly_serializable, ScheduleProperties,
};
use opacity_tm::opacity::graphcheck::decide_via_graph;
use opacity_tm::opacity::opacity::{is_opaque, witness_history};
use opacity_tm::opacity::Placement;

fn specs() -> SpecRegistry {
    SpecRegistry::registers()
}

/// E1 — Figure 1: H1 satisfies global atomicity (even strictly) and
/// recoverability, but the forcefully aborted T2 observes an inconsistent
/// state, so H1 is not opaque.
#[test]
fn e1_figure1_h1_separates_opacity_from_classical_criteria() {
    let h1 = paper::h1();
    assert!(is_well_formed(&h1));

    // Classical criteria are all satisfied…
    assert!(is_serializable(&h1, &specs()).unwrap());
    assert!(is_global_atomic(&h1, &specs()).unwrap());
    assert!(is_strictly_serializable(&h1, &specs()).unwrap());
    let sched = ScheduleProperties::of(&h1);
    assert!(sched.recoverable);
    assert!(sched.avoids_cascading_aborts);

    // …but opacity is violated.
    assert!(!is_opaque(&h1, &specs()).unwrap().opaque);
    // Cross-check through the independent Theorem-2 procedure.
    let graph = decide_via_graph(&h1, &specs(), 8).unwrap();
    assert!(
        graph.consistent,
        "H1 is consistent — the failure is ordering, not values"
    );
    assert!(!graph.opaque());
}

/// E1 (detail) — the paper's two candidate serializations of H1 both fail
/// on T2, for exactly the reasons given in Section 5.3.
#[test]
fn e1_h1_failure_reasons_match_paper() {
    use opacity_tm::model::{tx_legal_in, HistoryBuilder};
    // Order (1): T1 · T2 · T3 — "the second read of T2 returns 2 instead
    // of 0".
    let s1 = HistoryBuilder::new()
        .write(1, "x", 1)
        .commit_ok(1)
        .read(2, "x", 1)
        .read(2, "y", 2)
        .try_commit(2)
        .abort(2)
        .write(3, "x", 2)
        .write(3, "y", 2)
        .commit_ok(3)
        .build();
    assert!(tx_legal_in(&s1, TxId(2), &specs()).is_err());
    // Order (2): T1 · T3 · T2 — "the first read of T2 returns 1 instead of
    // 2 (the value written by T3)".
    let s2 = paper::h2();
    assert!(tx_legal_in(&s2, TxId(2), &specs()).is_err());
    // T1 and T3 are legal in both orders.
    for s in [&s1, &s2] {
        assert!(tx_legal_in(s, TxId(1), &specs()).is_ok());
        assert!(tx_legal_in(s, TxId(3), &specs()).is_ok());
    }
}

/// E2 — Figure 2: H5 is opaque, with the paper's witness S = T2 · T1 · T3.
#[test]
fn e2_figure2_h5_is_opaque_with_paper_witness() {
    let h5 = paper::h5();
    assert!(is_well_formed(&h5));
    // The real-time facts of Section 5.3: Complete(H5) = {H5} and
    // ≺_H5 = {(T2, T3)}.
    assert_eq!(complete_histories(&h5).len(), 1);
    let rt = RealTimeOrder::of(&h5);
    assert_eq!(rt.pairs(), vec![(TxId(2), TxId(3))]);

    let report = is_opaque(&h5, &specs()).unwrap();
    assert!(report.opaque);
    let w = report.witness.unwrap();
    assert_eq!(w.tx_order(), vec![TxId(2), TxId(1), TxId(3)]);

    // Materialize S and verify it is everything Definition 1 demands.
    let s = witness_history(&h5, &w);
    assert!(s.is_sequential());
    assert!(preserves_real_time(&h5, &s));
    assert!(opacity_tm::model::all_txs_legal(&s, &specs()).is_ok());
}

/// E3 — history H4 (Section 5.2): the dual semantics of a commit-pending
/// transaction. T3 sees T2's write, T1 does not — and H4 is opaque, but
/// only by treating T2 as committed and ordering T1 before it.
#[test]
fn e3_h4_commit_pending_dual_semantics() {
    let h4 = paper::h4();
    let report = is_opaque(&h4, &specs()).unwrap();
    assert!(report.opaque);
    let w = report.witness.unwrap();
    assert_eq!(w.placement_of(TxId(2)), Some(Placement::Committed));
    let order = w.tx_order();
    let pos = |t: u32| order.iter().position(|&x| x == TxId(t)).unwrap();
    assert!(pos(1) < pos(2) && pos(2) < pos(3));

    // The variant where T1 also reads y = 5 is NOT opaque ("T1 would
    // observe an inconsistent state (x = 0 and y = 5)").
    use opacity_tm::model::HistoryBuilder;
    let bad = HistoryBuilder::new()
        .read(1, "x", 0)
        .write(2, "x", 5)
        .write(2, "y", 5)
        .try_commit(2)
        .read(3, "y", 5)
        .read(1, "y", 5)
        .build();
    assert!(!is_opaque(&bad, &specs()).unwrap().opaque);
}

/// E4 — history H3 and its completions (Section 4): T1 commit-pending, T2
/// live; in every completion T1 resolves either way and T2 is forcefully
/// aborted. H3 is opaque only by committing T1 (T2 read its write).
#[test]
fn e4_h3_completions() {
    let h3 = paper::h3();
    let cs = complete_histories(&h3);
    assert_eq!(cs.len(), 2);
    for c in &cs {
        assert!(c.is_complete());
        assert_eq!(c.status(TxId(2)), TxStatus::ForcefullyAborted);
    }
    let report = is_opaque(&h3, &specs()).unwrap();
    assert!(report.opaque);
    assert_eq!(
        report.witness.unwrap().placement_of(TxId(1)),
        Some(Placement::Committed)
    );
}

/// H2 is the sequential equivalent of H1 (Section 4's equivalence example).
#[test]
fn h2_equivalent_to_h1_and_sequential() {
    let h1 = paper::h1();
    let h2 = paper::h2();
    assert!(h1.equivalent(&h2));
    assert!(!h1.is_sequential());
    assert!(h2.is_sequential());
    assert!(preserves_real_time(&h1, &h2));
}

/// Section 5.2's subtle claim: "the set of all opaque histories is not
/// prefix-closed". A live transaction's `tryC` can turn a non-opaque
/// history opaque — a commit-pending transaction may be placed as
/// committed, while a merely-live one must be aborted in every completion.
#[test]
fn e16_opacity_is_not_prefix_closed() {
    use opacity_tm::model::{Event, HistoryBuilder};
    // T1 (live, NOT commit-pending) wrote x = 1; committed T2 read it.
    let prefix = HistoryBuilder::new()
        .write(1, "x", 1)
        .read(2, "x", 1)
        .try_commit(2)
        .commit(2)
        .build();
    assert!(
        !is_opaque(&prefix, &specs()).unwrap().opaque,
        "live non-commit-pending T1 must be aborted in every completion, \
         so T2's read is a dirty read"
    );
    // Appending T1's tryC makes it commit-pending — now a completion may
    // commit it, and the full history is opaque.
    let mut full = prefix.clone();
    full.push(Event::TryCommit(TxId(1)));
    let report = is_opaque(&full, &specs()).unwrap();
    assert!(
        report.opaque,
        "the extension is opaque though its prefix is not"
    );
    assert_eq!(
        report.witness.unwrap().placement_of(TxId(1)),
        Some(Placement::Committed)
    );
    // This is exactly why a TM must keep EVERY prefix opaque at generation
    // time (the monitor's job): the prefix above corresponds to a moment
    // at which the TM had already leaked an uncommitted value.
}

/// All five paper histories pass well-formedness and the checkers agree
/// between the definitional and the graph-based procedures.
#[test]
fn definitional_and_graph_checkers_agree_on_all_paper_histories() {
    for h in [
        paper::h1(),
        paper::h2(),
        paper::h3(),
        paper::h4(),
        paper::h5(),
    ] {
        let d = is_opaque(&h, &specs()).unwrap().opaque;
        let g = decide_via_graph(&h, &specs(), 8).unwrap().opaque();
        assert_eq!(d, g, "checkers disagree on {h}");
    }
}
