//! Byte-stability gate for the serve daemon's replay engine.
//!
//! `tests/fixtures/serve_smoke.frames.jsonl` is a committed `tm-serve/v1`
//! client-frame stream (8 interleaved sessions of generated histories) and
//! `serve_smoke.expected.jsonl` the exact server-frame bytes its replay must
//! produce under a constrained global memo budget. CI's `serve-smoke` job
//! replays the fixture through the `tmcheck serve` binary and diffs against
//! the expected file; this test is the same gate in-process, so a drift in
//! the wire format or the verdict stream fails locally before it fails in CI.
//!
//! To regenerate both files after an *intentional* protocol change:
//!
//! ```text
//! SERVE_SMOKE_REGEN=1 cargo test --test serve_smoke
//! ```

use opacity_tm::serve::{render_client_frame, replay, ClientFrame, ServeConfig, EST_ENTRY_BYTES};

/// Sessions in the fixture fleet.
const SESSIONS: usize = 8;

/// The constrained global memo budget the fixture replays under: 4 estimated
/// entries per session, far below the per-session floor, so the governor's
/// apportionment path is exercised on every open and close.
fn fixture_budget() -> u64 {
    SESSIONS as u64 * 4 * EST_ENTRY_BYTES
}

/// The committed client-frame stream: 8 sessions opened up front, their
/// generated histories fed round-robin one event at a time, then closed in
/// id order and the daemon shut down.
fn fixture_frames() -> String {
    let histories: Vec<(String, tm_model::History)> = (0..SESSIONS)
        .map(|i| {
            let config = tm_harness::randhist::GenConfig::default();
            let h = tm_harness::randhist::random_history(&config, 4200 + i as u64);
            (format!("smoke{i:02}"), h)
        })
        .collect();
    let mut lines = Vec::new();
    for (id, _) in &histories {
        lines.push(render_client_frame(&ClientFrame::Open {
            session: id.clone(),
        }));
    }
    let max_len = histories.iter().map(|(_, h)| h.len()).max().unwrap_or(0);
    for round in 0..max_len {
        for (id, h) in &histories {
            if let Some(e) = h.events().get(round) {
                lines.push(render_client_frame(&ClientFrame::Feed {
                    session: id.clone(),
                    event: e.clone(),
                    seq: None,
                }));
            }
        }
    }
    for (id, _) in &histories {
        lines.push(render_client_frame(&ClientFrame::Close {
            session: id.clone(),
        }));
    }
    lines.push(render_client_frame(&ClientFrame::Shutdown));
    let mut text = lines.join("\n");
    text.push('\n');
    text
}

fn fixture_path(name: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn replay_fixture(frames: &str) -> (String, i32) {
    let config = ServeConfig {
        memo_budget_bytes: Some(fixture_budget()),
        ..ServeConfig::default()
    };
    let mut out = Vec::new();
    let code = replay(config, frames, &mut out);
    (
        String::from_utf8(out).expect("server frames are UTF-8"),
        code,
    )
}

#[test]
fn the_committed_fixture_replays_byte_for_byte() {
    let frames = fixture_frames();
    let (output, code) = replay_fixture(&frames);
    assert_eq!(code, 0, "the fixture fleet has no poisoned sessions");

    if std::env::var_os("SERVE_SMOKE_REGEN").is_some() {
        std::fs::create_dir_all(fixture_path("")).unwrap();
        std::fs::write(fixture_path("serve_smoke.frames.jsonl"), &frames).unwrap();
        std::fs::write(fixture_path("serve_smoke.expected.jsonl"), &output).unwrap();
        return;
    }

    let committed_frames = std::fs::read_to_string(fixture_path("serve_smoke.frames.jsonl"))
        .expect(
            "missing fixture; regenerate with SERVE_SMOKE_REGEN=1 cargo test --test serve_smoke",
        );
    assert_eq!(
        committed_frames, frames,
        "the generated client-frame stream drifted from the committed fixture; \
         regenerate with SERVE_SMOKE_REGEN=1 if the change is intentional"
    );
    let committed_expected = std::fs::read_to_string(fixture_path("serve_smoke.expected.jsonl"))
        .expect(
            "missing fixture; regenerate with SERVE_SMOKE_REGEN=1 cargo test --test serve_smoke",
        );
    assert_eq!(
        committed_expected, output,
        "replaying the committed fixture no longer reproduces the committed \
         server frames byte-for-byte; regenerate with SERVE_SMOKE_REGEN=1 if \
         the change is intentional"
    );
}

#[test]
fn the_expected_frames_carry_one_verdict_per_fed_event() {
    let committed_frames = std::fs::read_to_string(fixture_path("serve_smoke.frames.jsonl"))
        .expect("missing fixture; regenerate with SERVE_SMOKE_REGEN=1");
    let committed_expected = std::fs::read_to_string(fixture_path("serve_smoke.expected.jsonl"))
        .expect("missing fixture; regenerate with SERVE_SMOKE_REGEN=1");
    let feeds = committed_frames
        .lines()
        .filter(|l| l.contains("\"frame\":\"feed\""))
        .count();
    let verdicts = committed_expected
        .lines()
        .filter(|l| l.contains("\"frame\":\"verdict\""))
        .count();
    assert_eq!(verdicts, feeds, "replay answers every feed with a verdict");
    // Replay flow-controls its reader instead of bouncing frames, so the
    // expected stream is busy-free — that is what makes it byte-stable.
    assert!(!committed_expected.contains("\"frame\":\"busy\""));
    let closed = committed_expected
        .lines()
        .filter(|l| l.contains("\"frame\":\"closed\""))
        .count();
    assert_eq!(closed, SESSIONS);
}
