//! Experiment E10: the Section 6.2 progressiveness remark, validated
//! behaviourally.
//!
//! "TL2 is not progressive: it may forcefully abort a transaction Ti that
//! conflicts with a concurrent transaction Tk, even if Ti invokes a
//! conflicting operation after Tk commits." DSTM, by contrast, aborts only
//! on live conflicts. The same crafted schedule is run on both.

use opacity_tm::harness::{execute, random_schedule, Program, TxScript};
use opacity_tm::opacity::criteria::check_progressive;
use opacity_tm::stm::{DstmStm, MvStm, NonOpaqueStm, Stm, Tl2Stm, VisibleStm};

/// The discriminating schedule: T1 reads r0; T2 writes r1 and commits;
/// T1 then reads r1 — a conflict (shared object r1) whose other party is
/// already committed when T1 first touches it.
fn discriminating_program() -> Program {
    Program::new(vec![
        TxScript::new().read(0).read(1),
        TxScript::new().write(1, 5),
    ])
}

const SCHEDULE: &[usize] = &[
    0, // T1 reads r0
    1, 1, // T2 writes r1 and commits
    0, // T1 reads r1  <-- T2 is already committed here
    0, // T1 commits
];

#[test]
fn tl2_aborts_without_live_conflict() {
    let stm = Tl2Stm::new(2);
    let out = execute(&stm, &discriminating_program(), SCHEDULE);
    // T1 is forcefully aborted although its conflicting operation came
    // after T2's commit: TL2 is not progressive.
    assert!(!out.txs[0].committed);
    assert_eq!(out.txs[0].reads, vec![0], "the read of r1 never returns");
    assert!(out.txs[1].committed);
}

#[test]
fn dstm_commits_in_the_same_schedule() {
    let stm = DstmStm::new(2);
    let out = execute(&stm, &discriminating_program(), SCHEDULE);
    // No object of T1's read set changed; progressive DSTM lets it run.
    assert!(out.txs[0].committed, "progressive TM must not abort T1");
    assert_eq!(out.txs[0].reads, vec![0, 5]);
    assert!(out.txs[1].committed);
}

#[test]
fn visible_commits_in_the_same_schedule() {
    let stm = VisibleStm::new(2);
    let out = execute(&stm, &discriminating_program(), SCHEDULE);
    assert!(out.txs[0].committed);
    assert_eq!(out.txs[0].reads, vec![0, 5]);
}

#[test]
fn mvstm_commits_reading_its_snapshot() {
    let stm = MvStm::new(2);
    let out = execute(&stm, &discriminating_program(), SCHEDULE);
    // Multi-version: T1 reads the r1 of its start snapshot (0), and being
    // read-only it always commits.
    assert!(out.txs[0].committed);
    assert_eq!(out.txs[0].reads, vec![0, 0]);
}

#[test]
fn nonopaque_commits_in_the_same_schedule() {
    let stm = NonOpaqueStm::new(2);
    let out = execute(&stm, &discriminating_program(), SCHEDULE);
    assert!(out.txs[0].committed);
    assert_eq!(out.txs[0].reads, vec![0, 5]);
}

/// DSTM does abort on *live* conflicts — progressiveness permits exactly
/// that.
#[test]
fn dstm_aborts_only_on_live_conflicts() {
    let program = Program::new(vec![
        TxScript::new().read(0).read(1),
        TxScript::new().write(0, 5), // overlaps T1's read set this time
    ]);
    let stm = DstmStm::new(2);
    // T1 reads r0; T2 writes r0 (conflict while T1 live) and commits; T1's
    // next read detects the invalidation.
    let out = execute(&stm, &program, &[0, 1, 1, 0, 0]);
    assert!(
        !out.txs[0].committed,
        "read-set invalidation is a real conflict"
    );
    assert!(out.txs[1].committed);
}

/// The formal Section 6.1 checker on the *recorded histories*: TL2's
/// discriminating-schedule history contains an unjustified forced abort;
/// DSTM's does not.
#[test]
fn formal_progressiveness_checker_on_recorded_histories() {
    let tl2 = Tl2Stm::new(2);
    execute(&tl2, &discriminating_program(), SCHEDULE);
    let r = check_progressive(&tl2.recorder().history());
    assert!(
        !r.progressive(),
        "TL2's forced abort has no justifying live conflict: {:?}",
        r.violations
    );

    let dstm = DstmStm::new(2);
    execute(&dstm, &discriminating_program(), SCHEDULE);
    let r = check_progressive(&dstm.recorder().history());
    assert!(r.progressive());
}

/// DSTM stays progressive across many random interleavings of an
/// adversarial program: every forced abort in every recorded history is
/// justified by a live conflict.
#[test]
fn dstm_progressive_across_random_interleavings() {
    let program = Program::new(vec![
        TxScript::new().read(0).read(1).read(2),
        TxScript::new().write(0, 5).write(2, 5),
        TxScript::new().write(1, 7).read(2),
    ]);
    for seed in 0..60 {
        let stm = DstmStm::new(3);
        let sched = random_schedule(&program, seed);
        execute(&stm, &program, &sched);
        let r = check_progressive(&stm.recorder().history());
        assert!(
            r.progressive(),
            "seed {seed}: unjustified forced abort {:?}\n{}",
            r.violations,
            stm.recorder().history()
        );
    }
}
