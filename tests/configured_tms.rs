//! End-to-end exercise of the configurable TM construction API through the
//! facade crate: `StmConfig`-built TMs with pluggable version clocks, the
//! `TmRegistry`'s fallible spec lookup, and recorded histories under every
//! clock scheme judged by the real opacity checker.

use opacity_tm::model::SpecRegistry;
use opacity_tm::opacity::opacity::is_opaque;
use opacity_tm::stm::{
    run_tx, try_run_tx, Aborted, ClockScheme, ContentionManager, Livelock, RetryPolicy, Stm,
    StmConfig, Tl2Stm, TmRegistry,
};

/// Recorded histories of a configured TL2 stay opaque under every clock
/// scheme — the redesign's behaviour-preservation claim, checked by the
/// actual Definition-1 decision procedure.
#[test]
fn recorded_histories_are_opaque_under_every_clock_scheme() {
    let specs = SpecRegistry::registers();
    let reg = TmRegistry::suite();
    for base in ["tl2", "mvstm"] {
        for scheme in ClockScheme::SWEEP {
            let spec = format!("{base}+{scheme}");
            let stm = reg.build(&spec, 3).expect("clocked spec");
            run_tx(stm.as_ref(), 0, |tx| {
                tx.write(0, 1)?;
                tx.write(1, 2)
            });
            run_tx(stm.as_ref(), 1, |tx| {
                let a = tx.read(0)?;
                tx.write(2, a + 10)
            });
            let ((a, b), _) = run_tx(stm.as_ref(), 0, |tx| Ok((tx.read(1)?, tx.read(2)?)));
            assert_eq!((a, b), (2, 11), "{spec}");
            let h = stm.recorder().history();
            assert!(opacity_tm::model::is_well_formed(&h), "{spec}: {h}");
            let report = is_opaque(&h, &specs).expect("registers");
            assert!(report.opaque, "{spec}: recorded history must stay opaque");
        }
    }
}

/// The full configuration surface drives one TM end to end: initial
/// values, a non-default clock and contention manager, recording off, and
/// a typed `Livelock` from the bounded retry policy.
#[test]
fn full_config_surface_through_the_facade() {
    let cfg = StmConfig::new(2)
        .clock(ClockScheme::Sharded(4))
        .contention_manager(ContentionManager::Greedy)
        .initial_values(vec![40, 2])
        .recording(false)
        .retry(RetryPolicy::bounded(5).with_backoff(2, 16));
    let stm = Tl2Stm::with_config(&cfg);
    let (sum, _) = run_tx(&stm, 0, |tx| Ok(tx.read(0)? + tx.read(1)?));
    assert_eq!(sum, 42, "initial values must be visible");
    assert!(stm.recorder().is_empty(), "recording off allocates nothing");

    // A body that never succeeds exhausts the 5-attempt cap as a typed
    // error instead of a panic.
    let out = try_run_tx(&stm, 0, |_tx| -> Result<(), Aborted> { Err(Aborted) });
    assert_eq!(out.unwrap_err(), Livelock { attempts: 5 });
}

/// Registry lookups are fallible end-to-end: a typo yields the menu of
/// valid names, not a panic, through the facade.
#[test]
fn registry_lookup_failures_list_the_suite() {
    let reg = TmRegistry::suite();
    let err = reg
        .build("tl2x+sharded:4", 2)
        .err()
        .expect("typo is an error");
    let msg = err.to_string();
    for name in reg.names() {
        assert!(msg.contains(name), "menu missing {name}: {msg}");
    }
}
