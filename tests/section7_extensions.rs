//! Section 7 ("Concluding Remarks") extensions, end-to-end:
//! non-transactional operations as single-op committed transactions, and
//! nested transactions (closed and open) flattened into the flat model.

use opacity_tm::model::{
    flatten, HistoryBuilder, NestingInfo, NestingMode, NonTxWrapper, SpecRegistry, TxId,
};
use opacity_tm::opacity::opacity::is_opaque;

fn specs() -> SpecRegistry {
    SpecRegistry::registers()
}

// ---------------------------------------------------------------------------
// Non-transactional operations
// ---------------------------------------------------------------------------

/// A non-transactional read of committed state is opaque under the
/// single-op-transaction encapsulation.
#[test]
fn nontx_read_of_committed_state_is_opaque() {
    let mut h = HistoryBuilder::new().write(1, "x", 3).commit_ok(1).build();
    let mut nt = NonTxWrapper::for_history(&h);
    nt.read(&mut h, "x", 3);
    assert!(is_opaque(&h, &specs()).unwrap().opaque);
}

/// The encapsulation *detects races*: a non-transactional read observing a
/// live transaction's buffered write violates opacity — exactly the
/// "race conditions between transactional and non-transactional code" the
/// paper's model is designed to disallow.
#[test]
fn nontx_dirty_read_violates_opacity() {
    let mut h = HistoryBuilder::new().write(1, "x", 3).build(); // T1 live
    let mut nt = NonTxWrapper::for_history(&h);
    nt.read(&mut h, "x", 3); // observes the uncommitted write
                             // T1 eventually aborts.
    h.push(opacity_tm::model::Event::TryAbort(TxId(1)));
    h.push(opacity_tm::model::Event::Abort(TxId(1)));
    assert!(!is_opaque(&h, &specs()).unwrap().opaque);
}

/// Non-transactional writes interleaved with transactions serialize like
/// any other committed transaction.
#[test]
fn nontx_write_serializes_with_transactions() {
    let mut h = HistoryBuilder::new().read(1, "x", 0).build();
    let mut nt = NonTxWrapper::for_history(&h);
    nt.write(&mut h, "x", 9);
    let h = {
        let mut h = h;
        // T1 continues: it read x=0 before the non-transactional write, so
        // it must serialize before it; reading y=0 keeps that possible.
        h.push(opacity_tm::model::Event::Inv {
            tx: TxId(1),
            obj: "y".into(),
            op: opacity_tm::model::OpName::Read,
            args: vec![],
        });
        h.push(opacity_tm::model::Event::Ret {
            tx: TxId(1),
            obj: "y".into(),
            op: opacity_tm::model::OpName::Read,
            val: opacity_tm::model::Value::int(0),
        });
        h.push(opacity_tm::model::Event::TryCommit(TxId(1)));
        h.push(opacity_tm::model::Event::Commit(TxId(1)));
        h
    };
    assert!(is_opaque(&h, &specs()).unwrap().opaque);
}

// ---------------------------------------------------------------------------
// Nested transactions
// ---------------------------------------------------------------------------

/// Closed nesting: a committed child merges into the parent, and the merged
/// flat history is opaque.
#[test]
fn closed_nested_commit_is_opaque_after_flattening() {
    let h = HistoryBuilder::new()
        .write(1, "x", 1)
        .read(10, "x", 1) // child observes the parent's write
        .write(10, "y", 2)
        .commit_ok(10)
        .commit_ok(1)
        .read(2, "y", 2)
        .commit_ok(2)
        .build();
    let n = NestingInfo::new().child(10, 1, NestingMode::Closed);
    let flat = flatten(&h, &n);
    assert!(is_opaque(&flat, &specs()).unwrap().opaque, "{flat}");
}

/// An aborted closed child that observed its parent's writes is legal
/// thanks to the parent-context splice — but a child that observed a value
/// from nowhere is still caught.
#[test]
fn aborted_closed_child_legality() {
    let good = HistoryBuilder::new()
        .write(1, "x", 1)
        .read(20, "x", 1)
        .try_abort(20)
        .abort(20)
        .commit_ok(1)
        .build();
    let n = NestingInfo::new().child(20, 1, NestingMode::Closed);
    let flat = flatten(&good, &n);
    assert!(is_opaque(&flat, &specs()).unwrap().opaque, "{flat}");

    let bad = HistoryBuilder::new()
        .write(1, "x", 1)
        .read(20, "x", 77) // the child hallucinates a value
        .try_abort(20)
        .abort(20)
        .commit_ok(1)
        .build();
    let flat = flatten(&bad, &n);
    assert!(!is_opaque(&flat, &specs()).unwrap().opaque, "{flat}");
}

/// Open nesting: the child's commit is immediately visible to others and
/// survives the parent's abort.
#[test]
fn open_nested_commit_survives_parent_abort() {
    let h = HistoryBuilder::new()
        .read(1, "x", 0)
        .write(30, "y", 5)
        .commit_ok(30)
        .read(2, "y", 5)
        .commit_ok(2)
        .try_abort(1)
        .abort(1)
        .build();
    let n = NestingInfo::new().child(30, 1, NestingMode::Open);
    let flat = flatten(&h, &n);
    assert!(is_opaque(&flat, &specs()).unwrap().opaque, "{flat}");
    assert!(flat.status(TxId(30)).is_committed());
    assert!(flat.status(TxId(2)).is_committed());
}

/// Under *closed* nesting the same scenario is an opacity violation: T2
/// read a value that, after the parent aborts, was never committed.
#[test]
fn closed_child_of_aborted_parent_must_not_leak() {
    let h = HistoryBuilder::new()
        .read(1, "x", 0)
        .write(30, "y", 5)
        .commit_ok(30) // closed commit: internal to the (doomed) parent
        .read(2, "y", 5) // T2 saw it anyway — that's the bug
        .commit_ok(2)
        .try_abort(1)
        .abort(1)
        .build();
    let n = NestingInfo::new().child(30, 1, NestingMode::Closed);
    let flat = flatten(&h, &n);
    // After merging, the write of y=5 belongs to the *aborted* parent —
    // T2's read of it is a dirty read.
    assert!(!is_opaque(&flat, &specs()).unwrap().opaque, "{flat}");
}
