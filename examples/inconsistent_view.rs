//! The Section 2 hazard, live: why opacity matters even for transactions
//! that are doomed to abort.
//!
//! A programmer maintains the invariant `y == x²` (and `x ≥ 2`). Every
//! transaction preserves it. Under a TM that merely guarantees
//! serializability of *committed* transactions, a live transaction can
//! still observe `x` from one committed state and `y` from another — and a
//! computation of `1/(y - x)` divides by zero before the TM ever gets a
//! chance to abort the transaction. An opaque TM structurally prevents the
//! inconsistent view.
//!
//! ```sh
//! cargo run --example inconsistent_view
//! ```

use opacity_tm::harness::{execute, Program, TxScript};
use opacity_tm::model::SpecRegistry;
use opacity_tm::opacity::opacity::is_opaque;
use opacity_tm::stm::{run_tx, NonOpaqueStm, Stm, Tl2Stm};

/// The x register is r0, y is r1. Invariant: r1 == r0².
const X: usize = 0;
const Y: usize = 1;

/// The updater of the paper: `x := 2; y := 4; commit` (from x=4, y=16).
fn updater() -> TxScript {
    TxScript::new().write(X, 2).write(Y, 4)
}

/// The victim: reads x, then y, then computes 1/(y - x).
fn victim() -> TxScript {
    TxScript::new().read(X).read(Y)
}

/// Runs the paper's interleaving on `stm`: the victim reads x, the updater
/// runs to completion, the victim reads y. Returns the victim's view.
fn run_scenario(stm: &dyn Stm) -> Option<(i64, i64)> {
    // Initial state of the paper: x = 4, y = 16.
    run_tx(stm, 0, |tx| {
        tx.write(X, 4)?;
        tx.write(Y, 16)
    });
    let program = Program::new(vec![victim(), updater()]);
    // victim reads x | updater writes x, writes y, commits | victim reads y.
    let out = execute(stm, &program, &[0, 1, 1, 1, 0, 0]);
    let reads = &out.txs[0].reads;
    if reads.len() == 2 {
        Some((reads[0], reads[1]))
    } else {
        None // the TM aborted the victim before it saw anything dangerous
    }
}

fn main() {
    let specs = SpecRegistry::registers();

    println!("== commit-time-validation TM (serializable, NOT opaque) ==");
    let stm = NonOpaqueStm::new(2);
    match run_scenario(&stm) {
        Some((x, y)) => {
            println!("victim observed x = {x}, y = {y}");
            if y != x * x {
                println!("INVARIANT VIOLATED in live code: y != x²");
            }
            if y - x == 0 {
                println!("computing 1/(y-x) would DIVIDE BY ZERO  ⚠");
            }
        }
        None => println!("victim aborted before observing anything"),
    }
    let h = stm.recorder().history();
    println!(
        "recorded history opaque? {}\n",
        is_opaque(&h, &specs).unwrap().opaque
    );

    println!("== TL2 (opaque) ==");
    let stm = Tl2Stm::new(2);
    match run_scenario(&stm) {
        Some((x, y)) => {
            println!("victim observed x = {x}, y = {y}");
            assert_eq!(y, x * x, "opaque TM never shows a fractured snapshot");
            println!("invariant y == x² holds; 1/(y-x) = 1/{}", y - x);
        }
        None => {
            println!("victim aborted at its read of y — the opaque TM refused");
            println!("to return a value that would have fractured the snapshot");
        }
    }
    let h = stm.recorder().history();
    let opaque = is_opaque(&h, &specs).unwrap().opaque;
    println!("recorded history opaque? {opaque}");
    assert!(opaque);
}
