//! Quickstart: run transactions on a TM, record the history, check opacity.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use opacity_tm::model::SpecRegistry;
use opacity_tm::opacity::criteria::classify;
use opacity_tm::opacity::opacity::is_opaque;
use opacity_tm::stm::{run_tx, Stm, Tl2Stm};

fn main() {
    // A TL2 transactional memory over four shared registers r0..r3.
    let tm = Tl2Stm::new(4);

    // Thread 0 initializes two registers transactionally.
    run_tx(&tm, 0, |tx| {
        tx.write(0, 10)?;
        tx.write(1, 20)
    });

    // Two more transactions: a transfer and a read-only audit.
    run_tx(&tm, 1, |tx| {
        let a = tx.read(0)?;
        let b = tx.read(1)?;
        tx.write(0, a - 5)?;
        tx.write(1, b + 5)
    });
    let (sum, stats) = run_tx(&tm, 0, |tx| {
        let a = tx.read(0)?;
        let b = tx.read(1)?;
        Ok(a + b)
    });
    println!(
        "audit: r0 + r1 = {sum} (committed after {} aborts)",
        stats.aborts
    );
    assert_eq!(sum, 30);

    // Every event the TM produced is a model-level history…
    let history = tm.recorder().history();
    println!(
        "\nrecorded history ({} events):\n{history}\n",
        history.len()
    );

    // …which the opacity checker can pass judgement on.
    let specs = SpecRegistry::registers();
    let report = is_opaque(&history, &specs).expect("well-formed history");
    println!("opaque?                 {}", report.opaque);
    println!("serialization witness:  {}", report.describe_witness());
    println!("search nodes explored:  {}", report.stats.nodes);

    // The full criteria profile (Section 3 of the paper + opacity):
    let profile = classify(&history, &specs).expect("checkable history");
    println!("\ncriteria profile: {profile:#?}");

    assert!(report.opaque, "TL2 must produce opaque histories");
}
