//! Mutation hunt: the opacity checker as a TM protocol bug-finder.
//!
//! Plants each mutation of `tm_stm::mutants` into a TL2-style protocol,
//! sweeps two adversarial two-thread programs through *every* interleaving
//! with the deterministic explorer, judges every recorded history with the
//! opacity and serializability checkers, and prints the detection matrix.
//!
//! The punchline is the middle row: a protocol that skips read validation
//! keeps all its *committed* transactions serializable, so a test oracle
//! based on the classical database criterion reports nothing — only the
//! opacity checker sees the corruption, which is the paper's core argument
//! for a TM-specific correctness condition.
//!
//! ```sh
//! cargo run --example mutation_hunt
//! ```

use opacity_tm::harness::{all_schedules, execute, inversions, shrink_schedule, Program, TxScript};
use opacity_tm::model::SpecRegistry;
use opacity_tm::opacity::criteria::is_serializable;
use opacity_tm::opacity::opacity::is_opaque;
use opacity_tm::stm::{run_tx, MutantStm, Mutation, Stm};

fn probes() -> Vec<(&'static str, Program)> {
    vec![
        (
            "reader-vs-writer",
            Program::new(vec![
                TxScript::new().read(0).read(1),
                TxScript::new().write(0, 7).write(1, 7),
            ]),
        ),
        (
            "rmw-vs-rmw",
            Program::new(vec![
                TxScript::new().read(0).write(0, 100),
                TxScript::new().read(0).write(0, 200),
            ]),
        ),
    ]
}

fn main() {
    let specs = SpecRegistry::registers();
    println!("== Mutation hunt: every interleaving of every probe, both oracles ==\n");
    println!(
        "{:<30} {:>18} {:>16} {:>12}",
        "mutant", "schedules swept", "non-opaque", "non-serializable"
    );
    println!("{}", "-".repeat(80));

    for mutation in Mutation::all() {
        let mut swept = 0usize;
        let mut non_opaque = 0usize;
        let mut non_ser = 0usize;
        for (_, program) in probes() {
            for sched in all_schedules(&program.action_counts(), 200) {
                let stm = MutantStm::new(2, mutation);
                run_tx(&stm, 0, |tx| {
                    tx.write(0, 1)?;
                    tx.write(1, 1)
                });
                execute(&stm, &program, &sched);
                let h = stm.recorder().history();
                swept += 1;
                if !is_opaque(&h, &specs).unwrap().opaque {
                    non_opaque += 1;
                }
                if !is_serializable(&h, &specs).unwrap() {
                    non_ser += 1;
                }
            }
        }
        println!(
            "{:<30} {:>18} {:>16} {:>12}",
            mutation.name(),
            swept,
            non_opaque,
            non_ser
        );
        match mutation {
            Mutation::None => {
                assert_eq!((non_opaque, non_ser), (0, 0), "baseline must stay clean")
            }
            Mutation::SkipReadValidation => {
                assert!(non_opaque > 0, "opacity oracle must fire");
                assert_eq!(non_ser, 0, "serializability oracle must stay silent");
            }
            Mutation::SkipCommitValidation => {
                assert!(non_ser > 0, "lost updates break serializability");
            }
            // The seeded *concurrency* bugs live below the operation level:
            // op-granular interleavings cannot split a clock tick, so both
            // oracles stay silent here — that blind spot is exactly what the
            // step-level explorer (`tmcheck race`) exists to close.
            Mutation::DroppedResidue | Mutation::UnlicensedFastPath => {
                assert_eq!((non_opaque, non_ser), (0, 0), "invisible at op level")
            }
        }
    }

    // ---- minimize one violation to its essential race --------------------
    println!("\n== shrinking a violating schedule (skip-read-validation) ==");
    let p = probes().remove(0).1;
    let violates = |sched: &[usize]| {
        let stm = MutantStm::new(2, Mutation::SkipReadValidation);
        run_tx(&stm, 0, |tx| {
            tx.write(0, 1)?;
            tx.write(1, 1)
        });
        execute(&stm, &p, sched);
        !is_opaque(&stm.recorder().history(), &specs).unwrap().opaque
    };
    let bad = all_schedules(&p.action_counts(), 200)
        .into_iter()
        .rev()
        .find(|s| violates(s))
        .expect("the sweep above found violations");
    let shrunk = shrink_schedule(&bad, violates);
    println!("found    : {bad:?}   ({} inversions)", inversions(&bad));
    println!(
        "minimized: {shrunk:?}   ({} inversions)",
        inversions(&shrunk)
    );
    println!("the surviving out-of-order pairs are the essential race:");
    println!("the writer's commit must land between the victim's two reads.");

    println!("\nreading the matrix:");
    println!("  mutant-none                  — clean on both oracles (sanity baseline);");
    println!("  mutant-skip-read-validation  — caught ONLY by the opacity checker:");
    println!("                                 committed transactions stay serializable");
    println!("                                 while live ones observe corrupt states;");
    println!("  mutant-skip-commit-validation — lost updates, visible to both oracles.");
    println!("\nA test suite with only the database-classical oracle ships the middle bug.");
}
