//! The full tool pipeline: run a TM → record the history → serialize it to
//! both interchange formats → parse it back → judge it with every checker.
//!
//! This is the workflow the `tmcheck` CLI automates for external traces;
//! here it is spelled out against a live run so each stage is visible. The
//! same bytes written by `to_json` can be checked offline on another
//! machine with `tmcheck check trace.json`.
//!
//! ```sh
//! cargo run --example trace_pipeline
//! ```

use opacity_tm::model::SpecRegistry;
use opacity_tm::opacity::criteria::{is_serializable, snapshot_isolated};
use opacity_tm::opacity::graphcheck::decide_via_graph;
use opacity_tm::opacity::opacity::is_opaque;
use opacity_tm::stm::{run_tx, NonOpaqueStm, Stm, Tl2Stm};
use opacity_tm::trace::{from_json, from_text, to_json_pretty, to_text};

fn record_workload(stm: &dyn Stm) {
    // A tiny producer/consumer: T1 initializes, T2 reads and derives.
    run_tx(stm, 0, |tx| {
        tx.write(0, 4)?;
        tx.write(1, 16)
    });
    run_tx(stm, 1, |tx| {
        let x = tx.read(0)?;
        let y = tx.read(1)?;
        // A distinctive derived value (graph deciders need unique writes).
        tx.write(2, x * 100 + y)
    });
}

fn main() {
    let specs = SpecRegistry::registers();

    println!("== Stage 1: record a live TL2 execution ==");
    let stm = Tl2Stm::new(3);
    record_workload(&stm);
    let h = stm.recorder().history();
    println!("recorded {} events:\n{h}\n", h.len());

    println!("== Stage 2: serialize ==");
    let text = to_text(&h);
    let json = to_json_pretty(&h);
    println!("text format ({} bytes):\n{text}", text.len());
    println!("json format: {} bytes (pretty-printed)\n", json.len());

    println!("== Stage 3: parse back, verify lossless ==");
    let from_t = from_text(&text).expect("text parses");
    let from_j = from_json(&json).expect("json parses");
    assert_eq!(from_t.events(), h.events());
    assert_eq!(from_j.events(), h.events());
    println!("both formats round-tripped {} events exactly\n", h.len());

    println!("== Stage 4: judge the parsed trace ==");
    let opaque = is_opaque(&from_j, &specs).unwrap().opaque;
    let graph = decide_via_graph(&from_j, &specs, 8).unwrap().opaque();
    println!("  opacity (Definition 1) : {opaque}");
    println!("  opacity (Theorem 2)    : {graph}  (independent graph decider)");
    println!(
        "  serializable           : {}",
        is_serializable(&from_j, &specs).unwrap()
    );
    println!(
        "  snapshot-isolated      : {}",
        snapshot_isolated(&from_j, &specs).unwrap()
    );
    assert!(opaque && graph);

    println!("\n== Same pipeline on a non-opaque execution ==");
    // Drive the commit-time validator into the §2 fracture deterministically.
    let bad = NonOpaqueStm::new(3);
    run_tx(&bad, 0, |tx| {
        tx.write(0, 4)?;
        tx.write(1, 16)
    });
    let mut victim = bad.begin(1);
    let _ = victim.read(0).unwrap();
    run_tx(&bad, 0, |tx| {
        tx.write(0, 2)?;
        tx.write(1, 4)
    });
    let _ = victim.read(1).unwrap(); // fractured
    let _ = victim.commit();
    let h2 = bad.recorder().history();
    let roundtripped = from_text(&to_text(&h2)).unwrap();
    let verdict = is_opaque(&roundtripped, &specs).unwrap().opaque;
    println!(
        "recorded {} events; opaque after round-trip: {verdict}",
        h2.len()
    );
    assert!(!verdict, "the fracture must survive serialization");
    println!("\nthe violation is preserved byte-for-byte — traces are evidence.");
}
