//! The Section 3.4 counter: rich object semantics admit more concurrency
//! under opacity than any read/write encoding — and more than the
//! recoverability family tolerates.
//!
//! ```sh
//! cargo run --example counter_semantics
//! ```

use std::sync::Arc;

use opacity_tm::model::objects::Counter;
use opacity_tm::model::{HistoryBuilder, SpecRegistry};
use opacity_tm::opacity::criteria::ScheduleProperties;
use opacity_tm::opacity::opacity::is_opaque;

fn main() {
    let k = 6u32;

    // k transactions concurrently increment a shared counter c — without
    // reading it — then all commit.
    let mut b = HistoryBuilder::new();
    for t in 1..=k {
        b = b.inc(t, "c");
    }
    for t in 1..=k {
        b = b.commit_ok(t);
    }
    // A later reader observes the total.
    let h = b.get(99, "c", k as i64).commit_ok(99).build();

    println!("history: {h}\n");

    // 1. With counter semantics, the history is opaque: increments commute.
    let counter_specs = SpecRegistry::new().with("c", Arc::new(Counter));
    let report = is_opaque(&h, &counter_specs).expect("counter history");
    println!("opaque with counter semantics?   {}", report.opaque);
    println!("  witness: {}", report.describe_witness());
    assert!(report.opaque);

    // 2. Recoverability in its strong form rejects the same concurrency:
    //    every transaction "modifies the same shared object".
    let sched = ScheduleProperties::of(&h);
    println!("\nschedule-level verdicts on the very same history:");
    println!("  recoverable (reads-from based): {}", sched.recoverable);
    println!("  strict:                         {}", sched.strict);
    println!("  rigorous:                       {}", sched.rigorous);
    assert!(!sched.strict);

    // 3. The read/write encoding loses: concurrent read-then-write
    //    increments cannot all commit.
    let mut b = HistoryBuilder::new();
    for t in 1..=3u32 {
        b = b.read(t, "c", 0);
    }
    for t in 1..=3u32 {
        b = b.write(t, "c", 1);
    }
    for t in 1..=3u32 {
        b = b.commit_ok(t);
    }
    let rw = b.build();
    let rw_report = is_opaque(&rw, &SpecRegistry::registers()).expect("register history");
    println!(
        "\nread/write encoding, all commit: opaque? {}",
        rw_report.opaque
    );
    assert!(!rw_report.opaque);
    println!("  (among transactions that read the same value, only one can commit)");

    println!("\nConclusion (Section 3.4): a correctness criterion for TM must take");
    println!("object semantics as an input parameter — opacity does.");
}
