//! Closed nesting, live (Section 7 / E22): partial abort as a programming
//! model.
//!
//! An order-processing transaction reserves stock, then *tentatively*
//! applies a promotional discount inside a nested transaction. If the
//! promotion turns out not to apply, only the nested scope is rolled back —
//! the stock reservation survives and the order completes at full price.
//! With flat transactions the failed promotion would have torn down the
//! whole order.
//!
//! The recorded execution (parent and child under separate transaction
//! ids) is flattened with the paper's Section 7 translation and checked
//! for opacity at the end.
//!
//! ```sh
//! cargo run --example nested_transactions
//! ```

use opacity_tm::model::flatten;
use opacity_tm::model::SpecRegistry;
use opacity_tm::opacity::opacity::is_opaque;
use opacity_tm::stm::astm::AstmStm;
use opacity_tm::stm::{run_tx, Stm, Tx};

const STOCK: usize = 0; // units on hand
const TOTAL: usize = 1; // order total (cents)
const PROMO_BUDGET: usize = 2; // remaining promotional budget

fn main() {
    let stm = AstmStm::new(3);
    // Seed: 5 units in stock, promo budget of 300 cents.
    run_tx(&stm, 0, |tx| {
        tx.write(STOCK, 5)?;
        tx.write(PROMO_BUDGET, 300)
    });

    println!("== order 1: promotion applies ==");
    place_order(&stm, 1000, 250);
    println!("== order 2: promotion exceeds the remaining budget ==");
    place_order(&stm, 1000, 200);

    let ((stock, budget), _) = run_tx(&stm, 0, |tx| Ok((tx.read(STOCK)?, tx.read(PROMO_BUDGET)?)));
    println!("\nfinal stock = {stock}, promo budget = {budget}");
    assert_eq!(stock, 3, "both orders reserved stock");
    assert_eq!(budget, 50, "only the first promotion was applied");

    // Judge the whole recorded execution through the Section 7 translation.
    let flat = flatten(&stm.recorder().history(), &stm.nesting_info());
    let opaque = is_opaque(&flat, &SpecRegistry::registers()).unwrap().opaque;
    println!("flattened history ({} events) opaque: {opaque}", flat.len());
    assert!(opaque);
}

/// One order: reserve stock (parent), then try the discount (child).
fn place_order(stm: &AstmStm, price: i64, discount: i64) {
    let mut t = stm.begin_astm(0);
    let stock = t.read(STOCK).unwrap();
    assert!(stock > 0, "demo keeps stock positive");
    t.write(STOCK, stock - 1).unwrap();
    t.write(TOTAL, price).unwrap();
    println!("  reserved 1 unit ({} left), total = {price}", stock - 1);

    // Tentative step: apply the discount inside a nested transaction.
    t.begin_nested();
    let budget = t.read(PROMO_BUDGET).unwrap();
    if budget >= discount {
        t.write(PROMO_BUDGET, budget - discount).unwrap();
        t.write(TOTAL, price - discount).unwrap();
        t.commit_nested();
        println!(
            "  promotion applied: -{discount} (budget left {})",
            budget - discount
        );
    } else {
        // Partial abort: the discount vanishes, the reservation stays.
        t.abort_nested();
        println!("  promotion refused (budget {budget} < {discount}); full price");
    }

    let total = t.read(TOTAL).unwrap();
    println!("  charged {total}");
    Box::new(t).commit().unwrap();
}
