//! A transactional sorted linked-list set — the dynamic data structure that
//! motivated DSTM — built on the register STMs of this repository.
//!
//! Layout over the TM's registers: keys `0..N` map to nodes; register `i`
//! holds the `next` pointer of node `i` (node `k + 1` represents key `k`,
//! node `0` is the head sentinel). `-1` marks end-of-list, `-2` a detached
//! node. Every operation is one transaction traversing the list through
//! transactional reads, so a concurrent writer anywhere along the path
//! forces (on an opaque TM) a consistent outcome.
//!
//! The demo hammers the set from several threads on every opaque TM in the
//! suite and validates the *global* invariant
//! `final size == successful inserts − successful removes`, plus structural
//! soundness (sorted, duplicate-free). A small recorded run is fed to the
//! opacity checker.
//!
//! ```sh
//! cargo run --release --example transactional_list
//! ```

use opacity_tm::model::SpecRegistry;
use opacity_tm::opacity::opacity::is_opaque;
use opacity_tm::stm::{run_tx, Aborted, Stm, Tx};

const NIL: i64 = -1;
const DETACHED: i64 = -2;

/// Number of distinct keys; the TM needs `KEYS + 1` registers.
const KEYS: usize = 16;

fn node_of(key: usize) -> usize {
    key + 1
}

fn key_of(node: i64) -> usize {
    node as usize - 1
}

/// Finds the insertion point for `key`: returns `(prev_node, cur_node)`.
fn locate(tx: &mut dyn Tx, key: usize) -> Result<(usize, i64), Aborted> {
    let mut prev = 0usize; // head sentinel
    let mut cur = tx.read(0)?;
    while cur != NIL && key_of(cur) < key {
        prev = cur as usize;
        cur = tx.read(cur as usize)?;
    }
    Ok((prev, cur))
}

fn insert(tx: &mut dyn Tx, key: usize) -> Result<bool, Aborted> {
    let (prev, cur) = locate(tx, key)?;
    if cur != NIL && key_of(cur) == key {
        return Ok(false); // already present
    }
    tx.write(node_of(key), cur)?;
    tx.write(prev, node_of(key) as i64)?;
    Ok(true)
}

fn remove(tx: &mut dyn Tx, key: usize) -> Result<bool, Aborted> {
    let (prev, cur) = locate(tx, key)?;
    if cur == NIL || key_of(cur) != key {
        return Ok(false);
    }
    let succ = tx.read(cur as usize)?;
    tx.write(prev, succ)?;
    tx.write(cur as usize, DETACHED)?;
    Ok(true)
}

fn contains(tx: &mut dyn Tx, key: usize) -> Result<bool, Aborted> {
    let (_, cur) = locate(tx, key)?;
    Ok(cur != NIL && key_of(cur) == key)
}

/// Reads the whole list (sorted key sequence) in one transaction.
fn snapshot(tx: &mut dyn Tx) -> Result<Vec<usize>, Aborted> {
    let mut out = Vec::new();
    let mut cur = tx.read(0)?;
    while cur != NIL {
        out.push(key_of(cur));
        cur = tx.read(cur as usize)?;
    }
    Ok(out)
}

fn init_list(stm: &dyn Stm) {
    run_tx(stm, 0, |tx| {
        tx.write(0, NIL)?;
        for k in 0..KEYS {
            tx.write(node_of(k), DETACHED)?;
        }
        Ok(())
    });
}

fn main() {
    let specs = SpecRegistry::registers();

    println!("== concurrency torture: 3 threads × 120 ops per TM ==");
    for stm in opacity_tm::stm::opaque_stms(KEYS + 1) {
        let stm = stm.as_ref();
        stm.recorder().set_enabled(false);
        init_list(stm);
        let net = std::sync::atomic::AtomicI64::new(0);
        std::thread::scope(|scope| {
            for t in 0..3 {
                let net = &net;
                scope.spawn(move || {
                    let mut local = 0i64;
                    for i in 0..120 {
                        let key = (i * 7 + t * 5) % KEYS;
                        if i % 3 == 0 {
                            let (removed, _) = run_tx(stm, t, |tx| remove(tx, key));
                            if removed {
                                local -= 1;
                            }
                        } else {
                            let (inserted, _) = run_tx(stm, t, |tx| insert(tx, key));
                            if inserted {
                                local += 1;
                            }
                        }
                    }
                    net.fetch_add(local, std::sync::atomic::Ordering::Relaxed);
                });
            }
        });
        let (final_list, _) = run_tx(stm, 0, |tx| snapshot(tx));
        // Structural invariants.
        assert!(
            final_list.windows(2).all(|w| w[0] < w[1]),
            "sorted, duplicate-free"
        );
        // Global counting invariant (serializability of committed txs).
        let net = net.load(std::sync::atomic::Ordering::Relaxed);
        assert_eq!(
            final_list.len() as i64,
            net,
            "{}: size must equal net successful inserts",
            stm.name()
        );
        println!(
            "  {:<8} final set (|S| = {:>2} = net inserts): {:?}",
            stm.name(),
            final_list.len(),
            final_list
        );
    }

    println!("\n== recorded mini-run on TL2, checked for opacity ==");
    let stm = opacity_tm::stm::Tl2Stm::new(KEYS + 1);
    init_list(&stm); // recorded too, so every read value has a writer
    run_tx(&stm, 0, |tx| insert(tx, 3));
    run_tx(&stm, 0, |tx| insert(tx, 1));
    run_tx(&stm, 1, |tx| contains(tx, 3));
    run_tx(&stm, 1, |tx| remove(tx, 3));
    let (list, _) = run_tx(&stm, 0, |tx| snapshot(tx));
    println!("  final list: {list:?}");
    assert_eq!(list, vec![1]);
    let h = stm.recorder().history();
    let report = is_opaque(&h, &specs).expect("well-formed recorded history");
    println!(
        "  recorded history ({} events) opaque? {}",
        h.len(),
        report.opaque
    );
    assert!(report.opaque);
    println!("\nAll invariants held on every opaque TM.");
}
