//! Write skew under snapshot isolation — the safety gap of the SI-STM
//! trade-off system the paper names in Section 1.
//!
//! Two bank accounts share an overdraft agreement: each may go negative as
//! long as the *sum* stays non-negative. Every transaction re-checks the
//! invariant before withdrawing — and under snapshot isolation the invariant
//! still breaks: two concurrent withdrawals each read the common snapshot
//! `(50, 50)`, each concludes "the other account covers me", and both
//! commit because their write sets are disjoint. No sequential execution
//! allows the final state `(-50, -50)`.
//!
//! The demo runs the same program against the snapshot-isolation TM (skew
//! commits), the multi-version opaque TM (one withdrawal aborts), and shows
//! the recorded SI history judged by the whole criteria lattice: it is
//! snapshot-isolated but neither serializable nor opaque — the
//! "deliberately weaker criterion" slot the paper reserves for such systems.
//!
//! ```sh
//! cargo run --example si_write_skew
//! ```

use opacity_tm::model::SpecRegistry;
use opacity_tm::opacity::criteria::{is_serializable, snapshot_isolated};
use opacity_tm::opacity::opacity::is_opaque;
use opacity_tm::stm::{MvStm, SiStm, Stm, Tx, TxResult};

const A: usize = 0;
const B: usize = 1;

/// Withdraws `amount` from `from`, permitted iff the *total* stays ≥ 0.
/// Returns whether the guard allowed the withdrawal.
fn withdraw(tx: &mut dyn Tx, from: usize, amount: i64) -> TxResult<bool> {
    let a = tx.read(A)?;
    let b = tx.read(B)?;
    if a + b - amount < 0 {
        return Ok(false); // overdraft refused, nothing written
    }
    let balance = if from == A { a } else { b };
    tx.write(from, balance - amount)?;
    Ok(true)
}

fn fund(stm: &dyn Stm) {
    opacity_tm::stm::run_tx(stm, 0, |tx| {
        tx.write(A, 50)?;
        tx.write(B, 50)
    });
}

/// Runs the two concurrent withdrawals fully overlapped. Returns
/// (t1 committed, t2 committed, final a, final b).
fn race(stm: &dyn Stm) -> (bool, bool, i64, i64) {
    fund(stm);
    let mut t1 = stm.begin(0);
    let mut t2 = stm.begin(1);
    let ok1 = withdraw(t1.as_mut(), A, 100).unwrap_or(false);
    let ok2 = withdraw(t2.as_mut(), B, 100).unwrap_or(false);
    assert!(ok1 && ok2, "both guards pass on the common snapshot");
    let c1 = t1.commit().is_ok();
    let c2 = t2.commit().is_ok();
    let (sum, _) = opacity_tm::stm::run_tx(stm, 0, |tx| Ok((tx.read(A)?, tx.read(B)?)));
    (c1, c2, sum.0, sum.1)
}

fn main() {
    println!("== Write skew: the anomaly snapshot isolation admits ==\n");
    println!("invariant: balance(A) + balance(B) >= 0, initial (50, 50);");
    println!("two concurrent withdrawals of 100, each guard-checked.\n");

    let si = SiStm::new(2);
    let (c1, c2, a, b) = race(&si);
    println!(
        "sistm  : T1 {}  T2 {}  final = ({a}, {b})  sum = {}",
        v(c1),
        v(c2),
        a + b
    );
    assert!(
        c1 && c2 && a + b < 0,
        "write skew must materialize under SI"
    );
    println!(
        "         → both committed; the invariant is broken: {} < 0\n",
        a + b
    );

    let mv = MvStm::new(2);
    let (c1, c2, a, b) = race(&mv);
    println!(
        "mvstm  : T1 {}  T2 {}  final = ({a}, {b})  sum = {}",
        v(c1),
        v(c2),
        a + b
    );
    assert!(c1 != c2 || (c1 && c2 && a + b >= 0));
    println!("         → the opaque multi-version TM refuses the second commit\n");

    // Judge the recorded SI execution against the criteria lattice.
    let h = si.recorder().history();
    let specs = SpecRegistry::registers();
    println!("recorded sistm history ({} events):", h.len());
    println!(
        "  snapshot-isolated : {}",
        v(snapshot_isolated(&h, &specs).unwrap())
    );
    println!(
        "  serializable      : {}",
        v(is_serializable(&h, &specs).unwrap())
    );
    println!(
        "  opaque            : {}",
        v(is_opaque(&h, &specs).unwrap().opaque)
    );
    println!();
    println!("SI-STM delivers exactly its advertised (weaker) criterion — the");
    println!("paper's point that opacity is the reference from which such");
    println!("trade-offs should be expressed, not silently assumed away.");

    assert!(snapshot_isolated(&h, &specs).unwrap());
    assert!(!is_serializable(&h, &specs).unwrap());
    assert!(!is_opaque(&h, &specs).unwrap().opaque);
}

fn v(b: bool) -> &'static str {
    if b {
        "yes"
    } else {
        "NO "
    }
}
