//! The Theorem-3 experiment (E8/E9): the Ω(k) lower bound, measured.
//!
//! Sweeps `k` and prints, for every TM in the design space, the exact
//! base-object step counts of the paper's proof-sketch scenario — the
//! numbers recorded in EXPERIMENTS.md.
//!
//! ```sh
//! cargo run --release --example lower_bound
//! ```

use opacity_tm::harness::complexity::{fraction_scenario, paper_scenario, solo_scan, sweep};
use opacity_tm::harness::stats::{ascii_chart, Table};

fn main() {
    let ks = [4, 8, 16, 32, 64, 128, 256, 512];
    let stm_order = [
        "dstm",
        "astm",
        "tl2",
        "visible",
        "tpl",
        "mvstm",
        "sistm",
        "nonopaque",
    ];

    println!("== E8: paper scenario — steps of T1's final read vs k ==");
    println!("(T1 reads k/2 registers; T2 writes the other half and commits;");
    println!(" T1 reads one of T2's registers — Section 6.2's proof sketch)\n");
    let rows = sweep(&ks, true, paper_scenario);
    let mut table = Table::new(&[
        "stm",
        "k",
        "last-read",
        "max-read",
        "mean-read",
        "total-reads",
        "T1",
    ]);
    for &k in &ks {
        for name in stm_order {
            if let Some(r) = rows.iter().find(|r| r.k == k && r.stm == name) {
                table.row(&[
                    r.stm.to_string(),
                    r.k.to_string(),
                    r.last_read_steps.to_string(),
                    r.max_read_steps.to_string(),
                    format!("{:.1}", r.mean_read_steps),
                    r.total_read_steps.to_string(),
                    if r.t1_committed {
                        "commit".into()
                    } else {
                        "abort".into()
                    },
                ]);
            }
        }
    }
    println!("{}", table.render());

    // Figure: last-read steps vs k per TM.
    let series: Vec<(&str, Vec<f64>)> = stm_order
        .iter()
        .map(|name| {
            let ys: Vec<f64> = ks
                .iter()
                .map(|&k| {
                    rows.iter()
                        .find(|r| r.k == k && r.stm == *name)
                        .map(|r| r.last_read_steps as f64)
                        .unwrap_or(0.0)
                })
                .collect();
            (*name, ys)
        })
        .collect();
    println!(
        "{}",
        ascii_chart("Figure E8: steps of the final read vs k", &ks, &series, 16)
    );

    println!("== E8b: read-set ablation — final-read steps vs |read set| at k = 256 ==");
    println!("(the Ω(k) cost is mechanistically one step per read-set ENTRY;");
    println!(" k itself is inert — sweeping m at fixed k isolates that)\n");
    {
        use opacity_tm::stm::{AstmStm, DstmStm, Stm, Tl2Stm};
        let k = 256;
        let ms = [8usize, 16, 32, 64, 128, 255];
        let mut table = Table::new(&["stm", "m=8", "m=16", "m=32", "m=64", "m=128", "m=255"]);
        type StmMaker = Box<dyn Fn() -> Box<dyn Stm>>;
        let factories: Vec<(&str, StmMaker)> = vec![
            (
                "dstm",
                Box::new(move || Box::new(DstmStm::new(k)) as Box<dyn Stm>),
            ),
            (
                "astm",
                Box::new(move || Box::new(AstmStm::new(k)) as Box<dyn Stm>),
            ),
            (
                "tl2",
                Box::new(move || Box::new(Tl2Stm::new(k)) as Box<dyn Stm>),
            ),
        ];
        for (name, make) in &factories {
            let mut row = vec![name.to_string()];
            for &m in &ms {
                let stm = make();
                stm.recorder().set_enabled(false);
                row.push(
                    fraction_scenario(stm.as_ref(), k, m)
                        .last_read_steps
                        .to_string(),
                );
            }
            table.row(&row);
        }
        println!("{}", table.render());
    }

    println!("== E9: solo scan — per-transaction read-step totals vs k ==");
    println!("(one transaction reads all k registers, alone: DSTM pays Θ(k²))\n");
    let rows = sweep(&ks, false, solo_scan);
    let mut table = Table::new(&["stm", "k", "max-read", "total-reads"]);
    for &k in &ks {
        for stm in [
            "glock",
            "dstm",
            "astm",
            "tl2",
            "visible",
            "tpl",
            "mvstm",
            "sistm",
            "nonopaque",
        ] {
            if let Some(r) = rows.iter().find(|r| r.k == k && r.stm == stm) {
                table.row(&[
                    r.stm.to_string(),
                    r.k.to_string(),
                    r.max_read_steps.to_string(),
                    r.total_read_steps.to_string(),
                ]);
            }
        }
    }
    println!("{}", table.render());

    // Verdict summary.
    let d512 = rows.iter().find(|r| r.stm == "dstm" && r.k == 512).unwrap();
    let t512 = rows.iter().find(|r| r.stm == "tl2" && r.k == 512).unwrap();
    println!(
        "At k = 512: DSTM max-read = {} steps (Θ(k)); TL2 max-read = {} steps (O(1)).",
        d512.max_read_steps, t512.max_read_steps
    );
    println!("The Ω(k) lower bound binds exactly the progressive + single-version +");
    println!("invisible-reads + opaque corner — and only that corner.");
}
