//! The conformance matrix: every TM in the suite (and every planted-bug
//! mutant) against every contract the checkers can enforce.
//!
//! This is the paper's opening claim made operational — "without such
//! formalization, it is impossible to check the correctness of these
//! implementations". With the formalization executable, checking them is
//! one function call per TM; a downstream implementor of the `Stm` trait
//! runs the same battery (`tm_harness::check_conformance`) on their own
//! system and compares rows.
//!
//! ```sh
//! cargo run --release --example conformance_matrix
//! ```

use opacity_tm::harness::{check_conformance, conformance_header};
use opacity_tm::stm::{MutantStm, Mutation, Stm};

fn main() {
    println!("== TM conformance matrix ==");
    println!("(every row: ~64 interleavings × 3 probe programs, every recorded");
    println!(" history judged by the opacity / serializability / SI checkers,");
    println!(" plus the §6.2 progressiveness probe and a threaded counter)\n");
    println!("{}", conformance_header());
    println!("{}", "-".repeat(82));

    for stm in opacity_tm::stm::all_stms(2) {
        let name = stm.name();
        drop(stm);
        let factory = move |k: usize| -> Box<dyn Stm> {
            opacity_tm::stm::all_stms(k)
                .into_iter()
                .find(|s| s.name() == name)
                .expect("stable names")
        };
        println!("{}", check_conformance(&factory).row());
    }
    for m in Mutation::all() {
        if m == Mutation::None {
            continue; // the baseline behaves like TL2; mutants are the story
        }
        let report = check_conformance(&|k| Box::new(MutantStm::new(k, m)));
        println!("{}", report.row());
        if !report.violations.is_empty() {
            println!("    e.g. {}", report.violations[0]);
        }
    }

    println!("\nreading the matrix:");
    println!("  every shipping TM keeps its advertised contracts — including the two");
    println!("  *deliberately* non-opaque ones, which fail exactly the rows they trade");
    println!("  away (sistm: opacity+serializability, nonopaque: opacity+SI) and keep");
    println!("  the rest. TL2's NO under 'progressive' is §6.2's observation, not a");
    println!("  bug. The mutants fail rows they *claim* to keep — that is what a");
    println!("  correctness condition is for.");
}
