//! The online opacity monitor: checking every prefix of a TM's history as
//! it is generated (Section 5.2: "at each time the history of all events
//! issued so far must be opaque").
//!
//! Feeds the monitor two histories event by event — the paper's H5 (opaque
//! throughout) and H1 (violated at T2's fatal read) — then shows the
//! violation explanation machinery localizing the problem.
//!
//! ```sh
//! cargo run --example online_monitor
//! ```

use opacity_tm::model::builder::paper;
use opacity_tm::model::SpecRegistry;
use opacity_tm::opacity::explain::explain_violation;
use opacity_tm::opacity::incremental::{MonitorVerdict, OpacityMonitor};

fn main() {
    let specs = SpecRegistry::registers();

    println!("== monitoring H5 (Figure 2) ==");
    let mut monitor = OpacityMonitor::new(&specs);
    for (i, e) in paper::h5().events().iter().enumerate() {
        let verdict = monitor.feed(e.clone()).unwrap();
        let tag = match verdict {
            MonitorVerdict::OpaqueChecked => "ok (checked)",
            MonitorVerdict::OpaqueBySkip => "ok (invocation, skipped)",
            MonitorVerdict::Violated { .. } => "VIOLATED",
        };
        println!("  #{i:>2} {e:<28} {tag}");
    }
    let (run, skipped) = monitor.check_counts();
    println!("checks run: {run}, skipped by the invocation argument: {skipped}\n");

    println!("== monitoring H1 (Figure 1) ==");
    let h1 = paper::h1();
    let mut monitor = OpacityMonitor::new(&specs);
    for (i, e) in h1.events().iter().enumerate() {
        let verdict = monitor.feed(e.clone()).unwrap();
        if let MonitorVerdict::Violated { at } = verdict {
            println!("  #{i:>2} {e:<28} VIOLATED (first at event #{at})");
            break;
        }
        println!("  #{i:>2} {e:<28} ok");
    }

    println!("\n== explanation ==");
    let explanation = explain_violation(&h1, &specs)
        .unwrap()
        .expect("H1 is not opaque");
    print!("{explanation}");
    println!("\n(T2 read x from T1's committed state but y from T3's — no");
    println!("serialization can place T2 consistently; the paper's Figure 1.)");
}
