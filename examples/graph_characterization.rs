//! The Section 5.4 graph characterization on the paper's figures.
//!
//! Builds the opacity graphs of Figure 1 (H1, not opaque — every candidate
//! order is cyclic) and Figure 2 (H5, opaque — the witness order yields an
//! acyclic graph), and prints them in Graphviz DOT format.
//!
//! ```sh
//! cargo run --example graph_characterization
//! ```

use opacity_tm::model::builder::paper;
use opacity_tm::model::SpecRegistry;
use opacity_tm::model::TxId;
use opacity_tm::opacity::graph::{build_opg, with_initial_tx, INIT_TX};
use opacity_tm::opacity::graphcheck::{construct_graph_witness, decide_via_graph};
use std::collections::HashSet;

fn main() {
    let specs = SpecRegistry::registers();

    println!("== Figure 2 (history H5): opaque ==");
    let h5 = paper::h5();
    let witness = construct_graph_witness(&h5, &specs)
        .expect("register history")
        .expect("H5 is opaque");
    println!(
        "constructed witness: ≪ = {:?}, V = {:?}",
        witness.order, witness.visible
    );
    let h5_full = with_initial_tx(&h5, &specs);
    let g = build_opg(&h5_full, &witness.order, &witness.visible);
    println!(
        "well-formed: {}, acyclic: {}",
        g.is_well_formed(),
        g.is_acyclic()
    );
    println!("\n{}", g.to_dot());

    println!("== Figure 1 (history H1): NOT opaque ==");
    let h1 = paper::h1();
    let verdict = decide_via_graph(&h1, &specs, 8).expect("register history");
    println!(
        "consistent: {} (the values are fine — the ordering is not)",
        verdict.consistent
    );
    println!(
        "witness found: {} ({} (≪, V) candidates examined)",
        verdict.witness.is_some(),
        verdict.candidates_checked
    );
    assert!(verdict.witness.is_none());

    // Show one representative cyclic graph: the order T0,T1,T2,T3.
    let h1_full = with_initial_tx(&h1, &specs);
    let order = vec![INIT_TX, TxId(1), TxId(2), TxId(3)];
    let g = build_opg(&h1_full, &order, &HashSet::new());
    println!("\nOPG under ≪ = T0,T1,T2,T3 (cyclic — T2 reads y from T3 but x from T1):");
    println!("{}", g.to_dot());
    assert!(!g.is_acyclic() || !g.is_well_formed());

    println!("Render either graph with: dot -Tpng -o opg.png <file>.dot");
}
