//! # opacity-tm
//!
//! A comprehensive reproduction of **Guerraoui & Kapałka, “On the
//! Correctness of Transactional Memory”, PPoPP 2008** — the paper that
//! introduced *opacity*, the standard correctness condition for
//! transactional memory.
//!
//! This facade crate re-exports the library member crates:
//!
//! * [`model`] (`tm-model`) — the Section 4 formal model: events, histories,
//!   real-time order, completions, sequential specifications, legality;
//! * [`opacity`] (`tm-opacity`) — Definition 1 as a decision procedure, the
//!   Section 5.4 graph characterization (Theorem 2), the Section 3
//!   comparison criteria, and an online monitor;
//! * [`stm`] (`tm-stm`) — nine instrumented STM implementations spanning
//!   the design space of Theorem 3 (DSTM, ASTM, TL2, visible reads,
//!   multi-version, commit-time-only, snapshot isolation, two-phase
//!   locking, global lock), plus deliberately buggy mutants for
//!   checker-as-bug-finder experiments;
//! * [`harness`] (`tm-harness`) — deterministic interleaving exploration,
//!   random history generation, workloads, and the Ω(k) lower-bound
//!   experiments;
//! * [`trace`] (`tm-trace`) — JSON and text interchange formats for
//!   histories and Chrome-trace span emission (the `tmcheck` CLI in
//!   `tm-cli` builds on them);
//! * [`obs`] (`tm-obs`) — dependency-free metrics registry (counters,
//!   gauges, log2 latency histograms) and span tracing behind a
//!   zero-cost-when-disabled handle, threaded through the search, monitor,
//!   and STM layers (`tmcheck --metrics-out/--trace-out`);
//! * [`serve`] (`tm-serve`) — the streaming opacity-monitoring daemon:
//!   a line-delimited `tm-serve/v1` wire protocol, a session table
//!   multiplexing thousands of resumable check sessions under fair
//!   round-robin scheduling and a global memo-byte budget, and stdin /
//!   replay / unix-socket transports (`tmcheck serve`).
//!
//! ## Quickstart
//!
//! ```
//! use opacity_tm::model::SpecRegistry;
//! use opacity_tm::opacity::opacity::is_opaque;
//! use opacity_tm::stm::{Stm, Tl2Stm, run_tx};
//!
//! // Run two transactions on TL2 and verify the recorded history is opaque.
//! let tm = Tl2Stm::new(4);
//! run_tx(&tm, 0, |tx| { tx.write(0, 1)?; tx.write(1, 2) });
//! run_tx(&tm, 1, |tx| { let a = tx.read(0)?; tx.write(2, a + 10) });
//!
//! let history = tm.recorder().history();
//! let report = is_opaque(&history, &SpecRegistry::registers()).unwrap();
//! assert!(report.opaque);
//! ```
//!
//! See `README.md` for the architecture overview, `DESIGN.md` for the system
//! inventory and per-experiment index, and `EXPERIMENTS.md` for
//! paper-vs-measured results.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use tm_harness as harness;
pub use tm_model as model;
pub use tm_obs as obs;
pub use tm_opacity as opacity;
pub use tm_serve as serve;
pub use tm_stm as stm;
pub use tm_trace as trace;
