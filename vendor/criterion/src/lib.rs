//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! a minimal harness with the same API shape as the parts of criterion the
//! benches use: [`Criterion::bench_function`], [`Criterion::benchmark_group`]
//! with `sample_size` / `throughput` / `bench_with_input` / `finish`,
//! [`BenchmarkId`], [`Throughput`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Measurement is simple wall-clock timing: each benchmark is warmed up and
//! then run in batches until a fixed time budget is spent; the per-iteration
//! mean is printed as `name ... time: [x ns/iter]`. There are no plots, no
//! statistics, and no saved baselines — the point is that `cargo bench`
//! compiles and produces indicative numbers offline. Swap this path
//! dependency for the real crate when a registry is available.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::sync::OnceLock;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-benchmark time budget once warmed up.
const MEASURE_BUDGET: Duration = Duration::from_millis(200);
/// Warm-up budget.
const WARMUP_BUDGET: Duration = Duration::from_millis(50);

/// Real criterion ≥ 0.5 accepts `--quick` (reduced sampling) on the bench
/// binary's command line; honor the same flag here by shrinking the time
/// budgets, so `cargo bench -- --quick` means the same thing against the
/// stub as against the real crate.
fn quick_mode() -> bool {
    static QUICK: OnceLock<bool> = OnceLock::new();
    *QUICK.get_or_init(|| std::env::args().any(|a| a == "--quick"))
}

fn measure_budget() -> Duration {
    if quick_mode() {
        MEASURE_BUDGET / 10
    } else {
        MEASURE_BUDGET
    }
}

fn warmup_budget() -> Duration {
    if quick_mode() {
        WARMUP_BUDGET / 10
    } else {
        WARMUP_BUDGET
    }
}

/// The benchmark driver handed to the functions in a
/// [`criterion_group!`].
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<I, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into_benchmark_label(), &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count (accepted and ignored by this stub).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Declares the group's throughput unit (accepted and ignored by this
    /// stub).
    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    /// Runs a benchmark inside the group.
    pub fn bench_function<I, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        F: FnMut(&mut Bencher),
    {
        run_one(
            &format!("{}/{}", self.name, id.into_benchmark_label()),
            &mut f,
        );
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I, T, F>(&mut self, id: I, input: &T, mut f: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        T: ?Sized,
        F: FnMut(&mut Bencher, &T),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_label());
        run_one(&label, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Times the closure handed to a benchmark function.
#[derive(Debug, Default)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Measures `f`, called repeatedly until the time budget is spent.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: establish a per-iteration estimate.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < warmup_budget() {
            black_box(f());
            warm_iters += 1;
            if warm_iters >= 1_000_000 {
                break;
            }
        }
        let per_iter = warm_start
            .elapsed()
            .checked_div(warm_iters as u32)
            .unwrap_or_default();

        // Measurement: batches sized so each is ~10% of the budget.
        let budget = measure_budget();
        let batch =
            (budget.as_nanos() / 10 / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64;
        let start = Instant::now();
        let mut iters: u64 = 0;
        while start.elapsed() < budget {
            for _ in 0..batch {
                black_box(f());
            }
            iters += batch;
        }
        self.iters = iters;
        self.elapsed = start.elapsed();
    }

    fn nanos_per_iter(&self) -> f64 {
        if self.iters == 0 {
            return f64::NAN;
        }
        self.elapsed.as_nanos() as f64 / self.iters as f64
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, f: &mut F) {
    let mut bencher = Bencher::default();
    f(&mut bencher);
    let ns = bencher.nanos_per_iter();
    if ns.is_nan() {
        println!("{label:<60} (no measurement: Bencher::iter was not called)");
    } else if ns >= 1_000_000.0 {
        println!("{label:<60} time: [{:.3} ms/iter]", ns / 1_000_000.0);
    } else if ns >= 1_000.0 {
        println!("{label:<60} time: [{:.3} µs/iter]", ns / 1_000.0);
    } else {
        println!("{label:<60} time: [{ns:.1} ns/iter]");
    }
}

/// A benchmark identifier: a function name, a parameter, or both.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter, printed `name/param`.
    pub fn new<S: Into<String>, P: fmt::Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id carrying only a parameter.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Conversion of the various id types accepted by the `bench_*` methods.
pub trait IntoBenchmarkId {
    /// The printable label for the benchmark.
    fn into_benchmark_label(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_label(self) -> String {
        self.label
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_label(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_label(self) -> String {
        self
    }
}

/// The units a group's throughput is expressed in (ignored by this stub).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Declares a benchmark group function calling each listed target.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the `main` entry point running each listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_api_shape_compiles_and_runs() {
        let mut c = Criterion::default();
        c.bench_function("smoke/add", |b| b.iter(|| 1u64 + 1));
        let mut group = c.benchmark_group("smoke");
        group.sample_size(10).throughput(Throughput::Elements(4));
        group.bench_function(BenchmarkId::from_parameter(3), |b| b.iter(|| 3 * 3));
        group.bench_with_input(BenchmarkId::new("square", 4), &4u64, |b, &n| {
            b.iter(|| n * n)
        });
        group.finish();
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("f", 8).into_benchmark_label(), "f/8");
        assert_eq!(BenchmarkId::from_parameter("p").into_benchmark_label(), "p");
    }
}
