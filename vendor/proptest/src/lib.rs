//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! a minimal property-testing engine with the same surface syntax as the
//! parts of proptest it uses:
//!
//! * the [`proptest!`] macro (with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header);
//! * `name in strategy` bindings over integer/float ranges, tuples,
//!   [`Strategy::prop_map`], and [`collection::vec`];
//! * [`prop_assert!`], [`prop_assert_eq!`], and [`prop_assume!`].
//!
//! Differences from real proptest, deliberate for an offline stub: values
//! are drawn from a deterministic per-test RNG (derived from the test
//! name), there is no shrinking, and exhausting the rejection budget ends
//! the test with however many cases were accepted rather than erroring.
//! Swap this path dependency for the real crate when a registry is
//! available; the test sources need no changes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Deterministic generator used to produce test inputs (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x5DEE_CE66_D1CE_4E5B,
        }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns a uniformly distributed `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// A source of test values: the generator-only core of proptest's
/// `Strategy` trait.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy producing a fixed value (proptest's `Just`).
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_strategy_int_range {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let r = u128::from(rng.next_u64()) % span;
                (self.start as i128 + r as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128) as u128 + 1;
                if span > u128::from(u64::MAX) {
                    return rng.next_u64() as $t;
                }
                let r = u128::from(rng.next_u64()) % span;
                (start as i128 + r as i128) as $t
            }
        }
    )*};
}

impl_strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (rng.next_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! impl_strategy_tuple {
    ($(($($s:ident . $idx:tt),+),)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_strategy_tuple! {
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5),
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6),
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7),
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// A number-of-elements specification for [`vec()`].
    pub trait SizeRange {
        /// Draws a length from the specification.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty size range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    impl SizeRange for RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start() <= self.end(), "empty size range");
            self.start() + rng.below((self.end() - self.start() + 1) as u64) as usize
        }
    }

    /// Strategy for vectors of values from `element`, with a length drawn
    /// from `size`.
    pub fn vec<S: Strategy, Z: SizeRange>(element: S, size: Z) -> VecStrategy<S, Z> {
        VecStrategy { element, size }
    }

    /// Strategy returned by [`vec()`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S, Z> {
        element: S,
        size: Z,
    }

    impl<S: Strategy, Z: SizeRange> Strategy for VecStrategy<S, Z> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Runner configuration; only the case count is honoured by this stub.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a single test case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!` and should not be counted.
    Reject(String),
    /// The case failed an assertion.
    Fail(String),
}

impl TestCaseError {
    /// Constructs a failure.
    pub fn fail(message: String) -> Self {
        TestCaseError::Fail(message)
    }

    /// Constructs a rejection.
    pub fn reject(message: String) -> Self {
        TestCaseError::Reject(message)
    }
}

/// Drives the cases of one `proptest!` test function.
#[derive(Debug)]
pub struct TestRunner {
    name: &'static str,
    cases: u32,
    accepted: u32,
    attempts: u32,
    max_attempts: u32,
    seed: u64,
}

impl TestRunner {
    /// Creates a runner for the named test under `config`.
    pub fn new(config: ProptestConfig, name: &'static str) -> Self {
        // FNV-1a over the test name: a stable per-test base seed.
        let mut seed = 0xCBF2_9CE4_8422_2325u64;
        for b in name.bytes() {
            seed ^= u64::from(b);
            seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRunner {
            name,
            cases: config.cases,
            accepted: 0,
            attempts: 0,
            max_attempts: config.cases.saturating_mul(64).saturating_add(256),
            seed,
        }
    }

    /// True while more cases should be attempted.
    pub fn more(&self) -> bool {
        self.accepted < self.cases && self.attempts < self.max_attempts
    }

    /// Returns the RNG for the next attempt.
    pub fn case_rng(&mut self) -> TestRng {
        self.attempts += 1;
        TestRng::new(self.seed.wrapping_add(u64::from(self.attempts)))
    }

    /// Records the outcome of the current attempt; panics on failure.
    pub fn record(&mut self, outcome: Result<(), TestCaseError>) {
        match outcome {
            Ok(()) => self.accepted += 1,
            Err(TestCaseError::Reject(_)) => {}
            Err(TestCaseError::Fail(message)) => panic!(
                "proptest case failed: {} (attempt {}, derived seed {:#x})\n{}",
                self.name, self.attempts, self.seed, message
            ),
        }
    }
}

/// Defines property tests: `proptest! { #[test] fn name(x in strategy) { body } }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($config:expr);
     $($(#[$meta:meta])*
       fn $name:ident($($pat:pat in $strategy:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut runner = $crate::TestRunner::new(config, stringify!($name));
                while runner.more() {
                    let mut case_rng = runner.case_rng();
                    $(let $pat = $crate::Strategy::generate(&($strategy), &mut case_rng);)*
                    let outcome = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    runner.record(outcome);
                }
            }
        )*
    };
}

/// `assert!` for property bodies: failure reports the case instead of
/// panicking mid-case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// `assert_eq!` for property bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}`",
                left, right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}`: {}",
                left,
                right,
                format!($($fmt)+)
            )));
        }
    }};
}

/// Discards the current case when `cond` is false, without failing.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
}

/// The common imports: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assume, proptest, Just, ProptestConfig, Strategy,
        TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples(x in 0u64..100, (a, b) in (1usize..=3, -2i64..2)) {
            prop_assert!(x < 100);
            prop_assert!((1..=3).contains(&a));
            prop_assert!((-2..2).contains(&b));
        }

        #[test]
        fn vec_and_map(v in collection::vec((0u8..2, -5i64..5), 1..40)) {
            prop_assert!(!v.is_empty() && v.len() < 40);
            for (k, x) in v {
                prop_assert!(k < 2, "k = {k}");
                prop_assert!((-5..5).contains(&x));
            }
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u32..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    // A strategy function in the style the workspace uses.
    fn point() -> impl Strategy<Value = (i64, i64)> {
        (0i64..10, 0i64..10).prop_map(|(x, y)| (x, y + 10))
    }

    proptest! {
        #[test]
        fn prop_map_composes(p in point()) {
            prop_assert!((0..10).contains(&p.0));
            prop_assert!((10..20).contains(&p.1));
        }
    }

    #[test]
    fn determinism_per_name() {
        let mut a = crate::TestRunner::new(ProptestConfig::with_cases(4), "t");
        let mut b = crate::TestRunner::new(ProptestConfig::with_cases(4), "t");
        assert_eq!(a.case_rng().next_u64(), b.case_rng().next_u64());
    }
}
