//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this repository has no network access to
//! crates.io, so the workspace vendors a minimal, dependency-free
//! implementation of exactly the `rand 0.8` API surface the code uses:
//!
//! * [`SeedableRng::seed_from_u64`] and [`rngs::StdRng`];
//! * [`Rng::gen_range`] over integer and float ranges, [`Rng::gen_bool`],
//!   and [`Rng::gen_ratio`];
//! * [`seq::SliceRandom::shuffle`] and [`seq::SliceRandom::choose`].
//!
//! The generator is a SplitMix64-seeded xorshift128+, deterministic per
//! seed, which is all the deterministic experiments and property tests
//! require. Swap this path dependency for the real crate when a registry
//! is available; no call sites need to change.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A random number generator seedable from a `u64`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a range by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one uniformly distributed value from `self`.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// The subset of the `rand::Rng` extension trait used by this workspace.
pub trait Rng {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns a uniformly distributed `f64` in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits, the standard conversion.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Samples a value uniformly from `range`.
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        S: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (which must be in `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range: {p}"
        );
        self.next_f64() < p
    }

    /// Returns `true` with probability `numerator / denominator`.
    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool
    where
        Self: Sized,
    {
        assert!(denominator > 0, "gen_ratio denominator must be positive");
        assert!(
            numerator <= denominator,
            "gen_ratio numerator {numerator} exceeds denominator {denominator}"
        );
        (self.next_u64() % u64::from(denominator)) < u64::from(numerator)
    }
}

macro_rules! impl_sample_int {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let r = u128::from(rng.next_u64()) % span;
                (self.start as i128 + r as i128) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                if span > u128::from(u64::MAX) {
                    return rng.next_u64() as $t;
                }
                let r = u128::from(rng.next_u64()) % span;
                (start as i128 + r as i128) as $t
            }
        }
    )*};
}

impl_sample_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

/// Concrete generator implementations.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic stand-in for `rand::rngs::StdRng`: a SplitMix64-seeded
    /// xorshift128+ generator.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s0: u64,
        s1: u64,
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s0 = splitmix64(&mut state);
            let mut s1 = splitmix64(&mut state);
            if s0 == 0 && s1 == 0 {
                s1 = 1; // xorshift must not start from the all-zero state
            }
            StdRng { s0, s1 }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let mut x = self.s0;
            let y = self.s1;
            self.s0 = y;
            x ^= x << 23;
            self.s1 = x ^ y ^ (x >> 17) ^ (y >> 26);
            self.s1.wrapping_add(y)
        }
    }
}

/// Sequence-related random helpers.
pub mod seq {
    use super::Rng;

    /// The subset of `rand::seq::SliceRandom` used by this workspace.
    pub trait SliceRandom {
        /// The element type of the slice.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get((rng.next_u64() % self.len() as u64) as usize)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(0..5usize);
            assert!(v < 5);
            let w = rng.gen_range(1..=10i64);
            assert!((1..=10).contains(&w));
            let f = rng.gen_range(0.0f64..0.5);
            assert!((0.0..0.5).contains(&f));
            let neg = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&neg));
        }
    }

    #[test]
    fn bool_and_ratio_edges() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
            assert!(!rng.gen_ratio(0, 10));
            assert!(rng.gen_ratio(10, 10));
        }
    }

    #[test]
    fn shuffle_is_a_permutation_and_choose_is_member() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..20).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
        let c = v.choose(&mut rng).copied().unwrap();
        assert!(v.contains(&c));
        let empty: Vec<u32> = vec![];
        assert!(empty.choose(&mut rng).is_none());
    }
}
