//! Offline stand-in for the [`parking_lot`](https://crates.io/crates/parking_lot)
//! crate, backed by `std::sync`.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the small part of the API it uses: [`Mutex`] with panic-free (poison
//! recovering) [`Mutex::lock`] / [`Mutex::try_lock`], and the [`MutexGuard`]
//! RAII type. Semantics match `parking_lot` where the workspace relies on
//! them: locking never returns a poison error (a mutex poisoned by a
//! panicking holder is recovered, as `parking_lot` mutexes are simply not
//! poisoned). Swap this path dependency for the real crate when a registry
//! is available.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::TryLockError;

/// A mutual-exclusion primitive, API-compatible with `parking_lot::Mutex`
/// for the operations used in this workspace.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`]; releases the lock on drop.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    ///
    /// Unlike `std`, never returns a poison error: like `parking_lot`,
    /// a panic while holding the lock does not make it unusable.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: self.inner.lock().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: g }),
            Err(TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: e.into_inner(),
            }),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the protected value (no locking
    /// needed: `&mut self` proves exclusive access).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;
    use std::sync::Arc;

    #[test]
    fn lock_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn poison_is_recovered() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the mutex");
        })
        .join();
        // parking_lot semantics: still lockable after a panicking holder.
        assert_eq!(*m.lock(), 0);
    }
}
