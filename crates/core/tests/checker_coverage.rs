//! Broader coverage of the checker surface: criteria aliases, search
//! configuration, the explanation machinery, the monitor under node limits,
//! and graph-decider corners not exercised by the paper histories.

use tm_model::builder::{paper, HistoryBuilder};
use tm_model::{SpecRegistry, TxId};
use tm_opacity::criteria::{
    check_progressive, classify, is_global_atomic, is_one_copy_serializable, is_serializable,
    is_strictly_serializable, is_tx_linearizable,
};
use tm_opacity::explain::explain_violation;
use tm_opacity::graphcheck::{construct_graph_witness, decide_via_graph};
use tm_opacity::incremental::OpacityMonitor;
use tm_opacity::opacity::{is_opaque, is_opaque_with};
use tm_opacity::{SearchConfig, SearchMode};

fn specs() -> SpecRegistry {
    SpecRegistry::registers()
}

#[test]
fn criteria_aliases_agree_with_their_definitions() {
    for h in [paper::h1(), paper::h2(), paper::h4(), paper::h5()] {
        assert_eq!(
            is_global_atomic(&h, &specs()).unwrap(),
            is_serializable(&h, &specs()).unwrap()
        );
        assert_eq!(
            is_one_copy_serializable(&h, &specs()).unwrap(),
            is_serializable(&h, &specs()).unwrap()
        );
        assert_eq!(
            is_tx_linearizable(&h, &specs()).unwrap(),
            is_strictly_serializable(&h, &specs()).unwrap()
        );
    }
}

#[test]
fn classify_profile_is_internally_consistent() {
    for h in [
        paper::h1(),
        paper::h2(),
        paper::h3(),
        paper::h4(),
        paper::h5(),
    ] {
        let p = classify(&h, &specs()).unwrap();
        // opacity ⟹ strict serializability ⟹ serializability.
        if p.opaque {
            assert!(p.strictly_serializable, "{h}");
        }
        if p.strictly_serializable {
            assert!(p.serializable, "{h}");
        }
    }
}

#[test]
fn node_limit_makes_checker_conservative_not_wrong() {
    // With a node limit, a positive verdict is still trustworthy; only
    // "no witness found" may be a false negative. H5 is opaque and small
    // enough that even a modest limit finds the witness.
    let h = paper::h5();
    let tight = is_opaque_with(
        &h,
        &specs(),
        SearchConfig {
            memoize: true,
            node_limit: Some(3),
            ..SearchConfig::default()
        },
    )
    .unwrap();
    let loose = is_opaque_with(
        &h,
        &specs(),
        SearchConfig {
            memoize: true,
            node_limit: Some(10_000),
            ..SearchConfig::default()
        },
    )
    .unwrap();
    assert!(loose.opaque);
    // The tight limit may or may not find it; if it claims opaque, the
    // witness must be real.
    if tight.opaque {
        let w = tight.witness.unwrap();
        let s = tm_opacity::opacity::witness_history(&h, &w);
        assert!(tm_model::all_txs_legal(&s, &specs()).is_ok());
    }
}

#[test]
fn search_modes_on_commit_pending_histories() {
    // A striking asymmetry: the committed-only criteria ERASE the
    // commit-pending writer, leaving T2's read of 1 unjustifiable — so the
    // history is "not serializable" — while opacity's completion semantics
    // can commit the writer and accept the history. Opacity is not simply
    // stronger on every history; it is a different (completion-aware)
    // quantification.
    let h = HistoryBuilder::new()
        .write(1, "x", 1)
        .try_commit(1)
        .read(2, "x", 1)
        .try_commit(2)
        .commit(2)
        .build();
    assert!(!is_serializable(&h, &specs()).unwrap());
    assert!(!is_strictly_serializable(&h, &specs()).unwrap());
    assert!(is_opaque(&h, &specs()).unwrap().opaque);
    // Plain serializability can also hold where opacity fails:
    let h2 = HistoryBuilder::new()
        .write(1, "x", 1)
        .commit_ok(1)
        .read(2, "x", 0) // stale: started after C1
        .commit_ok(2)
        .build();
    assert!(is_serializable(&h2, &specs()).unwrap());
    assert!(!is_opaque(&h2, &specs()).unwrap().opaque);
    let _ = SearchMode::OPACITY; // mode constants are part of the API
}

#[test]
fn explanations_for_various_violations() {
    // Real-time violation (stale read after commit).
    let stale = HistoryBuilder::new()
        .write(1, "x", 1)
        .commit_ok(1)
        .read(2, "x", 0)
        .commit_ok(2)
        .build();
    let ex = explain_violation(&stale, &specs()).unwrap().unwrap();
    assert!(ex.event.contains("ret2(x,read)"));
    assert!(ex.placeable_prefix.contains(&TxId(1)));

    // Dirty read.
    let dirty = HistoryBuilder::new()
        .write(1, "x", 9)
        .read(2, "x", 9)
        .try_commit(2)
        .commit(2)
        .try_abort(1)
        .abort(1)
        .build();
    let ex = explain_violation(&dirty, &specs()).unwrap().unwrap();
    // The violation is visible as soon as T2's read returns the dirty 9
    // (T1 is live non-commit-pending at that point).
    assert!(ex.event.contains("ret2(x,read)"), "{}", ex.event);

    // No explanation for opaque histories.
    assert!(explain_violation(&paper::h4(), &specs()).unwrap().is_none());
}

#[test]
fn monitor_with_custom_config() {
    let specs = specs();
    let mut m = OpacityMonitor::new(&specs).with_config(SearchConfig {
        memoize: true,
        node_limit: Some(100_000),
        ..SearchConfig::default()
    });
    assert_eq!(m.feed_all(&paper::h5()).unwrap(), None);
    assert!(m.last_stats().nodes > 0);
    assert_eq!(m.history().len(), paper::h5().len());
}

#[test]
fn graph_decider_with_multiple_commit_pending() {
    // Two commit-pending writers, one reader of each: both must be in V.
    let h = HistoryBuilder::new()
        .write(1, "x", 1)
        .try_commit(1)
        .write(2, "y", 2)
        .try_commit(2)
        .read(3, "x", 1)
        .read(3, "y", 2)
        .try_commit(3)
        .commit(3)
        .build();
    assert!(is_opaque(&h, &specs()).unwrap().opaque);
    let v = decide_via_graph(&h, &specs(), 6).unwrap();
    assert!(v.opaque());
    let w = v.witness.unwrap();
    assert!(w.visible.contains(&TxId(1)) && w.visible.contains(&TxId(2)));
    // The constructive path agrees.
    let cw = construct_graph_witness(&h, &specs()).unwrap().unwrap();
    assert!(cw.visible.contains(&TxId(1)) && cw.visible.contains(&TxId(2)));
}

#[test]
fn graph_decider_rejects_when_only_bad_visibility_choices_exist() {
    // T3 read x from commit-pending T1, but T1 then ABORTS: no V helps.
    let h = HistoryBuilder::new()
        .write(1, "x", 1)
        .try_commit(1)
        .read(3, "x", 1)
        .try_commit(3)
        .commit(3)
        .abort(1)
        .build();
    assert!(!is_opaque(&h, &specs()).unwrap().opaque);
    assert!(!decide_via_graph(&h, &specs(), 6).unwrap().opaque());
    assert!(construct_graph_witness(&h, &specs()).unwrap().is_none());
}

#[test]
fn progressiveness_on_paper_histories() {
    // H1's forced abort of T2 is justified (T3 conflicted while live):
    // H1's TM may be progressive — its sin is opacity, not progress.
    let r = check_progressive(&paper::h1());
    assert!(r.progressive(), "{:?}", r.violations);
    // H5: T1's forced abort justified by T3 (concurrent, both touch x).
    let r = check_progressive(&paper::h5());
    assert!(r.progressive());
}

#[test]
fn empty_and_single_event_histories() {
    use tm_model::History;
    let empty = History::new();
    assert!(is_opaque(&empty, &specs()).unwrap().opaque);
    assert!(is_serializable(&empty, &specs()).unwrap());
    let single = HistoryBuilder::new().inv_read(1, "x").build();
    assert!(
        is_opaque(&single, &specs()).unwrap().opaque,
        "pending invocation only"
    );
}
