//! Property and battery tests for the parallel, memory-bounded search:
//! the work-stealing check — root splits plus depth-adaptive subtree
//! donations — must be **verdict-identical** to the sequential engine on
//! arbitrary histories, with any witness it produces re-validating, and a
//! bounded memo must never change an answer.

use proptest::prelude::*;
use tm_harness::randhist::{random_history, GenConfig};
use tm_model::SpecRegistry;
use tm_opacity::opacity::witness_history;
use tm_opacity::search::Search;
use tm_opacity::{CheckSession, SearchConfig, SearchMode};

fn par(jobs: usize) -> SearchConfig {
    SearchConfig {
        search_jobs: jobs,
        ..SearchConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random histories across three generator profiles: the parallel
    /// verdict equals the sequential one for every worker count, and any
    /// parallel witness re-validates through the model crate's own
    /// legality machinery.
    #[test]
    fn parallel_search_is_verdict_identical_on_random_histories(
        seed in 0u64..10_000,
        profile in 0usize..3,
    ) {
        let config = match profile {
            0 => GenConfig::default(),
            1 => GenConfig {
                txs: 6,
                objs: 2,
                max_ops: 5,
                noise: 0.4,
                commit_pending: 0.3,
                abort: 0.2,
            },
            _ => GenConfig {
                txs: 5,
                objs: 1,
                max_ops: 4,
                noise: 0.6,
                commit_pending: 0.2,
                abort: 0.4,
            },
        };
        let h = random_history(&config, seed);
        let specs = SpecRegistry::registers();
        let seq = Search::new(&h, &specs, SearchMode::OPACITY, SearchConfig::default())
            .unwrap()
            .run()
            .unwrap();
        for jobs in [2usize, 4, 8] {
            let out = Search::new(&h, &specs, SearchMode::OPACITY, par(jobs))
                .unwrap()
                .run()
                .unwrap();
            prop_assert_eq!(out.holds(), seq.holds(), "jobs={} on {}", jobs, h);
            if let Some(w) = &out.witness {
                let s = witness_history(&h, w);
                prop_assert!(
                    tm_model::all_txs_legal(&s, &specs).is_ok(),
                    "jobs={} produced a witness that does not re-validate on {}",
                    jobs,
                    h
                );
            }
        }
    }

    /// The splitting knobs sweep every interesting corner — disabled,
    /// split-everything, the default window, coarse granularity — and none
    /// of them may change a verdict or yield a non-validating witness.
    #[test]
    fn split_knobs_are_verdict_identical_on_random_histories(
        seed in 0u64..10_000,
        profile in 0usize..2,
    ) {
        let config = match profile {
            0 => GenConfig::default(),
            _ => GenConfig {
                txs: 6,
                objs: 2,
                max_ops: 5,
                noise: 0.4,
                commit_pending: 0.3,
                abort: 0.2,
            },
        };
        let h = random_history(&config, seed);
        let specs = SpecRegistry::registers();
        let seq = Search::new(&h, &specs, SearchMode::OPACITY, SearchConfig::default())
            .unwrap()
            .run()
            .unwrap();
        for (jobs, split_depth, split_granularity) in
            [(4usize, 0usize, 1usize), (4, 1, 1), (4, 2, 3), (8, 64, 1), (3, 8, 2)]
        {
            let config = SearchConfig {
                search_jobs: jobs,
                split_depth,
                split_granularity,
                ..SearchConfig::default()
            };
            let out = Search::new(&h, &specs, SearchMode::OPACITY, config)
                .unwrap()
                .run()
                .unwrap();
            prop_assert_eq!(
                out.holds(),
                seq.holds(),
                "jobs={} split_depth={} split_granularity={} on {}",
                jobs,
                split_depth,
                split_granularity,
                h
            );
            if let Some(w) = &out.witness {
                let s = witness_history(&h, w);
                prop_assert!(
                    tm_model::all_txs_legal(&s, &specs).is_ok(),
                    "split_depth={} produced a witness that does not re-validate on {}",
                    split_depth,
                    h
                );
            }
        }
    }

    /// A tight memo capacity must never change a verdict either — eviction
    /// only costs recomputation — including combined with parallel workers.
    #[test]
    fn bounded_memo_is_verdict_identical_on_random_histories(
        seed in 0u64..10_000,
        cap in 1usize..24,
    ) {
        let h = random_history(&GenConfig::default(), seed);
        let specs = SpecRegistry::registers();
        let seq = Search::new(&h, &specs, SearchMode::OPACITY, SearchConfig::default())
            .unwrap()
            .run()
            .unwrap();
        for jobs in [1usize, 3] {
            let config = SearchConfig {
                search_jobs: jobs,
                memo_capacity: Some(cap),
                ..SearchConfig::default()
            };
            let out = Search::new(&h, &specs, SearchMode::OPACITY, config)
                .unwrap()
                .run()
                .unwrap();
            prop_assert_eq!(out.holds(), seq.holds(), "cap={} jobs={} on {}", cap, jobs, h);
        }
    }

    /// Session use (the monitor's shape): extending and re-checking a
    /// parallel bounded session at every prefix matches fresh sequential
    /// checks — the shared memo's invalidation rules compose with eviction
    /// and with cross-worker sharing.
    #[test]
    fn parallel_bounded_session_matches_batch_on_prefixes(seed in 0u64..3_000) {
        let config = GenConfig {
            txs: 5,
            objs: 2,
            max_ops: 4,
            noise: 0.3,
            commit_pending: 0.25,
            abort: 0.25,
        };
        let h = random_history(&config, seed);
        let specs = SpecRegistry::registers();
        // An aggressive split window (donate from depth 2 down, one branch at
        // a time) stresses the donated-frame memo rules on every prefix.
        let session_config = SearchConfig {
            search_jobs: 2,
            memo_capacity: Some(8),
            split_depth: 2,
            split_granularity: 1,
            ..SearchConfig::default()
        };
        let mut session = CheckSession::new(&specs, SearchMode::OPACITY, session_config);
        for (i, e) in h.events().iter().enumerate() {
            session.extend(e).unwrap();
            let live = session.check().unwrap().holds();
            let fresh = Search::new(
                &h.prefix(i + 1),
                &specs,
                SearchMode::OPACITY,
                SearchConfig::default(),
            )
            .unwrap()
            .run()
            .unwrap()
            .holds();
            prop_assert_eq!(live, fresh, "prefix {} of {}", i + 1, h);
        }
    }
}
