//! Metamorphic and closure properties of opacity, property-tested on the
//! random history generator.
//!
//! Definition 1 is quantifier-heavy ("there exists a sequential history
//! equivalent to some completion …"), which makes the *checker* itself a
//! trust bottleneck. Beyond the Theorem-2 cross-validation (a second,
//! independent decision procedure), this suite pins down theorems about the
//! *criterion* that any correct checker must reproduce:
//!
//! 1. **erasure** — removing an *aborted or live non-commit-pending*
//!    transaction from an opaque history preserves opacity (such
//!    transactions are invisible to everyone else's legality, and removal
//!    only weakens `≺_H`). Commit-pending transactions are explicitly NOT
//!    erasable: the dual semantics of Section 5.2 lets them act as
//!    committed writers for other committed transactions — the property
//!    test found concrete counterexamples within a few dozen seeds;
//! 2. **renaming invariance** — object names and transaction numbers carry
//!    no semantics;
//! 3. **concurrency monotonicity** — swapping two adjacent events of
//!    different transactions preserves equivalence and, when the swap does
//!    not create a new happen-before pair, can only *weaken* the real-time
//!    order, so opacity is preserved;
//! 4. **criterion lattice** — on histories *without commit-pending
//!    transactions*, opacity implies strict serializability,
//!    serializability, and snapshot isolation. The side condition is real:
//!    a commit-pending writer read by a committed reader yields opaque
//!    histories whose committed projection is not serializable (the
//!    classical criteria have no notion of `Complete(H)`) — another
//!    generator-found counterexample, documented in EXPERIMENTS.md;
//! 5. **monitor agreement** — the incremental monitor accepts exactly the
//!    histories whose every response-closed prefix the offline checker
//!    accepts.

use proptest::prelude::*;

use tm_harness::{random_history, GenConfig};
use tm_model::{Event, History, ObjId, SpecRegistry, TxId, TxStatus};
use tm_opacity::criteria::{is_serializable, is_strictly_serializable, snapshot_isolated};
use tm_opacity::incremental::{MonitorVerdict, OpacityMonitor};
use tm_opacity::opacity::is_opaque;

fn regs() -> SpecRegistry {
    SpecRegistry::registers()
}

fn config(txs: usize, objs: usize, ops: usize, noise: f64) -> GenConfig {
    GenConfig {
        txs,
        objs,
        max_ops: ops,
        noise,
        commit_pending: 0.2,
        abort: 0.25,
    }
}

/// Removes every event of `t` from `h`.
fn erase_tx(h: &History, t: TxId) -> History {
    History::from_events(h.events().iter().filter(|e| e.tx() != t).cloned().collect())
}

/// Renames every object `o` to `prefix + o` and every `T_i` to `T_{i+shift}`.
fn rename(h: &History, prefix: &str, shift: u32) -> History {
    let map_obj = |o: &ObjId| ObjId::new(&format!("{prefix}{}", o.name()));
    let map_tx = |t: TxId| TxId(t.0 + shift);
    History::from_events(
        h.events()
            .iter()
            .map(|e| match e {
                Event::Inv { tx, obj, op, args } => Event::Inv {
                    tx: map_tx(*tx),
                    obj: map_obj(obj),
                    op: op.clone(),
                    args: args.clone(),
                },
                Event::Ret { tx, obj, op, val } => Event::Ret {
                    tx: map_tx(*tx),
                    obj: map_obj(obj),
                    op: op.clone(),
                    val: val.clone(),
                },
                Event::TryCommit(tx) => Event::TryCommit(map_tx(*tx)),
                Event::TryAbort(tx) => Event::TryAbort(map_tx(*tx)),
                Event::Commit(tx) => Event::Commit(map_tx(*tx)),
                Event::Abort(tx) => Event::Abort(map_tx(*tx)),
            })
            .collect(),
    )
}

/// True if swapping events `i` and `i+1` cannot create a new happen-before
/// pair: that requires position `i+1` to hold the last event of its
/// transaction while position `i` holds the first event of its own.
fn swap_is_weakening(h: &History, i: usize) -> bool {
    let (a, b) = (&h.events()[i], &h.events()[i + 1]);
    if a.tx() == b.tx() {
        return false; // would change per-transaction order, not applicable
    }
    let a_first = h.first_event_index(a.tx()) == Some(i);
    let b_last = h.last_event_index(b.tx()) == Some(i + 1);
    !(a_first && b_last)
}

fn swap(h: &History, i: usize) -> History {
    let mut events = h.events().to_vec();
    events.swap(i, i + 1);
    History::from_events(events)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn erasing_noncommitted_txs_preserves_opacity(
        seed in 0u64..1_000_000,
        txs in 2usize..6,
        objs in 1usize..4,
        ops in 1usize..5,
        noise in 0.0f64..0.5,
    ) {
        let h = random_history(&config(txs, objs, ops, noise), seed);
        prop_assume!(is_opaque(&h, &regs()).unwrap().opaque);
        for t in h.txs() {
            let status = h.status(t);
            // Commit-pending transactions are NOT erasable (dual
            // semantics); see the module docs.
            if status != TxStatus::Committed && !status.is_commit_pending() {
                let h2 = erase_tx(&h, t);
                prop_assert!(
                    is_opaque(&h2, &regs()).unwrap().opaque,
                    "erasing non-committed {t} broke opacity:\nbefore: {h}\nafter: {h2}"
                );
            }
        }
    }

    #[test]
    fn erasing_all_noncommitted_leaves_the_serializability_core(
        seed in 0u64..1_000_000,
        noise in 0.0f64..0.5,
    ) {
        // No commit-pending tails here: the committed projection of an
        // opaque history is serializable only when every transaction's
        // fate is settled (see the module docs).
        let c = GenConfig { commit_pending: 0.0, ..config(4, 3, 4, noise) };
        let h = random_history(&c, seed);
        prop_assume!(is_opaque(&h, &regs()).unwrap().opaque);
        let mut core = h.clone();
        for t in h.txs() {
            if h.status(t) != TxStatus::Committed {
                core = erase_tx(&core, t);
            }
        }
        prop_assert!(is_opaque(&core, &regs()).unwrap().opaque);
        prop_assert!(is_serializable(&core, &regs()).unwrap());
    }

    #[test]
    fn renaming_preserves_the_verdict(
        seed in 0u64..1_000_000,
        txs in 1usize..6,
        noise in 0.0f64..0.6,
        shift in 1u32..50,
    ) {
        let h = random_history(&config(txs, 3, 4, noise), seed);
        let verdict = is_opaque(&h, &regs()).unwrap().opaque;
        let renamed = rename(&h, "zz_", shift);
        prop_assert_eq!(
            is_opaque(&renamed, &regs()).unwrap().opaque,
            verdict,
            "renaming changed the verdict:\n{}",
            h
        );
    }

    #[test]
    fn weakening_swaps_preserve_opacity(
        seed in 0u64..1_000_000,
        txs in 2usize..5,
        noise in 0.0f64..0.4,
    ) {
        let h = random_history(&config(txs, 3, 3, noise), seed);
        prop_assume!(is_opaque(&h, &regs()).unwrap().opaque);
        for i in 0..h.len().saturating_sub(1) {
            if swap_is_weakening(&h, i) {
                let h2 = swap(&h, i);
                // The swap preserves per-transaction subsequences, so the
                // histories are equivalent; it can only remove ≺ pairs.
                prop_assert!(h.equivalent(&h2));
                prop_assert!(
                    is_opaque(&h2, &regs()).unwrap().opaque,
                    "weakening swap at {i} broke opacity:\nbefore: {h}\nafter:  {h2}"
                );
            }
        }
    }

    #[test]
    fn opacity_implies_the_weaker_criteria(
        seed in 0u64..1_000_000,
        txs in 1usize..6,
        noise in 0.0f64..0.6,
    ) {
        let c = GenConfig { commit_pending: 0.0, ..config(txs, 3, 4, noise) };
        let h = random_history(&c, seed);
        prop_assume!(is_opaque(&h, &regs()).unwrap().opaque);
        prop_assert!(is_strictly_serializable(&h, &regs()).unwrap(), "{h}");
        prop_assert!(is_serializable(&h, &regs()).unwrap(), "{h}");
        // SI *does* understand commit-pending duals (it enumerates V like
        // the graph decider), so it needs no side condition — asserted on
        // the unrestricted history in its own proptest below.
        prop_assert!(snapshot_isolated(&h, &regs()).unwrap(), "{h}");
    }

    #[test]
    fn monitor_agrees_with_the_offline_checker(
        seed in 0u64..1_000_000,
        txs in 1usize..5,
        noise in 0.0f64..0.6,
    ) {
        let h = random_history(&config(txs, 3, 3, noise), seed);
        let specs = regs();
        let mut monitor = OpacityMonitor::new(&specs);
        let mut rejected_at: Option<usize> = None;
        for (i, e) in h.events().iter().enumerate() {
            match monitor.feed(e.clone()).unwrap() {
                MonitorVerdict::OpaqueChecked | MonitorVerdict::OpaqueBySkip => {}
                MonitorVerdict::Violated { .. } => {
                    rejected_at = Some(i);
                    break;
                }
            }
        }
        match rejected_at {
            None => {
                // Every response-closed prefix must be opaque offline.
                for n in 1..=h.len() {
                    let p = h.prefix(n);
                    // The monitor only rules on response events; prefixes
                    // ending mid-invocation are covered by the next ruling.
                    if p.events().last().is_some_and(|e| e.is_response()) {
                        prop_assert!(
                            is_opaque(&p, &regs()).unwrap().opaque,
                            "monitor accepted a non-opaque prefix of {h}"
                        );
                    }
                }
            }
            Some(i) => {
                let p = h.prefix(i + 1);
                prop_assert!(
                    !is_opaque(&p, &regs()).unwrap().opaque,
                    "monitor rejected an opaque prefix (event {i}) of {h}"
                );
            }
        }
    }
}

#[test]
fn erasure_on_the_paper_histories() {
    // H5 (Figure 2) is opaque with aborted T1; erasing T1 must stay opaque.
    let h5 = tm_model::builder::paper::h5();
    assert!(is_opaque(&h5, &regs()).unwrap().opaque);
    let without_t1 = erase_tx(&h5, TxId(1));
    assert!(is_opaque(&without_t1, &regs()).unwrap().opaque);
}

#[test]
fn renaming_on_h1_keeps_the_violation() {
    let h1 = tm_model::builder::paper::h1();
    assert!(!is_opaque(&h1, &regs()).unwrap().opaque);
    assert!(!is_opaque(&rename(&h1, "obj_", 10), &regs()).unwrap().opaque);
}

#[test]
fn swap_safety_predicate_matches_realtime_changes() {
    use tm_model::RealTimeOrder;
    // Exhaustively verify, on generated histories, that "weakening" swaps
    // indeed never add ≺ pairs (the predicate is sound, not just plausible).
    for seed in 0..40 {
        let h = random_history(&config(3, 2, 3, 0.2), seed);
        let before = RealTimeOrder::of(&h);
        for i in 0..h.len().saturating_sub(1) {
            if swap_is_weakening(&h, i) {
                let after = RealTimeOrder::of(&swap(&h, i));
                for (a, b) in after.pairs() {
                    assert!(
                        before.precedes(a, b),
                        "swap at {i} created {a} ≺ {b} in {h}"
                    );
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Opacity ⇒ snapshot isolation holds with NO commit-pending side
    /// condition, because the SI checker shares opacity's `Complete(H)`
    /// treatment of commit-pending transactions.
    #[test]
    fn opacity_implies_si_even_with_commit_pending(
        seed in 0u64..1_000_000,
        noise in 0.0f64..0.6,
    ) {
        let h = random_history(&config(4, 3, 4, noise), seed);
        prop_assume!(is_opaque(&h, &regs()).unwrap().opaque);
        prop_assert!(snapshot_isolated(&h, &regs()).unwrap(), "{h}");
    }
}

/// A concrete witness for the commit-pending caveat: an opaque history
/// whose committed projection is NOT serializable (found by the generator,
/// minimized by hand). The classical criteria have no `Complete(H)`.
#[test]
fn opaque_but_committed_projection_not_serializable() {
    use tm_model::HistoryBuilder;
    let h = HistoryBuilder::new()
        .write(1, "x", 5) // T1 writes…
        .try_commit(1) //      …and hangs commit-pending
        .read(2, "x", 5) // committed T2 reads the pending write
        .commit_ok(2)
        .build();
    assert!(
        is_opaque(&h, &regs()).unwrap().opaque,
        "T1 may appear committed"
    );
    assert!(
        !is_serializable(&h, &regs()).unwrap(),
        "the committed projection erases T1, orphaning T2's read"
    );
    assert!(
        snapshot_isolated(&h, &regs()).unwrap(),
        "SI handles the dual"
    );
}
