//! Experiment E7: executable cross-validation of Theorem 2.
//!
//! Theorem 2 states that, for register histories with unique writes and an
//! initializing committed transaction, opacity (Definition 1) is equivalent
//! to consistency plus the existence of `(≪, V)` making the opacity graph
//! `OPG(nonlocal(H), ≪, V)` well-formed and acyclic.
//!
//! The two deciders share no code: the definitional checker searches
//! serializations with legality replay; the graph checker searches
//! `(≪, V)` pairs and checks graph shape. Agreement across thousands of
//! random histories — biased to sit near the opaque/non-opaque boundary —
//! is a strong mechanical check of the theorem (and of both
//! implementations).

use proptest::prelude::*;

use tm_harness::randhist::{random_history, GenConfig};
use tm_model::SpecRegistry;
use tm_opacity::graphcheck::{construct_graph_witness, decide_via_graph};
use tm_opacity::opacity::is_opaque;

fn specs() -> SpecRegistry {
    SpecRegistry::registers()
}

/// Deterministic bulk sweep: both deciders on 1500 random histories.
#[test]
fn deciders_agree_on_random_histories_bulk() {
    let config = GenConfig {
        txs: 4,
        objs: 3,
        max_ops: 3,
        ..GenConfig::default()
    };
    let mut opaque_count = 0;
    for seed in 0..1500u64 {
        let h = random_history(&config, seed);
        let d = is_opaque(&h, &specs()).unwrap();
        let g = decide_via_graph(&h, &specs(), 6).unwrap();
        assert_eq!(
            d.opaque,
            g.opaque(),
            "checkers disagree on seed {seed}:\n{h}\nconsistent={}",
            g.consistent
        );
        if d.opaque {
            opaque_count += 1;
            // Positive direction, independently: a Theorem-2 witness is
            // constructible from a serialization of the nonlocal history.
            assert!(
                construct_graph_witness(&h, &specs()).unwrap().is_some(),
                "graph-witness construction fails on seed {seed}:\n{h}"
            );
        }
    }
    // The sweep must exercise both verdicts substantially.
    assert!(opaque_count > 300, "{opaque_count}");
    assert!(opaque_count < 1200, "{opaque_count}");
}

/// Noisier histories (more wrong-value reads, more commit-pending tails).
#[test]
fn deciders_agree_on_noisy_histories() {
    let config = GenConfig {
        txs: 4,
        objs: 2,
        max_ops: 4,
        noise: 0.5,
        commit_pending: 0.35,
        abort: 0.3,
    };
    for seed in 10_000..10_600u64 {
        let h = random_history(&config, seed);
        let d = is_opaque(&h, &specs()).unwrap().opaque;
        let g = decide_via_graph(&h, &specs(), 6).unwrap().opaque();
        assert_eq!(d, g, "checkers disagree on seed {seed}:\n{h}");
    }
}

/// Histories with more transactions (heavier for the factorial graph
/// search, so fewer cases).
#[test]
fn deciders_agree_on_wider_histories() {
    let config = GenConfig {
        txs: 5,
        objs: 3,
        max_ops: 3,
        ..GenConfig::default()
    };
    for seed in 20_000..20_150u64 {
        let h = random_history(&config, seed);
        let d = is_opaque(&h, &specs()).unwrap().opaque;
        let g = decide_via_graph(&h, &specs(), 6).unwrap().opaque();
        assert_eq!(d, g, "checkers disagree on seed {seed}:\n{h}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Property form: any generator configuration, any seed.
    #[test]
    fn theorem2_equivalence_holds(
        seed in 0u64..1_000_000,
        txs in 2usize..=4,
        objs in 1usize..=3,
        max_ops in 1usize..=4,
        noise in 0.0f64..0.6,
        commit_pending in 0.0f64..0.4,
    ) {
        let config = GenConfig { txs, objs, max_ops, noise, commit_pending, abort: 0.2 };
        let h = random_history(&config, seed);
        let d = is_opaque(&h, &specs()).unwrap();
        let g = decide_via_graph(&h, &specs(), 6).unwrap();
        prop_assert_eq!(d.opaque, g.opaque(), "disagreement on {}", h);
        if d.opaque {
            prop_assert!(construct_graph_witness(&h, &specs()).unwrap().is_some());
        }
    }

    /// The definitional checker's witness always reconstructs a valid
    /// Definition-1 sequential history (validated by the independent model
    /// machinery).
    #[test]
    fn witnesses_reconstruct_valid_serializations(
        seed in 0u64..1_000_000,
        noise in 0.0f64..0.4,
    ) {
        let config = GenConfig { noise, ..GenConfig::default() };
        let h = random_history(&config, seed);
        if let Some(w) = is_opaque(&h, &specs()).unwrap().witness {
            let s = tm_opacity::opacity::witness_history(&h, &w);
            prop_assert!(s.is_sequential());
            prop_assert!(s.is_complete());
            prop_assert!(tm_model::preserves_real_time(&h, &s));
            prop_assert!(tm_model::all_txs_legal(&s, &specs()).is_ok());
        }
    }
}
