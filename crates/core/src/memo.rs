//! The shared dead-end memo table of the serialization search: a
//! fingerprint-sharded, optionally capacity-bounded map from
//! `(placed-set mask, canonical object states)` to "this frontier is a
//! dead end".
//!
//! ## Why sharing is sound
//!
//! A memo entry records a *path-independent* fact: from the frontier
//! `(placed, states)` the remaining selected transactions cannot all be
//! placed legally. Which worker discovered the fact — and through which
//! serialization prefix it reached the frontier — is irrelevant, because
//! the legality of every further placement depends only on the committed
//! effects accumulated in `states` and on the set of transactions still
//! unplaced (the complement of `placed`). Workers of the parallel search
//! therefore share one table: an entry inserted by any worker prunes every
//! other worker that reaches the same frontier.
//!
//! The one obligation the *writers* carry is completeness: an entry may be
//! inserted only after the subtree below the frontier was explored
//! **exhaustively**. The search enforces this by never inserting while a
//! worker's exploration is truncated (node cap) or cancelled (witness found
//! elsewhere) — see `truncated` in [`crate::search`].
//!
//! ## Why eviction is sound
//!
//! Entries are pure pruning: dropping one can only force the search to
//! re-explore (and re-discover) a dead end, never to change a verdict.
//! A bounded table is therefore free to evict anything at any time. The
//! *invalidation* rules are the opposite direction — an entry that became
//! unsound after new events must go — and they are preserved verbatim:
//! [`ShardedMemo::retain_placing`] and [`ShardedMemo::clear`] are the
//! sharded forms of the resumable core's `retain`/`clear` on its old flat
//! map.
//!
//! ## The eviction policy: cost-segmented LRU
//!
//! Plain recency is the *worst* signal for a DFS memo: backtracking
//! re-probes entries in LIFO order, so by the time the search unwinds to
//! an early alternative, the entries it needs — flushed by the thousands
//! of deep inserts in between — are exactly the ones gone, and every
//! re-entry re-explores a whole subtree (measured: a quarter-capacity
//! plain-LRU table blew a phased knot search up by >100×, and pure
//! depth-priority eviction fails the same way by starving the active
//! frontier). The durable value of a dead end is what it would cost to
//! *recompute*: the number of nodes the search expanded below that
//! frontier before concluding it is dead — a quantity the DFS knows
//! exactly at insert time. Keeping expensive entries bounds the regret of
//! eviction greedily: losing an entry can only ever cost its (small)
//! recompute price per future probe, so a bounded table sheds precisely
//! the dead ends that are cheap to rediscover.
//!
//! Each shard therefore keeps its entries in **cost segments** — one LRU
//! queue per log₂(subtree nodes) bucket. Eviction always takes the
//! least-recently-touched entry of the *cheapest populated segment*: the
//! expensive spine entries that prevent multiplicative re-exploration on
//! backtrack survive any cap, while the flood of cost-1 leaf dead ends
//! (the bulk of the table) churns through the low buckets under recency.
//! Queues are lazy — a touch enqueues a fresh record and stale records
//! are skipped on pop and compacted when they outnumber live entries.
//!
//! Shards are selected by the states' incremental XOR fingerprint
//! ([`ObjStates::fingerprint`], maintained in O(1) by the delta-replay
//! machinery) mixed with the placed-set mask, so concurrent workers mostly
//! hit distinct `std::sync::Mutex`-guarded shards; probes never clone the
//! live snapshot (`Arc<ObjStates>: Borrow<ObjStates>` does the lookup).

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use tm_model::ObjStates;
use tm_obs::Counter;

/// Default shard count (a power of two; also the upper bound when the
/// configured capacity is smaller).
const DEFAULT_SHARDS: usize = 16;

/// One queued reference to a shard entry. Queues are lazy: a recency touch
/// leaves the previous record stale; stale records are skipped (and
/// dropped) when popped, and compacted wholesale when they outnumber live
/// entries.
struct QueueRef {
    mask: u64,
    states: Arc<ObjStates>,
    stamp: u64,
}

/// Live metadata of one memoized dead end.
struct EntryMeta {
    /// Monotone per-shard clock value of the entry's latest queue record;
    /// a queue record is current iff its stamp matches.
    stamp: u64,
    /// Cost segment: log₂ of the subtree nodes it took to establish this
    /// dead end (recency touches re-enqueue into the same segment).
    bucket: u32,
}

/// The two-level entry index of one shard.
type MaskIndex = HashMap<u64, HashMap<Arc<ObjStates>, EntryMeta>>;

/// One mutex-guarded shard.
#[derive(Default)]
struct MemoShard {
    /// `placed-set mask → states → metadata`. The inner key is an `Arc` so
    /// the segment queues can reference entries without cloning snapshots.
    by_mask: MaskIndex,
    /// Live entries in this shard (sum of inner map sizes).
    len: usize,
    /// Stale records across all segment queues (for compaction).
    stale: usize,
    /// Per-shard LRU clock.
    clock: u64,
    /// Cost segments: log₂(recompute nodes) → LRU queue (least-recent
    /// first). Eviction pops from the first (cheapest) populated segment.
    segments: BTreeMap<u32, VecDeque<QueueRef>>,
}

/// Is `q` the current queue record of a live entry?
fn queue_ref_live(by_mask: &MaskIndex, q: &QueueRef) -> bool {
    by_mask
        .get(&q.mask)
        .and_then(|m| m.get(q.states.as_ref()))
        .is_some_and(|meta| meta.stamp == q.stamp)
}

impl MemoShard {
    fn next_stamp(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    /// Enqueues the current record of an entry into its cost segment.
    fn enqueue(&mut self, bucket: u32, mask: u64, states: Arc<ObjStates>, stamp: u64) {
        self.segments
            .entry(bucket)
            .or_default()
            .push_back(QueueRef {
                mask,
                states,
                stamp,
            });
    }

    /// Drops stale queue records once they outnumber live entries.
    fn maybe_compact(&mut self) {
        if self.stale > self.len + 32 {
            let by_mask = std::mem::take(&mut self.by_mask);
            for q in self.segments.values_mut() {
                q.retain(|r| queue_ref_live(&by_mask, r));
            }
            self.segments.retain(|_, q| !q.is_empty());
            self.by_mask = by_mask;
            self.stale = 0;
        }
    }

    /// Removes the entry referenced by `q`, returning whether it was live.
    fn remove(&mut self, q: &QueueRef) -> bool {
        if let Some(inner) = self.by_mask.get_mut(&q.mask) {
            if inner.remove(q.states.as_ref()).is_some() {
                self.len -= 1;
                if inner.is_empty() {
                    self.by_mask.remove(&q.mask);
                }
                return true;
            }
        }
        false
    }

    /// Evicts the least-recently-touched entry of the cheapest populated
    /// segment. Returns `true` if something was evicted.
    fn evict_one(&mut self) -> bool {
        loop {
            let Some((&bucket, _)) = self.segments.first_key_value() else {
                return false;
            };
            loop {
                let popped = self.segments.get_mut(&bucket).and_then(|q| q.pop_front());
                let Some(q) = popped else {
                    self.segments.remove(&bucket);
                    break; // this segment is spent; try the next-cheapest
                };
                if queue_ref_live(&self.by_mask, &q) {
                    if self.segments.get(&bucket).is_some_and(|q| q.is_empty()) {
                        self.segments.remove(&bucket);
                    }
                    self.remove(&q);
                    return true;
                }
                self.stale -= 1;
            }
        }
    }
}

/// The fingerprint-sharded dead-end table shared by all search workers.
pub(crate) struct ShardedMemo {
    shards: Vec<Mutex<MemoShard>>,
    /// Per-shard entry cap; `0` = unbounded (no segment bookkeeping at
    /// all). Atomic so a memory governor (the `tm-serve` session table)
    /// can retune a live table without stopping its workers — inserts
    /// read the cap once per call, so a mid-flight change only staggers
    /// where the bound bites, never whether it holds after
    /// [`ShardedMemo::set_capacity`] returns.
    per_shard_cap: AtomicUsize,
    /// Entries evicted by the capacity bound since creation (monotone; a
    /// `tm-obs` counter — the sanctioned home for embedded telemetry
    /// tallies, see the `atomic-telemetry` lint).
    evictions: Counter,
}

impl ShardedMemo {
    /// A memo bounded to at most `capacity` resident entries in total
    /// (`None` = unbounded). The shard count is a power of two no larger
    /// than the capacity, so the per-shard caps never let the total exceed
    /// the configured bound.
    pub(crate) fn new(capacity: Option<usize>) -> Self {
        let (nshards, per_shard_cap) = match capacity {
            None => (DEFAULT_SHARDS, None),
            Some(cap) => {
                let cap = cap.max(1);
                // Power-of-two shard count, keeping every shard at ≥ 32
                // entries: skew between shards wastes a fixed number of
                // slots per shard, so tiny per-shard caps would evict live
                // working-set entries while other shards sit below cap.
                // (Concurrency matters most for the big/unbounded tables,
                // which still get the full shard count.)
                let nshards = DEFAULT_SHARDS
                    .min(1usize << (usize::BITS - 1 - (cap / 32).max(1).leading_zeros()));
                (nshards, Some(cap / nshards))
            }
        };
        ShardedMemo {
            shards: (0..nshards)
                .map(|_| Mutex::new(MemoShard::default()))
                .collect(),
            per_shard_cap: AtomicUsize::new(per_shard_cap.unwrap_or(0)),
            evictions: Counter::new(),
        }
    }

    /// The per-shard cap currently in force (`None` = unbounded).
    fn per_shard_cap(&self) -> Option<usize> {
        match self.per_shard_cap.load(Ordering::Relaxed) {
            0 => None,
            cap => Some(cap),
        }
    }

    /// Retunes the capacity bound of a live table (`None` = unbounded).
    ///
    /// The shard count is fixed at construction, so unlike
    /// [`ShardedMemo::new`] the per-shard cap here is simply
    /// `capacity / shards` floored to 1 — the enforced bound therefore
    /// never drops below one entry per shard. A table meant for dynamic
    /// governance should be *constructed* bounded so its shard count
    /// matches its size class (the governor's per-session floor sits well
    /// above any shard count anyway).
    ///
    /// Sound in both directions because entries are pure pruning (see the
    /// module docs): shrinking evicts down to the new bound through the
    /// normal cost-segmented-LRU policy; growing simply stops evicting.
    /// The one structural transition is unbounded → bounded: entries
    /// inserted while unbounded carry no queue records, so the eviction
    /// queues cannot reach them — the table is cleared instead (a pure
    /// re-discovery cost, never a verdict change).
    pub(crate) fn set_capacity(&self, capacity: Option<usize>) {
        let new_per_shard = capacity.map(|c| (c.max(1) / self.shards.len()).max(1));
        let old = self
            .per_shard_cap
            .swap(new_per_shard.unwrap_or(0), Ordering::Relaxed);
        let Some(cap) = new_per_shard else {
            // Now unbounded: existing queue records go stale harmlessly
            // (probes stop touching them, inserts stop enqueueing).
            return;
        };
        if old == 0 {
            // Unbounded → bounded: resident entries have no queue records.
            self.clear();
            return;
        }
        // Bounded → bounded: evict each shard down to the new cap.
        for shard in &self.shards {
            let mut guard = Self::lock(shard);
            let sh = &mut *guard;
            while sh.len > cap {
                if sh.evict_one() {
                    self.evictions.add(1);
                } else {
                    break; // unreachable with len > 0; defensive
                }
            }
            sh.maybe_compact();
        }
    }

    fn shard_for(&self, mask: u64, states: &ObjStates) -> &Mutex<MemoShard> {
        // Mix the placed-set mask into the states fingerprint so frontiers
        // sharing a state (common: many masks, few reachable states) still
        // spread across shards.
        let key = states.fingerprint() ^ mask.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        &self.shards[(key as usize) & (self.shards.len() - 1)]
    }

    fn lock(shard: &Mutex<MemoShard>) -> std::sync::MutexGuard<'_, MemoShard> {
        // A worker never panics while holding a shard lock (pure map/queue
        // operations), but recover instead of propagating just in case.
        shard.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Is `(mask, states)` a recorded dead end? Under a capacity bound a
    /// hit refreshes the entry's recency within its cost segment — an
    /// entry that keeps pruning stays at the warm end of its segment.
    pub(crate) fn probe(&self, mask: u64, states: &ObjStates) -> bool {
        let mut guard = Self::lock(self.shard_for(mask, states));
        let sh = &mut *guard;
        let Some(arc) = sh
            .by_mask
            .get(&mask)
            .and_then(|m| m.get_key_value(states))
            .map(|(k, _)| Arc::clone(k))
        else {
            return false;
        };
        if self.per_shard_cap().is_some() {
            let stamp = sh.next_stamp();
            let meta = sh
                .by_mask
                .get_mut(&mask)
                .and_then(|m| m.get_mut(states))
                .expect("entry found above");
            meta.stamp = stamp;
            let bucket = meta.bucket;
            sh.stale += 1; // the previous queue record just went stale
            sh.enqueue(bucket, mask, arc, stamp);
            sh.maybe_compact();
        }
        true
    }

    /// Records `(mask, states)` as a dead end established by exploring
    /// `cost` DFS nodes (idempotent — a concurrent duplicate insert is
    /// ignored). Evicts per the cost-segmented-LRU policy when the shard
    /// is at capacity.
    pub(crate) fn insert(&self, mask: u64, states: &ObjStates, cost: usize) {
        let mut guard = Self::lock(self.shard_for(mask, states));
        let sh = &mut *guard;
        if sh
            .by_mask
            .get(&mask)
            .is_some_and(|m| m.contains_key(states))
        {
            // Another worker raced us to the same dead end.
            return;
        }
        let bucket = usize::BITS - cost.max(1).leading_zeros(); // ⌊log₂⌋ + 1
        let arc = Arc::new(states.clone());
        let stamp = sh.next_stamp();
        sh.by_mask
            .entry(mask)
            .or_default()
            .insert(Arc::clone(&arc), EntryMeta { stamp, bucket });
        sh.len += 1;
        if let Some(cap) = self.per_shard_cap() {
            sh.enqueue(bucket, mask, arc, stamp);
            while sh.len > cap {
                if sh.evict_one() {
                    self.evictions.add(1);
                } else {
                    break; // unreachable with len > 0; defensive
                }
            }
            sh.maybe_compact();
        }
    }

    /// Drops every entry whose placed-set does **not** contain `bit` — the
    /// resumable core's invalidation rule for a new operation or a `tryC`
    /// widening of the transaction owning `bit` (entries that already
    /// placed the transaction only claim things about the others, so they
    /// stay).
    pub(crate) fn retain_placing(&self, bit: u64) {
        for shard in &self.shards {
            let mut guard = Self::lock(shard);
            let sh = &mut *guard;
            let mut removed = 0usize;
            sh.by_mask.retain(|&mask, inner| {
                if mask & bit != 0 {
                    true
                } else {
                    removed += inner.len();
                    false
                }
            });
            sh.len -= removed;
            // Invalidation is rare; scrub the queues eagerly so they track
            // the live set exactly afterwards.
            let by_mask = std::mem::take(&mut sh.by_mask);
            for q in sh.segments.values_mut() {
                q.retain(|r| queue_ref_live(&by_mask, r));
            }
            sh.segments.retain(|_, q| !q.is_empty());
            sh.by_mask = by_mask;
            sh.stale = 0;
        }
    }

    /// Drops every entry (the committed-only re-selection rule).
    pub(crate) fn clear(&self) {
        for shard in &self.shards {
            let mut guard = Self::lock(shard);
            let sh = &mut *guard;
            sh.by_mask.clear();
            sh.len = 0;
            sh.stale = 0;
            sh.segments.clear();
        }
    }

    /// Resident entries across all shards.
    pub(crate) fn resident(&self) -> usize {
        self.shards.iter().map(|s| Self::lock(s).len).sum()
    }

    /// Total entries evicted by the capacity bound since creation
    /// (monotone; invalidation drops are not evictions).
    pub(crate) fn evictions(&self) -> usize {
        self.evictions.get() as usize
    }

    /// The total capacity actually enforced (shard count × per-shard cap);
    /// `None` when unbounded. At most the configured capacity.
    pub(crate) fn capacity(&self) -> Option<usize> {
        self.per_shard_cap().map(|c| c * self.shards.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_model::{ObjId, Value};

    fn state(n: i64) -> ObjStates {
        let mut s = ObjStates::new();
        s.set(ObjId::new("x"), Value::Int(n));
        s
    }

    /// A mask with `d` low bits set (depth `d`).
    fn deep_mask(d: u32) -> u64 {
        if d >= 64 {
            u64::MAX
        } else {
            (1u64 << d) - 1
        }
    }

    #[test]
    fn probe_miss_then_insert_then_hit() {
        let memo = ShardedMemo::new(None);
        let s = state(1);
        assert!(!memo.probe(0b11, &s));
        memo.insert(0b11, &s, 1);
        assert!(memo.probe(0b11, &s));
        assert!(!memo.probe(0b01, &s), "mask is part of the key");
        assert_eq!(memo.resident(), 1);
        assert_eq!(memo.evictions(), 0);
        assert_eq!(memo.capacity(), None);
    }

    #[test]
    fn capacity_bounds_resident_entries() {
        let memo = ShardedMemo::new(Some(8));
        for i in 0..100 {
            memo.insert(1 << (i % 60), &state(i), 1);
        }
        assert!(
            memo.resident() <= 8,
            "resident {} exceeds cap",
            memo.resident()
        );
        assert!(memo.evictions() >= 92);
        assert_eq!(memo.capacity(), Some(8));
    }

    #[test]
    fn tiny_capacity_still_works() {
        let memo = ShardedMemo::new(Some(1));
        memo.insert(1, &state(1), 1);
        memo.insert(2, &state(2), 1);
        assert_eq!(memo.resident(), 1);
        assert_eq!(memo.evictions(), 1);
    }

    #[test]
    fn expensive_entries_survive_cheap_floods() {
        // The point of cost segmentation: a dead end that took thousands
        // of nodes to establish is never displaced by a flood of cost-1
        // leaf dead ends — the failure mode that makes plain LRU (and
        // depth-priority eviction) catastrophic for DFS backtracking.
        let memo = ShardedMemo::new(Some(64));
        let expensive = state(-7);
        memo.insert(0b1, &expensive, 10_000);
        for i in 0..400 {
            memo.insert(deep_mask(40), &state(i), 1);
        }
        assert!(
            memo.probe(0b1, &expensive),
            "expensive entry evicted by a cheap flood"
        );
        assert!(memo.resident() <= 64);
        assert!(memo.evictions() > 0);
    }

    #[test]
    fn within_a_segment_eviction_is_lru() {
        // Recently probed entries outlive unprobed ones of the SAME cost
        // bucket: the hot entry is touched between every equal-cost cold
        // insert, keeping it at the warm end of its segment's queue.
        let memo = ShardedMemo::new(Some(64));
        let hot = state(-1);
        memo.insert(deep_mask(10), &hot, 8);
        for i in 0..400 {
            memo.insert(deep_mask(9) | 1 << (10 + i % 50), &state(i), 8);
            assert!(
                memo.probe(deep_mask(10), &hot),
                "hot same-cost entry evicted after {i} inserts"
            );
        }
        assert!(memo.resident() <= 64);
    }

    #[test]
    fn retain_placing_drops_exactly_the_unplacing_masks() {
        let memo = ShardedMemo::new(Some(32));
        for i in 0..16 {
            memo.insert(i, &state(i as i64), 1);
        }
        memo.retain_placing(0b100);
        for i in 0..16u64 {
            assert_eq!(
                memo.probe(i, &state(i as i64)),
                i & 0b100 != 0,
                "mask {i:#b}"
            );
        }
        // Queues were scrubbed: inserting past capacity still works.
        for i in 100..200 {
            memo.insert(0b100, &state(i), 1);
        }
        assert!(memo.resident() <= 32);
    }

    #[test]
    fn clear_empties_everything() {
        let memo = ShardedMemo::new(Some(16));
        for i in 0..10 {
            memo.insert(i, &state(i as i64), 1);
        }
        memo.clear();
        assert_eq!(memo.resident(), 0);
        for i in 0..10 {
            assert!(!memo.probe(i, &state(i as i64)));
        }
    }

    #[test]
    fn eviction_counter_is_monotone_and_capacity_rounds_down() {
        // Small capacities collapse to one shard (per-shard caps below ~32
        // would let inter-shard skew evict live working-set entries).
        let memo = ShardedMemo::new(Some(20));
        assert_eq!(memo.capacity(), Some(20));
        // Larger capacities shard, rounding the total down to a multiple
        // of the shard count — never above the configured bound.
        for (configured, enforced) in [(64, 64), (100, 100), (1000, 992), (2050, 2048)] {
            let m = ShardedMemo::new(Some(configured));
            assert_eq!(m.capacity(), Some(enforced), "configured {configured}");
            assert!(enforced <= configured);
        }
        let mut last = 0;
        for i in 0..50 {
            memo.insert(1 << (i % 50), &state(i), 1);
            let now = memo.evictions();
            assert!(now >= last);
            last = now;
        }
        assert!(memo.resident() <= 20);
    }

    #[test]
    fn set_capacity_shrink_evicts_down_and_growth_stops_evicting() {
        let memo = ShardedMemo::new(Some(64));
        for i in 0..60 {
            memo.insert(1 << (i % 60), &state(i), (i as usize) % 9 + 1);
        }
        let before = memo.resident();
        assert!(before > 16, "resident {before}");
        memo.set_capacity(Some(16));
        assert!(memo.resident() <= 16, "resident {}", memo.resident());
        assert_eq!(memo.capacity(), Some(16));
        assert!(memo.evictions() >= before - 16);
        // Growing back: the survivors stay, new inserts stop evicting.
        memo.set_capacity(Some(1000));
        let survivors = memo.resident();
        for i in 100..140 {
            memo.insert(1 << (i % 60), &state(i), 1);
        }
        assert!(memo.resident() >= survivors);
        assert!(memo.resident() <= 1000);
    }

    #[test]
    fn set_capacity_from_unbounded_clears_then_bounds() {
        // Unbounded inserts carry no queue records, so the eviction queues
        // cannot reach them: the transition clears (sound — entries are
        // pure pruning) and the bound holds for everything inserted after.
        let memo = ShardedMemo::new(None);
        for i in 0..50 {
            memo.insert(1 << (i % 50), &state(i), 1);
        }
        assert_eq!(memo.resident(), 50);
        memo.set_capacity(Some(8));
        assert_eq!(memo.resident(), 0);
        // The unbounded table was built with the full shard count, so the
        // enforced bound floors at one entry per shard.
        let enforced = memo.capacity().unwrap();
        assert!(enforced >= 8);
        for i in 0..100 {
            memo.insert(1 << (i % 50), &state(i), 1);
        }
        assert!(memo.resident() <= enforced, "resident {}", memo.resident());
        // Bounded → unbounded → bounded again also re-clears.
        memo.set_capacity(None);
        assert_eq!(memo.capacity(), None);
        for i in 200..260 {
            memo.insert(1 << (i % 50), &state(i), 1);
        }
        let unbounded_resident = memo.resident();
        memo.set_capacity(Some(4));
        assert_eq!(memo.resident(), 0);
        assert!(unbounded_resident > 8);
    }

    #[test]
    fn set_capacity_races_with_inserts_without_losing_the_bound() {
        let memo = ShardedMemo::new(Some(256));
        std::thread::scope(|scope| {
            let m = &memo;
            scope.spawn(move || {
                for i in 0..500 {
                    m.insert((i as u64) % 61 + 1, &state(i), (i as usize) % 7 + 1);
                }
            });
            scope.spawn(move || {
                for cap in [128usize, 64, 32, 16] {
                    m.set_capacity(Some(cap));
                }
            });
        });
        // The last cap wins: one more retune with no concurrent inserts
        // leaves the table within it.
        memo.set_capacity(Some(16));
        assert!(memo.resident() <= 16, "resident {}", memo.resident());
    }

    #[test]
    fn concurrent_probes_and_inserts_keep_the_bound() {
        let memo = ShardedMemo::new(Some(64));
        std::thread::scope(|scope| {
            for t in 0..4i64 {
                let memo = &memo;
                scope.spawn(move || {
                    for i in 0..500 {
                        let s = state(t * 1000 + i);
                        memo.insert((i as u64) % 61 + 1, &s, (i as usize) % 7 + 1);
                        memo.probe((i as u64) % 61 + 1, &s);
                    }
                });
            }
        });
        assert!(memo.resident() <= 64, "resident {}", memo.resident());
    }
}
