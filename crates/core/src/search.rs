//! The serialization-search engine shared by all history-level checkers.
//!
//! Definition 1 (and its weakenings in Section 3) all have the same shape:
//! *does there exist a sequential history `S`, equivalent to (a completion
//! of / the committed projection of) `H`, that preserves (optionally) the
//! real-time order of `H` and in which every transaction is legal?*
//!
//! The engine performs a depth-first search over placements of transactions
//! into the sequential order `S`, one at a time:
//!
//! * a transaction may be placed only when all its real-time predecessors
//!   (if real-time order is enforced) are already placed;
//! * placing a transaction requires its operations to replay legally against
//!   the object states produced by the *committed* transactions placed so
//!   far (this is exactly "legal in S": an aborted transaction is validated
//!   against the committed prefix but does not contribute effects);
//! * a commit-pending transaction may be placed either as committed or as
//!   aborted — which folds the choice of a member of `Complete(H)` into the
//!   search;
//! * dead ends are memoized on `(set of placed transactions, canonical
//!   object states)`, which prunes the factorial search to the number of
//!   distinct reachable states.
//!
//! Opacity checking over arbitrary histories is NP-hard (it embeds
//! view-serializability), so the worst case is necessarily exponential; the
//! memoized search is nonetheless fast for the history sizes produced by
//! tests, the random-history cross-validation, and recorded STM executions.

use std::collections::HashSet;

use tm_model::legal::{replay_tx, LegalityError};
use tm_model::{History, ObjStates, RealTimeOrder, SpecRegistry, TxId, TxStatus, TxView};

/// How a transaction was placed in a serialization witness.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Placement {
    /// Placed as a committed transaction (its effects fold into the state).
    Committed,
    /// Placed as an aborted transaction (validated, effects discarded).
    Aborted,
}

/// A successful serialization: the order in which transactions form the
/// equivalent sequential history `S`, with the decided status of each.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct Witness {
    /// Transactions in serialization order with their placement decisions.
    pub order: Vec<(TxId, Placement)>,
}

impl Witness {
    /// The serialization order without placement decisions.
    pub fn tx_order(&self) -> Vec<TxId> {
        self.order.iter().map(|(t, _)| *t).collect()
    }

    /// The decision for `t`, if `t` was placed.
    pub fn placement_of(&self, t: TxId) -> Option<Placement> {
        self.order.iter().find(|(x, _)| *x == t).map(|(_, p)| *p)
    }
}

/// Hard errors that make a search impossible (as opposed to "not opaque").
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CheckError {
    /// The input history is not well-formed.
    NotWellFormed(tm_model::WfError),
    /// More transactions than the bitmask-based search supports.
    TooManyTransactions {
        /// Number of transactions found in the history.
        found: usize,
        /// Maximum supported by the engine.
        max: usize,
    },
    /// An operation targets an object with no sequential specification.
    NoSpec(String),
}

impl std::fmt::Display for CheckError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckError::NotWellFormed(e) => write!(f, "history not well-formed: {e}"),
            CheckError::TooManyTransactions { found, max } => {
                write!(f, "{found} transactions exceed engine limit of {max}")
            }
            CheckError::NoSpec(obj) => write!(f, "no sequential specification for {obj}"),
        }
    }
}

impl std::error::Error for CheckError {}

/// What the search engine should look for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SearchMode {
    /// Include non-committed transactions (live/aborted/commit-pending) in
    /// `S` and require their legality. `true` for opacity; `false` for
    /// serializability-style criteria, which erase them.
    pub include_noncommitted: bool,
    /// Require `S` to preserve the real-time order `≺_H`.
    pub respect_real_time: bool,
}

impl SearchMode {
    /// The mode of Definition 1 (opacity).
    pub const OPACITY: SearchMode = SearchMode {
        include_noncommitted: true,
        respect_real_time: true,
    };
    /// Final-state serializability / global atomicity: committed only, any
    /// order.
    pub const SERIALIZABILITY: SearchMode = SearchMode {
        include_noncommitted: false,
        respect_real_time: false,
    };
    /// Strict serializability: committed only, real-time preserved.
    pub const STRICT_SERIALIZABILITY: SearchMode = SearchMode {
        include_noncommitted: false,
        respect_real_time: true,
    };
}

/// Statistics from a search, for the ablation benchmarks (E13).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// DFS nodes expanded.
    pub nodes: usize,
    /// Dead ends pruned by the memo table.
    pub memo_hits: usize,
    /// Placements rejected by legality replay.
    pub illegal_placements: usize,
}

/// The outcome of a serialization search.
#[derive(Clone, Debug)]
pub struct SearchOutcome {
    /// A witness if the history satisfies the criterion.
    pub witness: Option<Witness>,
    /// Search statistics.
    pub stats: SearchStats,
}

impl SearchOutcome {
    /// True if a witness was found.
    pub fn holds(&self) -> bool {
        self.witness.is_some()
    }
}

/// Engine configuration knobs (ablations are measured in `tm-bench`).
#[derive(Clone, Copy, Debug)]
pub struct SearchConfig {
    /// Enable the `(mask, state)` memo table (on by default).
    pub memoize: bool,
    /// Hard cap on DFS nodes; `None` for unlimited. When hit, the search
    /// conservatively reports "no witness found" via
    /// [`SearchOutcome::witness`] `= None` with `stats.nodes == cap`.
    pub node_limit: Option<usize>,
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig {
            memoize: true,
            node_limit: None,
        }
    }
}

const MAX_TXS: usize = 64;

struct TxInfo {
    id: TxId,
    view: TxView,
    status: TxStatus,
    /// Bitmask of transactions that must be placed before this one.
    pred_mask: u64,
}

/// The memoized DFS engine.
pub struct Search<'a> {
    specs: &'a SpecRegistry,
    config: SearchConfig,
    txs: Vec<TxInfo>,
    full_mask: u64,
    failed: HashSet<(u64, ObjStates)>,
    stats: SearchStats,
    stack: Vec<(TxId, Placement)>,
}

impl<'a> Search<'a> {
    /// Prepares a search over `h` under `mode`.
    pub fn new(
        h: &History,
        specs: &'a SpecRegistry,
        mode: SearchMode,
        config: SearchConfig,
    ) -> Result<Self, CheckError> {
        tm_model::check_well_formed(h).map_err(CheckError::NotWellFormed)?;
        let all = h.txs();
        let rt = RealTimeOrder::of(h);
        let selected: Vec<TxId> = if mode.include_noncommitted {
            all.clone()
        } else {
            all.iter()
                .copied()
                .filter(|t| h.status(*t).is_committed())
                .collect()
        };
        if selected.len() > MAX_TXS {
            return Err(CheckError::TooManyTransactions {
                found: selected.len(),
                max: MAX_TXS,
            });
        }
        let index_of = |t: TxId| selected.iter().position(|&x| x == t);
        let mut txs = Vec::with_capacity(selected.len());
        for &t in &selected {
            let mut pred_mask = 0u64;
            if mode.respect_real_time {
                for p in rt.predecessors(t) {
                    if let Some(i) = index_of(p) {
                        pred_mask |= 1 << i;
                    }
                }
            }
            txs.push(TxInfo {
                id: t,
                view: h.tx_view(t),
                status: h.status(t),
                pred_mask,
            });
        }
        let full_mask = if selected.is_empty() {
            0
        } else {
            (1u64 << selected.len()) - 1
        };
        Ok(Search {
            specs,
            config,
            txs,
            full_mask,
            failed: HashSet::new(),
            stats: SearchStats::default(),
            stack: Vec::new(),
        })
    }

    /// Runs the search to completion.
    pub fn run(mut self) -> Result<SearchOutcome, CheckError> {
        let states = ObjStates::new();
        match self.dfs(0, &states)? {
            true => Ok(SearchOutcome {
                witness: Some(Witness {
                    order: self.stack.clone(),
                }),
                stats: self.stats,
            }),
            false => Ok(SearchOutcome {
                witness: None,
                stats: self.stats,
            }),
        }
    }

    /// The placement decisions allowed for a transaction by its status in
    /// `H` (and the search mode).
    fn allowed_placements(&self, status: TxStatus) -> &'static [Placement] {
        match status {
            TxStatus::Committed => &[Placement::Committed],
            // A commit-pending transaction may appear committed or aborted
            // (the dual semantics of Section 5.2).
            TxStatus::CommitPending => &[Placement::Committed, Placement::Aborted],
            // Aborted, abort-pending, and live transactions can only be
            // aborted in a completion.
            _ => &[Placement::Aborted],
        }
    }

    fn dfs(&mut self, placed: u64, states: &ObjStates) -> Result<bool, CheckError> {
        if placed == self.full_mask {
            return Ok(true);
        }
        if let Some(limit) = self.config.node_limit {
            if self.stats.nodes >= limit {
                return Ok(false);
            }
        }
        self.stats.nodes += 1;
        let key = (placed, states.clone());
        if self.config.memoize && self.failed.contains(&key) {
            self.stats.memo_hits += 1;
            return Ok(false);
        }
        for i in 0..self.txs.len() {
            let bit = 1u64 << i;
            if placed & bit != 0 || self.txs[i].pred_mask & !placed != 0 {
                continue;
            }
            // Replay the candidate against the committed-prefix state.
            let after = match replay_tx(&self.txs[i].view, states, self.specs) {
                Ok(after) => after,
                Err(LegalityError::NoSpec(op)) => {
                    return Err(CheckError::NoSpec(op.obj.name().to_string()));
                }
                Err(LegalityError::IllegalResponse { .. }) => {
                    self.stats.illegal_placements += 1;
                    continue;
                }
            };
            for &placement in self.allowed_placements(self.txs[i].status) {
                let next_states = match placement {
                    Placement::Committed => after.clone().canonical(self.specs),
                    Placement::Aborted => states.clone(),
                };
                self.stack.push((self.txs[i].id, placement));
                if self.dfs(placed | bit, &next_states)? {
                    return Ok(true);
                }
                self.stack.pop();
            }
        }
        if self.config.memoize {
            self.failed.insert(key);
        }
        Ok(false)
    }
}

/// One-shot convenience: search `h` under `mode` with default configuration.
pub fn search(
    h: &History,
    specs: &SpecRegistry,
    mode: SearchMode,
) -> Result<SearchOutcome, CheckError> {
    Search::new(h, specs, mode, SearchConfig::default())?.run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_model::builder::{paper, HistoryBuilder};

    fn regs() -> SpecRegistry {
        SpecRegistry::registers()
    }

    #[test]
    fn empty_history_holds_everywhere() {
        let h = History::new();
        for mode in [
            SearchMode::OPACITY,
            SearchMode::SERIALIZABILITY,
            SearchMode::STRICT_SERIALIZABILITY,
        ] {
            assert!(search(&h, &regs(), mode).unwrap().holds());
        }
    }

    #[test]
    fn h1_serializable_but_not_opaque() {
        let h = paper::h1();
        assert!(search(&h, &regs(), SearchMode::SERIALIZABILITY)
            .unwrap()
            .holds());
        assert!(search(&h, &regs(), SearchMode::STRICT_SERIALIZABILITY)
            .unwrap()
            .holds());
        assert!(!search(&h, &regs(), SearchMode::OPACITY).unwrap().holds());
    }

    #[test]
    fn witness_reports_order_and_placements() {
        let h = paper::h5();
        let out = search(&h, &regs(), SearchMode::OPACITY).unwrap();
        let w = out.witness.expect("H5 is opaque");
        // The paper's witness is S = T2 · T1 · T3.
        assert_eq!(w.tx_order(), vec![TxId(2), TxId(1), TxId(3)]);
        assert_eq!(w.placement_of(TxId(2)), Some(Placement::Committed));
        assert_eq!(w.placement_of(TxId(1)), Some(Placement::Aborted));
        assert_eq!(w.placement_of(TxId(3)), Some(Placement::Committed));
    }

    #[test]
    fn ill_formed_history_is_an_error() {
        let h = HistoryBuilder::new().commit(1).build();
        assert!(matches!(
            search(&h, &regs(), SearchMode::OPACITY),
            Err(CheckError::NotWellFormed(_))
        ));
    }

    #[test]
    fn missing_spec_is_an_error() {
        let h = HistoryBuilder::new().read(1, "x", 0).commit_ok(1).build();
        let empty = SpecRegistry::new();
        assert!(matches!(
            search(&h, &empty, SearchMode::OPACITY),
            Err(CheckError::NoSpec(_))
        ));
    }

    #[test]
    fn memoization_prunes() {
        // Many concurrent committed writers: huge permutation space, small
        // state space; the memo table must keep node counts reasonable.
        let mut b = HistoryBuilder::new();
        for t in 1..=8u32 {
            b = b.write(t, "x", t as i64);
        }
        for t in 1..=8u32 {
            b = b.commit_ok(t);
        }
        let h = b.build();
        let on = Search::new(&h, &regs(), SearchMode::OPACITY, SearchConfig::default())
            .unwrap()
            .run()
            .unwrap();
        assert!(on.holds());
        let off = Search::new(
            &h,
            &regs(),
            SearchMode::OPACITY,
            SearchConfig {
                memoize: false,
                node_limit: Some(2_000_000),
            },
        )
        .unwrap()
        .run()
        .unwrap();
        assert!(off.holds());
        assert!(on.stats.nodes <= off.stats.nodes);
    }

    #[test]
    fn node_limit_stops_search() {
        let mut b = HistoryBuilder::new();
        for t in 1..=10u32 {
            b = b.write(t, "x", t as i64);
        }
        // No commits: all live, all must be aborted; trivially opaque, but
        // with a node limit of 1 the search gives up.
        let h = b.build();
        let out = Search::new(
            &h,
            &regs(),
            SearchMode::OPACITY,
            SearchConfig {
                memoize: true,
                node_limit: Some(1),
            },
        )
        .unwrap()
        .run()
        .unwrap();
        assert!(!out.holds());
        assert_eq!(out.stats.nodes, 1);
    }

    #[test]
    fn real_time_constrains_opacity_mode() {
        // T1 commits writing x=1 strictly before T2 starts; T2 reads the
        // initial 0: legal without real time, illegal with it.
        let h = HistoryBuilder::new()
            .write(1, "x", 1)
            .commit_ok(1)
            .read(2, "x", 0)
            .commit_ok(2)
            .build();
        assert!(!search(&h, &regs(), SearchMode::OPACITY).unwrap().holds());
        assert!(!search(&h, &regs(), SearchMode::STRICT_SERIALIZABILITY)
            .unwrap()
            .holds());
        assert!(search(&h, &regs(), SearchMode::SERIALIZABILITY)
            .unwrap()
            .holds());
    }

    #[test]
    fn commit_pending_dual_semantics() {
        // H4: T3 must see T2 committed, T1 must see it aborted — the search
        // must pick Committed for T2 and order T1 before it.
        let h = paper::h4();
        let out = search(&h, &regs(), SearchMode::OPACITY).unwrap();
        let w = out.witness.expect("H4 is opaque (Section 5.2)");
        assert_eq!(w.placement_of(TxId(2)), Some(Placement::Committed));
        let order = w.tx_order();
        let pos = |t: u32| order.iter().position(|&x| x == TxId(t)).unwrap();
        assert!(pos(1) < pos(2), "T1 must precede T2 in S: {order:?}");
        assert!(pos(2) < pos(3), "T2 must precede T3 in S: {order:?}");
    }
}
