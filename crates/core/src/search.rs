//! The serialization-search engine shared by all history-level checkers.
//!
//! Definition 1 (and its weakenings in Section 3) all have the same shape:
//! *does there exist a sequential history `S`, equivalent to (a completion
//! of / the committed projection of) `H`, that preserves (optionally) the
//! real-time order of `H` and in which every transaction is legal?*
//!
//! The engine performs a depth-first search over placements of transactions
//! into the sequential order `S`, one at a time:
//!
//! * a transaction may be placed only when all its real-time predecessors
//!   (if real-time order is enforced) are already placed;
//! * placing a transaction requires its operations to replay legally against
//!   the object states produced by the *committed* transactions placed so
//!   far (this is exactly "legal in S": an aborted transaction is validated
//!   against the committed prefix but does not contribute effects);
//! * a commit-pending transaction may be placed either as committed or as
//!   aborted — which folds the choice of a member of `Complete(H)` into the
//!   search;
//! * dead ends are memoized on `(set of placed transactions, canonical
//!   object states)`, which prunes the factorial search to the number of
//!   distinct reachable states.
//!
//! ## The resumable core
//!
//! The engine is a **[`SearchCore`]**: a persistent structure fed one event
//! at a time ([`SearchCore::extend`]) and queried for a verdict on the
//! history seen so far ([`SearchCore::check`]). Three things survive across
//! checks and make the online monitor asymptotically cheaper than
//! re-checking every prefix from scratch:
//!
//! 1. **Per-transaction metadata** (views, statuses, real-time predecessor
//!    masks) is maintained incrementally, so a check never re-scans the
//!    history;
//! 2. **The memo table of dead ends** is kept between checks and only
//!    selectively invalidated. Appending events can only *tighten* the
//!    search (ops accumulate, statuses narrow) except in two cases, which
//!    drop exactly the entries they can unsound: a completed operation or a
//!    `tryC` of transaction `t` drops the entries in which `t` was still
//!    unplaced (its new op / widened placement set could rescue those dead
//!    ends);
//! 3. **The previous witness** biases the DFS candidate order, so when the
//!    new events merely extend the old serialization — the common case — the
//!    check walks straight down the witness in `O(|H|)` replay work with no
//!    backtracking.
//!
//! Object states are mutated **in place** during the DFS via the
//! apply/undo delta API of `tm-model` ([`tm_model::StatesDelta`]) instead of
//! being cloned per placement; the only remaining clone is the one that
//! stores a dead end into the memo table, and [`SearchStats`] reports both
//! counts.
//!
//! Opacity checking over arbitrary histories is NP-hard (it embeds
//! view-serializability), so the worst case is necessarily exponential; the
//! memoized search is nonetheless fast for the history sizes produced by
//! tests, the random-history cross-validation, and recorded STM executions.

use std::collections::{HashMap, HashSet};

use tm_model::legal::{replay_tx_mut, LegalityError};
use tm_model::wellformed::WfError;
use tm_model::{Event, History, ObjStates, SpecRegistry, StatesDelta, TxId, TxStatus, TxView};

/// How a transaction was placed in a serialization witness.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Placement {
    /// Placed as a committed transaction (its effects fold into the state).
    Committed,
    /// Placed as an aborted transaction (validated, effects discarded).
    Aborted,
}

/// A successful serialization: the order in which transactions form the
/// equivalent sequential history `S`, with the decided status of each.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct Witness {
    /// Transactions in serialization order with their placement decisions.
    pub order: Vec<(TxId, Placement)>,
}

impl Witness {
    /// The serialization order without placement decisions.
    pub fn tx_order(&self) -> Vec<TxId> {
        self.order.iter().map(|(t, _)| *t).collect()
    }

    /// The decision for `t`, if `t` was placed.
    pub fn placement_of(&self, t: TxId) -> Option<Placement> {
        self.order.iter().find(|(x, _)| *x == t).map(|(_, p)| *p)
    }
}

/// Hard errors that make a search impossible (as opposed to "not opaque").
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CheckError {
    /// The input history is not well-formed.
    NotWellFormed(tm_model::WfError),
    /// More transactions than the bitmask-based search supports.
    TooManyTransactions {
        /// Number of transactions found in the history.
        found: usize,
        /// Maximum supported by the engine.
        max: usize,
    },
    /// An operation targets an object with no sequential specification.
    NoSpec(String),
}

impl std::fmt::Display for CheckError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckError::NotWellFormed(e) => write!(f, "history not well-formed: {e}"),
            CheckError::TooManyTransactions { found, max } => {
                write!(f, "{found} transactions exceed engine limit of {max}")
            }
            CheckError::NoSpec(obj) => write!(f, "no sequential specification for {obj}"),
        }
    }
}

impl std::error::Error for CheckError {}

/// What the search engine should look for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SearchMode {
    /// Include non-committed transactions (live/aborted/commit-pending) in
    /// `S` and require their legality. `true` for opacity; `false` for
    /// serializability-style criteria, which erase them.
    pub include_noncommitted: bool,
    /// Require `S` to preserve the real-time order `≺_H`.
    pub respect_real_time: bool,
}

impl SearchMode {
    /// The mode of Definition 1 (opacity).
    pub const OPACITY: SearchMode = SearchMode {
        include_noncommitted: true,
        respect_real_time: true,
    };
    /// Final-state serializability / global atomicity: committed only, any
    /// order.
    pub const SERIALIZABILITY: SearchMode = SearchMode {
        include_noncommitted: false,
        respect_real_time: false,
    };
    /// Strict serializability: committed only, real-time preserved.
    pub const STRICT_SERIALIZABILITY: SearchMode = SearchMode {
        include_noncommitted: false,
        respect_real_time: true,
    };
}

/// Statistics from a search, for the ablation benchmarks (E13).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// DFS nodes expanded.
    pub nodes: usize,
    /// Dead ends pruned by the memo table.
    pub memo_hits: usize,
    /// Placements rejected by legality replay.
    pub illegal_placements: usize,
    /// `ObjStates` snapshots actually cloned (memo-table inserts — the only
    /// clones left in the engine).
    pub state_clones: usize,
    /// `ObjStates` clones *avoided* by the in-place apply/undo replay: one
    /// per placement expansion and one per memo probe, each of which the
    /// pre-resumable engine paid with a full snapshot clone.
    pub clones_saved: usize,
}

impl SearchStats {
    /// Accumulates `other` into `self` (used for lifetime totals).
    pub fn absorb(&mut self, other: &SearchStats) {
        self.nodes += other.nodes;
        self.memo_hits += other.memo_hits;
        self.illegal_placements += other.illegal_placements;
        self.state_clones += other.state_clones;
        self.clones_saved += other.clones_saved;
    }
}

/// The outcome of a serialization search.
#[derive(Clone, Debug)]
pub struct SearchOutcome {
    /// A witness if the history satisfies the criterion.
    pub witness: Option<Witness>,
    /// Search statistics.
    pub stats: SearchStats,
}

impl SearchOutcome {
    /// True if a witness was found.
    pub fn holds(&self) -> bool {
        self.witness.is_some()
    }
}

/// Engine configuration knobs (ablations are measured in `tm-bench`).
#[derive(Clone, Copy, Debug)]
pub struct SearchConfig {
    /// Enable the `(mask, state)` memo table (on by default).
    pub memoize: bool,
    /// Hard cap on DFS nodes per check; `None` for unlimited. When hit, the
    /// search conservatively reports "no witness found" via
    /// [`SearchOutcome::witness`] `= None` with `stats.nodes == cap`.
    pub node_limit: Option<usize>,
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig {
            memoize: true,
            node_limit: None,
        }
    }
}

const MAX_TXS: usize = 64;

/// Mirror of the per-transaction well-formedness automaton of
/// `tm_model::wellformed`, maintained incrementally so that
/// [`SearchCore::extend`] rejects exactly the events `check_well_formed`
/// would reject, with the same [`WfError`].
#[derive(Clone, Debug, PartialEq, Eq)]
enum TxWf {
    Idle,
    OpPending(Event),
    CommitPending,
    AbortPending,
    Done,
}

/// Per-transaction state of the resumable core.
struct TxCell {
    id: TxId,
    view: TxView,
    wf: TxWf,
    issued_try_abort: bool,
    /// Bit index in the placement masks, assigned when the transaction
    /// becomes *selected* under the search mode (immediately for opacity;
    /// at its commit event for committed-only criteria).
    bit: Option<u32>,
    /// Real-time predecessors (bits of selected transactions completed
    /// before this transaction's first event), frozen at creation: appending
    /// events never adds real-time edges between existing transactions.
    pred_mask: u64,
}

/// The resumable serialization-search engine.
///
/// Feed events with [`SearchCore::extend`]; ask for a verdict on everything
/// fed so far with [`SearchCore::check`]. Between checks the core keeps its
/// transaction metadata, its memo table of dead ends (selectively
/// invalidated — see the module docs for the soundness argument), and the
/// last witness (which biases the next check's DFS order towards extending
/// it). One-shot callers go through [`Search`] / [`search`]; stateful
/// callers (the online monitor, the `CheckSession` convenience) keep the
/// core alive across a growing history.
pub struct SearchCore<'a> {
    specs: &'a SpecRegistry,
    mode: SearchMode,
    config: SearchConfig,
    txs: Vec<TxCell>,
    index: HashMap<TxId, usize>,
    /// Cell index per assigned bit.
    by_bit: Vec<usize>,
    events_seen: usize,
    selected_mask: u64,
    /// Bits of selected transactions that are completed (used to freeze
    /// `pred_mask` for transactions created later).
    completed_selected_mask: u64,
    /// Dead ends: placed-set mask → canonical object states from which the
    /// remaining transactions cannot be completed.
    memo: HashMap<u64, HashSet<ObjStates>>,
    last_witness: Option<Witness>,
    stats: SearchStats,
    lifetime: SearchStats,
    checks: usize,
    /// DFS scratch: the serialization under construction.
    stack: Vec<(TxId, Placement)>,
    /// DFS scratch: candidate bit order, biased by the last witness.
    order: Vec<u32>,
    /// Set once the node limit fires during the current check. From that
    /// moment every unwinding frame's subtree is only partially explored,
    /// so its "dead end" is unreliable and must NOT enter the persistent
    /// memo table (a truncated false would otherwise poison later checks).
    truncated: bool,
}

impl<'a> SearchCore<'a> {
    /// A core over an initially empty history.
    pub fn new(specs: &'a SpecRegistry, mode: SearchMode, config: SearchConfig) -> Self {
        SearchCore {
            specs,
            mode,
            config,
            txs: Vec::new(),
            index: HashMap::new(),
            by_bit: Vec::new(),
            events_seen: 0,
            selected_mask: 0,
            completed_selected_mask: 0,
            memo: HashMap::new(),
            last_witness: None,
            stats: SearchStats::default(),
            lifetime: SearchStats::default(),
            checks: 0,
            stack: Vec::new(),
            order: Vec::new(),
            truncated: false,
        }
    }

    /// Number of events consumed so far.
    pub fn events_seen(&self) -> usize {
        self.events_seen
    }

    /// Statistics of the most recent [`SearchCore::check`].
    pub fn last_stats(&self) -> SearchStats {
        self.stats
    }

    /// Statistics accumulated over every check since creation.
    pub fn lifetime_stats(&self) -> SearchStats {
        self.lifetime
    }

    /// Number of checks run since creation.
    pub fn checks(&self) -> usize {
        self.checks
    }

    /// Consumes one event, updating transaction metadata incrementally and
    /// invalidating exactly the memo entries the event can unsound.
    ///
    /// Fails — leaving the core unchanged, so the event is *not* consumed —
    /// if the event violates well-formedness or overflows the engine's
    /// transaction limit.
    pub fn extend(&mut self, e: &Event) -> Result<(), CheckError> {
        let tx = e.tx();
        let index = self.events_seen;
        let ci = match self.index.get(&tx) {
            Some(&ci) => ci,
            None => {
                // First event of a new transaction. Validate before creating
                // the cell so a failed extend leaves the core untouched.
                match e {
                    Event::Inv { .. } | Event::TryCommit(_) | Event::TryAbort(_) => {}
                    _ => {
                        return Err(CheckError::NotWellFormed(WfError::UnmatchedResponse {
                            tx,
                            index,
                        }))
                    }
                }
                let selected_now = self.mode.include_noncommitted;
                if selected_now && self.by_bit.len() >= MAX_TXS {
                    return Err(CheckError::TooManyTransactions {
                        found: self.by_bit.len() + 1,
                        max: MAX_TXS,
                    });
                }
                let ci = self.txs.len();
                let pred_mask = if self.mode.respect_real_time {
                    self.completed_selected_mask
                } else {
                    0
                };
                self.txs.push(TxCell {
                    id: tx,
                    view: TxView {
                        tx,
                        ops: Vec::new(),
                        pending: None,
                        status: TxStatus::Live,
                    },
                    wf: TxWf::Idle,
                    issued_try_abort: false,
                    bit: None,
                    pred_mask,
                });
                self.index.insert(tx, ci);
                if selected_now {
                    self.assign_bit(ci);
                }
                ci
            }
        };

        // Well-formedness transition (mirrors tm_model::wellformed exactly).
        let next_wf = match (&self.txs[ci].wf, e) {
            (TxWf::Done, _) => {
                return Err(CheckError::NotWellFormed(WfError::EventAfterCompletion {
                    tx,
                    index,
                }))
            }
            (TxWf::Idle, Event::Inv { .. }) => TxWf::OpPending(e.clone()),
            (TxWf::Idle, Event::TryCommit(_)) => TxWf::CommitPending,
            (TxWf::Idle, Event::TryAbort(_)) => TxWf::AbortPending,
            (TxWf::Idle, _) => {
                return Err(CheckError::NotWellFormed(WfError::UnmatchedResponse {
                    tx,
                    index,
                }))
            }
            (TxWf::OpPending(inv), Event::Ret { .. }) => {
                if e.matches_invocation(inv) {
                    TxWf::Idle
                } else {
                    return Err(CheckError::NotWellFormed(WfError::UnmatchedResponse {
                        tx,
                        index,
                    }));
                }
            }
            (TxWf::OpPending(_), Event::Abort(_)) => TxWf::Done,
            (TxWf::OpPending(_), Event::Commit(_)) => {
                return Err(CheckError::NotWellFormed(WfError::CommitAnswersOperation {
                    tx,
                    index,
                }))
            }
            (TxWf::OpPending(_), _) => {
                return Err(CheckError::NotWellFormed(WfError::InvocationWhilePending {
                    tx,
                    index,
                }))
            }
            (TxWf::CommitPending, Event::Commit(_)) | (TxWf::CommitPending, Event::Abort(_)) => {
                TxWf::Done
            }
            (TxWf::CommitPending, _) => {
                return Err(CheckError::NotWellFormed(WfError::BadEventAfterTryCommit {
                    tx,
                    index,
                }))
            }
            (TxWf::AbortPending, Event::Abort(_)) => TxWf::Done,
            (TxWf::AbortPending, _) => {
                return Err(CheckError::NotWellFormed(WfError::BadEventAfterTryAbort {
                    tx,
                    index,
                }))
            }
        };
        // Last fallible step, checked BEFORE committing any mutation so a
        // failed extend leaves the core exactly as it was: in committed-only
        // modes a Commit event selects the transaction, which needs a bit.
        if matches!(e, Event::Commit(_))
            && !self.mode.include_noncommitted
            && self.txs[ci].bit.is_none()
            && self.by_bit.len() >= MAX_TXS
        {
            return Err(CheckError::TooManyTransactions {
                found: self.by_bit.len() + 1,
                max: MAX_TXS,
            });
        }
        self.txs[ci].wf = next_wf;

        // Apply the event to the view/status and invalidate memo entries.
        match e {
            Event::Inv { obj, op, args, .. } => {
                // A pending invocation imposes no legality constraint: no
                // memo entry can become unsound.
                self.txs[ci].view.pending = Some((obj.clone(), op.clone(), args.clone()));
            }
            Event::Ret { val, .. } => {
                let (obj, op, args) = self.txs[ci]
                    .view
                    .pending
                    .take()
                    .expect("WF automaton guarantees a pending invocation");
                self.txs[ci].view.ops.push(tm_model::OpExec {
                    tx,
                    obj,
                    op,
                    args,
                    val: val.clone(),
                });
                // The new operation could rescue dead ends in which this
                // transaction was still unplaced (its committed placement
                // now changes the state differently). Entries that already
                // placed it remain sound: they only claim things about the
                // *other* transactions.
                self.drop_entries_not_placing(ci);
            }
            Event::TryCommit(_) => {
                self.txs[ci].view.status = TxStatus::CommitPending;
                // Widening: {Aborted} → {Committed, Aborted}. Same rule as a
                // new operation.
                self.drop_entries_not_placing(ci);
            }
            Event::TryAbort(_) => {
                self.txs[ci].issued_try_abort = true;
                self.txs[ci].view.status = TxStatus::AbortPending;
            }
            Event::Commit(_) => {
                self.txs[ci].view.status = TxStatus::Committed;
                if !self.mode.include_noncommitted {
                    // The transaction just became selected (the bit capacity
                    // was verified before any mutation above): every old
                    // entry's "remaining" set grew by it, so all bets are
                    // off.
                    self.assign_bit(ci);
                    self.memo.clear();
                }
                if let Some(b) = self.txs[ci].bit {
                    self.completed_selected_mask |= 1 << b;
                }
            }
            Event::Abort(_) => {
                // An abort answering a pending operation leaves the
                // operation without effect (tm_model::History::tx_view drops
                // the pending invocation); no completed op is added, so no
                // entry can become unsound.
                self.txs[ci].view.pending = None;
                self.txs[ci].view.status = if self.txs[ci].issued_try_abort {
                    TxStatus::Aborted
                } else {
                    TxStatus::ForcefullyAborted
                };
                if let Some(b) = self.txs[ci].bit {
                    self.completed_selected_mask |= 1 << b;
                }
            }
        }
        self.events_seen += 1;
        Ok(())
    }

    fn assign_bit(&mut self, ci: usize) {
        let b = self.by_bit.len() as u32;
        self.txs[ci].bit = Some(b);
        self.by_bit.push(ci);
        self.selected_mask |= 1 << b;
    }

    /// Drops memo entries whose placed-set does *not* contain transaction
    /// `ci` — those are the entries a change to `ci`'s ops or placement set
    /// could rescue.
    fn drop_entries_not_placing(&mut self, ci: usize) {
        if let Some(b) = self.txs[ci].bit {
            let bit = 1u64 << b;
            self.memo.retain(|&mask, _| mask & bit != 0);
        }
    }

    /// The placement decisions allowed for a transaction by its status in
    /// `H` (and the search mode).
    fn allowed_placements(status: TxStatus) -> &'static [Placement] {
        match status {
            TxStatus::Committed => &[Placement::Committed],
            // A commit-pending transaction may appear committed or aborted
            // (the dual semantics of Section 5.2).
            TxStatus::CommitPending => &[Placement::Committed, Placement::Aborted],
            // Aborted, abort-pending, and live transactions can only be
            // aborted in a completion.
            _ => &[Placement::Aborted],
        }
    }

    /// Decides the criterion for the history fed so far.
    ///
    /// The DFS candidate order is biased towards the previous check's
    /// witness, so a check whose new events merely extend the old
    /// serialization runs in linear replay time with no backtracking.
    pub fn check(&mut self) -> Result<SearchOutcome, CheckError> {
        self.checks += 1;
        self.stats = SearchStats::default();
        self.stack.clear();
        // Candidate order: last witness first (it remains real-time
        // compatible — appending events never orders two existing
        // transactions), then any transactions it does not cover, in
        // first-selection order.
        self.order.clear();
        let mut seen = 0u64;
        if let Some(w) = &self.last_witness {
            for (t, _) in &w.order {
                if let Some(&ci) = self.index.get(t) {
                    if let Some(b) = self.txs[ci].bit {
                        if seen & (1 << b) == 0 {
                            seen |= 1 << b;
                            self.order.push(b);
                        }
                    }
                }
            }
        }
        for b in 0..self.by_bit.len() as u32 {
            if seen & (1 << b) == 0 {
                self.order.push(b);
            }
        }
        let mut states = ObjStates::new();
        let mut delta = StatesDelta::new();
        self.truncated = false;
        let found = self.dfs(0, &mut states, &mut delta)?;
        self.lifetime.absorb(&self.stats);
        if found {
            let witness = Witness {
                order: self.stack.clone(),
            };
            self.last_witness = Some(witness.clone());
            Ok(SearchOutcome {
                witness: Some(witness),
                stats: self.stats,
            })
        } else {
            Ok(SearchOutcome {
                witness: None,
                stats: self.stats,
            })
        }
    }

    fn dfs(
        &mut self,
        placed: u64,
        states: &mut ObjStates,
        delta: &mut StatesDelta,
    ) -> Result<bool, CheckError> {
        if placed == self.selected_mask {
            return Ok(true);
        }
        if let Some(limit) = self.config.node_limit {
            if self.stats.nodes >= limit {
                self.truncated = true;
                return Ok(false);
            }
        }
        self.stats.nodes += 1;
        if self.config.memoize {
            self.stats.clones_saved += 1; // memo probe without a key clone
            if let Some(set) = self.memo.get(&placed) {
                if set.contains(states) {
                    self.stats.memo_hits += 1;
                    return Ok(false);
                }
            }
        }
        for k in 0..self.order.len() {
            let b = self.order[k];
            let bit = 1u64 << b;
            let ci = self.by_bit[b as usize];
            if placed & bit != 0 || self.txs[ci].pred_mask & !placed != 0 {
                continue;
            }
            let mark = delta.mark();
            // Replay the candidate against the committed-prefix state.
            match replay_tx_mut(&self.txs[ci].view, states, self.specs, delta) {
                Ok(()) => {}
                Err(LegalityError::NoSpec(op)) => {
                    return Err(CheckError::NoSpec(op.obj.name().to_string()));
                }
                Err(LegalityError::IllegalResponse { .. }) => {
                    self.stats.illegal_placements += 1;
                    continue;
                }
            }
            let id = self.txs[ci].id;
            let status = self.txs[ci].view.status;
            for &placement in Self::allowed_placements(status) {
                if placement == Placement::Aborted {
                    // Validated above; effects are discarded.
                    delta.rollback_to(states, mark);
                }
                self.stats.clones_saved += 1; // placement without a clone
                self.stack.push((id, placement));
                if self.dfs(placed | bit, states, delta)? {
                    return Ok(true);
                }
                self.stack.pop();
            }
            delta.rollback_to(states, mark);
        }
        // Frames that finished exploring before the node limit fired are
        // genuine dead ends; frames unwinding after it are not — caching
        // them would let a truncated "no" poison every later check.
        if self.config.memoize && !self.truncated {
            self.stats.state_clones += 1;
            self.memo.entry(placed).or_default().insert(states.clone());
        }
        Ok(false)
    }
}

/// A stateful checking session over a growing history: the façade through
/// which both the batch checkers (`is_opaque*`, the Section-3 criteria) and
/// the online monitor drive the resumable [`SearchCore`].
///
/// Feed events with [`CheckSession::extend`] (or let
/// [`CheckSession::check_history`] consume the suffix of a monotonically
/// growing history) and decide with [`CheckSession::check`]. The underlying
/// core keeps its memo table and witness between checks, so checking every
/// prefix of a history costs far less than independent batch checks.
pub struct CheckSession<'a> {
    core: SearchCore<'a>,
}

impl<'a> CheckSession<'a> {
    /// A session over an initially empty history.
    pub fn new(specs: &'a SpecRegistry, mode: SearchMode, config: SearchConfig) -> Self {
        CheckSession {
            core: SearchCore::new(specs, mode, config),
        }
    }

    /// Consumes one event. See [`SearchCore::extend`].
    pub fn extend(&mut self, e: &Event) -> Result<(), CheckError> {
        self.core.extend(e)
    }

    /// Decides the criterion for the events consumed so far.
    pub fn check(&mut self) -> Result<SearchOutcome, CheckError> {
        self.core.check()
    }

    /// Consumes the not-yet-seen suffix of `h` and checks.
    ///
    /// `h` must be an extension of the history fed so far (the session
    /// trusts the already-consumed prefix and only reads `h`'s tail) — which
    /// is exactly the monitor's situation, and trivially true for one-shot
    /// batch checks on a fresh session.
    pub fn check_history(&mut self, h: &History) -> Result<SearchOutcome, CheckError> {
        let seen = self.core.events_seen();
        for e in &h.events()[seen.min(h.len())..] {
            self.core.extend(e)?;
        }
        self.core.check()
    }

    /// Number of events consumed so far.
    pub fn events_seen(&self) -> usize {
        self.core.events_seen()
    }

    /// Statistics of the most recent check.
    pub fn last_stats(&self) -> SearchStats {
        self.core.last_stats()
    }

    /// Statistics accumulated over every check in this session.
    pub fn lifetime_stats(&self) -> SearchStats {
        self.core.lifetime_stats()
    }

    /// Number of checks run in this session.
    pub fn checks(&self) -> usize {
        self.core.checks()
    }
}

/// The one-shot façade over [`SearchCore`] (kept for the original API).
pub struct Search<'a> {
    core: SearchCore<'a>,
}

impl<'a> Search<'a> {
    /// Prepares a search over `h` under `mode`.
    pub fn new(
        h: &History,
        specs: &'a SpecRegistry,
        mode: SearchMode,
        config: SearchConfig,
    ) -> Result<Self, CheckError> {
        let mut core = SearchCore::new(specs, mode, config);
        for e in h.events() {
            core.extend(e)?;
        }
        Ok(Search { core })
    }

    /// Runs the search to completion.
    pub fn run(mut self) -> Result<SearchOutcome, CheckError> {
        self.core.check()
    }
}

/// One-shot convenience: search `h` under `mode` with default configuration.
pub fn search(
    h: &History,
    specs: &SpecRegistry,
    mode: SearchMode,
) -> Result<SearchOutcome, CheckError> {
    Search::new(h, specs, mode, SearchConfig::default())?.run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_model::builder::{paper, HistoryBuilder};

    fn regs() -> SpecRegistry {
        SpecRegistry::registers()
    }

    #[test]
    fn empty_history_holds_everywhere() {
        let h = History::new();
        for mode in [
            SearchMode::OPACITY,
            SearchMode::SERIALIZABILITY,
            SearchMode::STRICT_SERIALIZABILITY,
        ] {
            assert!(search(&h, &regs(), mode).unwrap().holds());
        }
    }

    #[test]
    fn h1_serializable_but_not_opaque() {
        let h = paper::h1();
        assert!(search(&h, &regs(), SearchMode::SERIALIZABILITY)
            .unwrap()
            .holds());
        assert!(search(&h, &regs(), SearchMode::STRICT_SERIALIZABILITY)
            .unwrap()
            .holds());
        assert!(!search(&h, &regs(), SearchMode::OPACITY).unwrap().holds());
    }

    #[test]
    fn witness_reports_order_and_placements() {
        let h = paper::h5();
        let out = search(&h, &regs(), SearchMode::OPACITY).unwrap();
        let w = out.witness.expect("H5 is opaque");
        // The paper's witness is S = T2 · T1 · T3.
        assert_eq!(w.tx_order(), vec![TxId(2), TxId(1), TxId(3)]);
        assert_eq!(w.placement_of(TxId(2)), Some(Placement::Committed));
        assert_eq!(w.placement_of(TxId(1)), Some(Placement::Aborted));
        assert_eq!(w.placement_of(TxId(3)), Some(Placement::Committed));
    }

    #[test]
    fn ill_formed_history_is_an_error() {
        let h = HistoryBuilder::new().commit(1).build();
        assert!(matches!(
            search(&h, &regs(), SearchMode::OPACITY),
            Err(CheckError::NotWellFormed(_))
        ));
    }

    #[test]
    fn missing_spec_is_an_error() {
        let h = HistoryBuilder::new().read(1, "x", 0).commit_ok(1).build();
        let empty = SpecRegistry::new();
        assert!(matches!(
            search(&h, &empty, SearchMode::OPACITY),
            Err(CheckError::NoSpec(_))
        ));
    }

    #[test]
    fn memoization_prunes() {
        // Many concurrent committed writers: huge permutation space, small
        // state space; the memo table must keep node counts reasonable.
        let mut b = HistoryBuilder::new();
        for t in 1..=8u32 {
            b = b.write(t, "x", t as i64);
        }
        for t in 1..=8u32 {
            b = b.commit_ok(t);
        }
        let h = b.build();
        let on = Search::new(&h, &regs(), SearchMode::OPACITY, SearchConfig::default())
            .unwrap()
            .run()
            .unwrap();
        assert!(on.holds());
        let off = Search::new(
            &h,
            &regs(),
            SearchMode::OPACITY,
            SearchConfig {
                memoize: false,
                node_limit: Some(2_000_000),
            },
        )
        .unwrap()
        .run()
        .unwrap();
        assert!(off.holds());
        assert!(on.stats.nodes <= off.stats.nodes);
    }

    #[test]
    fn node_limit_stops_search() {
        let mut b = HistoryBuilder::new();
        for t in 1..=10u32 {
            b = b.write(t, "x", t as i64);
        }
        // No commits: all live, all must be aborted; trivially opaque, but
        // with a node limit of 1 the search gives up.
        let h = b.build();
        let out = Search::new(
            &h,
            &regs(),
            SearchMode::OPACITY,
            SearchConfig {
                memoize: true,
                node_limit: Some(1),
            },
        )
        .unwrap()
        .run()
        .unwrap();
        assert!(!out.holds());
        assert_eq!(out.stats.nodes, 1);
    }

    #[test]
    fn real_time_constrains_opacity_mode() {
        // T1 commits writing x=1 strictly before T2 starts; T2 reads the
        // initial 0: legal without real time, illegal with it.
        let h = HistoryBuilder::new()
            .write(1, "x", 1)
            .commit_ok(1)
            .read(2, "x", 0)
            .commit_ok(2)
            .build();
        assert!(!search(&h, &regs(), SearchMode::OPACITY).unwrap().holds());
        assert!(!search(&h, &regs(), SearchMode::STRICT_SERIALIZABILITY)
            .unwrap()
            .holds());
        assert!(search(&h, &regs(), SearchMode::SERIALIZABILITY)
            .unwrap()
            .holds());
    }

    #[test]
    fn commit_pending_dual_semantics() {
        // H4: T3 must see T2 committed, T1 must see it aborted — the search
        // must pick Committed for T2 and order T1 before it.
        let h = paper::h4();
        let out = search(&h, &regs(), SearchMode::OPACITY).unwrap();
        let w = out.witness.expect("H4 is opaque (Section 5.2)");
        assert_eq!(w.placement_of(TxId(2)), Some(Placement::Committed));
        let order = w.tx_order();
        let pos = |t: u32| order.iter().position(|&x| x == TxId(t)).unwrap();
        assert!(pos(1) < pos(2), "T1 must precede T2 in S: {order:?}");
        assert!(pos(2) < pos(3), "T2 must precede T3 in S: {order:?}");
    }

    // ---- resumable-core behavior ---------------------------------------

    /// Checks every prefix of `h` through one session and independently
    /// from scratch; verdicts must agree at every prefix.
    fn assert_session_matches_batch(h: &History) {
        let specs = regs();
        let mut session = CheckSession::new(&specs, SearchMode::OPACITY, SearchConfig::default());
        for (i, e) in h.events().iter().enumerate() {
            session.extend(e).unwrap();
            let live = session.check().unwrap().holds();
            let fresh = search(&h.prefix(i + 1), &specs, SearchMode::OPACITY)
                .unwrap()
                .holds();
            assert_eq!(live, fresh, "prefix {} of {h}", i + 1);
        }
    }

    #[test]
    fn session_verdicts_match_batch_on_paper_histories() {
        for h in [paper::h1(), paper::h3(), paper::h4(), paper::h5()] {
            assert_session_matches_batch(&h);
        }
    }

    #[test]
    fn try_commit_widening_invalidates_stale_dead_ends() {
        // With T1 live, T2's committed read of T1's write is a dead end; the
        // tryC of T1 widens its placements to {Committed, Aborted} and the
        // same session must now find the witness. A memo table kept blindly
        // across the widening would wrongly report "not opaque" forever.
        let specs = regs();
        let mut s = CheckSession::new(&specs, SearchMode::OPACITY, SearchConfig::default());
        let prefix = HistoryBuilder::new()
            .write(1, "x", 1)
            .read(2, "x", 1)
            .build();
        for e in prefix.events() {
            s.extend(e).unwrap();
        }
        assert!(!s.check().unwrap().holds(), "dirty read while T1 is live");
        s.extend(&Event::TryCommit(TxId(1))).unwrap();
        assert!(
            s.check().unwrap().holds(),
            "commit-pending T1 may now be placed committed"
        );
    }

    #[test]
    fn new_op_invalidates_stale_dead_ends() {
        // T2 commits a read of y=7 before anyone wrote 7: not opaque. Then
        // live T1 (which started before T2 completed) finishes a write of
        // y=7: the full history becomes opaque (T1 placed committed before
        // T2). The session must not let the old dead end veto the rescue.
        let specs = regs();
        let mut s = CheckSession::new(&specs, SearchMode::OPACITY, SearchConfig::default());
        let prefix = HistoryBuilder::new()
            .write(1, "x", 1)
            .read(2, "y", 7)
            .try_commit(2)
            .commit(2)
            .build();
        for e in prefix.events() {
            s.extend(e).unwrap();
        }
        assert!(!s.check().unwrap().holds());
        let rescue = HistoryBuilder::new().write(1, "y", 7).build();
        for e in rescue.events() {
            s.extend(e).unwrap();
        }
        s.extend(&Event::TryCommit(TxId(1))).unwrap();
        assert!(s.check().unwrap().holds(), "T1(C) · T2(C) is a witness");
        // Cross-check against a from-scratch search on the full history.
        let mut full = prefix.clone();
        for e in rescue.events() {
            full.push(e.clone());
        }
        full.push(Event::TryCommit(TxId(1)));
        assert!(search(&full, &specs, SearchMode::OPACITY).unwrap().holds());
    }

    #[test]
    fn witness_bias_makes_extension_checks_linear() {
        // A long legal chain: after the first check, every further check
        // walks straight down the previous witness — nodes per check stay
        // at (#txs placed + 1), with no backtracking.
        let specs = regs();
        let mut s = CheckSession::new(&specs, SearchMode::OPACITY, SearchConfig::default());
        let mut b = HistoryBuilder::new();
        for t in 1..=12u32 {
            b = b
                .read(t, "x", (t - 1) as i64)
                .write(t, "x", t as i64)
                .commit_ok(t);
        }
        let h = b.build();
        for e in h.events() {
            s.extend(e).unwrap();
        }
        let out = s.check().unwrap();
        assert!(out.holds());
        let first_nodes = out.stats.nodes;
        // Extend by one more transaction and re-check: the incremental cost
        // must be two extra nodes (the new placement + the new root), not a
        // re-exploration.
        let ext = HistoryBuilder::new()
            .read(13, "x", 12)
            .write(13, "x", 13)
            .commit_ok(13)
            .build();
        for e in ext.events() {
            s.extend(e).unwrap();
        }
        let out2 = s.check().unwrap();
        assert!(out2.holds());
        assert!(
            out2.stats.nodes <= first_nodes + 2,
            "extension check expanded {} nodes (first: {first_nodes})",
            out2.stats.nodes
        );
        assert_eq!(out2.stats.illegal_placements, 0);
    }

    #[test]
    fn in_place_replay_reports_saved_clones() {
        let h = paper::h5();
        let out = search(&h, &regs(), SearchMode::OPACITY).unwrap();
        assert!(out.holds());
        assert!(
            out.stats.clones_saved > out.stats.state_clones,
            "the engine should avoid more clones than it performs: {:?}",
            out.stats
        );
    }

    #[test]
    fn failed_extend_leaves_the_core_usable() {
        let specs = regs();
        let mut s = CheckSession::new(&specs, SearchMode::OPACITY, SearchConfig::default());
        s.extend(&Event::TryCommit(TxId(1))).unwrap();
        // A second tryC is ill-formed and must be rejected without consuming.
        assert!(matches!(
            s.extend(&Event::TryCommit(TxId(1))),
            Err(CheckError::NotWellFormed(_))
        ));
        assert_eq!(s.events_seen(), 1);
        // The valid continuation still works.
        s.extend(&Event::Commit(TxId(1))).unwrap();
        assert!(s.check().unwrap().holds());
    }

    #[test]
    fn truncated_checks_do_not_poison_the_memo() {
        // With a node limit, a check can give up ("no witness found") on a
        // history that IS opaque. Those truncated explorations must not be
        // cached as dead ends: a later check of the same session with more
        // budget headroom — or simply re-running after the limit reset —
        // must still be able to find the witness.
        let specs = regs();
        let config = SearchConfig {
            memoize: true,
            node_limit: Some(3),
        };
        // H5 needs more than 3 nodes; per-check the limit resets, so the
        // second identical check must not be vetoed by entries recorded
        // while the first was truncated.
        let h = paper::h5();
        let mut s = CheckSession::new(&specs, SearchMode::OPACITY, config);
        for e in h.events() {
            s.extend(e).unwrap();
        }
        let first = s.check().unwrap();
        let second = s.check().unwrap();
        let reference = Search::new(&h, &specs, SearchMode::OPACITY, config)
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(
            second.holds(),
            reference.holds(),
            "a repeated limited check must match a fresh limited check \
             (first: {:?})",
            first.holds()
        );
        // Cross-validate against batch semantics on every prefix of a
        // random-ish opaque chain: session verdicts under a limit must
        // equal fresh limited checks (the pre-refactor monitor contract).
        let mut b = HistoryBuilder::new();
        for t in 1..=6u32 {
            b = b.write(t, "x", t as i64);
        }
        for t in 1..=6u32 {
            b = b.commit_ok(t);
        }
        let h = b.build();
        let mut s = CheckSession::new(&specs, SearchMode::OPACITY, config);
        for (i, e) in h.events().iter().enumerate() {
            s.extend(e).unwrap();
            let live = s.check().unwrap().holds();
            let fresh = Search::new(&h.prefix(i + 1), &specs, SearchMode::OPACITY, config)
                .unwrap()
                .run()
                .unwrap()
                .holds();
            // The session may only be BETTER than fresh (its witness bias
            // finds serializations the truncated fresh search misses),
            // never worse: a stale truncated "no" must never veto a "yes".
            assert!(
                live || !fresh,
                "prefix {}: session says no but fresh limited check says yes",
                i + 1
            );
        }
    }

    #[test]
    fn failed_commit_extend_is_atomic_in_committed_only_mode() {
        // Drive a committed-only session past the bit limit: the 65th
        // commit must fail with TooManyTransactions and leave the event
        // unconsumed — retrying yields the SAME error, not a WF error from
        // a half-applied transition.
        let specs = regs();
        let mut s = CheckSession::new(&specs, SearchMode::SERIALIZABILITY, SearchConfig::default());
        for t in 1..=65u32 {
            let h = HistoryBuilder::new().write(t, "x", t as i64).build();
            for e in h.events() {
                s.extend(e).unwrap();
            }
            s.extend(&Event::TryCommit(TxId(t))).unwrap();
            if t <= 64 {
                s.extend(&Event::Commit(TxId(t))).unwrap();
            }
        }
        let seen = s.events_seen();
        for _ in 0..2 {
            assert!(matches!(
                s.extend(&Event::Commit(TxId(65))),
                Err(CheckError::TooManyTransactions { .. })
            ));
            assert_eq!(s.events_seen(), seen, "failed extend must not consume");
        }
        // The session remains usable: the 64 committed writers serialize.
        assert!(s.check().unwrap().holds());
    }

    #[test]
    fn session_tracks_lifetime_stats() {
        let specs = regs();
        let mut s = CheckSession::new(&specs, SearchMode::OPACITY, SearchConfig::default());
        let h = paper::h5();
        let mut total = 0;
        for e in h.events() {
            s.extend(e).unwrap();
            if e.is_response() {
                total += s.check().unwrap().stats.nodes;
            }
        }
        assert_eq!(s.lifetime_stats().nodes, total);
        assert!(s.checks() > 0);
    }
}
