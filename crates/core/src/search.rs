//! The serialization-search engine shared by all history-level checkers.
//!
//! Definition 1 (and its weakenings in Section 3) all have the same shape:
//! *does there exist a sequential history `S`, equivalent to (a completion
//! of / the committed projection of) `H`, that preserves (optionally) the
//! real-time order of `H` and in which every transaction is legal?*
//!
//! The engine performs a depth-first search over placements of transactions
//! into the sequential order `S`, one at a time:
//!
//! * a transaction may be placed only when all its real-time predecessors
//!   (if real-time order is enforced) are already placed;
//! * placing a transaction requires its operations to replay legally against
//!   the object states produced by the *committed* transactions placed so
//!   far (this is exactly "legal in S": an aborted transaction is validated
//!   against the committed prefix but does not contribute effects);
//! * a commit-pending transaction may be placed either as committed or as
//!   aborted — which folds the choice of a member of `Complete(H)` into the
//!   search;
//! * dead ends are memoized on `(set of placed transactions, canonical
//!   object states)`, which prunes the factorial search to the number of
//!   distinct reachable states.
//!
//! ## The resumable core
//!
//! The engine is a **[`SearchCore`]**: a persistent structure fed one event
//! at a time ([`SearchCore::extend`]) and queried for a verdict on the
//! history seen so far ([`SearchCore::check`]). Three things survive across
//! checks and make the online monitor asymptotically cheaper than
//! re-checking every prefix from scratch:
//!
//! 1. **Per-transaction metadata** (views, statuses, real-time predecessor
//!    masks) is maintained incrementally, so a check never re-scans the
//!    history;
//! 2. **The memo table of dead ends** is kept between checks and only
//!    selectively invalidated. Appending events can only *tighten* the
//!    search (ops accumulate, statuses narrow) except in two cases, which
//!    drop exactly the entries they can unsound: a completed operation or a
//!    `tryC` of transaction `t` drops the entries in which `t` was still
//!    unplaced (its new op / widened placement set could rescue those dead
//!    ends);
//! 3. **The previous witness** biases the DFS candidate order, so when the
//!    new events merely extend the old serialization — the common case — the
//!    check walks straight down the witness in `O(|H|)` replay work with no
//!    backtracking.
//!
//! Object states are mutated **in place** during the DFS via the
//! apply/undo delta API of `tm-model` ([`tm_model::StatesDelta`]) instead of
//! being cloned per placement; the only remaining clone is the one that
//! stores a dead end into the memo table, and [`SearchStats`] reports both
//! counts.
//!
//! ## The parallel, memory-bounded core
//!
//! Two knobs lift the engine from "one thread, unbounded table" to a core
//! that exploits the machine and respects a memory budget:
//!
//! * **[`SearchConfig::search_jobs`]** drives a check with a work-stealing
//!   pool of scoped threads (`crate::steal`). The pool is seeded with the
//!   root placements — every first-level `(transaction, placement)`
//!   candidate is an independent subtree — and, because root fan-out can
//!   be as low as 1 (realtime-chained histories), workers also **split
//!   dynamically**: a worker whose DFS holds untried sibling branches
//!   within the [`SearchConfig::split_depth`] window donates the coldest
//!   of them the moment another worker goes hungry. A donated task carries
//!   the `(bit, placement)` path to its branch — a reconstruction recipe
//!   the thief replays in place, not a state clone — and the thief can
//!   recursively split its own shallow frames, so deep chained searches
//!   keep every worker busy. Workers share the dead-end memo through a
//!   fingerprint-sharded concurrent table (`crate::memo`), a found witness
//!   raises a cancellation flag that stops the remaining workers, and the
//!   node cap is a *shared* budget while the `truncated` marker stays
//!   **per worker** — a worker whose exploration was cut short (by the cap
//!   or by cancellation) never inserts into the shared table, so one
//!   truncated subtree cannot poison the others; a frame that *donated* a
//!   branch likewise withholds its own (now non-exhaustive) dead end,
//!   while the donated branch is explored exhaustively by its thief before
//!   the pool can terminate. The *verdict* is identical to the sequential
//!   search (dead ends are path-independent facts and every subtree is
//!   explored exhaustively, by someone, unless the search is already
//!   decided); the witness may be a different valid serialization.
//!   Per-worker statistics (nodes, memo hits, steals, splits, donations,
//!   cancellations) are merged in worker-index order, so the aggregation
//!   itself is deterministic even though the per-worker split is
//!   scheduling-dependent.
//! * **[`SearchConfig::memo_capacity`]** bounds the resident dead-end
//!   entries with per-shard segmented-LRU eviction. Evicting a dead end is
//!   always sound — the entry is pure pruning, so the search can only
//!   re-pay the exploration that rediscovers it — and composes with the
//!   invalidation rules above, which remove entries regardless of segment.
//!   [`SearchStats::evictions`] reports the per-check eviction count.
//!   Eviction priority is *recompute cost* (see `crate::memo`): the
//!   entries that survive a tight budget are the ones whose loss would be
//!   expensive, so bounded tables degrade gracefully instead of thrashing.
//!
//! Opacity checking over arbitrary histories is NP-hard (it embeds
//! view-serializability), so the worst case is necessarily exponential; the
//! memoized search is nonetheless fast for the history sizes produced by
//! tests, the random-history cross-validation, and recorded STM executions.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::memo::ShardedMemo;
use crate::steal::StealQueues;
use tm_model::legal::{replay_tx_mut, LegalityError};
use tm_model::wellformed::WfError;
use tm_model::{Event, History, ObjStates, SpecRegistry, StatesDelta, TxId, TxStatus, TxView};

/// How a transaction was placed in a serialization witness.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Placement {
    /// Placed as a committed transaction (its effects fold into the state).
    Committed,
    /// Placed as an aborted transaction (validated, effects discarded).
    Aborted,
}

/// A successful serialization: the order in which transactions form the
/// equivalent sequential history `S`, with the decided status of each.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct Witness {
    /// Transactions in serialization order with their placement decisions.
    pub order: Vec<(TxId, Placement)>,
}

impl Witness {
    /// The serialization order without placement decisions.
    pub fn tx_order(&self) -> Vec<TxId> {
        self.order.iter().map(|(t, _)| *t).collect()
    }

    /// The decision for `t`, if `t` was placed.
    pub fn placement_of(&self, t: TxId) -> Option<Placement> {
        self.order.iter().find(|(x, _)| *x == t).map(|(_, p)| *p)
    }
}

/// Hard errors that make a search impossible (as opposed to "not opaque").
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CheckError {
    /// The input history is not well-formed.
    NotWellFormed(tm_model::WfError),
    /// More transactions than the bitmask-based search supports.
    TooManyTransactions {
        /// Number of transactions found in the history.
        found: usize,
        /// Maximum supported by the engine.
        max: usize,
    },
    /// An operation targets an object with no sequential specification.
    NoSpec(String),
}

impl std::fmt::Display for CheckError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckError::NotWellFormed(e) => write!(f, "history not well-formed: {e}"),
            CheckError::TooManyTransactions { found, max } => {
                write!(f, "{found} transactions exceed engine limit of {max}")
            }
            CheckError::NoSpec(obj) => write!(f, "no sequential specification for {obj}"),
        }
    }
}

impl std::error::Error for CheckError {}

/// What the search engine should look for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SearchMode {
    /// Include non-committed transactions (live/aborted/commit-pending) in
    /// `S` and require their legality. `true` for opacity; `false` for
    /// serializability-style criteria, which erase them.
    pub include_noncommitted: bool,
    /// Require `S` to preserve the real-time order `≺_H`.
    pub respect_real_time: bool,
}

impl SearchMode {
    /// The mode of Definition 1 (opacity).
    pub const OPACITY: SearchMode = SearchMode {
        include_noncommitted: true,
        respect_real_time: true,
    };
    /// Final-state serializability / global atomicity: committed only, any
    /// order.
    pub const SERIALIZABILITY: SearchMode = SearchMode {
        include_noncommitted: false,
        respect_real_time: false,
    };
    /// Strict serializability: committed only, real-time preserved.
    pub const STRICT_SERIALIZABILITY: SearchMode = SearchMode {
        include_noncommitted: false,
        respect_real_time: true,
    };
}

/// Statistics from a search, for the ablation benchmarks (E13).
///
/// Under a parallel check ([`SearchConfig::search_jobs`] > 1) the counters
/// are the sum of the per-worker counters, merged in worker-index order
/// (deterministic aggregation; the per-worker split itself depends on
/// scheduling).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// DFS nodes expanded.
    pub nodes: usize,
    /// Dead ends pruned by the memo table.
    pub memo_hits: usize,
    /// Placements rejected by legality replay.
    pub illegal_placements: usize,
    /// `ObjStates` snapshots actually cloned (memo-table inserts — the only
    /// clones left in the engine).
    pub state_clones: usize,
    /// `ObjStates` clones *avoided* by the in-place apply/undo replay: one
    /// per placement expansion and one per memo probe, each of which the
    /// pre-resumable engine paid with a full snapshot clone.
    pub clones_saved: usize,
    /// Tasks (root subtrees or donated branches) a worker took from
    /// another worker's deque.
    pub steals: usize,
    /// Donation events: times a worker split its DFS frontier because
    /// another worker was hungry (each event donates ≥ 1 task).
    pub splits: usize,
    /// Branches donated to the pool as stealable tasks by frontier splits.
    pub donated_tasks: usize,
    /// Tasks never explored because a witness was already found.
    pub cancelled_tasks: usize,
    /// Memo entries evicted by the capacity bound during this check.
    pub evictions: usize,
    /// Worker threads the check actually ran with (the *resolved* pool
    /// size — 1 for the sequential engine, and the effective count when
    /// `search_jobs = 0` asked for "auto"). Merged by maximum, not sum:
    /// it is a property of the pool, not a per-worker tally.
    pub workers: usize,
}

/// Number of monotone counter cells in [`SearchStats::counter_cells`].
const STAT_CELLS: usize = 10;

impl SearchStats {
    /// The monotone counters as one flat cell array (everything except
    /// [`SearchStats::workers`], which is not additive), in declaration
    /// order — the shape consumed by [`tm_obs::merge_counters`].
    fn counter_cells(&self) -> [u64; STAT_CELLS] {
        [
            self.nodes as u64,
            self.memo_hits as u64,
            self.illegal_placements as u64,
            self.state_clones as u64,
            self.clones_saved as u64,
            self.steals as u64,
            self.splits as u64,
            self.donated_tasks as u64,
            self.cancelled_tasks as u64,
            self.evictions as u64,
        ]
    }

    fn set_counter_cells(&mut self, cells: [u64; STAT_CELLS]) {
        self.nodes = cells[0] as usize;
        self.memo_hits = cells[1] as usize;
        self.illegal_placements = cells[2] as usize;
        self.state_clones = cells[3] as usize;
        self.clones_saved = cells[4] as usize;
        self.steals = cells[5] as usize;
        self.splits = cells[6] as usize;
        self.donated_tasks = cells[7] as usize;
        self.cancelled_tasks = cells[8] as usize;
        self.evictions = cells[9] as usize;
    }

    /// Accumulates `other` into `self` (used for lifetime totals and for
    /// the deterministic per-worker merge of parallel checks). The
    /// counters delegate to [`tm_obs::merge_counters`] — the workspace's
    /// one telemetry-merge implementation; `workers` merges by maximum.
    pub fn absorb(&mut self, other: &SearchStats) {
        let mut cells = self.counter_cells();
        tm_obs::merge_counters(&mut cells, &other.counter_cells());
        self.set_counter_cells(cells);
        self.workers = self.workers.max(other.workers);
    }
}

/// The outcome of a serialization search.
#[derive(Clone, Debug)]
pub struct SearchOutcome {
    /// A witness if the history satisfies the criterion.
    pub witness: Option<Witness>,
    /// Search statistics.
    pub stats: SearchStats,
}

impl SearchOutcome {
    /// True if a witness was found.
    pub fn holds(&self) -> bool {
        self.witness.is_some()
    }
}

/// Engine configuration knobs (ablations are measured in `tm-bench`).
#[derive(Clone, Copy, Debug)]
pub struct SearchConfig {
    /// Enable the `(mask, state)` memo table (on by default).
    pub memoize: bool,
    /// Hard cap on DFS nodes per check; `None` for unlimited. When hit, the
    /// search conservatively reports "no witness found" via
    /// [`SearchOutcome::witness`] `= None`. Under a parallel check the cap
    /// is a budget shared by all workers.
    pub node_limit: Option<usize>,
    /// Worker threads for the work-stealing parallel DFS. `1` — the
    /// default — runs the sequential in-place engine with no thread spawns
    /// at all; `0` means "auto": one worker per hardware thread reported
    /// by `std::thread::available_parallelism()`.
    pub search_jobs: usize,
    /// Bound on resident dead-end memo entries, enforced with per-shard
    /// segmented-LRU eviction; `None` — the default — keeps every entry.
    /// Rounded down to a multiple of the shard count, so the resident
    /// total never exceeds the configured value.
    pub memo_capacity: Option<usize>,
    /// Depth window (relative to a task's root) in which a parallel worker
    /// materializes its untried sibling candidates so it can donate them
    /// to hungry workers. `0` disables splitting (root-only parallelism);
    /// frames deeper than the window run the allocation-free inline loop.
    /// Default `8`. Ignored by the sequential engine.
    pub split_depth: usize,
    /// Minimum number of untried candidates a splittable frame must hold
    /// to donate one (≥ 1, default `1`). Raising it keeps more local work
    /// per split at the cost of slower work distribution.
    pub split_granularity: usize,
    /// Observability handle (disabled by default — every instrumented
    /// path is then a no-op branch). When enabled, each check folds its
    /// merged [`SearchStats`] into the sink's counters, records the
    /// feed→verdict latency histogram, and emits worker-lifecycle spans.
    pub obs: tm_obs::ObsHandle,
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig {
            memoize: true,
            node_limit: None,
            search_jobs: 1,
            memo_capacity: None,
            split_depth: 8,
            split_granularity: 1,
            obs: tm_obs::ObsHandle::disabled(),
        }
    }
}

const MAX_TXS: usize = 64;

/// Mirror of the per-transaction well-formedness automaton of
/// `tm_model::wellformed`, maintained incrementally so that
/// [`SearchCore::extend`] rejects exactly the events `check_well_formed`
/// would reject, with the same [`WfError`].
#[derive(Clone, Debug, PartialEq, Eq)]
enum TxWf {
    Idle,
    OpPending(Event),
    CommitPending,
    AbortPending,
    Done,
}

/// Per-transaction state of the resumable core.
struct TxCell {
    id: TxId,
    view: TxView,
    wf: TxWf,
    issued_try_abort: bool,
    /// Bit index in the placement masks, assigned when the transaction
    /// becomes *selected* under the search mode (immediately for opacity;
    /// at its commit event for committed-only criteria).
    bit: Option<u32>,
    /// Real-time predecessors (bits of selected transactions completed
    /// before this transaction's first event), frozen at creation: appending
    /// events never adds real-time edges between existing transactions.
    pred_mask: u64,
}

/// The read-only context one DFS (worker) borrows from the core during a
/// check: transaction metadata, candidate order, the shared memo, and the
/// cross-worker coordination cells.
struct DfsShared<'a> {
    specs: &'a SpecRegistry,
    txs: &'a [TxCell],
    by_bit: &'a [usize],
    order: &'a [u32],
    selected_mask: u64,
    memoize: bool,
    node_limit: Option<usize>,
    memo: &'a ShardedMemo,
    /// Nodes expanded by *all* workers this check (the shared node budget).
    nodes_spent: &'a AtomicUsize,
    /// Raised when some worker found a witness: everyone else unwinds.
    cancel: &'a AtomicBool,
    /// The task pool, present only under a parallel check: lets a worker
    /// donate untried sibling branches to hungry workers. `None` on the
    /// sequential path, which therefore never materializes frontiers.
    queues: Option<&'a StealQueues<SearchTask>>,
    /// [`SearchConfig::split_depth`] (relative donation window).
    split_depth: usize,
    /// [`SearchConfig::split_granularity`].
    split_granularity: usize,
    /// [`SearchConfig::obs`]: a disabled handle outside `--metrics-out`/
    /// `--trace-out`/`--progress` runs. The hot loop touches it only once
    /// every 1024 nodes (the live-progress counter), so the disabled cost
    /// is one masked branch per kilonode.
    obs: tm_obs::ObsHandle,
}

/// One splittable DFS frame of a parallel worker: the untried sibling
/// candidates are materialized so the coldest (back) ones can be donated.
struct SplitFrame {
    /// Absolute frontier depth (`placed.count_ones()`) at frame entry ==
    /// the length of the worker's placement path above this frame.
    depth: usize,
    /// True once any candidate of this frame was donated away: the donor
    /// no longer explores this subtree exhaustively, so neither this frame
    /// nor any ancestor frame of this task may cache a dead end.
    donated: bool,
    /// Untried `(bit, placement)` candidates in witness-biased order. The
    /// owner pops from the front; donations pop from the back.
    pending: VecDeque<(u32, Placement)>,
}

/// The per-worker mutable scratch of one DFS.
struct Explorer {
    states: ObjStates,
    delta: StatesDelta,
    stack: Vec<(TxId, Placement)>,
    stats: SearchStats,
    /// Set once this worker's current exploration became partial (node cap
    /// or cancellation). From that moment every unwinding frame's subtree is
    /// only partially explored, so its "dead end" is unreliable and must NOT
    /// enter the shared memo table (a truncated false would otherwise poison
    /// later checks and other workers).
    truncated: bool,
    /// This worker's index in the pool (its own deque for donations).
    worker: usize,
    /// The current task's root depth (its path length): the donation window
    /// `split_depth` is measured relative to it, so a thief that rehydrates
    /// a deep branch can itself split its shallow-relative frames.
    base_depth: usize,
    /// The `(bit, placement)` path from the *empty* frontier through every
    /// splittable frame — the reconstruction recipe a donated task carries.
    /// Not maintained below the donation window (nothing there is donated).
    path: Vec<(u32, Placement)>,
    /// The stack of currently-open splittable frames, shallowest first.
    frames: Vec<SplitFrame>,
}

impl Explorer {
    fn new(worker: usize) -> Self {
        Explorer {
            states: ObjStates::new(),
            delta: StatesDelta::new(),
            stack: Vec::new(),
            stats: SearchStats::default(),
            truncated: false,
            worker,
            base_depth: 0,
            path: Vec::new(),
            frames: Vec::new(),
        }
    }

    /// Resets the per-subtree scratch (statistics persist across tasks).
    fn reset(&mut self) {
        self.states = ObjStates::new();
        self.delta = StatesDelta::new();
        self.stack.clear();
        self.truncated = false;
        self.base_depth = 0;
        self.path.clear();
        self.frames.clear();
    }
}

/// One stealable unit of a parallel check: the `(bit, placement)` path from
/// the empty frontier to an unexplored branch. Root tasks carry a length-1
/// path; donated tasks carry the donor's prefix plus the donated candidate.
/// The path is a *reconstruction recipe*: the thief replays it against a
/// fresh `ObjStates` via the same apply/undo delta machinery the search
/// uses, so no object-state snapshot ever crosses threads.
struct SearchTask {
    path: Box<[(u32, Placement)]>,
}

/// The placement decisions allowed for a transaction by its status in
/// `H` (and the search mode).
fn allowed_placements(status: TxStatus) -> &'static [Placement] {
    match status {
        TxStatus::Committed => &[Placement::Committed],
        // A commit-pending transaction may appear committed or aborted
        // (the dual semantics of Section 5.2).
        TxStatus::CommitPending => &[Placement::Committed, Placement::Aborted],
        // Aborted, abort-pending, and live transactions can only be
        // aborted in a completion.
        _ => &[Placement::Aborted],
    }
}

/// The recursive search below the frontier `placed`, shared verbatim by the
/// sequential engine (one `Explorer`, `cancel` never raised) and by every
/// parallel worker. Parallel frames within the donation window dispatch to
/// [`dfs_split`]; everything else runs the allocation-free inline loop.
fn dfs(sh: &DfsShared<'_>, w: &mut Explorer, placed: u64) -> Result<bool, CheckError> {
    if placed == sh.selected_mask {
        return Ok(true);
    }
    if sh.cancel.load(Ordering::Relaxed) {
        // Another worker already found a witness: unwind without caching
        // (this subtree was not exhaustively explored).
        w.truncated = true;
        return Ok(false);
    }
    if let Some(limit) = sh.node_limit {
        if sh.nodes_spent.load(Ordering::Relaxed) >= limit {
            w.truncated = true;
            return Ok(false);
        }
    }
    sh.nodes_spent.fetch_add(1, Ordering::Relaxed);
    let nodes_at_entry = w.stats.nodes;
    w.stats.nodes += 1;
    if w.stats.nodes & 0x3FF == 0 {
        // Live-progress feed (`tmcheck check --progress`): amortized to one
        // registry touch per 1024 nodes so enabled observability stays off
        // the hot path; the exact totals are folded per check.
        sh.obs.counter_add("search.nodes_live", 0x400);
    }
    if sh.memoize {
        w.stats.clones_saved += 1; // memo probe without a key clone
        if sh.memo.probe(placed, &w.states) {
            w.stats.memo_hits += 1;
            return Ok(false);
        }
    }
    if sh.queues.is_some() {
        let depth = placed.count_ones() as usize;
        if sh.split_depth > 0 && depth - w.base_depth < sh.split_depth {
            return dfs_split(sh, w, placed, depth, nodes_at_entry);
        }
        // Deep (non-splittable) frames still feed hungry workers — from the
        // shallow frames already materialized above — one poll per node.
        maybe_donate(sh, w);
    }
    for k in 0..sh.order.len() {
        let b = sh.order[k];
        let bit = 1u64 << b;
        let ci = sh.by_bit[b as usize];
        if placed & bit != 0 || sh.txs[ci].pred_mask & !placed != 0 {
            continue;
        }
        let mark = w.delta.mark();
        // Replay the candidate against the committed-prefix state.
        match replay_tx_mut(&sh.txs[ci].view, &mut w.states, sh.specs, &mut w.delta) {
            Ok(()) => {}
            Err(LegalityError::NoSpec(op)) => {
                return Err(CheckError::NoSpec(op.obj.name().to_string()));
            }
            Err(LegalityError::IllegalResponse { .. }) => {
                w.stats.illegal_placements += 1;
                continue;
            }
        }
        let id = sh.txs[ci].id;
        let status = sh.txs[ci].view.status;
        for &placement in allowed_placements(status) {
            if placement == Placement::Aborted {
                // Validated above; effects are discarded.
                w.delta.rollback_to(&mut w.states, mark);
            }
            w.stats.clones_saved += 1; // placement without a clone
            w.stack.push((id, placement));
            if dfs(sh, w, placed | bit)? {
                return Ok(true);
            }
            w.stack.pop();
        }
        w.delta.rollback_to(&mut w.states, mark);
    }
    // Frames that finished exploring before the node limit (or a
    // cancellation) fired are genuine dead ends; frames unwinding after it
    // are not — caching them would let a truncated "no" poison every later
    // check and every other worker.
    if sh.memoize && !w.truncated {
        w.stats.state_clones += 1;
        // The entry's eviction priority is what it cost to establish: the
        // nodes this worker expanded below (and including) this frontier.
        sh.memo
            .insert(placed, &w.states, w.stats.nodes - nodes_at_entry);
    }
    Ok(false)
}

/// One frame within the donation window: materializes the untried sibling
/// candidates into a [`SplitFrame`] so [`maybe_donate`] can hand the
/// coldest ones to hungry workers, then explores the rest front-first in
/// the usual witness-biased order.
fn dfs_split(
    sh: &DfsShared<'_>,
    w: &mut Explorer,
    placed: u64,
    depth: usize,
    nodes_at_entry: usize,
) -> Result<bool, CheckError> {
    let mut pending: VecDeque<(u32, Placement)> = VecDeque::new();
    for &b in sh.order {
        let bit = 1u64 << b;
        let ci = sh.by_bit[b as usize];
        if placed & bit != 0 || sh.txs[ci].pred_mask & !placed != 0 {
            continue;
        }
        // Legality replay stays lazy: an illegal candidate donated to a
        // thief is rejected by the thief's own replay.
        for &placement in allowed_placements(sh.txs[ci].view.status) {
            pending.push_back((b, placement));
        }
    }
    w.frames.push(SplitFrame {
        depth,
        donated: false,
        pending,
    });
    let fi = w.frames.len() - 1;
    let mut outcome: Result<bool, CheckError> = Ok(false);
    loop {
        maybe_donate(sh, w);
        let Some((b, placement)) = w.frames[fi].pending.pop_front() else {
            break;
        };
        let bit = 1u64 << b;
        let ci = sh.by_bit[b as usize];
        let mark = w.delta.mark();
        match replay_tx_mut(&sh.txs[ci].view, &mut w.states, sh.specs, &mut w.delta) {
            Ok(()) => {}
            Err(LegalityError::NoSpec(op)) => {
                outcome = Err(CheckError::NoSpec(op.obj.name().to_string()));
                break;
            }
            Err(LegalityError::IllegalResponse { .. }) => {
                w.stats.illegal_placements += 1;
                continue;
            }
        }
        if placement == Placement::Aborted {
            // Validated above; effects are discarded.
            w.delta.rollback_to(&mut w.states, mark);
        }
        w.stats.clones_saved += 1;
        w.stack.push((sh.txs[ci].id, placement));
        w.path.push((b, placement));
        match dfs(sh, w, placed | bit) {
            Ok(true) => {
                // Keep the stack: it is the witness being published.
                outcome = Ok(true);
                break;
            }
            Ok(false) => {
                w.stack.pop();
                w.path.pop();
                w.delta.rollback_to(&mut w.states, mark);
            }
            Err(e) => {
                outcome = Err(e);
                break;
            }
        }
    }
    let frame = w.frames.pop().expect("frame pushed above");
    if frame.donated {
        // The donated branches now belong to other workers: this subtree —
        // and transitively every ancestor of it in this task — is no longer
        // exhaustively explored *by this worker*, so none of them may cache
        // a dead end. (Donation does not set `truncated`: globally the
        // donated branches are still explored before the pool terminates.)
        if let Some(parent) = w.frames.last_mut() {
            parent.donated = true;
        }
    }
    if matches!(outcome, Ok(false)) && sh.memoize && !w.truncated && !frame.donated {
        w.stats.state_clones += 1;
        sh.memo
            .insert(placed, &w.states, w.stats.nodes - nodes_at_entry);
    }
    outcome
}

/// Donates the coldest untried branches of this worker's shallowest
/// eligible frames to the pool, one task per hungry worker. Called once
/// per expanded node while parallel; the fast path is a single relaxed
/// load of the hungry counter.
fn maybe_donate(sh: &DfsShared<'_>, w: &mut Explorer) {
    let Some(queues) = sh.queues else { return };
    let mut hungry = queues.hungry();
    if hungry == 0 || sh.cancel.load(Ordering::Relaxed) {
        return;
    }
    let mut donated = 0usize;
    for fi in 0..w.frames.len() {
        // Shallowest frames first: their back candidates root the largest
        // unexplored subtrees (the steal-from-back discipline, one level
        // up: donate the coldest work, keep the hot front).
        while hungry > 0 && w.frames[fi].pending.len() >= sh.split_granularity.max(1) {
            let (b, placement) = w.frames[fi].pending.pop_back().expect("len checked");
            let depth = w.frames[fi].depth;
            let mut path = Vec::with_capacity(depth + 1);
            path.extend_from_slice(&w.path[..depth]);
            path.push((b, placement));
            queues.donate(
                w.worker,
                SearchTask {
                    path: path.into_boxed_slice(),
                },
            );
            w.frames[fi].donated = true;
            donated += 1;
            hungry -= 1;
        }
        if hungry == 0 {
            break;
        }
    }
    if donated > 0 {
        w.stats.splits += 1;
        w.stats.donated_tasks += donated;
    }
}

/// Rehydrates a task's placement path against a fresh state — replaying
/// each `(bit, placement)` with the same apply/undo delta machinery the
/// search uses — then explores the subtree below it.
fn run_task(sh: &DfsShared<'_>, w: &mut Explorer, task: &SearchTask) -> Result<bool, CheckError> {
    w.reset();
    let mut placed = 0u64;
    for &(b, placement) in task.path.iter() {
        let ci = sh.by_bit[b as usize];
        let mark = w.delta.mark();
        match replay_tx_mut(&sh.txs[ci].view, &mut w.states, sh.specs, &mut w.delta) {
            Ok(()) => {}
            Err(LegalityError::NoSpec(op)) => {
                return Err(CheckError::NoSpec(op.obj.name().to_string()));
            }
            Err(LegalityError::IllegalResponse { .. }) => {
                // Only the path's final (donated, never-tried) element can
                // be illegal: the prefix was replayed by the donor.
                w.stats.illegal_placements += 1;
                return Ok(false);
            }
        }
        if placement == Placement::Aborted {
            w.delta.rollback_to(&mut w.states, mark);
        }
        w.stats.clones_saved += 1;
        w.stack.push((sh.txs[ci].id, placement));
        w.path.push((b, placement));
        placed |= 1u64 << b;
    }
    w.base_depth = task.path.len();
    dfs(sh, w, placed)
}

/// What one parallel worker hands back to the merge step.
struct WorkerReport {
    stats: SearchStats,
    /// True if any of this worker's subtrees was cut short (node budget or
    /// cancellation) — the root frame must then not be cached either.
    truncated: bool,
}

/// The loop of one parallel worker: pop (or steal) tasks — root subtrees
/// and donated branches alike — until the pool terminates, publishing the
/// first witness found and draining the remainder as cancelled. Every
/// popped task is acknowledged with `task_done` *after* its exploration
/// (and hence after any donations it made), which is what lets the pool's
/// inflight count prove termination.
fn worker_loop(
    wi: usize,
    sh: &DfsShared<'_>,
    queues: &StealQueues<SearchTask>,
    witness_slot: &Mutex<Option<Vec<(TxId, Placement)>>>,
) -> Result<WorkerReport, CheckError> {
    let mut w = Explorer::new(wi);
    let mut truncated = false;
    loop {
        // The wait span covers stealing attempts and condvar parking — the
        // "worker starved" signal in a trace (inert when obs is disabled).
        let popped = {
            let _wait = sh.obs.span("task.wait", "search");
            queues.pop(wi)
        };
        let Some((task, stolen)) = popped else { break };
        if stolen {
            w.stats.steals += 1;
        }
        if sh.cancel.load(Ordering::Relaxed) {
            w.stats.cancelled_tasks += 1;
            queues.task_done();
            continue; // drain, so every unexplored subtree is counted once
        }
        let result = {
            let _exec = sh.obs.span("task.execute", "search");
            run_task(sh, &mut w, &task)
        };
        queues.task_done();
        match result {
            Ok(true) => {
                let mut slot = witness_slot.lock().unwrap_or_else(|e| e.into_inner());
                if slot.is_none() {
                    *slot = Some(w.stack.clone());
                }
                drop(slot);
                sh.cancel.store(true, Ordering::Relaxed);
            }
            Ok(false) => {}
            Err(e) => {
                // A hard error decides the whole check; stop the others.
                // (Any tasks still queued are drained by the surviving
                // workers, so the pool's inflight count still reaches 0.)
                sh.cancel.store(true, Ordering::Relaxed);
                return Err(e);
            }
        }
        truncated |= w.truncated;
    }
    Ok(WorkerReport {
        stats: w.stats,
        truncated,
    })
}

/// The resumable serialization-search engine.
///
/// Feed events with [`SearchCore::extend`]; ask for a verdict on everything
/// fed so far with [`SearchCore::check`]. Between checks the core keeps its
/// transaction metadata, its memo table of dead ends (selectively
/// invalidated — see the module docs for the soundness argument), and the
/// last witness (which biases the next check's DFS order towards extending
/// it). One-shot callers go through [`Search`] / [`search`]; stateful
/// callers (the online monitor, the `CheckSession` convenience) keep the
/// core alive across a growing history.
pub struct SearchCore<'a> {
    specs: &'a SpecRegistry,
    mode: SearchMode,
    config: SearchConfig,
    txs: Vec<TxCell>,
    index: HashMap<TxId, usize>,
    /// Cell index per assigned bit.
    by_bit: Vec<usize>,
    events_seen: usize,
    selected_mask: u64,
    /// Bits of selected transactions that are completed (used to freeze
    /// `pred_mask` for transactions created later).
    completed_selected_mask: u64,
    /// Dead ends: placed-set mask × canonical object states from which the
    /// remaining transactions cannot be completed. Sharded so parallel
    /// workers share it; bounded per [`SearchConfig::memo_capacity`].
    memo: ShardedMemo,
    last_witness: Option<Witness>,
    stats: SearchStats,
    lifetime: SearchStats,
    checks: usize,
    /// DFS scratch: candidate bit order, biased by the last witness.
    order: Vec<u32>,
}

impl<'a> SearchCore<'a> {
    /// A core over an initially empty history.
    pub fn new(specs: &'a SpecRegistry, mode: SearchMode, config: SearchConfig) -> Self {
        SearchCore {
            specs,
            mode,
            config,
            txs: Vec::new(),
            index: HashMap::new(),
            by_bit: Vec::new(),
            events_seen: 0,
            selected_mask: 0,
            completed_selected_mask: 0,
            memo: ShardedMemo::new(config.memo_capacity),
            last_witness: None,
            stats: SearchStats::default(),
            lifetime: SearchStats::default(),
            checks: 0,
            order: Vec::new(),
        }
    }

    /// Number of events consumed so far.
    pub fn events_seen(&self) -> usize {
        self.events_seen
    }

    /// Statistics of the most recent [`SearchCore::check`].
    pub fn last_stats(&self) -> SearchStats {
        self.stats
    }

    /// Statistics accumulated over every check since creation.
    pub fn lifetime_stats(&self) -> SearchStats {
        self.lifetime
    }

    /// Number of checks run since creation.
    pub fn checks(&self) -> usize {
        self.checks
    }

    /// Dead-end entries currently resident in the memo table.
    pub fn memo_resident(&self) -> usize {
        self.memo.resident()
    }

    /// Memo entries evicted by the capacity bound since creation (monotone).
    pub fn memo_evictions(&self) -> usize {
        self.memo.evictions()
    }

    /// The memo capacity actually enforced (the configured
    /// [`SearchConfig::memo_capacity`] rounded down to a multiple of the
    /// shard count); `None` when unbounded.
    pub fn memo_capacity(&self) -> Option<usize> {
        self.memo.capacity()
    }

    /// Retunes the memo capacity of a live core (`None` = unbounded) —
    /// the hook a memory governor (the `tm-serve` session table) uses to
    /// apportion a global memo budget across many sessions. Sound in both
    /// directions: memo entries are pure pruning, so shrinking (which
    /// evicts down to the new bound) and the unbounded → bounded clear can
    /// only cost re-exploration, never change a verdict.
    pub fn set_memo_capacity(&mut self, capacity: Option<usize>) {
        self.config.memo_capacity = capacity;
        self.memo.set_capacity(capacity);
    }

    /// Consumes one event, updating transaction metadata incrementally and
    /// invalidating exactly the memo entries the event can unsound.
    ///
    /// Fails — leaving the core unchanged, so the event is *not* consumed —
    /// if the event violates well-formedness or overflows the engine's
    /// transaction limit.
    pub fn extend(&mut self, e: &Event) -> Result<(), CheckError> {
        let tx = e.tx();
        let index = self.events_seen;
        let ci = match self.index.get(&tx) {
            Some(&ci) => ci,
            None => {
                // First event of a new transaction. Validate before creating
                // the cell so a failed extend leaves the core untouched.
                match e {
                    Event::Inv { .. } | Event::TryCommit(_) | Event::TryAbort(_) => {}
                    _ => {
                        return Err(CheckError::NotWellFormed(WfError::UnmatchedResponse {
                            tx,
                            index,
                        }))
                    }
                }
                let selected_now = self.mode.include_noncommitted;
                if selected_now && self.by_bit.len() >= MAX_TXS {
                    return Err(CheckError::TooManyTransactions {
                        found: self.by_bit.len() + 1,
                        max: MAX_TXS,
                    });
                }
                let ci = self.txs.len();
                let pred_mask = if self.mode.respect_real_time {
                    self.completed_selected_mask
                } else {
                    0
                };
                self.txs.push(TxCell {
                    id: tx,
                    view: TxView {
                        tx,
                        ops: Vec::new(),
                        pending: None,
                        status: TxStatus::Live,
                    },
                    wf: TxWf::Idle,
                    issued_try_abort: false,
                    bit: None,
                    pred_mask,
                });
                self.index.insert(tx, ci);
                if selected_now {
                    self.assign_bit(ci);
                }
                ci
            }
        };

        // Well-formedness transition (mirrors tm_model::wellformed exactly).
        let next_wf = match (&self.txs[ci].wf, e) {
            (TxWf::Done, _) => {
                return Err(CheckError::NotWellFormed(WfError::EventAfterCompletion {
                    tx,
                    index,
                }))
            }
            (TxWf::Idle, Event::Inv { .. }) => TxWf::OpPending(e.clone()),
            (TxWf::Idle, Event::TryCommit(_)) => TxWf::CommitPending,
            (TxWf::Idle, Event::TryAbort(_)) => TxWf::AbortPending,
            (TxWf::Idle, _) => {
                return Err(CheckError::NotWellFormed(WfError::UnmatchedResponse {
                    tx,
                    index,
                }))
            }
            (TxWf::OpPending(inv), Event::Ret { .. }) => {
                if e.matches_invocation(inv) {
                    TxWf::Idle
                } else {
                    return Err(CheckError::NotWellFormed(WfError::UnmatchedResponse {
                        tx,
                        index,
                    }));
                }
            }
            (TxWf::OpPending(_), Event::Abort(_)) => TxWf::Done,
            (TxWf::OpPending(_), Event::Commit(_)) => {
                return Err(CheckError::NotWellFormed(WfError::CommitAnswersOperation {
                    tx,
                    index,
                }))
            }
            (TxWf::OpPending(_), _) => {
                return Err(CheckError::NotWellFormed(WfError::InvocationWhilePending {
                    tx,
                    index,
                }))
            }
            (TxWf::CommitPending, Event::Commit(_)) | (TxWf::CommitPending, Event::Abort(_)) => {
                TxWf::Done
            }
            (TxWf::CommitPending, _) => {
                return Err(CheckError::NotWellFormed(WfError::BadEventAfterTryCommit {
                    tx,
                    index,
                }))
            }
            (TxWf::AbortPending, Event::Abort(_)) => TxWf::Done,
            (TxWf::AbortPending, _) => {
                return Err(CheckError::NotWellFormed(WfError::BadEventAfterTryAbort {
                    tx,
                    index,
                }))
            }
        };
        // Last fallible step, checked BEFORE committing any mutation so a
        // failed extend leaves the core exactly as it was: in committed-only
        // modes a Commit event selects the transaction, which needs a bit.
        if matches!(e, Event::Commit(_))
            && !self.mode.include_noncommitted
            && self.txs[ci].bit.is_none()
            && self.by_bit.len() >= MAX_TXS
        {
            return Err(CheckError::TooManyTransactions {
                found: self.by_bit.len() + 1,
                max: MAX_TXS,
            });
        }
        self.txs[ci].wf = next_wf;

        // Apply the event to the view/status and invalidate memo entries.
        match e {
            Event::Inv { obj, op, args, .. } => {
                // A pending invocation imposes no legality constraint: no
                // memo entry can become unsound.
                self.txs[ci].view.pending = Some((obj.clone(), op.clone(), args.clone()));
            }
            Event::Ret { val, .. } => {
                let (obj, op, args) = self.txs[ci]
                    .view
                    .pending
                    .take()
                    .expect("WF automaton guarantees a pending invocation");
                self.txs[ci].view.ops.push(tm_model::OpExec {
                    tx,
                    obj,
                    op,
                    args,
                    val: val.clone(),
                });
                // The new operation could rescue dead ends in which this
                // transaction was still unplaced (its committed placement
                // now changes the state differently). Entries that already
                // placed it remain sound: they only claim things about the
                // *other* transactions.
                self.drop_entries_not_placing(ci);
            }
            Event::TryCommit(_) => {
                self.txs[ci].view.status = TxStatus::CommitPending;
                // Widening: {Aborted} → {Committed, Aborted}. Same rule as a
                // new operation.
                self.drop_entries_not_placing(ci);
            }
            Event::TryAbort(_) => {
                self.txs[ci].issued_try_abort = true;
                self.txs[ci].view.status = TxStatus::AbortPending;
            }
            Event::Commit(_) => {
                self.txs[ci].view.status = TxStatus::Committed;
                if !self.mode.include_noncommitted {
                    // The transaction just became selected (the bit capacity
                    // was verified before any mutation above): every old
                    // entry's "remaining" set grew by it, so all bets are
                    // off.
                    self.assign_bit(ci);
                    self.memo.clear();
                }
                if let Some(b) = self.txs[ci].bit {
                    self.completed_selected_mask |= 1 << b;
                }
            }
            Event::Abort(_) => {
                // An abort answering a pending operation leaves the
                // operation without effect (tm_model::History::tx_view drops
                // the pending invocation); no completed op is added, so no
                // entry can become unsound.
                self.txs[ci].view.pending = None;
                self.txs[ci].view.status = if self.txs[ci].issued_try_abort {
                    TxStatus::Aborted
                } else {
                    TxStatus::ForcefullyAborted
                };
                if let Some(b) = self.txs[ci].bit {
                    self.completed_selected_mask |= 1 << b;
                }
            }
        }
        self.events_seen += 1;
        Ok(())
    }

    fn assign_bit(&mut self, ci: usize) {
        let b = self.by_bit.len() as u32;
        self.txs[ci].bit = Some(b);
        self.by_bit.push(ci);
        self.selected_mask |= 1 << b;
    }

    /// Drops memo entries whose placed-set does *not* contain transaction
    /// `ci` — those are the entries a change to `ci`'s ops or placement set
    /// could rescue.
    fn drop_entries_not_placing(&mut self, ci: usize) {
        if let Some(b) = self.txs[ci].bit {
            self.memo.retain_placing(1u64 << b);
        }
    }

    /// Decides the criterion for the history fed so far.
    ///
    /// The DFS candidate order is biased towards the previous check's
    /// witness, so a check whose new events merely extend the old
    /// serialization runs in linear replay time with no backtracking. With
    /// [`SearchConfig::search_jobs`] > 1 the root placements are explored
    /// by a work-stealing pool of scoped threads sharing the memo table;
    /// the verdict is identical to the sequential search, the witness may
    /// be a different valid serialization.
    pub fn check(&mut self) -> Result<SearchOutcome, CheckError> {
        self.checks += 1;
        // Candidate order: last witness first (it remains real-time
        // compatible — appending events never orders two existing
        // transactions), then any transactions it does not cover, in
        // first-selection order.
        self.order.clear();
        let mut seen = 0u64;
        if let Some(w) = &self.last_witness {
            for (t, _) in &w.order {
                if let Some(&ci) = self.index.get(t) {
                    if let Some(b) = self.txs[ci].bit {
                        if seen & (1 << b) == 0 {
                            seen |= 1 << b;
                            self.order.push(b);
                        }
                    }
                }
            }
        }
        for b in 0..self.by_bit.len() as u32 {
            if seen & (1 << b) == 0 {
                self.order.push(b);
            }
        }
        let evictions_before = self.memo.evictions();
        // `search_jobs == 0` means "auto": one worker per hardware thread.
        let jobs = match self.config.search_jobs {
            0 => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            n => n,
        };
        let obs = self.config.obs;
        let _check_span = obs.span("check", "search");
        let started = obs.enabled().then(std::time::Instant::now);
        let (witness_order, mut stats) = if jobs == 1 {
            self.run_sequential()?
        } else {
            self.run_parallel(jobs)?
        };
        stats.evictions = self.memo.evictions() - evictions_before;
        // The resolved pool size (run_parallel records the effective worker
        // count; every other path — sequential, trivial, fully memoized —
        // ran on this one thread).
        stats.workers = stats.workers.max(1);
        if let Some(t0) = started {
            // The feed→verdict latency: everything between the check request
            // and the verdict for the events fed so far.
            obs.observe("check.verdict_ns", t0.elapsed().as_nanos() as u64);
            self.fold_stats(&stats);
        }
        self.stats = stats;
        self.lifetime.absorb(&stats);
        match witness_order {
            Some(order) => {
                let witness = Witness { order };
                self.last_witness = Some(witness.clone());
                Ok(SearchOutcome {
                    witness: Some(witness),
                    stats,
                })
            }
            None => Ok(SearchOutcome {
                witness: None,
                stats,
            }),
        }
    }

    /// Folds one check's deterministically merged [`SearchStats`] into the
    /// observability sink — per check, never per node, so enabled metrics
    /// stay off the DFS hot path. Counter totals are therefore identical
    /// for any sharding of the same work (the jobs=1 vs jobs=N agreement
    /// pinned in `tm-cli`'s tests).
    fn fold_stats(&self, stats: &SearchStats) {
        let obs = self.config.obs;
        obs.counter_add("search.checks", 1);
        obs.counter_add("search.nodes", stats.nodes as u64);
        obs.counter_add("search.illegal_placements", stats.illegal_placements as u64);
        obs.counter_add("search.clones_saved", stats.clones_saved as u64);
        obs.counter_add("search.steals", stats.steals as u64);
        obs.counter_add("search.splits", stats.splits as u64);
        obs.counter_add("search.donated_tasks", stats.donated_tasks as u64);
        obs.counter_add("search.cancelled_tasks", stats.cancelled_tasks as u64);
        // The memo lifecycle: with memoization on, every expanded node is
        // exactly one probe, and every state clone is one insert.
        if self.config.memoize {
            obs.counter_add("memo.probes", stats.nodes as u64);
        }
        obs.counter_add("memo.hits", stats.memo_hits as u64);
        obs.counter_add("memo.inserts", stats.state_clones as u64);
        obs.counter_add("memo.evictions", stats.evictions as u64);
        obs.gauge_set("memo.resident", self.memo.resident() as u64);
        obs.gauge_set("search.workers", stats.workers as u64);
    }

    /// The single-threaded check: one explorer, no spawns.
    #[allow(clippy::type_complexity)]
    fn run_sequential(
        &mut self,
    ) -> Result<(Option<Vec<(TxId, Placement)>>, SearchStats), CheckError> {
        let nodes_spent = AtomicUsize::new(0);
        let cancel = AtomicBool::new(false);
        let sh = DfsShared {
            specs: self.specs,
            txs: &self.txs,
            by_bit: &self.by_bit,
            order: &self.order,
            selected_mask: self.selected_mask,
            memoize: self.config.memoize,
            node_limit: self.config.node_limit,
            memo: &self.memo,
            nodes_spent: &nodes_spent,
            cancel: &cancel,
            queues: None,
            split_depth: 0,
            split_granularity: 1,
            obs: self.config.obs,
        };
        let mut w = Explorer::new(0);
        let found = dfs(&sh, &mut w, 0)?;
        Ok((found.then_some(w.stack), w.stats))
    }

    /// The work-stealing check: seed at root placements, split subtrees
    /// dynamically while workers are hungry, share the memo, cancel on the
    /// first witness.
    #[allow(clippy::type_complexity)]
    fn run_parallel(
        &mut self,
        jobs: usize,
    ) -> Result<(Option<Vec<(TxId, Placement)>>, SearchStats), CheckError> {
        let mut stats = SearchStats::default();
        if self.selected_mask == 0 {
            return Ok((Some(Vec::new()), stats));
        }
        // The root frame (the sequential dfs(0) prologue): count it, probe
        // the memo so a cached root dead end short-circuits the check.
        stats.nodes += 1;
        let initial = ObjStates::new();
        if self.config.memoize {
            stats.clones_saved += 1;
            if self.memo.probe(0, &initial) {
                stats.memo_hits += 1;
                return Ok((None, stats));
            }
        }
        // Root tasks in the witness-biased candidate order.
        let mut tasks = Vec::new();
        for &b in self.order.iter() {
            let ci = self.by_bit[b as usize];
            if self.txs[ci].pred_mask != 0 {
                continue; // has unplaced real-time predecessors at the root
            }
            for &placement in allowed_placements(self.txs[ci].view.status) {
                tasks.push(SearchTask {
                    path: Box::new([(b, placement)]),
                });
            }
        }
        // With splitting enabled, workers beyond the root fan-out are
        // useful — they start hungry and receive donated branches — so the
        // pool size is capped by the number of selected transactions (a
        // parallelism ceiling) rather than by the root task count.
        let splitting = self.config.split_depth > 0;
        let ceiling = if splitting {
            tasks.len().max(self.by_bit.len())
        } else {
            tasks.len()
        };
        let workers = jobs.min(ceiling).max(1);
        stats.workers = workers;
        let queues = StealQueues::new(tasks, workers);
        let nodes_spent = AtomicUsize::new(stats.nodes);
        let cancel = AtomicBool::new(false);
        let sh = DfsShared {
            specs: self.specs,
            txs: &self.txs,
            by_bit: &self.by_bit,
            order: &self.order,
            selected_mask: self.selected_mask,
            memoize: self.config.memoize,
            node_limit: self.config.node_limit,
            memo: &self.memo,
            nodes_spent: &nodes_spent,
            cancel: &cancel,
            queues: if splitting { Some(&queues) } else { None },
            split_depth: self.config.split_depth,
            split_granularity: self.config.split_granularity.max(1),
            obs: self.config.obs,
        };
        let witness_slot: Mutex<Option<Vec<(TxId, Placement)>>> = Mutex::new(None);
        let reports: Vec<Result<WorkerReport, CheckError>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|wi| {
                    let sh = &sh;
                    let queues = &queues;
                    let witness_slot = &witness_slot;
                    scope.spawn(move || worker_loop(wi, sh, queues, witness_slot))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("search worker panicked"))
                .collect()
        });
        // Deterministic aggregation: merge per-worker stats (and surface
        // the first error) in worker-index order.
        let mut truncated = false;
        let mut first_error = None;
        for report in reports {
            match report {
                Ok(r) => {
                    stats.absorb(&r.stats);
                    truncated |= r.truncated;
                }
                Err(e) => {
                    if first_error.is_none() {
                        first_error = Some(e);
                    }
                }
            }
        }
        if let Some(e) = first_error {
            return Err(e);
        }
        let witness = witness_slot.into_inner().unwrap_or_else(|e| e.into_inner());
        if witness.is_none() && self.config.memoize && !truncated {
            // Every subtree — root-seeded or donated — was explored
            // exhaustively by some worker (the pool only terminates once
            // nothing is queued or executing): the empty frontier is a
            // genuine dead end (mirrors the sequential dfs(0) epilogue),
            // whose recompute cost is the whole check.
            stats.state_clones += 1;
            self.memo.insert(0, &initial, stats.nodes);
        }
        Ok((witness, stats))
    }
}

/// A stateful checking session over a growing history: the façade through
/// which both the batch checkers (`is_opaque*`, the Section-3 criteria) and
/// the online monitor drive the resumable [`SearchCore`].
///
/// Feed events with [`CheckSession::extend`] (or let
/// [`CheckSession::check_history`] consume the suffix of a monotonically
/// growing history) and decide with [`CheckSession::check`]. The underlying
/// core keeps its memo table and witness between checks, so checking every
/// prefix of a history costs far less than independent batch checks.
pub struct CheckSession<'a> {
    core: SearchCore<'a>,
}

impl<'a> CheckSession<'a> {
    /// A session over an initially empty history.
    pub fn new(specs: &'a SpecRegistry, mode: SearchMode, config: SearchConfig) -> Self {
        CheckSession {
            core: SearchCore::new(specs, mode, config),
        }
    }

    /// Consumes one event. See [`SearchCore::extend`].
    pub fn extend(&mut self, e: &Event) -> Result<(), CheckError> {
        self.core.extend(e)
    }

    /// Decides the criterion for the events consumed so far.
    pub fn check(&mut self) -> Result<SearchOutcome, CheckError> {
        self.core.check()
    }

    /// Consumes the not-yet-seen suffix of `h` and checks.
    ///
    /// `h` must be an extension of the history fed so far (the session
    /// trusts the already-consumed prefix and only reads `h`'s tail) — which
    /// is exactly the monitor's situation, and trivially true for one-shot
    /// batch checks on a fresh session.
    pub fn check_history(&mut self, h: &History) -> Result<SearchOutcome, CheckError> {
        let seen = self.core.events_seen();
        for e in &h.events()[seen.min(h.len())..] {
            self.core.extend(e)?;
        }
        self.core.check()
    }

    /// Number of events consumed so far.
    pub fn events_seen(&self) -> usize {
        self.core.events_seen()
    }

    /// Statistics of the most recent check.
    pub fn last_stats(&self) -> SearchStats {
        self.core.last_stats()
    }

    /// Statistics accumulated over every check in this session.
    pub fn lifetime_stats(&self) -> SearchStats {
        self.core.lifetime_stats()
    }

    /// Number of checks run in this session.
    pub fn checks(&self) -> usize {
        self.core.checks()
    }

    /// Dead-end entries currently resident in the memo table.
    pub fn memo_resident(&self) -> usize {
        self.core.memo_resident()
    }

    /// Memo entries evicted by the capacity bound in this session
    /// (monotone).
    pub fn memo_evictions(&self) -> usize {
        self.core.memo_evictions()
    }

    /// The memo capacity actually enforced; `None` when unbounded.
    pub fn memo_capacity(&self) -> Option<usize> {
        self.core.memo_capacity()
    }

    /// Retunes the memo capacity mid-session. See
    /// [`SearchCore::set_memo_capacity`].
    pub fn set_memo_capacity(&mut self, capacity: Option<usize>) {
        self.core.set_memo_capacity(capacity)
    }
}

/// The one-shot façade over [`SearchCore`] (kept for the original API).
pub struct Search<'a> {
    core: SearchCore<'a>,
}

impl<'a> Search<'a> {
    /// Prepares a search over `h` under `mode`.
    pub fn new(
        h: &History,
        specs: &'a SpecRegistry,
        mode: SearchMode,
        config: SearchConfig,
    ) -> Result<Self, CheckError> {
        let mut core = SearchCore::new(specs, mode, config);
        for e in h.events() {
            core.extend(e)?;
        }
        Ok(Search { core })
    }

    /// Runs the search to completion.
    pub fn run(mut self) -> Result<SearchOutcome, CheckError> {
        self.core.check()
    }
}

/// One-shot convenience: search `h` under `mode` with default configuration.
pub fn search(
    h: &History,
    specs: &SpecRegistry,
    mode: SearchMode,
) -> Result<SearchOutcome, CheckError> {
    Search::new(h, specs, mode, SearchConfig::default())?.run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_model::builder::{paper, HistoryBuilder};

    fn regs() -> SpecRegistry {
        SpecRegistry::registers()
    }

    #[test]
    fn empty_history_holds_everywhere() {
        let h = History::new();
        for mode in [
            SearchMode::OPACITY,
            SearchMode::SERIALIZABILITY,
            SearchMode::STRICT_SERIALIZABILITY,
        ] {
            assert!(search(&h, &regs(), mode).unwrap().holds());
        }
    }

    #[test]
    fn h1_serializable_but_not_opaque() {
        let h = paper::h1();
        assert!(search(&h, &regs(), SearchMode::SERIALIZABILITY)
            .unwrap()
            .holds());
        assert!(search(&h, &regs(), SearchMode::STRICT_SERIALIZABILITY)
            .unwrap()
            .holds());
        assert!(!search(&h, &regs(), SearchMode::OPACITY).unwrap().holds());
    }

    #[test]
    fn witness_reports_order_and_placements() {
        let h = paper::h5();
        let out = search(&h, &regs(), SearchMode::OPACITY).unwrap();
        let w = out.witness.expect("H5 is opaque");
        // The paper's witness is S = T2 · T1 · T3.
        assert_eq!(w.tx_order(), vec![TxId(2), TxId(1), TxId(3)]);
        assert_eq!(w.placement_of(TxId(2)), Some(Placement::Committed));
        assert_eq!(w.placement_of(TxId(1)), Some(Placement::Aborted));
        assert_eq!(w.placement_of(TxId(3)), Some(Placement::Committed));
    }

    #[test]
    fn ill_formed_history_is_an_error() {
        let h = HistoryBuilder::new().commit(1).build();
        assert!(matches!(
            search(&h, &regs(), SearchMode::OPACITY),
            Err(CheckError::NotWellFormed(_))
        ));
    }

    #[test]
    fn missing_spec_is_an_error() {
        let h = HistoryBuilder::new().read(1, "x", 0).commit_ok(1).build();
        let empty = SpecRegistry::new();
        assert!(matches!(
            search(&h, &empty, SearchMode::OPACITY),
            Err(CheckError::NoSpec(_))
        ));
    }

    #[test]
    fn memoization_prunes() {
        // Many concurrent committed writers: huge permutation space, small
        // state space; the memo table must keep node counts reasonable.
        let mut b = HistoryBuilder::new();
        for t in 1..=8u32 {
            b = b.write(t, "x", t as i64);
        }
        for t in 1..=8u32 {
            b = b.commit_ok(t);
        }
        let h = b.build();
        let on = Search::new(&h, &regs(), SearchMode::OPACITY, SearchConfig::default())
            .unwrap()
            .run()
            .unwrap();
        assert!(on.holds());
        let off = Search::new(
            &h,
            &regs(),
            SearchMode::OPACITY,
            SearchConfig {
                memoize: false,
                node_limit: Some(2_000_000),
                ..SearchConfig::default()
            },
        )
        .unwrap()
        .run()
        .unwrap();
        assert!(off.holds());
        assert!(on.stats.nodes <= off.stats.nodes);
    }

    #[test]
    fn node_limit_stops_search() {
        let mut b = HistoryBuilder::new();
        for t in 1..=10u32 {
            b = b.write(t, "x", t as i64);
        }
        // No commits: all live, all must be aborted; trivially opaque, but
        // with a node limit of 1 the search gives up.
        let h = b.build();
        let out = Search::new(
            &h,
            &regs(),
            SearchMode::OPACITY,
            SearchConfig {
                memoize: true,
                node_limit: Some(1),
                ..SearchConfig::default()
            },
        )
        .unwrap()
        .run()
        .unwrap();
        assert!(!out.holds());
        assert_eq!(out.stats.nodes, 1);
    }

    #[test]
    fn real_time_constrains_opacity_mode() {
        // T1 commits writing x=1 strictly before T2 starts; T2 reads the
        // initial 0: legal without real time, illegal with it.
        let h = HistoryBuilder::new()
            .write(1, "x", 1)
            .commit_ok(1)
            .read(2, "x", 0)
            .commit_ok(2)
            .build();
        assert!(!search(&h, &regs(), SearchMode::OPACITY).unwrap().holds());
        assert!(!search(&h, &regs(), SearchMode::STRICT_SERIALIZABILITY)
            .unwrap()
            .holds());
        assert!(search(&h, &regs(), SearchMode::SERIALIZABILITY)
            .unwrap()
            .holds());
    }

    #[test]
    fn commit_pending_dual_semantics() {
        // H4: T3 must see T2 committed, T1 must see it aborted — the search
        // must pick Committed for T2 and order T1 before it.
        let h = paper::h4();
        let out = search(&h, &regs(), SearchMode::OPACITY).unwrap();
        let w = out.witness.expect("H4 is opaque (Section 5.2)");
        assert_eq!(w.placement_of(TxId(2)), Some(Placement::Committed));
        let order = w.tx_order();
        let pos = |t: u32| order.iter().position(|&x| x == TxId(t)).unwrap();
        assert!(pos(1) < pos(2), "T1 must precede T2 in S: {order:?}");
        assert!(pos(2) < pos(3), "T2 must precede T3 in S: {order:?}");
    }

    // ---- resumable-core behavior ---------------------------------------

    /// Checks every prefix of `h` through one session and independently
    /// from scratch; verdicts must agree at every prefix.
    fn assert_session_matches_batch(h: &History) {
        let specs = regs();
        let mut session = CheckSession::new(&specs, SearchMode::OPACITY, SearchConfig::default());
        for (i, e) in h.events().iter().enumerate() {
            session.extend(e).unwrap();
            let live = session.check().unwrap().holds();
            let fresh = search(&h.prefix(i + 1), &specs, SearchMode::OPACITY)
                .unwrap()
                .holds();
            assert_eq!(live, fresh, "prefix {} of {h}", i + 1);
        }
    }

    #[test]
    fn session_verdicts_match_batch_on_paper_histories() {
        for h in [paper::h1(), paper::h3(), paper::h4(), paper::h5()] {
            assert_session_matches_batch(&h);
        }
    }

    #[test]
    fn try_commit_widening_invalidates_stale_dead_ends() {
        // With T1 live, T2's committed read of T1's write is a dead end; the
        // tryC of T1 widens its placements to {Committed, Aborted} and the
        // same session must now find the witness. A memo table kept blindly
        // across the widening would wrongly report "not opaque" forever.
        let specs = regs();
        let mut s = CheckSession::new(&specs, SearchMode::OPACITY, SearchConfig::default());
        let prefix = HistoryBuilder::new()
            .write(1, "x", 1)
            .read(2, "x", 1)
            .build();
        for e in prefix.events() {
            s.extend(e).unwrap();
        }
        assert!(!s.check().unwrap().holds(), "dirty read while T1 is live");
        s.extend(&Event::TryCommit(TxId(1))).unwrap();
        assert!(
            s.check().unwrap().holds(),
            "commit-pending T1 may now be placed committed"
        );
    }

    #[test]
    fn new_op_invalidates_stale_dead_ends() {
        // T2 commits a read of y=7 before anyone wrote 7: not opaque. Then
        // live T1 (which started before T2 completed) finishes a write of
        // y=7: the full history becomes opaque (T1 placed committed before
        // T2). The session must not let the old dead end veto the rescue.
        let specs = regs();
        let mut s = CheckSession::new(&specs, SearchMode::OPACITY, SearchConfig::default());
        let prefix = HistoryBuilder::new()
            .write(1, "x", 1)
            .read(2, "y", 7)
            .try_commit(2)
            .commit(2)
            .build();
        for e in prefix.events() {
            s.extend(e).unwrap();
        }
        assert!(!s.check().unwrap().holds());
        let rescue = HistoryBuilder::new().write(1, "y", 7).build();
        for e in rescue.events() {
            s.extend(e).unwrap();
        }
        s.extend(&Event::TryCommit(TxId(1))).unwrap();
        assert!(s.check().unwrap().holds(), "T1(C) · T2(C) is a witness");
        // Cross-check against a from-scratch search on the full history.
        let mut full = prefix.clone();
        for e in rescue.events() {
            full.push(e.clone());
        }
        full.push(Event::TryCommit(TxId(1)));
        assert!(search(&full, &specs, SearchMode::OPACITY).unwrap().holds());
    }

    #[test]
    fn witness_bias_makes_extension_checks_linear() {
        // A long legal chain: after the first check, every further check
        // walks straight down the previous witness — nodes per check stay
        // at (#txs placed + 1), with no backtracking.
        let specs = regs();
        let mut s = CheckSession::new(&specs, SearchMode::OPACITY, SearchConfig::default());
        let mut b = HistoryBuilder::new();
        for t in 1..=12u32 {
            b = b
                .read(t, "x", (t - 1) as i64)
                .write(t, "x", t as i64)
                .commit_ok(t);
        }
        let h = b.build();
        for e in h.events() {
            s.extend(e).unwrap();
        }
        let out = s.check().unwrap();
        assert!(out.holds());
        let first_nodes = out.stats.nodes;
        // Extend by one more transaction and re-check: the incremental cost
        // must be two extra nodes (the new placement + the new root), not a
        // re-exploration.
        let ext = HistoryBuilder::new()
            .read(13, "x", 12)
            .write(13, "x", 13)
            .commit_ok(13)
            .build();
        for e in ext.events() {
            s.extend(e).unwrap();
        }
        let out2 = s.check().unwrap();
        assert!(out2.holds());
        assert!(
            out2.stats.nodes <= first_nodes + 2,
            "extension check expanded {} nodes (first: {first_nodes})",
            out2.stats.nodes
        );
        assert_eq!(out2.stats.illegal_placements, 0);
    }

    #[test]
    fn in_place_replay_reports_saved_clones() {
        let h = paper::h5();
        let out = search(&h, &regs(), SearchMode::OPACITY).unwrap();
        assert!(out.holds());
        assert!(
            out.stats.clones_saved > out.stats.state_clones,
            "the engine should avoid more clones than it performs: {:?}",
            out.stats
        );
    }

    #[test]
    fn failed_extend_leaves_the_core_usable() {
        let specs = regs();
        let mut s = CheckSession::new(&specs, SearchMode::OPACITY, SearchConfig::default());
        s.extend(&Event::TryCommit(TxId(1))).unwrap();
        // A second tryC is ill-formed and must be rejected without consuming.
        assert!(matches!(
            s.extend(&Event::TryCommit(TxId(1))),
            Err(CheckError::NotWellFormed(_))
        ));
        assert_eq!(s.events_seen(), 1);
        // The valid continuation still works.
        s.extend(&Event::Commit(TxId(1))).unwrap();
        assert!(s.check().unwrap().holds());
    }

    #[test]
    fn truncated_checks_do_not_poison_the_memo() {
        // With a node limit, a check can give up ("no witness found") on a
        // history that IS opaque. Those truncated explorations must not be
        // cached as dead ends: a later check of the same session with more
        // budget headroom — or simply re-running after the limit reset —
        // must still be able to find the witness.
        let specs = regs();
        let config = SearchConfig {
            memoize: true,
            node_limit: Some(3),
            ..SearchConfig::default()
        };
        // H5 needs more than 3 nodes; per-check the limit resets, so the
        // second identical check must not be vetoed by entries recorded
        // while the first was truncated.
        let h = paper::h5();
        let mut s = CheckSession::new(&specs, SearchMode::OPACITY, config);
        for e in h.events() {
            s.extend(e).unwrap();
        }
        let first = s.check().unwrap();
        let second = s.check().unwrap();
        let reference = Search::new(&h, &specs, SearchMode::OPACITY, config)
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(
            second.holds(),
            reference.holds(),
            "a repeated limited check must match a fresh limited check \
             (first: {:?})",
            first.holds()
        );
        // Cross-validate against batch semantics on every prefix of a
        // random-ish opaque chain: session verdicts under a limit must
        // equal fresh limited checks (the pre-refactor monitor contract).
        let mut b = HistoryBuilder::new();
        for t in 1..=6u32 {
            b = b.write(t, "x", t as i64);
        }
        for t in 1..=6u32 {
            b = b.commit_ok(t);
        }
        let h = b.build();
        let mut s = CheckSession::new(&specs, SearchMode::OPACITY, config);
        for (i, e) in h.events().iter().enumerate() {
            s.extend(e).unwrap();
            let live = s.check().unwrap().holds();
            let fresh = Search::new(&h.prefix(i + 1), &specs, SearchMode::OPACITY, config)
                .unwrap()
                .run()
                .unwrap()
                .holds();
            // The session may only be BETTER than fresh (its witness bias
            // finds serializations the truncated fresh search misses),
            // never worse: a stale truncated "no" must never veto a "yes".
            assert!(
                live || !fresh,
                "prefix {}: session says no but fresh limited check says yes",
                i + 1
            );
        }
    }

    #[test]
    fn failed_commit_extend_is_atomic_in_committed_only_mode() {
        // Drive a committed-only session past the bit limit: the 65th
        // commit must fail with TooManyTransactions and leave the event
        // unconsumed — retrying yields the SAME error, not a WF error from
        // a half-applied transition.
        let specs = regs();
        let mut s = CheckSession::new(&specs, SearchMode::SERIALIZABILITY, SearchConfig::default());
        for t in 1..=65u32 {
            let h = HistoryBuilder::new().write(t, "x", t as i64).build();
            for e in h.events() {
                s.extend(e).unwrap();
            }
            s.extend(&Event::TryCommit(TxId(t))).unwrap();
            if t <= 64 {
                s.extend(&Event::Commit(TxId(t))).unwrap();
            }
        }
        let seen = s.events_seen();
        for _ in 0..2 {
            assert!(matches!(
                s.extend(&Event::Commit(TxId(65))),
                Err(CheckError::TooManyTransactions { .. })
            ));
            assert_eq!(s.events_seen(), seen, "failed extend must not consume");
        }
        // The session remains usable: the 64 committed writers serialize.
        assert!(s.check().unwrap().holds());
    }

    #[test]
    fn session_tracks_lifetime_stats() {
        let specs = regs();
        let mut s = CheckSession::new(&specs, SearchMode::OPACITY, SearchConfig::default());
        let h = paper::h5();
        let mut total = 0;
        for e in h.events() {
            s.extend(e).unwrap();
            if e.is_response() {
                total += s.check().unwrap().stats.nodes;
            }
        }
        assert_eq!(s.lifetime_stats().nodes, total);
        assert!(s.checks() > 0);
    }

    // ---- parallel root-split search ------------------------------------

    /// A search config with `jobs` parallel workers.
    fn par(jobs: usize) -> SearchConfig {
        SearchConfig {
            search_jobs: jobs,
            ..SearchConfig::default()
        }
    }

    #[test]
    fn parallel_verdicts_match_sequential_on_paper_histories() {
        let specs = regs();
        for h in [
            paper::h1(),
            paper::h2(),
            paper::h3(),
            paper::h4(),
            paper::h5(),
        ] {
            let seq = search(&h, &specs, SearchMode::OPACITY).unwrap();
            for jobs in [2, 4, 8] {
                let out = Search::new(&h, &specs, SearchMode::OPACITY, par(jobs))
                    .unwrap()
                    .run()
                    .unwrap();
                assert_eq!(out.holds(), seq.holds(), "{h} under jobs={jobs}");
                // The witness may differ but must re-validate: check it
                // through the sequential engine's own machinery.
                if let Some(w) = &out.witness {
                    let s = crate::opacity::witness_history(&h, w);
                    assert!(
                        tm_model::all_txs_legal(&s, &specs).is_ok(),
                        "jobs={jobs} witness does not re-validate for {h}"
                    );
                }
            }
        }
    }

    #[test]
    fn parallel_empty_and_trivial_histories() {
        let specs = regs();
        let h = History::new();
        let out = Search::new(&h, &specs, SearchMode::OPACITY, par(4))
            .unwrap()
            .run()
            .unwrap();
        assert!(out.holds());
        let h = HistoryBuilder::new().write(1, "x", 1).commit_ok(1).build();
        let out = Search::new(&h, &specs, SearchMode::OPACITY, par(4))
            .unwrap()
            .run()
            .unwrap();
        assert!(out.holds());
    }

    #[test]
    fn parallel_session_stays_resumable() {
        // The shared memo and witness survive across checks of a parallel
        // session exactly as in the sequential one: verdicts at every
        // prefix match fresh sequential checks.
        let specs = regs();
        for h in [paper::h1(), paper::h4(), paper::h5()] {
            let mut s = CheckSession::new(&specs, SearchMode::OPACITY, par(3));
            for (i, e) in h.events().iter().enumerate() {
                s.extend(e).unwrap();
                let live = s.check().unwrap().holds();
                let fresh = search(&h.prefix(i + 1), &specs, SearchMode::OPACITY)
                    .unwrap()
                    .holds();
                assert_eq!(live, fresh, "prefix {} of {h}", i + 1);
            }
        }
    }

    #[test]
    fn parallel_truncation_never_inserts_into_the_shared_memo() {
        // The regression pinned here: with the node budget exhausted from
        // the first expansion, every worker's frames unwind truncated and
        // the shared table must stay EMPTY — a single cached entry would be
        // a partial exploration masquerading as a dead end.
        let specs = regs();
        let mut b = HistoryBuilder::new();
        for t in 1..=6u32 {
            b = b.write(t, "x", t as i64);
        }
        for t in 1..=6u32 {
            b = b.commit_ok(t);
        }
        let h = b.build();
        let config = SearchConfig {
            node_limit: Some(1),
            search_jobs: 4,
            ..SearchConfig::default()
        };
        let mut s = CheckSession::new(&specs, SearchMode::OPACITY, config);
        for e in h.events() {
            s.extend(e).unwrap();
        }
        assert!(!s.check().unwrap().holds(), "budget 1 cannot finish");
        assert_eq!(
            s.memo_resident(),
            0,
            "truncated workers must not populate the shared memo"
        );
        // And the truncation is not sticky knowledge: a session with the
        // budget lifted finds the witness (h IS opaque).
        let mut s = CheckSession::new(&specs, SearchMode::OPACITY, par(4));
        for e in h.events() {
            s.extend(e).unwrap();
        }
        assert!(s.check().unwrap().holds());
    }

    #[test]
    fn parallel_stats_account_for_cancellations() {
        // An opaque history with many root candidates: once some worker
        // finds the witness, the drained root tasks are reported as
        // cancelled (nodes + cancellations give the full task accounting).
        let specs = regs();
        let mut b = HistoryBuilder::new();
        for t in 1..=8u32 {
            b = b.write(t, "x", t as i64);
        }
        for t in 1..=8u32 {
            b = b.commit_ok(t);
        }
        let h = b.build();
        let out = Search::new(&h, &specs, SearchMode::OPACITY, par(2))
            .unwrap()
            .run()
            .unwrap();
        assert!(out.holds());
        // The task universe is the 8 root tasks plus whatever branches
        // were donated before the witness landed; at least the successful
        // task was not drained, so the cancellation counter stays strictly
        // below that total (how many are actually drained is scheduling).
        assert!(
            out.stats.cancelled_tasks < 8 + out.stats.donated_tasks,
            "{:?}",
            out.stats
        );
    }

    // ---- bounded memo --------------------------------------------------

    #[test]
    fn memo_capacity_bounds_resident_entries_without_changing_verdicts() {
        let specs = regs();
        // A non-opaque workload big enough to overflow a tiny table: the
        // exhaustive search records many dead ends.
        let mut b = HistoryBuilder::new();
        for t in 1..=6u32 {
            b = b.write(t, "x", t as i64);
        }
        for t in 1..=6u32 {
            b = b.commit_ok(t);
        }
        b = b.read(7, "x", -1).try_commit(7).commit(7); // impossible read
        let h = b.build();
        let unbounded = Search::new(&h, &specs, SearchMode::OPACITY, SearchConfig::default())
            .unwrap()
            .run()
            .unwrap();
        assert!(!unbounded.holds());
        for cap in [1usize, 8, 32] {
            let config = SearchConfig {
                memo_capacity: Some(cap),
                ..SearchConfig::default()
            };
            let mut s = CheckSession::new(&specs, SearchMode::OPACITY, config);
            for e in h.events() {
                s.extend(e).unwrap();
            }
            let out = s.check().unwrap();
            assert_eq!(out.holds(), unbounded.holds(), "cap={cap}");
            assert!(
                s.memo_resident() <= cap,
                "cap={cap}: resident {}",
                s.memo_resident()
            );
            if cap == 1 {
                assert!(out.stats.evictions > 0, "cap=1 must evict");
            }
            assert_eq!(s.memo_evictions(), s.lifetime_stats().evictions);
        }
    }

    #[test]
    fn eviction_composes_with_invalidation() {
        // Run the widening scenario (stale dead ends must be dropped) under
        // a tiny capacity: correctness must not depend on which entries the
        // LRU happened to keep.
        let specs = regs();
        let config = SearchConfig {
            memo_capacity: Some(2),
            ..SearchConfig::default()
        };
        let mut s = CheckSession::new(&specs, SearchMode::OPACITY, config);
        let prefix = HistoryBuilder::new()
            .write(1, "x", 1)
            .read(2, "x", 1)
            .build();
        for e in prefix.events() {
            s.extend(e).unwrap();
        }
        assert!(!s.check().unwrap().holds());
        s.extend(&Event::TryCommit(TxId(1))).unwrap();
        assert!(s.check().unwrap().holds());
    }

    #[test]
    fn parallel_and_bounded_compose() {
        let specs = regs();
        let mut b = HistoryBuilder::new();
        for t in 1..=7u32 {
            b = b.write(t, "x", t as i64);
        }
        for t in 1..=7u32 {
            b = b.commit_ok(t);
        }
        b = b.read(8, "x", -1).try_commit(8).commit(8);
        let h = b.build();
        let config = SearchConfig {
            search_jobs: 4,
            memo_capacity: Some(16),
            ..SearchConfig::default()
        };
        let mut s = CheckSession::new(&specs, SearchMode::OPACITY, config);
        for e in h.events() {
            s.extend(e).unwrap();
        }
        assert!(!s.check().unwrap().holds());
        assert!(s.memo_resident() <= 16);
    }
}
