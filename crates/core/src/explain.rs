//! Human-readable explanations of opacity violations.
//!
//! A bare "not opaque" verdict is unhelpful when debugging a TM. This
//! module localizes violations the way a TM designer would want them
//! localized:
//!
//! * **which event broke it** — since a TM must keep *every prefix* of its
//!   history opaque, the violation is pinned to the first event whose
//!   prefix is non-opaque (the same notion the online monitor uses);
//! * **why the search got stuck there** — for the fatal prefix, the longest
//!   placeable serialization prefix is reported together with, for every
//!   remaining real-time-eligible transaction, the legality error that
//!   blocks its placement.

use crate::opacity::is_opaque;
use crate::search::CheckError;
use tm_model::legal::{replay_tx, LegalityError};
use tm_model::{History, ObjStates, RealTimeOrder, SpecRegistry, TxId};

/// Why a specific transaction cannot be placed next in any serialization.
#[derive(Clone, Debug)]
pub struct StuckTransaction {
    /// The transaction that cannot be placed.
    pub tx: TxId,
    /// The legality error blocking it against the committed-prefix state of
    /// the reported placeable prefix (if its placement fails on legality
    /// grounds; `None` when the transaction itself is placeable but every
    /// continuation dead-ends).
    pub error: Option<LegalityError>,
}

/// A localized opacity violation.
#[derive(Clone, Debug)]
pub struct ViolationExplanation {
    /// Index of the first event whose prefix is non-opaque.
    pub at_event: usize,
    /// The offending event, rendered.
    pub event: String,
    /// One maximal placeable serialization prefix of the fatal history
    /// prefix (greedy; the true obstruction may involve backtracking, but a
    /// greedy prefix is what a designer inspects first).
    pub placeable_prefix: Vec<TxId>,
    /// The transactions eligible by real time but blocked, with reasons.
    pub stuck: Vec<StuckTransaction>,
}

impl std::fmt::Display for ViolationExplanation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "opacity violated at event #{} ({}); placeable prefix: {:?}",
            self.at_event, self.event, self.placeable_prefix
        )?;
        for s in &self.stuck {
            match &s.error {
                Some(e) => writeln!(f, "  {} blocked: {e}", s.tx)?,
                None => writeln!(f, "  {} placeable but all continuations dead-end", s.tx)?,
            }
        }
        Ok(())
    }
}

/// Explains why `h` is not opaque; returns `Ok(None)` if it is opaque.
pub fn explain_violation(
    h: &History,
    specs: &SpecRegistry,
) -> Result<Option<ViolationExplanation>, CheckError> {
    if is_opaque(h, specs)?.opaque {
        return Ok(None);
    }
    // Find the first non-opaque prefix (responses only can break opacity,
    // but scanning all prefixes keeps this simple and exact).
    let mut at = h.len();
    for n in 1..=h.len() {
        if !is_opaque(&h.prefix(n), specs)?.opaque {
            at = n;
            break;
        }
    }
    let fatal = h.prefix(at);
    let event = fatal
        .events()
        .last()
        .map(|e| e.to_string())
        .unwrap_or_default();

    // Greedy placeable prefix on the fatal history: place any transaction
    // whose replay succeeds (folding committed effects), repeatedly.
    let rt = RealTimeOrder::of(&fatal);
    let mut placed: Vec<TxId> = Vec::new();
    let mut states = ObjStates::new();
    let txs = fatal.txs();
    loop {
        let mut progressed = false;
        for &t in &txs {
            if placed.contains(&t) {
                continue;
            }
            if rt.predecessors(t).iter().any(|p| !placed.contains(p)) {
                continue;
            }
            let view = fatal.tx_view(t);
            if let Ok(after) = replay_tx(&view, &states, specs) {
                if fatal.status(t).is_committed() {
                    states = after.canonical(specs);
                }
                placed.push(t);
                progressed = true;
            }
        }
        if !progressed {
            break;
        }
    }

    let mut stuck = Vec::new();
    for &t in &txs {
        if placed.contains(&t) {
            continue;
        }
        if rt.predecessors(t).iter().any(|p| !placed.contains(p)) {
            continue; // not yet eligible; its predecessor is the problem
        }
        let error = replay_tx(&fatal.tx_view(t), &states, specs).err();
        stuck.push(StuckTransaction { tx: t, error });
    }
    // Greedy placement can also "succeed" on every transaction while the
    // real search fails (wrong commit choices); report the placed set as
    // stuck-free in that case — the prefix index is still exact.
    Ok(Some(ViolationExplanation {
        at_event: at - 1,
        event,
        placeable_prefix: placed,
        stuck,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_model::builder::paper;
    use tm_model::Event;

    fn regs() -> SpecRegistry {
        SpecRegistry::registers()
    }

    #[test]
    fn opaque_history_has_no_explanation() {
        assert!(explain_violation(&paper::h5(), &regs()).unwrap().is_none());
    }

    #[test]
    fn h1_explanation_points_at_the_fatal_read() {
        let h = paper::h1();
        let ex = explain_violation(&h, &regs())
            .unwrap()
            .expect("H1 not opaque");
        // The first non-opaque prefix ends at ret2(y,read)→2.
        let expected = h
            .events()
            .iter()
            .position(|e| matches!(e, Event::Ret { tx: TxId(2), obj, .. } if obj.name() == "y"))
            .unwrap();
        assert_eq!(ex.at_event, expected);
        assert!(ex.event.contains("ret2(y,read)"));
        // T1 and T3 place fine; T2 is the stuck one.
        assert!(ex.placeable_prefix.contains(&TxId(1)));
        assert!(ex.stuck.iter().any(|s| s.tx == TxId(2)));
        let rendered = ex.to_string();
        assert!(rendered.contains("T2"), "{rendered}");
    }

    #[test]
    fn garbage_read_explained_at_its_response() {
        let h = tm_model::HistoryBuilder::new()
            .read(1, "x", 42)
            .commit_ok(1)
            .build();
        let ex = explain_violation(&h, &regs()).unwrap().unwrap();
        assert_eq!(ex.at_event, 1); // the ret event
        assert!(ex
            .stuck
            .iter()
            .any(|s| s.tx == TxId(1) && s.error.is_some()));
    }
}
