//! An online opacity monitor.
//!
//! Section 5.2 notes that the set of opaque histories is *not* prefix-closed
//! as a set, but that "a history of a TM is generated progressively and at
//! each time the history of all events issued so far must be opaque". The
//! monitor enforces exactly that: it is fed the TM's events one at a time
//! and checks opacity of every prefix, reporting the first prefix that
//! violates it.
//!
//! Optimization (with a correctness argument): appending an *invocation*
//! event — an operation invocation, a `tryC`, or a `tryA` — can never make
//! an opaque history non-opaque:
//!
//! * an operation invocation only adds a pending invocation, which imposes
//!   no legality constraint (specifications are prefix-closed, sequences may
//!   end in a pending invocation);
//! * `tryA` moves a live transaction to abort-pending; both statuses admit
//!   exactly the aborted placement;
//! * `tryC` moves a live transaction to commit-pending, which *enlarges* its
//!   set of allowed placements (aborted → aborted-or-committed) and changes
//!   nothing else.
//!
//! Hence the monitor runs the checker only on response events (`Ret`, `C`,
//! `A`) — each of which genuinely can break opacity (`A` included: a
//! commit-pending transaction whose write was already read by a committed
//! reader becomes unserializable when the TM aborts it).
//!
//! Since the pipeline refactor the monitor no longer re-runs the checker
//! from scratch: it drives one resumable [`CheckSession`], which keeps the
//! search's transaction metadata, dead-end memo table, and last witness
//! across events. A check whose events merely extend the previous witness
//! costs linear replay time — see `crate::search` for the invalidation
//! argument — making long monitored histories asymptotically cheaper than
//! batch re-checks (the `monitor` bench in `tm-bench` quantifies this).
//!
//! The memo table would otherwise grow with the history: on a streaming
//! workload most of its entries describe frontiers of long-resolved
//! contention that no future check revisits. Configuring
//! [`SearchConfig::memo_capacity`] bounds the resident entries with
//! segmented-LRU eviction — sound because a dead-end entry is pure pruning
//! (see `crate::memo`) — and on the standard contention-knot workload a
//! table bounded to a quarter of its unbounded peak re-explores only a few
//! percent more nodes (pinned in `tm-bench`; the `search/*` suite measures
//! the verdict-latency percentiles under several caps).

use crate::search::{CheckError, CheckSession, SearchConfig, SearchMode, SearchStats};
use tm_model::{Event, History, SpecRegistry};

/// The monitor's view of the execution so far.
pub struct OpacityMonitor<'a> {
    specs: &'a SpecRegistry,
    config: SearchConfig,
    session: CheckSession<'a>,
    history: History,
    checks_run: usize,
    checks_skipped: usize,
    violated_at: Option<usize>,
    /// A hard error (ill-formed feed, engine limit) is latched: every later
    /// verdict repeats it, mirroring the pre-refactor behavior in which each
    /// full re-check rediscovered the ill-formedness.
    poisoned: Option<CheckError>,
    last_stats: SearchStats,
}

/// The verdict after feeding one event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MonitorVerdict {
    /// The prefix is opaque (verified by a fresh check).
    OpaqueChecked,
    /// The prefix is opaque (guaranteed by the invocation-event argument,
    /// no check was run).
    OpaqueBySkip,
    /// The prefix is not opaque; the violation first appeared at the given
    /// event index.
    Violated {
        /// Index of the first event whose prefix is non-opaque.
        at: usize,
    },
}

impl<'a> OpacityMonitor<'a> {
    /// A monitor over an initially empty history.
    pub fn new(specs: &'a SpecRegistry) -> Self {
        let config = SearchConfig::default();
        OpacityMonitor {
            specs,
            config,
            session: CheckSession::new(specs, SearchMode::OPACITY, config),
            history: History::new(),
            checks_run: 0,
            checks_skipped: 0,
            violated_at: None,
            poisoned: None,
            last_stats: SearchStats::default(),
        }
    }

    /// Overrides the search configuration (call before feeding events).
    ///
    /// If events were already fed, they are replayed into a fresh session;
    /// a replay failure (possible only if the monitor was already poisoned
    /// by an ill-formed feed) re-latches the error rather than leaving the
    /// session silently out of sync with the recorded history.
    pub fn with_config(mut self, config: SearchConfig) -> Self {
        self.config = config;
        self.session = CheckSession::new(self.specs, SearchMode::OPACITY, config);
        self.poisoned = None;
        for e in self.history.events() {
            if let Err(err) = self.session.extend(e) {
                self.poisoned = Some(err);
                break;
            }
        }
        self
    }

    /// Rebuilds a monitor from a previously accepted event prefix — the
    /// crash-recovery path (`tm-serve --resume` replays each session's
    /// journal through this). Every event is re-fed **silently**: verdicts
    /// for these events were already delivered before the crash, so the
    /// caller wants only the resulting monitor state. Sticky violations
    /// and poisoning re-latch at the same indices they first appeared at,
    /// and the check/skip counters end up exactly where an uninterrupted
    /// monitor's would — verdicts are a pure function of the event stream,
    /// so reconstructing the stream reconstructs the monitor.
    pub fn recover(specs: &'a SpecRegistry, config: SearchConfig, events: &[Event]) -> Self {
        let mut monitor = OpacityMonitor::new(specs).with_config(config);
        for e in events {
            // Outcomes latch internally (violated_at / poisoned); a
            // poisoned monitor keeps recording history without checking,
            // matching what the live feed path did before the crash.
            let _ = monitor.feed(e.clone());
        }
        monitor
    }

    /// Feeds one event and reports the verdict for the new prefix.
    ///
    /// Once a violation is detected it is sticky: all later verdicts repeat
    /// the first violation index. A hard error (ill-formed event, engine
    /// limit) is likewise sticky.
    pub fn feed(&mut self, e: Event) -> Result<MonitorVerdict, CheckError> {
        // Covers extend + (skipped or run) check: the per-event cost of
        // online monitoring in a trace. Inert while obs is disabled.
        let _span = self.config.obs.span("monitor.feed", "monitor");
        let is_invocation = e.is_invocation();
        self.history.push(e.clone());
        if let Some(err) = &self.poisoned {
            return Err(err.clone());
        }
        if let Some(at) = self.violated_at {
            return Ok(MonitorVerdict::Violated { at });
        }
        if let Err(err) = self.session.extend(&e) {
            self.poisoned = Some(err.clone());
            return Err(err);
        }
        if is_invocation {
            self.checks_skipped += 1;
            return Ok(MonitorVerdict::OpaqueBySkip);
        }
        self.checks_run += 1;
        let outcome = match self.session.check() {
            Ok(outcome) => outcome,
            Err(err) => {
                self.poisoned = Some(err.clone());
                return Err(err);
            }
        };
        self.last_stats = outcome.stats;
        if outcome.holds() {
            Ok(MonitorVerdict::OpaqueChecked)
        } else {
            let at = self.history.len() - 1;
            self.violated_at = Some(at);
            Ok(MonitorVerdict::Violated { at })
        }
    }

    /// Feeds a whole history; returns the first violation index, if any.
    pub fn feed_all(&mut self, h: &History) -> Result<Option<usize>, CheckError> {
        for e in h.events() {
            if let MonitorVerdict::Violated { at } = self.feed(e.clone())? {
                return Ok(Some(at));
            }
        }
        Ok(None)
    }

    /// The history accumulated so far.
    pub fn history(&self) -> &History {
        &self.history
    }

    /// `(checks run, checks skipped by the invocation argument)`.
    pub fn check_counts(&self) -> (usize, usize) {
        (self.checks_run, self.checks_skipped)
    }

    /// The sticky first violation index, if any prefix was non-opaque.
    pub fn violated_at(&self) -> Option<usize> {
        self.violated_at
    }

    /// Whether a hard error (ill-formed feed, engine limit) is latched.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.is_some()
    }

    /// Statistics of the most recent search.
    pub fn last_stats(&self) -> SearchStats {
        self.last_stats
    }

    /// Statistics accumulated over every check this monitor ran — the
    /// incremental path's *total* cost, comparable against the sum of batch
    /// re-checks over all prefixes.
    pub fn lifetime_stats(&self) -> SearchStats {
        self.session.lifetime_stats()
    }

    /// Dead-end memo entries currently resident in the session's search
    /// core. Unbounded by default; capped (with segmented-LRU eviction)
    /// when the monitor was configured with
    /// [`SearchConfig::memo_capacity`].
    pub fn memo_resident(&self) -> usize {
        self.session.memo_resident()
    }

    /// Memo entries evicted by the capacity bound over the monitor's
    /// lifetime (monotone).
    pub fn memo_evictions(&self) -> usize {
        self.session.memo_evictions()
    }

    /// Retunes the memo capacity of the live session (`None` = unbounded)
    /// without replaying history — the hook through which a memory
    /// governor (the `tm-serve` session table) apportions a global memo
    /// budget across many monitors. Sound at any point in the stream:
    /// memo entries are pure pruning, so no retune can change a verdict
    /// (property-tested in `tm-serve`).
    pub fn set_memo_capacity(&mut self, capacity: Option<usize>) {
        self.config.memo_capacity = capacity;
        self.session.set_memo_capacity(capacity);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opacity::is_opaque;
    use tm_model::builder::{paper, HistoryBuilder};
    use tm_model::TxId;

    fn regs() -> SpecRegistry {
        SpecRegistry::registers()
    }

    #[test]
    fn opaque_history_passes_event_by_event() {
        let specs = regs();
        let mut m = OpacityMonitor::new(&specs);
        assert_eq!(m.feed_all(&paper::h5()).unwrap(), None);
        let (run, skipped) = m.check_counts();
        assert!(run > 0 && skipped > 0);
        assert_eq!(run + skipped, paper::h5().len());
    }

    #[test]
    fn h1_violation_detected_at_the_fatal_read() {
        // H1 becomes non-opaque exactly when T2's read of y returns 2.
        let h = paper::h1();
        let specs = regs();
        let mut m = OpacityMonitor::new(&specs);
        let at = m.feed_all(&h).unwrap().expect("H1 is not opaque");
        // The violating event is ret2(y,read)→2. Find its index.
        let expected = h
            .events()
            .iter()
            .position(|e| matches!(e, Event::Ret { tx: TxId(2), obj, .. } if obj.name() == "y"))
            .unwrap();
        assert_eq!(at, expected);
    }

    #[test]
    fn violation_is_sticky() {
        let specs = regs();
        let mut m = OpacityMonitor::new(&specs);
        let h = paper::h1();
        let first = m.feed_all(&h).unwrap().unwrap();
        // Feeding more events keeps reporting the original index.
        let v = m.feed(Event::TryCommit(TxId(9))).unwrap();
        assert_eq!(v, MonitorVerdict::Violated { at: first });
    }

    #[test]
    fn abort_event_can_violate_opacity() {
        // T1 commit-pending; committed T2 read T1's write; aborting T1 now
        // violates opacity. The monitor must catch this on the A event.
        let prefix = HistoryBuilder::new()
            .write(1, "x", 1)
            .try_commit(1)
            .read(2, "x", 1)
            .try_commit(2)
            .commit(2)
            .build();
        let specs = regs();
        let mut m = OpacityMonitor::new(&specs);
        assert_eq!(m.feed_all(&prefix).unwrap(), None);
        let v = m.feed(Event::Abort(TxId(1))).unwrap();
        assert!(matches!(v, MonitorVerdict::Violated { .. }));
        // Sanity: the full history is indeed non-opaque.
        assert!(!is_opaque(m.history(), &regs()).unwrap().opaque);
    }

    #[test]
    fn commit_event_resolves_pending_favourably() {
        let prefix = HistoryBuilder::new()
            .write(1, "x", 1)
            .try_commit(1)
            .read(2, "x", 1)
            .try_commit(2)
            .commit(2)
            .build();
        let specs = regs();
        let mut m = OpacityMonitor::new(&specs);
        assert_eq!(m.feed_all(&prefix).unwrap(), None);
        assert_eq!(
            m.feed(Event::Commit(TxId(1))).unwrap(),
            MonitorVerdict::OpaqueChecked
        );
    }

    #[test]
    fn skip_argument_matches_full_checks() {
        // Cross-validate the invocation-skip optimization: for every prefix
        // of H4/H5, the monitor's verdict must match a from-scratch check.
        for h in [paper::h4(), paper::h5(), paper::h1()] {
            let specs = regs();
            let mut m = OpacityMonitor::new(&specs);
            let mut violated = false;
            for (i, e) in h.events().iter().enumerate() {
                let v = m.feed(e.clone()).unwrap();
                let fresh = is_opaque(&h.prefix(i + 1), &regs()).unwrap().opaque;
                if violated {
                    continue; // sticky mode; fresh may disagree only after first violation
                }
                match v {
                    MonitorVerdict::Violated { .. } => {
                        assert!(!fresh, "monitor violated but prefix opaque at {i} of {h}");
                        violated = true;
                    }
                    _ => assert!(fresh, "monitor ok but prefix non-opaque at {i} of {h}"),
                }
            }
        }
    }

    #[test]
    fn recover_rebuilds_the_exact_monitor_state_at_every_prefix() {
        // The crash-recovery contract tm-serve leans on: rebuilding from
        // the first k events leaves a monitor that (a) reports the same
        // latched state an uninterrupted monitor had after k events, and
        // (b) produces byte-identical verdicts for everything after k.
        for h in [paper::h5(), paper::h1()] {
            let specs = regs();
            let events = h.events();
            for k in 0..=events.len() {
                let mut live = OpacityMonitor::new(&specs);
                for e in &events[..k] {
                    let _ = live.feed(e.clone());
                }
                let mut resumed =
                    OpacityMonitor::recover(&specs, SearchConfig::default(), &events[..k]);
                assert_eq!(resumed.violated_at(), live.violated_at(), "{h} at {k}");
                assert_eq!(resumed.is_poisoned(), live.is_poisoned());
                assert_eq!(resumed.check_counts(), live.check_counts());
                for (i, e) in events[k..].iter().enumerate() {
                    let a = live.feed(e.clone());
                    let b = resumed.feed(e.clone());
                    assert_eq!(a.is_ok(), b.is_ok(), "{h} split {k} event {i}");
                    if let (Ok(a), Ok(b)) = (a, b) {
                        assert_eq!(a, b, "{h} split {k} event {i}");
                    }
                }
            }
        }
    }

    #[test]
    fn recover_relatches_poisoning_at_the_same_point() {
        // An ill-formed stream (ret with no matching inv) poisons; the
        // recovered monitor must be poisoned too, with matching counters.
        let specs = regs();
        let bad = Event::Ret {
            tx: TxId(1),
            obj: tm_model::ObjId::register(0),
            op: tm_model::OpName::Read,
            val: tm_model::Value::Int(0),
        };
        let mut live = OpacityMonitor::new(&specs);
        assert!(live.feed(bad.clone()).is_err());
        let resumed = OpacityMonitor::recover(&specs, SearchConfig::default(), &[bad]);
        assert!(resumed.is_poisoned());
        assert_eq!(resumed.check_counts(), live.check_counts());
    }

    #[test]
    fn memo_retunes_mid_stream_never_change_verdicts() {
        // The memory-governance contract tm-serve leans on: a monitor whose
        // memo capacity is retuned (shrunk, cleared-by-rebounding, grown)
        // after every event produces verdicts identical to an untouched one.
        for h in [paper::h1(), paper::h4(), paper::h5()] {
            let specs = regs();
            let mut plain = OpacityMonitor::new(&specs);
            let mut tuned = OpacityMonitor::new(&specs);
            let caps = [Some(512), Some(8), None, Some(1), Some(64)];
            for (i, e) in h.events().iter().enumerate() {
                tuned.set_memo_capacity(caps[i % caps.len()]);
                assert_eq!(
                    tuned.feed(e.clone()).unwrap(),
                    plain.feed(e.clone()).unwrap(),
                    "verdicts diverged at event {i} of {h}"
                );
            }
        }
    }

    #[test]
    fn ill_formed_feed_is_a_sticky_error() {
        let specs = regs();
        let mut m = OpacityMonitor::new(&specs);
        m.feed(Event::TryCommit(TxId(1))).unwrap();
        // A second tryC of the same transaction is ill-formed.
        assert!(m.feed(Event::TryCommit(TxId(1))).is_err());
        // ... and so is everything after it, even otherwise valid events.
        assert!(m.feed(Event::Commit(TxId(1))).is_err());
    }

    #[test]
    fn monitor_accumulates_lifetime_stats() {
        let specs = regs();
        let mut m = OpacityMonitor::new(&specs);
        assert_eq!(m.feed_all(&paper::h5()).unwrap(), None);
        let total = m.lifetime_stats();
        assert!(total.nodes >= m.last_stats().nodes);
        assert!(total.clones_saved > 0);
    }
}
