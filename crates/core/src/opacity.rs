//! Opacity — Definition 1 of the paper, as an executable checker.
//!
//! A history `H` is **opaque** iff there exists a sequential history `S`
//! equivalent to some history in `Complete(H)`, such that (1) `S` preserves
//! the real-time order of `H`, and (2) every transaction `Ti ∈ S` is legal
//! in `S`.
//!
//! The checker runs the memoized serialization search of [`crate::search`]
//! in [`SearchMode::OPACITY`]: every transaction of `H` must be placed, the
//! placement order must respect `≺_H`, commit-pending transactions may be
//! placed as committed or aborted (choosing the member of `Complete(H)`),
//! and each placed transaction must replay legally against the committed
//! prefix.

use crate::search::{
    search, CheckError, CheckSession, Placement, SearchConfig, SearchMode, SearchOutcome, Witness,
};
use tm_model::{History, SpecRegistry};

/// The verdict of an opacity check.
#[derive(Clone, Debug)]
pub struct OpacityReport {
    /// Is the history opaque?
    pub opaque: bool,
    /// A serialization witness when opaque: the order of the equivalent
    /// sequential history `S` and the commit decisions for commit-pending
    /// transactions.
    pub witness: Option<Witness>,
    /// Search statistics.
    pub stats: crate::search::SearchStats,
}

impl OpacityReport {
    fn from_outcome(out: SearchOutcome) -> Self {
        OpacityReport {
            opaque: out.witness.is_some(),
            witness: out.witness,
            stats: out.stats,
        }
    }

    /// Renders the witness as the paper renders its examples:
    /// `S = H|T2 · H|T1 · H|T3` with placement annotations.
    pub fn describe_witness(&self) -> String {
        match &self.witness {
            None => "no witness: history is not opaque".to_string(),
            Some(w) => {
                let parts: Vec<String> = w
                    .order
                    .iter()
                    .map(|(t, p)| {
                        let ann = match p {
                            Placement::Committed => "committed",
                            Placement::Aborted => "aborted",
                        };
                        format!("H|{t} ({ann})")
                    })
                    .collect();
                format!("S = {}", parts.join(" · "))
            }
        }
    }
}

/// Checks whether `h` is opaque (Definition 1).
pub fn is_opaque(h: &History, specs: &SpecRegistry) -> Result<OpacityReport, CheckError> {
    Ok(OpacityReport::from_outcome(search(
        h,
        specs,
        SearchMode::OPACITY,
    )?))
}

/// [`is_opaque`] with an explicit search configuration (for the ablation
/// benchmarks and for bounding work on adversarial inputs).
pub fn is_opaque_with(
    h: &History,
    specs: &SpecRegistry,
    config: SearchConfig,
) -> Result<OpacityReport, CheckError> {
    let mut session = CheckSession::new(specs, SearchMode::OPACITY, config);
    let out = session.check_history(h)?;
    Ok(OpacityReport::from_outcome(out))
}

/// Materializes the sequential history `S` described by a witness: the
/// concatenation `H|T_{σ(1)} · H|T_{σ(2)} · …` with the completion events
/// dictated by the placements appended to each live transaction.
///
/// The result is sequential, equivalent to a member of `Complete(H)`,
/// preserves `≺_H` (by construction of the witness), and has every
/// transaction legal — it is the object whose existence Definition 1
/// asserts. Used by tests to validate the checker against the model crate's
/// independent legality machinery.
pub fn witness_history(h: &History, witness: &Witness) -> History {
    use tm_model::complete::{apply_completion, CommitDecision, Completion};

    // First complete H according to the witness decisions, then reorder
    // per-transaction blocks.
    let decisions = witness
        .order
        .iter()
        .filter(|(t, _)| h.status(*t).is_commit_pending())
        .map(|(t, p)| {
            let d = match p {
                Placement::Committed => CommitDecision::Commit,
                Placement::Aborted => CommitDecision::Abort,
            };
            (*t, d)
        })
        .collect();
    let completed = apply_completion(h, &Completion { decisions });
    let mut out = History::new();
    for (t, _) in &witness.order {
        for e in completed.per_tx(*t).events() {
            out.push(e.clone());
        }
    }
    // Defensive: any transaction of H missing from the witness (cannot
    // happen for witnesses produced by the search) is appended at the end.
    for t in completed.txs() {
        if witness.placement_of(t).is_none() {
            for e in completed.per_tx(t).events() {
                out.push(e.clone());
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_model::builder::{paper, HistoryBuilder};
    use tm_model::{all_txs_legal, preserves_real_time, TxId, TxStatus};

    fn regs() -> SpecRegistry {
        SpecRegistry::registers()
    }

    #[test]
    fn h1_is_not_opaque() {
        // The paper's Figure 1 history: global atomicity + recoverability
        // hold, yet T2 observes an inconsistent state.
        let r = is_opaque(&paper::h1(), &regs()).unwrap();
        assert!(!r.opaque);
        assert!(r.witness.is_none());
        assert!(r.describe_witness().contains("not opaque"));
    }

    #[test]
    fn h3_is_opaque() {
        let r = is_opaque(&paper::h3(), &regs()).unwrap();
        assert!(r.opaque);
    }

    #[test]
    fn h4_is_opaque() {
        // Section 5.2: T3 sees commit-pending T2's write, T1 does not.
        let r = is_opaque(&paper::h4(), &regs()).unwrap();
        assert!(r.opaque, "H4 must be opaque");
    }

    #[test]
    fn h4_strengthened_is_not_opaque() {
        // The paper: "if T1 read value 5 from y, then opacity would be
        // violated, because T1 would observe an inconsistent state
        // (x = 0 and y = 5)".
        let h = HistoryBuilder::new()
            .read(1, "x", 0)
            .write(2, "x", 5)
            .write(2, "y", 5)
            .try_commit(2)
            .read(3, "y", 5)
            .read(1, "y", 5)
            .build();
        let r = is_opaque(&h, &regs()).unwrap();
        assert!(!r.opaque);
    }

    #[test]
    fn h5_is_opaque_with_paper_witness() {
        let h = paper::h5();
        let r = is_opaque(&h, &regs()).unwrap();
        assert!(r.opaque);
        assert!(r.describe_witness().starts_with("S = "));
        let w = r.witness.unwrap();
        assert_eq!(w.tx_order(), vec![TxId(2), TxId(1), TxId(3)]);
    }

    #[test]
    fn witness_history_is_a_definition1_witness() {
        // Validate the checker's output against the model crate's
        // independent machinery for every opaque paper history.
        for h in [paper::h3(), paper::h4(), paper::h5()] {
            let r = is_opaque(&h, &regs()).unwrap();
            let w = r.witness.expect("opaque");
            let s = witness_history(&h, &w);
            assert!(s.is_sequential(), "{s}");
            assert!(s.is_complete(), "{s}");
            assert!(preserves_real_time(&h, &s), "{s}");
            assert!(all_txs_legal(&s, &regs()).is_ok(), "{s}");
            // Equivalence to a member of Complete(H): per-tx event sequences
            // must extend H's by at most completion events.
            for t in h.txs() {
                let orig = h.per_tx(t);
                let news = s.per_tx(t);
                assert!(news.len() >= orig.len());
                assert_eq!(&news.events()[..orig.len()], orig.events());
            }
        }
    }

    #[test]
    fn read_your_own_aborted_write_is_opaque() {
        // A transaction must see its own writes even if it later aborts.
        let h = HistoryBuilder::new()
            .write(1, "x", 3)
            .read(1, "x", 3)
            .try_abort(1)
            .abort(1)
            .build();
        assert!(is_opaque(&h, &regs()).unwrap().opaque);
    }

    #[test]
    fn dirty_read_is_not_opaque() {
        // T2 reads T1's not-yet-committed (and never-committed) write.
        let h = HistoryBuilder::new()
            .write(1, "x", 7)
            .read(2, "x", 7)
            .try_commit(2)
            .commit(2)
            .try_abort(1)
            .abort(1)
            .build();
        assert!(!is_opaque(&h, &regs()).unwrap().opaque);
    }

    #[test]
    fn read_from_commit_pending_forces_commit_placement() {
        // H3-like: T2 reads T1's write while T1 is commit-pending. Opaque
        // only by placing T1 as committed.
        let h = paper::h3();
        let r = is_opaque(&h, &regs()).unwrap();
        let w = r.witness.unwrap();
        assert_eq!(w.placement_of(TxId(1)), Some(Placement::Committed));
        assert_eq!(h.status(TxId(1)), TxStatus::CommitPending);
    }

    #[test]
    fn nonserializable_committed_reads_not_opaque() {
        // Classic write-skew-ish: T1 and T2 each read both registers and
        // observe each other's writes in incompatible orders.
        let h = HistoryBuilder::new()
            .read(1, "x", 0)
            .read(2, "y", 0)
            .write(1, "y", 1)
            .write(2, "x", 2)
            .commit_ok(1)
            .commit_ok(2)
            .read(3, "x", 2)
            .read(3, "y", 0)
            .commit_ok(3)
            .build();
        // T3 reads x=2 (from T2) but y=0, though T1 committed y=1: no legal
        // serialization.
        assert!(!is_opaque(&h, &regs()).unwrap().opaque);
    }

    #[test]
    fn sequential_legal_history_is_opaque() {
        let h = HistoryBuilder::new()
            .write(1, "x", 1)
            .commit_ok(1)
            .read(2, "x", 1)
            .write(2, "y", 2)
            .commit_ok(2)
            .read(3, "y", 2)
            .commit_ok(3)
            .build();
        let r = is_opaque(&h, &regs()).unwrap();
        assert!(r.opaque);
        assert_eq!(
            r.witness.unwrap().tx_order(),
            vec![TxId(1), TxId(2), TxId(3)]
        );
    }
}
