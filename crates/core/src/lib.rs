//! # tm-opacity — opacity and its relatives, executable
//!
//! This crate is the primary contribution of the reproduced paper
//! (Guerraoui & Kapałka, *On the Correctness of Transactional Memory*,
//! PPoPP 2008) in executable form:
//!
//! * [`opacity`] — Definition 1 as a decision procedure with serialization
//!   witnesses;
//! * [`graph`] / [`graphcheck`] — the Section 5.4 graph characterization
//!   (`nonlocal(H)`, consistency, `OPG(H, ≪, V)`, Theorem 2), usable both
//!   to certify witnesses and as an independent decision procedure;
//! * [`criteria`] — the Section 3 comparison criteria (serializability,
//!   strict serializability, global atomicity, the recoverability family,
//!   rigorousness), so the paper's separations are demonstrable on concrete
//!   histories;
//! * [`incremental`] — an online monitor enforcing opacity of every prefix
//!   of a TM-generated history;
//! * [`search`] — the shared memoized serialization-search engine, built
//!   around a **resumable [`SearchCore`]**: the memo table, transaction
//!   metadata, and last witness survive across checks, so the monitor
//!   extends the previous prefix's search state instead of recomputing it.
//!   The core is also **parallel and memory-bounded**: `search_jobs` splits
//!   a check at its root placements across a work-stealing pool of scoped
//!   threads sharing a fingerprint-sharded dead-end memo, and
//!   `memo_capacity` bounds the resident entries with segmented-LRU
//!   eviction (both knobs on [`SearchConfig`]).
//!
//! ## Example: the paper's Figure 1 vs Figure 2
//!
//! ```
//! use tm_model::builder::paper;
//! use tm_model::SpecRegistry;
//! use tm_opacity::opacity::is_opaque;
//! use tm_opacity::criteria::{is_global_atomic, ScheduleProperties};
//!
//! let specs = SpecRegistry::registers();
//!
//! // Figure 1 (H1): globally atomic and recoverable, but NOT opaque.
//! let h1 = paper::h1();
//! assert!(is_global_atomic(&h1, &specs).unwrap());
//! assert!(ScheduleProperties::of(&h1).recoverable);
//! assert!(!is_opaque(&h1, &specs).unwrap().opaque);
//!
//! // Figure 2 (H5): opaque, with the paper's witness S = T2 · T1 · T3.
//! let h5 = paper::h5();
//! let report = is_opaque(&h5, &specs).unwrap();
//! assert!(report.opaque);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod criteria;
pub mod explain;
pub mod graph;
pub mod graphcheck;
pub mod incremental;
mod memo;
pub mod opacity;
pub mod search;
mod steal;

pub use criteria::{classify, CriteriaProfile};
pub use explain::{explain_violation, StuckTransaction, ViolationExplanation};
pub use graph::{build_opg, nonlocal, EdgeLabel, NodeLabel, OpacityGraph};
pub use graphcheck::{construct_graph_witness, decide_via_graph, GraphVerdict, GraphWitness};
pub use incremental::{MonitorVerdict, OpacityMonitor};
pub use opacity::{is_opaque, is_opaque_with, witness_history, OpacityReport};
pub use search::{
    CheckError, CheckSession, Placement, SearchConfig, SearchCore, SearchMode, SearchOutcome,
    SearchStats, Witness,
};
