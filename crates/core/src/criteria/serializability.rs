//! Serializability (Section 3.2) and global atomicity (Section 3.4).
//!
//! A history `H` is serializable if the committed transactions of `H` issue
//! the same operations and receive the same responses as in some legal
//! sequential history `S` consisting only of the transactions committed in
//! `H`. Classical serializability is stated for read/write objects;
//! Weihl's *global atomicity* generalizes it to arbitrary objects with
//! sequential specifications. In this object-generic model the two coincide,
//! so [`is_global_atomic`] is an alias of [`is_serializable`] kept for
//! vocabulary fidelity with the paper.
//!
//! Neither criterion constrains live or aborted transactions — the gap
//! opacity fills.

use crate::search::{search, CheckError, Search, SearchConfig, SearchMode};
use tm_model::{History, SpecRegistry};

/// Final-state serializability of the committed transactions of `h`.
pub fn is_serializable(h: &History, specs: &SpecRegistry) -> Result<bool, CheckError> {
    Ok(search(h, specs, SearchMode::SERIALIZABILITY)?.holds())
}

/// [`is_serializable`] with an explicit search configuration (parallel
/// workers, bounded memo) — the knob the conformance pipeline threads
/// through for adversarial recorded histories.
pub fn is_serializable_with(
    h: &History,
    specs: &SpecRegistry,
    config: SearchConfig,
) -> Result<bool, CheckError> {
    Ok(Search::new(h, specs, SearchMode::SERIALIZABILITY, config)?
        .run()?
        .holds())
}

/// Global atomicity (Weihl): serializability over arbitrary objects.
///
/// See the module documentation — in this model this is the same decision
/// procedure as [`is_serializable`].
pub fn is_global_atomic(h: &History, specs: &SpecRegistry) -> Result<bool, CheckError> {
    is_serializable(h, specs)
}

/// 1-copy serializability (Section 3.3, Bernstein & Goodman).
///
/// 1-copy serializability allows multiple physical versions of each object
/// while demanding that committed transactions behave as if a single copy
/// existed. Our model is *value-based*: histories record the values
/// operations actually returned, never which physical copy produced them,
/// so the "one logical copy" requirement is exactly the existence of a
/// legal single-state sequential history over the committed transactions —
/// the same decision procedure as [`is_serializable`]. The limitations the
/// paper attributes to 1-copy serializability (read/write-only model, no
/// constraint on live or aborted transactions) are therefore shared with it
/// here, which is the point of the Section 3.3 comparison.
pub fn is_one_copy_serializable(h: &History, specs: &SpecRegistry) -> Result<bool, CheckError> {
    is_serializable(h, specs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use tm_model::builder::{paper, HistoryBuilder};
    use tm_model::objects::Counter;
    use tm_model::SpecRegistry;

    fn regs() -> SpecRegistry {
        SpecRegistry::registers()
    }

    #[test]
    fn h1_is_serializable() {
        // Aborted T2's inconsistent view is invisible to serializability.
        assert!(is_serializable(&paper::h1(), &regs()).unwrap());
        assert!(is_global_atomic(&paper::h1(), &regs()).unwrap());
    }

    #[test]
    fn committed_cycle_is_not_serializable() {
        // T1 reads x=0 then writes y=1; T2 reads y=0 then writes x=1; both
        // commit reading pre-states: classic non-serializable write skew on
        // reads... make it a read-write cycle that genuinely fails:
        // T1: r(x)=0 w(y)=1; T2: r(y)=1 w(x)=5; T3 reads x=0 after T2
        // commits -- simpler: two txs reading each other's writes.
        let h = HistoryBuilder::new()
            .read(1, "x", 9) // nobody ever writes 9
            .commit_ok(1)
            .build();
        assert!(!is_serializable(&h, &regs()).unwrap());
    }

    #[test]
    fn fractured_reads_not_serializable() {
        // Committed T3 observes T1's write to x but not T1's write to y,
        // with no other writers: no sequential order explains it.
        let h = HistoryBuilder::new()
            .write(1, "x", 1)
            .write(1, "y", 1)
            .commit_ok(1)
            .read(3, "x", 1)
            .read(3, "y", 0)
            .commit_ok(3)
            .build();
        assert!(!is_serializable(&h, &regs()).unwrap());
    }

    #[test]
    fn aborted_transactions_are_erased() {
        // A wildly illegal aborted transaction does not affect
        // serializability.
        let h = HistoryBuilder::new()
            .read(1, "x", 12345)
            .try_commit(1)
            .abort(1)
            .write(2, "x", 1)
            .commit_ok(2)
            .build();
        assert!(is_serializable(&h, &regs()).unwrap());
    }

    #[test]
    fn counter_increments_all_serializable() {
        // Section 3.4: with counter semantics, k blind increments commute —
        // all committed increments serialize.
        let specs = SpecRegistry::new().with("c", Arc::new(Counter));
        let mut b = HistoryBuilder::new();
        for t in 1..=6u32 {
            b = b.inc(t, "c");
        }
        for t in 1..=6u32 {
            b = b.commit_ok(t);
        }
        assert!(is_serializable(&b.build(), &specs).unwrap());
    }

    #[test]
    fn live_transactions_are_ignored() {
        // A live transaction reading garbage does not affect
        // serializability (but would break opacity).
        let h = HistoryBuilder::new()
            .write(1, "x", 1)
            .commit_ok(1)
            .read(2, "x", 77)
            .build();
        assert!(is_serializable(&h, &regs()).unwrap());
        assert!(!crate::opacity::is_opaque(&h, &regs()).unwrap().opaque);
    }
}
