//! Progressiveness as a history-level property (Section 6.1).
//!
//! A TM implementation is *progressive* if it forcefully aborts a
//! transaction `Ti` only when there is a time `t` at which `Ti` conflicts
//! with another concurrent transaction `Tk` that is live at `t`; two
//! transactions conflict when they access some common shared object (the
//! paper deliberately does not distinguish read from update accesses here).
//!
//! The property is about the *implementation*, but any single history
//! provides evidence: a forced abort with no justifying conflict in that
//! history refutes progressiveness. [`check_progressive`] performs exactly
//! that scan, which is how the repository validates the Section 6.2 claims
//! ("TL2 is not progressive") on recorded executions rather than by
//! fiat — see `tests/progressiveness.rs` and the unit tests below.
//!
//! A forced abort of `Ti` is justified iff some transaction `Tk` exists
//! such that, at some time `t` before the abort, (1) both `Ti` and `Tk`
//! have started and accessed a common object by `t` (they conflict at `t`),
//! and (2) `Tk` is live at `t` (its commit/abort event, if any, comes after
//! `t`). Taking `t` as late as possible reduces this to: the two access
//! sets intersect at some index `t ≤ abort(Ti)` while `Tk` is still live.

use std::collections::{HashMap, HashSet};

use tm_model::{Event, History, ObjId, TxId};

/// One unjustified forced abort.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProgressViolation {
    /// The transaction that was forcefully aborted.
    pub tx: TxId,
    /// Index of its abort event in the history.
    pub at: usize,
}

/// The verdict of the progressiveness scan.
#[derive(Clone, Debug, Default)]
pub struct ProgressReport {
    /// Forced aborts with no justifying live conflict.
    pub violations: Vec<ProgressViolation>,
    /// Forced aborts that were justified, with one justifying peer each.
    pub justified: Vec<(TxId, TxId)>,
}

impl ProgressReport {
    /// True if every forced abort in the history was justified.
    pub fn progressive(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Scans `h` for forced aborts and checks each against the progressive
/// criterion.
pub fn check_progressive(h: &History) -> ProgressReport {
    let events = h.events();

    // Access times: for each (tx, obj), the index of the first access
    // (invocation event on that object).
    let mut first_access: HashMap<(TxId, ObjId), usize> = HashMap::new();
    // Completion index of each tx.
    let mut completed_at: HashMap<TxId, usize> = HashMap::new();
    // Whether a tx issued tryA (its abort is then voluntary).
    let mut voluntary: HashSet<TxId> = HashSet::new();
    for (i, e) in events.iter().enumerate() {
        match e {
            Event::Inv { tx, obj, .. } => {
                first_access.entry((*tx, obj.clone())).or_insert(i);
            }
            Event::TryAbort(t) => {
                voluntary.insert(*t);
            }
            Event::Commit(t) | Event::Abort(t) => {
                completed_at.entry(*t).or_insert(i);
            }
            _ => {}
        }
    }

    let objects = h.objects();
    let txs = h.txs();
    let mut report = ProgressReport::default();

    for (i, e) in events.iter().enumerate() {
        let Event::Abort(ti) = e else { continue };
        if voluntary.contains(ti) {
            continue; // tryA · A is not a forced abort
        }
        // Find a justifying Tk: common object accessed by both before i,
        // with Tk live at the later of the two first accesses (the
        // conflict time t) — i.e. Tk's completion strictly after t.
        let mut justification: Option<TxId> = None;
        'peers: for &tk in &txs {
            if tk == *ti {
                continue;
            }
            for obj in &objects {
                let (Some(&a), Some(&b)) = (
                    first_access.get(&(*ti, obj.clone())),
                    first_access.get(&(tk, obj.clone())),
                ) else {
                    continue;
                };
                if a >= i || b >= i {
                    continue; // accesses must precede the abort
                }
                let t = a.max(b); // the conflict exists from time t on
                let tk_live_at_t = completed_at.get(&tk).map_or(true, |&c| c > t);
                if tk_live_at_t {
                    justification = Some(tk);
                    break 'peers;
                }
            }
        }
        match justification {
            Some(tk) => report.justified.push((*ti, tk)),
            None => report.violations.push(ProgressViolation { tx: *ti, at: i }),
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_model::HistoryBuilder;

    #[test]
    fn history_without_aborts_is_progressive() {
        let h = HistoryBuilder::new()
            .write(1, "x", 1)
            .commit_ok(1)
            .read(2, "x", 1)
            .commit_ok(2)
            .build();
        let r = check_progressive(&h);
        assert!(r.progressive());
        assert!(r.justified.is_empty());
    }

    #[test]
    fn voluntary_abort_never_counts() {
        let h = HistoryBuilder::new()
            .read(1, "x", 0)
            .try_abort(1)
            .abort(1)
            .build();
        assert!(check_progressive(&h).progressive());
    }

    #[test]
    fn abort_with_live_conflict_is_justified() {
        // T1 and T2 both access x while both live; T1 forcefully aborted.
        let h = HistoryBuilder::new()
            .read(1, "x", 0)
            .write(2, "x", 5)
            .try_commit(1)
            .abort(1)
            .commit_ok(2)
            .build();
        let r = check_progressive(&h);
        assert!(r.progressive());
        assert_eq!(r.justified, vec![(TxId(1), TxId(2))]);
    }

    #[test]
    fn tl2_style_abort_after_peer_committed_is_a_violation() {
        // The Section 6.2 pattern: T2 writes r1 and commits; only *then*
        // does T1 access r1 (and is aborted mid-read). The conflict's time
        // t is T1's access, at which T2 is no longer live.
        let h = HistoryBuilder::new()
            .read(1, "x", 0)
            .write(2, "y", 5)
            .commit_ok(2)
            .inv_read(1, "y")
            .abort(1)
            .build();
        let r = check_progressive(&h);
        assert!(!r.progressive());
        assert_eq!(r.violations.len(), 1);
        assert_eq!(r.violations[0].tx, TxId(1));
    }

    #[test]
    fn abort_without_any_shared_access_is_a_violation() {
        // Spurious abort: nobody else ever touched T1's objects.
        let h = HistoryBuilder::new()
            .read(1, "x", 0)
            .read(2, "y", 0)
            .try_commit(1)
            .abort(1)
            .commit_ok(2)
            .build();
        let r = check_progressive(&h);
        assert!(!r.progressive());
    }

    #[test]
    fn conflict_time_uses_later_access() {
        // T2 accessed x, completed, and only afterwards T1 accesses x:
        // at the conflict time (T1's access) T2 is completed => violation.
        let h = HistoryBuilder::new()
            .write(2, "x", 5)
            .commit_ok(2)
            .read(1, "x", 5)
            .try_commit(1)
            .abort(1)
            .build();
        assert!(!check_progressive(&h).progressive());
        // Conversely, overlapping lifetimes justify: T2 still live when T1
        // accesses x.
        let h = HistoryBuilder::new()
            .write(2, "x", 5)
            .read(1, "x", 0)
            .commit_ok(2)
            .try_commit(1)
            .abort(1)
            .build();
        assert!(check_progressive(&h).progressive());
    }
}
