//! Snapshot isolation as a history-level criterion.
//!
//! Section 1 lists "a version of SI-STM \[26\]" among the TM implementations
//! that knowingly trade opacity for performance, and suggests opacity "can
//! also be used as a reference point for expressing the semantics of such TM
//! implementations and deriving other, possibly weaker, correctness
//! criteria". This module is one such derived criterion, executable: it is
//! what the SI-STM implementation in `tm-stm` actually guarantees, and it
//! slots strictly between "nothing" and opacity in the lattice —
//!
//! * **weaker than opacity**: a write-skew history is snapshot-isolated but
//!   not opaque (not even serializable over its committed transactions);
//! * **incomparable with plain serializability**: serializability says
//!   nothing about live/aborted transactions (the Figure-1 history H1 is
//!   serializable but *not* snapshot-isolated — T2's two reads cannot come
//!   from one committed snapshot), while write skew is snapshot-isolated but
//!   not serializable.
//!
//! # The formalization
//!
//! Following Berenson et al. (the paper's reference \[1\]), restricted to
//! read/write registers and lifted to *all* transactions of a history (live
//! and aborted included, in the same spirit as Definition 1):
//!
//! A history `H` is snapshot-isolated if there is a total order `≪` on the
//! committed transactions of `H` extending the real-time order, and, for
//! every transaction `T` in `H`, a *snapshot point* — a prefix `P_T` of `≪`
//! containing every committed transaction that completed before `T` began
//! and nothing that started after `T` completed — such that:
//!
//! 1. **snapshot reads**: every non-local read of `T` returns the value of
//!    the last write to that register by `P_T` (or the initial value), and
//! 2. **first-committer-wins**: if `T` is committed at position `i` of `≪`,
//!    the write set of `T` is disjoint from the write set of every
//!    committed transaction ordered in `≪` after `P_T` and before `T`.
//!
//! Local reads (preceded by the transaction's own write to the register)
//! must return the own written value, as everywhere else in the model.
//!
//! The decision procedure enumerates the orders `≪` (real-time pruned) and,
//! per transaction, the feasible snapshot prefixes — the latter check is
//! per-transaction independent, so the cost is `O(orders × n²)` past the
//! permutation enumeration, fine at the history sizes the test-suite and
//! generator use (the same regime as the Definition-1 checker).

use std::collections::HashMap;

use crate::search::CheckError;
use tm_model::{History, ObjId, OpName, RealTimeOrder, SpecRegistry, TxId, Value};

/// Per-transaction register footprint used by the SI decision procedure.
#[derive(Clone, Debug, Default)]
struct Footprint {
    /// Non-local reads in program order: `(register, returned value)`.
    snapshot_reads: Vec<(ObjId, Value)>,
    /// Local reads: `(register, returned value, last own write before it)`.
    local_reads: Vec<(ObjId, Value, Value)>,
    /// Registers written, with the final written value (unused by the
    /// checks below beyond membership, kept for diagnostics).
    writes: HashMap<ObjId, Value>,
}

/// The verdict of [`is_snapshot_isolated`], with a witness on success.
#[derive(Clone, Debug)]
pub struct SiReport {
    /// Does the history satisfy snapshot isolation?
    pub snapshot_isolated: bool,
    /// On success: the witness commit order `≪`.
    pub commit_order: Option<Vec<TxId>>,
    /// On success: per-transaction snapshot points, as the number of
    /// committed transactions (prefix length of `≪`) visible to each
    /// transaction.
    pub snapshot_points: Option<HashMap<TxId, usize>>,
}

/// Decides snapshot isolation for a register-only history.
///
/// Non-register operations yield [`CheckError::NoSpec`] — snapshot isolation
/// (like the Section 5.4 graph characterization) is defined here over
/// read/write registers.
///
/// ```
/// use tm_model::{HistoryBuilder, SpecRegistry};
/// use tm_opacity::criteria::{is_snapshot_isolated, is_serializable};
///
/// // The canonical write skew: both transactions read the initial
/// // snapshot, write disjoint registers, and commit.
/// let h = HistoryBuilder::new()
///     .read(1, "x", 0).read(1, "y", 0)
///     .read(2, "x", 0).read(2, "y", 0)
///     .write(1, "x", -1).write(2, "y", -1)
///     .commit_ok(1).commit_ok(2)
///     .build();
/// let specs = SpecRegistry::registers();
/// assert!(is_snapshot_isolated(&h, &specs).unwrap().snapshot_isolated);
/// assert!(!is_serializable(&h, &specs).unwrap());
/// ```
pub fn is_snapshot_isolated(h: &History, specs: &SpecRegistry) -> Result<SiReport, CheckError> {
    check_snapshot_isolated(h, specs)
}

/// Convenience wrapper returning just the boolean verdict.
pub fn snapshot_isolated(h: &History, specs: &SpecRegistry) -> Result<bool, CheckError> {
    Ok(check_snapshot_isolated(h, specs)?.snapshot_isolated)
}

fn check_snapshot_isolated(h: &History, specs: &SpecRegistry) -> Result<SiReport, CheckError> {
    is_well_formed_checked(h)?;
    let footprints = collect_footprints(h)?;
    // Local reads are checked unconditionally: they are independent of the
    // order and snapshot choices.
    for fp in footprints.values() {
        for (_, returned, own) in &fp.local_reads {
            if returned != own {
                return Ok(SiReport {
                    snapshot_isolated: false,
                    commit_order: None,
                    snapshot_points: None,
                });
            }
        }
    }

    let rt = RealTimeOrder::of(h);
    let committed = h.committed_txs();
    let pending = h.commit_pending_txs();

    // Commit-pending transactions carry the dual semantics of Section 5.2:
    // each may appear committed or aborted. Enumerate the subsets treated
    // as committed, exactly as the graph decider enumerates its set V.
    for mask in 0..(1u32 << pending.len().min(20)) {
        let mut all_committed = committed.clone();
        for (i, &t) in pending.iter().enumerate() {
            if mask & (1 << i) != 0 {
                all_committed.push(t);
            }
        }
        let n = all_committed.len();
        // Enumerate total orders of committed transactions extending ≺_H.
        let mut order: Vec<TxId> = Vec::with_capacity(n);
        let mut used = vec![false; n];
        let mut found: Option<(Vec<TxId>, HashMap<TxId, usize>)> = None;
        enumerate_orders(
            h,
            specs,
            &rt,
            &all_committed,
            &footprints,
            &mut order,
            &mut used,
            &mut found,
        );
        if let Some((order, points)) = found {
            return Ok(SiReport {
                snapshot_isolated: true,
                commit_order: Some(order),
                snapshot_points: Some(points),
            });
        }
    }
    Ok(SiReport {
        snapshot_isolated: false,
        commit_order: None,
        snapshot_points: None,
    })
}

fn is_well_formed_checked(h: &History) -> Result<(), CheckError> {
    tm_model::check_well_formed(h).map_err(CheckError::NotWellFormed)
}

/// Extracts per-transaction footprints; errors on non-register operations.
fn collect_footprints(h: &History) -> Result<HashMap<TxId, Footprint>, CheckError> {
    let mut out: HashMap<TxId, Footprint> = HashMap::new();
    for t in h.txs() {
        let view = h.tx_view(t);
        let fp = out.entry(t).or_default();
        for op in &view.ops {
            match op.op {
                OpName::Read => {
                    let v = op.val.clone();
                    match fp.writes.get(&op.obj) {
                        Some(own) => fp.local_reads.push((op.obj.clone(), v, own.clone())),
                        None => fp.snapshot_reads.push((op.obj.clone(), v)),
                    }
                }
                OpName::Write => {
                    let v = op.args.first().cloned().unwrap_or(Value::Unit);
                    fp.writes.insert(op.obj.clone(), v);
                }
                ref other => {
                    return Err(CheckError::NoSpec(format!(
                        "snapshot isolation is register-only; found operation {other}"
                    )))
                }
            }
        }
    }
    Ok(out)
}

#[allow(clippy::too_many_arguments)]
fn enumerate_orders(
    h: &History,
    specs: &SpecRegistry,
    rt: &RealTimeOrder,
    committed: &[TxId],
    footprints: &HashMap<TxId, Footprint>,
    order: &mut Vec<TxId>,
    used: &mut [bool],
    found: &mut Option<(Vec<TxId>, HashMap<TxId, usize>)>,
) {
    if found.is_some() {
        return;
    }
    if order.len() == committed.len() {
        if let Some(points) = check_order(h, specs, rt, footprints, order) {
            *found = Some((order.clone(), points));
        }
        return;
    }
    'candidates: for (i, &t) in committed.iter().enumerate() {
        if used[i] {
            continue;
        }
        // Real-time pruning: every committed predecessor must be placed.
        for (j, &u) in committed.iter().enumerate() {
            if !used[j] && i != j && rt.precedes(u, t) {
                continue 'candidates;
            }
        }
        used[i] = true;
        order.push(t);
        enumerate_orders(h, specs, rt, committed, footprints, order, used, found);
        order.pop();
        used[i] = false;
        if found.is_some() {
            return;
        }
    }
}

/// Given a committed order, finds a feasible snapshot point for every
/// transaction of `h` (committed or not), or `None`.
fn check_order(
    h: &History,
    specs: &SpecRegistry,
    rt: &RealTimeOrder,
    footprints: &HashMap<TxId, Footprint>,
    order: &[TxId],
) -> Option<HashMap<TxId, usize>> {
    let pos: HashMap<TxId, usize> = order.iter().enumerate().map(|(i, &t)| (t, i)).collect();
    // Snapshot states after each prefix of the order: states[p] maps
    // register -> value after the first p committed transactions.
    let mut states: Vec<HashMap<ObjId, Value>> = Vec::with_capacity(order.len() + 1);
    states.push(HashMap::new());
    for &t in order {
        let mut next = states.last().expect("non-empty").clone();
        if let Some(fp) = footprints.get(&t) {
            for (obj, v) in &fp.writes {
                next.insert(obj.clone(), v.clone());
            }
        }
        states.push(next);
    }

    let mut points = HashMap::new();
    for t in h.txs() {
        let fp = footprints.get(&t).cloned().unwrap_or_default();
        // Feasible snapshot-point range from the real-time order:
        // everything that completed before T began must be visible…
        let mut lo = 0usize;
        for (&u, &pu) in &pos {
            if u != t && rt.precedes(u, t) {
                lo = lo.max(pu + 1);
            }
        }
        // …and nothing that began after T completed may be visible.
        let mut hi = order.len();
        for (&u, &pu) in &pos {
            if u != t && rt.precedes(t, u) {
                hi = hi.min(pu);
            }
        }
        // A committed transaction cannot see its own or later commits.
        if let Some(&pt) = pos.get(&t) {
            hi = hi.min(pt);
        }
        let mut chosen = None;
        'points: for p in lo..=hi {
            // 1. snapshot reads
            for (obj, v) in &fp.snapshot_reads {
                let expected = states[p]
                    .get(obj)
                    .cloned()
                    .unwrap_or_else(|| specs.initial_of(obj).unwrap_or(Value::int(0)));
                if *v != expected {
                    continue 'points;
                }
            }
            // 2. first-committer-wins for committed transactions
            if let Some(&pt) = pos.get(&t) {
                for &u in &order[p..pt] {
                    if u == t {
                        continue;
                    }
                    let other = footprints.get(&u).cloned().unwrap_or_default();
                    if fp.writes.keys().any(|o| other.writes.contains_key(o)) {
                        continue 'points;
                    }
                }
            }
            chosen = Some(p);
            break;
        }
        points.insert(t, chosen?);
    }
    Some(points)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_model::builder::{paper, HistoryBuilder};

    fn regs() -> SpecRegistry {
        SpecRegistry::registers()
    }

    fn si(h: &History) -> bool {
        snapshot_isolated(h, &regs()).unwrap()
    }

    #[test]
    fn empty_and_sequential_histories_are_si() {
        assert!(si(&History::new()));
        let h = HistoryBuilder::new()
            .write(1, "x", 1)
            .commit_ok(1)
            .read(2, "x", 1)
            .write(2, "y", 2)
            .commit_ok(2)
            .build();
        assert!(si(&h));
    }

    #[test]
    fn write_skew_is_si_but_not_serializable() {
        // T1 reads x,y then writes x := -1; T2 reads x,y then writes
        // y := -1; both commit. Disjoint write sets, common snapshot.
        let h = HistoryBuilder::new()
            .read(1, "x", 0)
            .read(1, "y", 0)
            .read(2, "x", 0)
            .read(2, "y", 0)
            .write(1, "x", -1)
            .write(2, "y", -1)
            .commit_ok(1)
            .commit_ok(2)
            .build();
        assert!(si(&h), "write skew must satisfy SI");
        assert!(
            !super::super::is_serializable(&h, &regs()).unwrap(),
            "write skew must not be serializable"
        );
        assert!(!crate::opacity::is_opaque(&h, &regs()).unwrap().opaque);
    }

    #[test]
    fn lost_update_is_not_si() {
        // Both read x=0 and write x — overlapping write sets with a common
        // snapshot: first-committer-wins forbids the second commit.
        let h = HistoryBuilder::new()
            .read(1, "x", 0)
            .read(2, "x", 0)
            .write(1, "x", 1)
            .write(2, "x", 2)
            .commit_ok(1)
            .commit_ok(2)
            .build();
        assert!(!si(&h));
    }

    #[test]
    fn h1_is_serializable_but_not_si() {
        // Figure 1: aborted T2 reads x=1 (pre-T3) and y=2 (post-T3) —
        // no single committed snapshot provides that view.
        let h = paper::h1();
        assert!(super::super::is_serializable(&h, &regs()).unwrap());
        assert!(!si(&h), "H1's fractured read must violate SI");
    }

    #[test]
    fn h5_is_si() {
        // Figure 2 is opaque, and opacity implies SI on this history: the
        // witness order T2 ≪ T3 serves, with T1 reading T2's snapshot.
        assert!(si(&paper::h5()));
    }

    #[test]
    fn live_transaction_with_fractured_view_violates_si() {
        let h = HistoryBuilder::new()
            .write(1, "x", 1)
            .write(1, "y", 1)
            .commit_ok(1)
            .read(2, "x", 1)
            .read(2, "y", 0) // mixes the initial snapshot with T1's
            .build();
        assert!(!si(&h));
    }

    #[test]
    fn local_reads_must_see_own_writes() {
        let h = HistoryBuilder::new()
            .write(1, "x", 5)
            .read(1, "x", 0) // must be 5
            .commit_ok(1)
            .build();
        assert!(!si(&h));
    }

    #[test]
    fn real_time_order_binds_snapshots() {
        // T1 commits x=1 strictly before T2 begins; T2 reading the initial
        // value is a stale (disallowed) snapshot.
        let h = HistoryBuilder::new()
            .write(1, "x", 1)
            .commit_ok(1)
            .read(2, "x", 0)
            .commit_ok(2)
            .build();
        assert!(!si(&h));
    }

    #[test]
    fn concurrent_reader_may_use_old_snapshot() {
        // The reader overlaps the writer: the pre-commit snapshot is fair
        // game (multi-version freedom, as in history H4).
        let h = HistoryBuilder::new()
            .read(1, "x", 0)
            .write(2, "x", 5)
            .write(2, "y", 5)
            .commit_ok(2)
            .read(1, "y", 0)
            .commit_ok(1)
            .build();
        assert!(si(&h));
    }

    #[test]
    fn commit_pending_writer_visible_or_not() {
        // H4 (Section 5.2): T3 sees commit-pending T2's write, T1 does not
        // — both readers still have *consistent single snapshots*, so SI
        // holds (as does opacity).
        assert!(si(&paper::h4()));
    }

    #[test]
    fn snapshot_points_witness_is_reported() {
        let h = HistoryBuilder::new()
            .write(1, "x", 1)
            .commit_ok(1)
            .read(2, "x", 1)
            .commit_ok(2)
            .build();
        let r = is_snapshot_isolated(&h, &regs()).unwrap();
        assert!(r.snapshot_isolated);
        let order = r.commit_order.unwrap();
        assert_eq!(order.len(), 2);
        let points = r.snapshot_points.unwrap();
        // T2's snapshot must include T1.
        assert_eq!(points[&TxId(2)], 1);
    }

    #[test]
    fn non_register_operations_are_rejected() {
        let h = HistoryBuilder::new().inc(1, "c").commit_ok(1).build();
        assert!(matches!(
            snapshot_isolated(&h, &regs()),
            Err(CheckError::NoSpec(_))
        ));
    }

    #[test]
    fn opaque_histories_in_the_suite_are_si() {
        // Spot-check the implication opacity ⇒ SI on the paper histories.
        for h in [paper::h2(), paper::h4(), paper::h5()] {
            if crate::opacity::is_opaque(&h, &regs()).unwrap().opaque {
                assert!(si(&h), "opacity must imply SI on {h}");
            }
        }
    }
}
