//! Strict serializability: serializability "considered in its strict form
//! \[24\] to account for real-time ordering" (Sections 1 and 3.2; the
//! paper's citation 24 is Papadimitriou's JACM 1979 serializability paper).
//!
//! The committed transactions must admit a legal sequential order that
//! additionally preserves `≺_H`. The paper's point (and test
//! `h1_strictly_serializable_yet_not_opaque` below) is that even this is not
//! sufficient for TM: it says nothing about live or aborted transactions.

use crate::search::{search, CheckError, SearchMode};
use tm_model::{History, SpecRegistry};

/// Is `h` strictly serializable (committed transactions, real-time order
/// preserved)?
pub fn is_strictly_serializable(h: &History, specs: &SpecRegistry) -> Result<bool, CheckError> {
    Ok(search(h, specs, SearchMode::STRICT_SERIALIZABILITY)?.holds())
}

/// Transaction-level linearizability (Section 3.1).
///
/// Treating each committed transaction as one operation on the composite
/// shared state, linearizability asks for a single point within each
/// transaction's lifespan at which it appears to take effect — i.e. a legal
/// sequential order of the committed transactions preserving real time.
/// That is strict serializability, so this is the same decision procedure;
/// the paper's criticism stands regardless: a TM transaction "is not a
/// black box operation" — linearizability says nothing about the values
/// observed by live or aborted transactions, which is what opacity adds.
pub fn is_tx_linearizable(h: &History, specs: &SpecRegistry) -> Result<bool, CheckError> {
    is_strictly_serializable(h, specs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::criteria::serializability::is_serializable;
    use tm_model::builder::{paper, HistoryBuilder};

    fn regs() -> SpecRegistry {
        SpecRegistry::registers()
    }

    #[test]
    fn h1_strictly_serializable_yet_not_opaque() {
        assert!(is_strictly_serializable(&paper::h1(), &regs()).unwrap());
        assert!(
            !crate::opacity::is_opaque(&paper::h1(), &regs())
                .unwrap()
                .opaque
        );
    }

    #[test]
    fn stale_read_violates_strictness_only() {
        // T2 starts after T1 commits x=1 but reads the overwritten 0 — the
        // "extensive caching" anomaly of Section 2. Serializable (order T2
        // before T1) but not strictly serializable.
        let h = HistoryBuilder::new()
            .write(1, "x", 1)
            .commit_ok(1)
            .read(2, "x", 0)
            .commit_ok(2)
            .build();
        assert!(is_serializable(&h, &regs()).unwrap());
        assert!(!is_strictly_serializable(&h, &regs()).unwrap());
    }

    #[test]
    fn concurrent_transactions_may_reorder() {
        // T2 overlaps T1, so placing T2 before T1 is allowed.
        let h = HistoryBuilder::new()
            .inv_write(1, "x", 1)
            .inv_read(2, "x")
            .ret_write(1, "x")
            .ret_read(2, "x", 0)
            .commit_ok(1)
            .commit_ok(2)
            .build();
        assert!(is_strictly_serializable(&h, &regs()).unwrap());
    }

    #[test]
    fn strict_implies_plain_serializability() {
        for h in [paper::h1(), paper::h2(), paper::h4(), paper::h5()] {
            if is_strictly_serializable(&h, &regs()).unwrap() {
                assert!(is_serializable(&h, &regs()).unwrap());
            }
        }
    }
}
