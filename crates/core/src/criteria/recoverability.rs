//! The recoverability family (Section 3.5) and rigorous scheduling
//! (Section 3.6), as schedule-level properties.
//!
//! These criteria constrain *when* operations may occur relative to the
//! commit/abort events of other transactions, rather than asserting the
//! existence of an equivalent sequential history:
//!
//! * **recoverability** (Hadzilacos): if `Tk` reads from `Ti` and `Tk`
//!   commits, then `Ti` committed before `Tk`'s commit;
//! * **avoiding cascading aborts (ACA)**: transactions only read values
//!   written by already-committed transactions;
//! * **strictness**: no transaction reads or overwrites a value written by a
//!   transaction that is still live — the paper's "strongest form" of
//!   recoverability ("if a transaction Ti updates a shared object x, then no
//!   other transaction can perform an operation on x until Ti commits or
//!   aborts");
//! * **rigorousness** (Breitbart et al., Section 3.6): strictness plus no
//!   overwriting of objects read by live transactions.
//!
//! The hierarchy `rigorous ⊆ strict ⊆ ACA ⊆ recoverable` is asserted by the
//! property tests. For non-register objects, any non-read-only operation
//! counts as an update and read-only operations count as reads; the
//! reads-from relation is defined for registers via the unique-writes
//! convention.

use tm_model::{Event, History, ObjId, OpName, TxId, Value};

/// Is `op` read-only (leaves the object state unchanged)?
fn is_read_only(op: &OpName) -> bool {
    matches!(op, OpName::Read | OpName::Get | OpName::Contains)
}

/// A single schedule-property violation, for diagnostics.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// The transaction whose operation violates the property.
    pub tx: TxId,
    /// The other transaction involved.
    pub other: TxId,
    /// The object on which they clash.
    pub obj: ObjId,
    /// Human-readable description.
    pub what: String,
}

/// The recoverability-family verdicts for one history.
#[derive(Clone, Debug, Default)]
pub struct ScheduleProperties {
    /// Recoverability holds.
    pub recoverable: bool,
    /// ACA holds.
    pub avoids_cascading_aborts: bool,
    /// Strictness holds.
    pub strict: bool,
    /// Rigorousness holds.
    pub rigorous: bool,
    /// Violations found, one list per property.
    pub violations: ViolationLists,
}

/// Per-property violation lists.
#[derive(Clone, Debug, Default)]
pub struct ViolationLists {
    /// Violations of recoverability.
    pub recoverability: Vec<Violation>,
    /// Violations of ACA.
    pub aca: Vec<Violation>,
    /// Violations of strictness.
    pub strictness: Vec<Violation>,
    /// Violations of rigorousness (beyond strictness).
    pub rigorousness: Vec<Violation>,
}

/// An access extracted from the history, at its invocation position.
struct Access {
    pos: usize,
    tx: TxId,
    obj: ObjId,
    is_update: bool,
    /// For register writes: the written value (for reads-from).
    written: Option<Value>,
    /// For register reads: the read value (filled from the response).
    read: Option<Value>,
}

/// Detailed report used by [`ScheduleProperties::of`].
#[derive(Clone, Debug, Default)]
pub struct RecoverabilityReport {
    /// The reads-from pairs `(reader, writer, object)` discovered.
    pub reads_from: Vec<(TxId, TxId, ObjId)>,
}

impl ScheduleProperties {
    /// Computes all four properties for `h` in one scan.
    pub fn of(h: &History) -> ScheduleProperties {
        let (props, _) = Self::of_with_report(h);
        props
    }

    /// Computes the properties and the reads-from report.
    pub fn of_with_report(h: &History) -> (ScheduleProperties, RecoverabilityReport) {
        let events = h.events();
        // Completion position of each transaction (C/A event index).
        let completion: std::collections::HashMap<TxId, (usize, bool)> = {
            let mut m = std::collections::HashMap::new();
            for (i, e) in events.iter().enumerate() {
                match e {
                    Event::Commit(t) => {
                        m.insert(*t, (i, true));
                    }
                    Event::Abort(t) => {
                        m.insert(*t, (i, false));
                    }
                    _ => {}
                }
            }
            m
        };
        let committed_at = |t: TxId, pos: usize| -> bool {
            matches!(completion.get(&t), Some(&(c, true)) if c < pos)
        };
        let completed_at = |t: TxId, pos: usize| -> bool {
            matches!(completion.get(&t), Some(&(c, _)) if c < pos)
        };

        // Extract accesses. Updates are timed at their invocation; register
        // read values come from the matching response.
        let mut accesses: Vec<Access> = Vec::new();
        {
            let mut pending: std::collections::HashMap<TxId, usize> =
                std::collections::HashMap::new();
            for (i, e) in events.iter().enumerate() {
                match e {
                    Event::Inv { tx, obj, op, args } => {
                        let is_update = !is_read_only(op);
                        let written = if *op == OpName::Write {
                            args.first().cloned()
                        } else {
                            None
                        };
                        accesses.push(Access {
                            pos: i,
                            tx: *tx,
                            obj: obj.clone(),
                            is_update,
                            written,
                            read: None,
                        });
                        pending.insert(*tx, accesses.len() - 1);
                    }
                    Event::Ret { tx, op, val, .. } => {
                        if *op == OpName::Read {
                            if let Some(&ai) = pending.get(tx) {
                                accesses[ai].read = Some(val.clone());
                            }
                        }
                        pending.remove(tx);
                    }
                    _ => {}
                }
            }
        }

        // The reads-from relation (registers, unique-writes convention):
        // the writer of the value actually read, choosing the latest
        // matching write that precedes the read if several exist.
        let mut reads_from: Vec<(usize, TxId, TxId, ObjId)> = Vec::new(); // (read pos, reader, writer, obj)
        for a in accesses.iter().filter(|a| a.read.is_some()) {
            let v = a.read.as_ref().unwrap();
            let writer = accesses
                .iter()
                .filter(|w| w.obj == a.obj && w.written.as_ref() == Some(v) && w.pos < a.pos)
                .max_by_key(|w| w.pos)
                .map(|w| w.tx);
            if let Some(wtx) = writer {
                if wtx != a.tx {
                    reads_from.push((a.pos, a.tx, wtx, a.obj.clone()));
                }
            }
        }

        let mut v = ViolationLists::default();

        // Recoverability: if Tk reads from Ti and Tk commits, Ti must have
        // committed before Tk's commit.
        for (_, reader, writer, obj) in &reads_from {
            if let Some(&(ck, true)) = completion.get(reader) {
                let ok = matches!(completion.get(writer), Some(&(ci, true)) if ci < ck);
                if !ok {
                    v.recoverability.push(Violation {
                        tx: *reader,
                        other: *writer,
                        obj: obj.clone(),
                        what: format!(
                            "{reader} committed having read from {writer}, which did not commit first"
                        ),
                    });
                }
            }
        }

        // ACA: every read must be from a transaction already committed at
        // the time of the read.
        for (pos, reader, writer, obj) in &reads_from {
            if !committed_at(*writer, *pos) {
                v.aca.push(Violation {
                    tx: *reader,
                    other: *writer,
                    obj: obj.clone(),
                    what: format!("{reader} read {obj} from uncommitted {writer}"),
                });
            }
        }

        // Strictness: no operation on x while another transaction that
        // updated x is incomplete.
        for a in &accesses {
            for w in &accesses {
                if w.is_update
                    && w.tx != a.tx
                    && w.obj == a.obj
                    && w.pos < a.pos
                    && !completed_at(w.tx, a.pos)
                {
                    v.strictness.push(Violation {
                        tx: a.tx,
                        other: w.tx,
                        obj: a.obj.clone(),
                        what: format!("{} accessed {} updated by incomplete {}", a.tx, a.obj, w.tx),
                    });
                }
            }
        }

        // Rigorousness: additionally, no update of x while another
        // transaction that read x is incomplete.
        for a in accesses.iter().filter(|a| a.is_update) {
            for r in accesses.iter().filter(|r| !r.is_update) {
                if r.tx != a.tx && r.obj == a.obj && r.pos < a.pos && !completed_at(r.tx, a.pos) {
                    v.rigorousness.push(Violation {
                        tx: a.tx,
                        other: r.tx,
                        obj: a.obj.clone(),
                        what: format!("{} updated {} read by incomplete {}", a.tx, a.obj, r.tx),
                    });
                }
            }
        }

        let props = ScheduleProperties {
            recoverable: v.recoverability.is_empty(),
            avoids_cascading_aborts: v.aca.is_empty(),
            strict: v.strictness.is_empty(),
            rigorous: v.strictness.is_empty() && v.rigorousness.is_empty(),
            violations: v,
        };
        let report = RecoverabilityReport {
            reads_from: reads_from
                .into_iter()
                .map(|(_, r, w, o)| (r, w, o))
                .collect(),
        };
        (props, report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_model::builder::{paper, HistoryBuilder};

    #[test]
    fn h1_is_recoverable_and_aca() {
        // The paper: "H satisfies recoverability: T2 accesses x after T1
        // commits and before T3 starts, whilst T2 accesses y after T3
        // commits."
        let p = ScheduleProperties::of(&paper::h1());
        assert!(p.recoverable);
        assert!(p.avoids_cascading_aborts);
        // Strictness also holds in H1: every access is to committed data.
        assert!(p.strict);
    }

    #[test]
    fn h1_reads_from() {
        let (_, report) = ScheduleProperties::of_with_report(&paper::h1());
        assert!(report.reads_from.contains(&(TxId(2), TxId(1), "x".into())));
        assert!(report.reads_from.contains(&(TxId(2), TxId(3), "y".into())));
    }

    #[test]
    fn dirty_read_breaks_aca_and_strictness() {
        let h = HistoryBuilder::new()
            .write(1, "x", 7)
            .read(2, "x", 7) // T1 still live: dirty read
            .commit_ok(1)
            .commit_ok(2)
            .build();
        let p = ScheduleProperties::of(&h);
        assert!(!p.avoids_cascading_aborts);
        assert!(!p.strict);
        assert!(!p.rigorous);
        // Recoverable though: T1 commits before T2's commit.
        assert!(p.recoverable);
    }

    #[test]
    fn commit_before_writer_breaks_recoverability() {
        let h = HistoryBuilder::new()
            .write(1, "x", 7)
            .read(2, "x", 7)
            .commit_ok(2) // reader commits first
            .commit_ok(1)
            .build();
        let p = ScheduleProperties::of(&h);
        assert!(!p.recoverable);
        assert_eq!(p.violations.recoverability.len(), 1);
        assert_eq!(p.violations.recoverability[0].tx, TxId(2));
    }

    #[test]
    fn read_from_aborted_breaks_recoverability() {
        let h = HistoryBuilder::new()
            .write(1, "x", 7)
            .read(2, "x", 7)
            .try_abort(1)
            .abort(1)
            .commit_ok(2)
            .build();
        assert!(!ScheduleProperties::of(&h).recoverable);
    }

    #[test]
    fn overwrite_of_read_data_breaks_rigorousness_only() {
        // T1 reads x; T2 then writes x while T1 is live. Strict (nothing
        // dirty is touched) but not rigorous.
        let h = HistoryBuilder::new()
            .read(1, "x", 0)
            .write(2, "x", 5)
            .commit_ok(2)
            .commit_ok(1)
            .build();
        let p = ScheduleProperties::of(&h);
        assert!(p.strict);
        assert!(!p.rigorous);
        assert_eq!(p.violations.rigorousness.len(), 1);
    }

    #[test]
    fn concurrent_blind_writes_break_strictness() {
        // Section 3.6's overlapping writers: all update x,y,z concurrently.
        let mut b = HistoryBuilder::new();
        for t in 1..=3u32 {
            b = b
                .write(t, "x", t as i64)
                .write(t, "y", t as i64)
                .write(t, "z", t as i64);
        }
        for t in 1..=3u32 {
            b = b.commit_ok(t);
        }
        let p = ScheduleProperties::of(&b.build());
        assert!(!p.strict);
        assert!(!p.rigorous);
        // No reads at all: recoverability and ACA hold vacuously.
        assert!(p.recoverable);
        assert!(p.avoids_cascading_aborts);
    }

    #[test]
    fn concurrent_counter_incs_break_strictness() {
        // Section 3.4/3.5: recoverability's strong form forbids concurrent
        // increments even though they commute.
        let h = HistoryBuilder::new()
            .inc(1, "c")
            .inc(2, "c")
            .commit_ok(1)
            .commit_ok(2)
            .build();
        let p = ScheduleProperties::of(&h);
        assert!(!p.strict);
        // No reads: ACA/recoverability vacuous.
        assert!(p.recoverable && p.avoids_cascading_aborts);
    }

    #[test]
    fn sequential_history_satisfies_everything() {
        let h = HistoryBuilder::new()
            .write(1, "x", 1)
            .commit_ok(1)
            .read(2, "x", 1)
            .write(2, "x", 2)
            .commit_ok(2)
            .build();
        let p = ScheduleProperties::of(&h);
        assert!(p.recoverable && p.avoids_cascading_aborts && p.strict && p.rigorous);
    }

    #[test]
    fn hierarchy_rigorous_implies_strict_implies_aca() {
        // Sanity over the paper histories and some crafted ones.
        for h in [
            paper::h1(),
            paper::h2(),
            paper::h3(),
            paper::h4(),
            paper::h5(),
            HistoryBuilder::new()
                .write(1, "x", 1)
                .read(2, "x", 1)
                .commit_ok(1)
                .commit_ok(2)
                .build(),
        ] {
            let p = ScheduleProperties::of(&h);
            if p.rigorous {
                assert!(p.strict, "{h}");
            }
            if p.strict {
                assert!(p.avoids_cascading_aborts, "{h}");
            }
            if p.avoids_cascading_aborts {
                assert!(p.recoverable, "{h}");
            }
        }
    }
}
