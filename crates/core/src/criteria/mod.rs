//! The classical correctness criteria of Section 3, as executable checkers.
//!
//! The paper argues that none of the database/shared-memory criteria capture
//! TM semantics. This module makes each of them executable so that the
//! separations can be *demonstrated on concrete histories*:
//!
//! * [`serializability`] — final-state serializability of committed
//!   transactions (Papadimitriou), object-generic, so it doubles as **global
//!   atomicity** (Weihl) in this model;
//! * [`strict_serializability`] — serializability plus real-time order;
//! * [`recoverability`] — the recoverability family of Hadzilacos:
//!   recoverability proper, avoidance of cascading aborts, strictness, and
//!   rigorousness (Section 3.6's "rigorous scheduling");
//! * [`progress`] — the Section 6.1 progressiveness property (every forced
//!   abort must be justified by a live conflict), used to validate the
//!   Section 6.2 claims about TL2 and DSTM on recorded executions;
//! * [`snapshot_isolation`] — a criterion *derived from opacity's reference
//!   point* (the Section 1 suggestion): what the SI-STM trade-off system
//!   actually guarantees — weaker than opacity (write skew passes),
//!   incomparable with serializability (H1 fails it);
//! * the criteria lattice helper [`classify`], which evaluates a history
//!   against everything at once (used by the separation tests E1/E5/E6 and
//!   the examples).

pub mod progress;
pub mod recoverability;
pub mod serializability;
pub mod snapshot_isolation;
pub mod strict_serializability;

pub use progress::{check_progressive, ProgressReport, ProgressViolation};
pub use recoverability::{RecoverabilityReport, ScheduleProperties};
pub use serializability::{
    is_global_atomic, is_one_copy_serializable, is_serializable, is_serializable_with,
};
pub use snapshot_isolation::{is_snapshot_isolated, snapshot_isolated, SiReport};
pub use strict_serializability::{is_strictly_serializable, is_tx_linearizable};

use crate::opacity::is_opaque;
use crate::search::CheckError;
use tm_model::{History, SpecRegistry};

/// A history's position in the criteria lattice: which of the Section 3
/// criteria (and opacity) it satisfies.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CriteriaProfile {
    /// Final-state serializability of committed transactions (≙ global
    /// atomicity in this object-generic model).
    pub serializable: bool,
    /// Serializability preserving the real-time order of transactions.
    pub strictly_serializable: bool,
    /// Recoverability (commit order respects reads-from).
    pub recoverable: bool,
    /// Avoids cascading aborts (reads only from committed transactions).
    pub avoids_cascading_aborts: bool,
    /// Strictness (no read/overwrite of dirty data).
    pub strict: bool,
    /// Rigorousness (strict + no overwrite of data read by live
    /// transactions) — Section 3.6's rigorous scheduling.
    pub rigorous: bool,
    /// Opacity (Definition 1).
    pub opaque: bool,
}

/// Evaluates `h` against every criterion at once.
///
/// The recoverability family is register-specific (it needs a reads-from
/// relation); for histories over non-register objects those fields are
/// reported by [`ScheduleProperties`]'s conservative object-level conflict
/// interpretation.
pub fn classify(h: &History, specs: &SpecRegistry) -> Result<CriteriaProfile, CheckError> {
    let sched = ScheduleProperties::of(h);
    Ok(CriteriaProfile {
        serializable: is_serializable(h, specs)?,
        strictly_serializable: is_strictly_serializable(h, specs)?,
        recoverable: sched.recoverable,
        avoids_cascading_aborts: sched.avoids_cascading_aborts,
        strict: sched.strict,
        rigorous: sched.rigorous,
        opaque: is_opaque(h, specs)?.opaque,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_model::builder::paper;

    #[test]
    fn h1_profile_matches_figure_1_caption() {
        // "A history that satisfies global atomicity (with real-time
        // ordering guarantees) and recoverability, but in which an aborted
        // transaction (T2) accesses an inconsistent state."
        let p = classify(&paper::h1(), &SpecRegistry::registers()).unwrap();
        assert!(p.serializable);
        assert!(p.strictly_serializable);
        assert!(p.recoverable);
        assert!(p.avoids_cascading_aborts);
        assert!(!p.opaque);
    }

    #[test]
    fn h5_profile() {
        let p = classify(&paper::h5(), &SpecRegistry::registers()).unwrap();
        assert!(p.opaque);
        assert!(p.serializable);
        assert!(p.strictly_serializable);
    }
}
