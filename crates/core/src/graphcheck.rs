//! Deciding opacity via Theorem 2.
//!
//! Theorem 2: a register history `H` (unique writes, initializing committed
//! `T0`) is opaque iff (1) `H` is consistent and (2) there exist a total
//! order `≪` on its transactions and a set `V` of commit-pending
//! transactions such that `OPG(nonlocal(H), ≪, V)` is well-formed and
//! acyclic.
//!
//! Two entry points:
//!
//! * [`construct_graph_witness`] — for an opaque history, *constructs* a
//!   `(≪, V)` pair and verifies Theorem 2's conditions on it. This is the
//!   cheap "⇒" direction used to double-check every positive verdict of
//!   the definitional checker.
//! * [`decide_via_graph`] — the full existential search over `(≪, V)`
//!   (permutations × subsets). Exponential, intended for the Theorem-2
//!   cross-validation suite on small histories; it is an *independent*
//!   decision procedure sharing no code with the definitional search.
//!
//! ### Why the construction always succeeds on opaque histories
//!
//! The `≪` used is a Definition-1 serialization order of `H · T0`, and the
//! OPG's rule-1 edges come from `≺_H` of the full history (see
//! [`build_opg`]'s documentation for why *not* from `nonlocal(H)`'s
//! real-time order). Every edge then provably points forward in `≪`:
//! rt edges because the witness preserves `≺_H`; rf edges because, under
//! unique writes, a legal reader must be serialized after the (committed or
//! visible) writer of the value it read; rw edges by construction; and ww
//! edges because a visible intermediate writer between `Tk` and a reader of
//! `Tk`'s value would make that read illegal. Hence the OPG is acyclic and
//! well-formed whenever a Definition-1 witness exists.

use std::collections::HashSet;

use crate::graph::{
    build_opg, check_graph_preconditions, is_consistent, with_initial_tx, GraphError,
};
use crate::search::Placement;
use tm_model::{History, SpecRegistry, TxId};

/// A `(≪, V)` pair that makes the OPG well-formed and acyclic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GraphWitness {
    /// The total order `≪` (including the synthetic `T0`).
    pub order: Vec<TxId>,
    /// The visible commit-pending set `V`.
    pub visible: HashSet<TxId>,
}

/// The verdict of the Theorem-2 decision procedure.
#[derive(Clone, Debug)]
pub struct GraphVerdict {
    /// Is the history consistent (precondition (1) of Theorem 2)?
    pub consistent: bool,
    /// A witness if one exists.
    pub witness: Option<GraphWitness>,
    /// Number of `(≪, V)` candidates examined.
    pub candidates_checked: usize,
}

impl GraphVerdict {
    /// Theorem 2's "opaque" verdict.
    pub fn opaque(&self) -> bool {
        self.consistent && self.witness.is_some()
    }
}

/// Prepares `h` for the graph machinery: checks preconditions and prepends
/// the initializing transaction.
fn prepare(h: &History, specs: &SpecRegistry) -> Result<History, GraphError> {
    let h0 = with_initial_tx(h, specs);
    check_graph_preconditions(&h0)?;
    Ok(h0)
}

/// Constructs a Theorem-2 witness for an opaque history: serializes
/// `H · T0-prefix` with the definitional engine, converts the serialization
/// order into `≪` and the committed placements of commit-pending
/// transactions into `V`, then verifies that the OPG is well-formed and
/// acyclic.
///
/// Returns `Ok(None)` when no witness exists (the history is inconsistent
/// or not opaque) — so `construct_graph_witness(h).is_some()` agrees with
/// opacity on histories meeting the Section 5.4 preconditions.
pub fn construct_graph_witness(
    h: &History,
    specs: &SpecRegistry,
) -> Result<Option<GraphWitness>, GraphError> {
    let h0 = prepare(h, specs)?;
    if !is_consistent(&h0) {
        return Ok(None);
    }
    let report = crate::opacity::is_opaque(&h0, specs)
        .expect("prepared history is well-formed and register-spec'd");
    let Some(w) = report.witness else {
        return Ok(None);
    };
    let order: Vec<TxId> = w.order.iter().map(|(t, _)| *t).collect();
    let visible: HashSet<TxId> = w
        .order
        .iter()
        .filter(|(t, p)| *p == Placement::Committed && h0.status(*t).is_commit_pending())
        .map(|(t, _)| *t)
        .collect();
    let g = build_opg(&h0, &order, &visible);
    if g.is_well_formed() && g.is_acyclic() {
        Ok(Some(GraphWitness { order, visible }))
    } else {
        Ok(None)
    }
}

/// Decides opacity of `h` purely through Theorem 2, by exhaustive search
/// over total orders `≪` and visible sets `V`.
///
/// Cost is `O(n! · 2^p)` graph constructions; the function refuses histories
/// with more than `max_txs` transactions (default use: cross-validation on
/// randomly generated histories with ≤ 6 transactions).
pub fn decide_via_graph(
    h: &History,
    specs: &SpecRegistry,
    max_txs: usize,
) -> Result<GraphVerdict, GraphError> {
    let h0 = prepare(h, specs)?;
    let consistent = is_consistent(&h0);
    if !consistent {
        return Ok(GraphVerdict {
            consistent,
            witness: None,
            candidates_checked: 0,
        });
    }
    let txs = h0.txs();
    assert!(
        txs.len() <= max_txs + 1, // +1 for T0
        "decide_via_graph: {} transactions exceed limit {max_txs}",
        txs.len() - 1
    );
    let commit_pending = h0.commit_pending_txs();
    let mut candidates_checked = 0usize;

    // Enumerate V ⊆ commit-pending, then permutations of the transactions.
    let p = commit_pending.len();
    for mask in 0u32..(1u32 << p) {
        let visible: HashSet<TxId> = commit_pending
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, t)| *t)
            .collect();
        let mut perm = txs.clone();
        let found = heaps_search(&mut perm, &mut |order: &[TxId]| {
            candidates_checked += 1;
            let g = build_opg(&h0, order, &visible);
            g.is_well_formed() && g.is_acyclic()
        });
        if let Some(order) = found {
            return Ok(GraphVerdict {
                consistent,
                witness: Some(GraphWitness { order, visible }),
                candidates_checked,
            });
        }
    }
    Ok(GraphVerdict {
        consistent,
        witness: None,
        candidates_checked,
    })
}

/// Heap's algorithm with early exit; returns the first permutation accepted
/// by `accept`.
fn heaps_search<F: FnMut(&[TxId]) -> bool>(
    items: &mut Vec<TxId>,
    accept: &mut F,
) -> Option<Vec<TxId>> {
    fn rec<F: FnMut(&[TxId]) -> bool>(
        k: usize,
        items: &mut Vec<TxId>,
        accept: &mut F,
    ) -> Option<Vec<TxId>> {
        if k <= 1 {
            return accept(items).then(|| items.clone());
        }
        for i in 0..k {
            if let Some(found) = rec(k - 1, items, accept) {
                return Some(found);
            }
            if k % 2 == 0 {
                items.swap(i, k - 1);
            } else {
                items.swap(0, k - 1);
            }
        }
        None
    }
    let n = items.len();
    if n == 0 {
        return accept(items).then(|| items.clone());
    }
    rec(n, items, accept)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::INIT_TX;
    use crate::opacity::is_opaque;
    use tm_model::builder::{paper, HistoryBuilder};

    fn regs() -> SpecRegistry {
        SpecRegistry::registers()
    }

    #[test]
    fn theorem2_agrees_on_paper_histories() {
        for (h, expect) in [
            (paper::h1(), false),
            (paper::h3(), true),
            (paper::h4(), true),
            (paper::h5(), true),
        ] {
            let definitional = is_opaque(&h, &regs()).unwrap().opaque;
            assert_eq!(definitional, expect, "definitional on {h}");
            let graph = decide_via_graph(&h, &regs(), 8).unwrap();
            assert_eq!(graph.opaque(), expect, "graph on {h}");
        }
    }

    #[test]
    fn construction_of_graph_witnesses() {
        for h in [paper::h3(), paper::h4(), paper::h5()] {
            assert!(is_opaque(&h, &regs()).unwrap().opaque);
            let w = construct_graph_witness(&h, &regs()).unwrap();
            assert!(w.is_some(), "{h}");
        }
        // Non-opaque history: no witness is constructible.
        assert!(construct_graph_witness(&paper::h1(), &regs())
            .unwrap()
            .is_none());
    }

    #[test]
    fn h4_requires_t2_visible() {
        // T3 reads commit-pending T2's write: every graph witness must put
        // T2 in V.
        let v = decide_via_graph(&paper::h4(), &regs(), 8).unwrap();
        let w = v.witness.expect("H4 opaque");
        assert!(w.visible.contains(&TxId(2)));
    }

    #[test]
    fn inconsistent_history_rejected_without_search() {
        // A read of a never-written value is inconsistent: Theorem 2 fails
        // its first condition and no candidates are examined.
        let h = HistoryBuilder::new().read(1, "x", 99).commit_ok(1).build();
        let v = decide_via_graph(&h, &regs(), 8).unwrap();
        assert!(!v.consistent);
        assert!(!v.opaque());
        assert_eq!(v.candidates_checked, 0);
        assert!(!is_opaque(&h, &regs()).unwrap().opaque);
    }

    #[test]
    fn graph_witness_order_contains_t0_first_sometimes() {
        let v = decide_via_graph(&paper::h5(), &regs(), 8).unwrap();
        let w = v.witness.unwrap();
        assert!(w.order.contains(&INIT_TX));
        assert_eq!(w.order.len(), 4);
    }

    #[test]
    fn counter_history_is_unsupported() {
        let h = HistoryBuilder::new().inc(1, "c").commit_ok(1).build();
        assert!(matches!(
            decide_via_graph(&h, &regs(), 8),
            Err(GraphError::NonRegisterOperation(_))
        ));
    }
}
