//! A dependency-free work-stealing task pool for the parallel search.
//!
//! The parallel DFS seeds the pool with the root `(transaction, placement)`
//! candidates, but — unlike the first iteration of this module — tasks also
//! **spawn after the pool starts**: a worker deep in an uneven subtree can
//! donate untried sibling branches (see `search.rs`) the moment another
//! worker goes hungry. Each worker owns a deque, seeded round-robin in the
//! witness-biased candidate order; an owner pops FIFO from the front where
//! the bias-ordered tasks sit, and a worker whose deque runs dry **steals
//! from the back** of the nearest victim's deque (the classic
//! Arora–Blumofe–Plaxton discipline: thieves take the coldest — largest —
//! work from the cold end, minimizing contention on the hot end).
//!
//! Because tasks spawn mid-run, "every deque is empty" is no longer a
//! termination proof: a task being *executed* right now may still donate.
//! Termination therefore tracks an `inflight` count of tasks that are
//! queued or executing. A worker that finds every deque empty parks on a
//! condvar and wakes when either a donation lands or `inflight` hits zero
//! (final: nothing queued, nothing executing, so nothing can ever spawn).
//! The protocol is lost-wakeup-free: a parking worker re-scans the deques
//! *while holding the gate*, and every publisher (donation or the last
//! `task_done`) notifies *under the same gate*, so any state change after
//! the parked worker's scan is guaranteed to produce a wakeup it observes.
//!
//! The hungry count — pool size minus currently-executing tasks — is the
//! donation trigger: busy workers poll it (one relaxed load per search
//! node) and split their DFS frontier only when some worker has nothing
//! to run, which keeps the hot exploration loop allocation-free. It is
//! derived from the executing count rather than the parked count so the
//! signal is up the moment the pool starts with fewer seed tasks than
//! workers, independent of how quickly the idle threads get scheduled.
//!
//! The pool is deliberately built from `std` only (`Mutex<VecDeque>` per
//! worker, `Condvar`, scoped threads at the call site) so `tm-opacity`
//! stays free of harness and external dependencies.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard};

fn lock<T>(d: &Mutex<T>) -> MutexGuard<'_, T> {
    d.lock().unwrap_or_else(|e| e.into_inner())
}

/// Per-worker task deques with stealing, donation, and termination
/// detection. `T` is the subtree seed (a placement path in the search).
pub(crate) struct StealQueues<T> {
    deques: Vec<Mutex<VecDeque<T>>>,
    /// Tasks that are queued in some deque or currently executing. A task
    /// is counted from enqueue (`new` / `donate`) until its executor calls
    /// [`StealQueues::task_done`]; `inflight == 0` is final because only
    /// an executing task can donate.
    inflight: AtomicUsize,
    /// Tasks currently being executed (popped but not yet `task_done`).
    /// The donation trigger is `workers - executing`: a deterministic
    /// "someone has nothing to run" signal that does not depend on how
    /// quickly idle threads get scheduled and actually park.
    executing: AtomicUsize,
    /// Workers currently parked in [`StealQueues::pop`] (diagnostic; the
    /// donation trigger uses `executing` above).
    parked: AtomicUsize,
    /// Publishers notify under this gate; parked workers re-scan under it
    /// before waiting, which closes the lost-wakeup window.
    gate: Mutex<()>,
    wakeup: Condvar,
}

impl<T> StealQueues<T> {
    /// Distributes `tasks` round-robin over `workers` deques, preserving
    /// order within each deque (task `i` goes to deque `i % workers`, so
    /// worker 0's first task is the globally first — witness-biased —
    /// candidate).
    pub(crate) fn new(tasks: Vec<T>, workers: usize) -> Self {
        let workers = workers.max(1);
        let inflight = AtomicUsize::new(tasks.len());
        let mut deques: Vec<VecDeque<T>> = (0..workers).map(|_| VecDeque::new()).collect();
        for (i, t) in tasks.into_iter().enumerate() {
            deques[i % workers].push_back(t);
        }
        StealQueues {
            deques: deques.into_iter().map(Mutex::new).collect(),
            inflight,
            executing: AtomicUsize::new(0),
            parked: AtomicUsize::new(0),
            gate: Mutex::new(()),
            wakeup: Condvar::new(),
        }
    }

    /// Number of worker deques.
    #[cfg(test)]
    pub(crate) fn workers(&self) -> usize {
        self.deques.len()
    }

    /// Number of workers with nothing to execute right now (pool size
    /// minus currently-executing tasks). Busy workers poll this (relaxed;
    /// staleness only delays or over-shoots a donation by one node) to
    /// decide whether splitting their frontier is worth it. Deliberately
    /// *not* the parked count: on a loaded machine an idle worker may take
    /// a while to be scheduled and park, and the donor would race past
    /// every split opportunity before the signal ever rose.
    pub(crate) fn hungry(&self) -> usize {
        self.deques
            .len()
            .saturating_sub(self.executing.load(Ordering::Relaxed))
    }

    /// Workers currently parked on the wakeup condvar (test observability).
    #[cfg(test)]
    pub(crate) fn parked_workers(&self) -> usize {
        self.parked.load(Ordering::Relaxed)
    }

    /// Enqueues a task spawned mid-run at the **back** of worker `w`'s own
    /// deque — exactly where a thief steals from, so donated (coldest)
    /// branches flow to hungry workers while the donor keeps its hot front.
    /// The inflight count is raised *before* the push so no observer can
    /// see the task queued while the count says the pool is idle.
    pub(crate) fn donate(&self, w: usize, task: T) {
        self.inflight.fetch_add(1, Ordering::SeqCst);
        lock(&self.deques[w]).push_back(task);
        // Publish under the gate: any worker that scanned-empty before this
        // push is either already parked (gets the notify) or still holds
        // the gate and will re-scan successfully.
        let _g = lock(&self.gate);
        self.wakeup.notify_one();
    }

    /// Marks one popped task as finished (it can no longer donate). Every
    /// successful [`StealQueues::pop`] must be paired with exactly one
    /// `task_done`, *after* any donations the task makes. The worker whose
    /// `task_done` drops `inflight` to zero wakes everyone so they can
    /// observe termination.
    pub(crate) fn task_done(&self) {
        self.executing.fetch_sub(1, Ordering::SeqCst);
        if self.inflight.fetch_sub(1, Ordering::SeqCst) == 1 {
            let _g = lock(&self.gate);
            self.wakeup.notify_all();
        }
    }

    /// Non-blocking scan: the front of worker `w`'s own deque, else the
    /// back of the first non-empty victim deque in ring order.
    fn try_take(&self, w: usize) -> Option<(T, bool)> {
        if let Some(t) = lock(&self.deques[w]).pop_front() {
            return Some((t, false));
        }
        let n = self.deques.len();
        for step in 1..n {
            if let Some(t) = lock(&self.deques[(w + step) % n]).pop_back() {
                return Some((t, true));
            }
        }
        None
    }

    /// Takes the next task for worker `w`, parking until a donation lands
    /// if every deque is empty while tasks are still executing. Returns the
    /// task and whether it was stolen; `None` means `inflight` reached
    /// zero, which is final — nothing queued, nothing executing, so no task
    /// can ever appear again.
    pub(crate) fn pop(&self, w: usize) -> Option<(T, bool)> {
        loop {
            if let Some(hit) = self.try_take(w) {
                self.executing.fetch_add(1, Ordering::SeqCst);
                return Some(hit);
            }
            let mut gate = lock(&self.gate);
            // Re-scan under the gate: a donor that pushed before we locked
            // the gate is visible here; one that pushes after will notify
            // under the gate and our wait observes it.
            if let Some(hit) = self.try_take(w) {
                self.executing.fetch_add(1, Ordering::SeqCst);
                return Some(hit);
            }
            if self.inflight.load(Ordering::SeqCst) == 0 {
                return None;
            }
            self.parked.fetch_add(1, Ordering::SeqCst);
            gate = self.wakeup.wait(gate).unwrap_or_else(|e| e.into_inner());
            self.parked.fetch_sub(1, Ordering::SeqCst);
            drop(gate);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashSet;
    use std::sync::Mutex as StdMutex;

    #[test]
    fn every_task_delivered_exactly_once_across_workers() {
        let queues = StealQueues::new((0..97usize).collect(), 5);
        assert_eq!(queues.workers(), 5);
        let seen = StdMutex::new(HashSet::new());
        let steals = StdMutex::new(0usize);
        std::thread::scope(|scope| {
            for w in 0..5 {
                let queues = &queues;
                let seen = &seen;
                let steals = &steals;
                scope.spawn(move || {
                    while let Some((t, stolen)) = queues.pop(w) {
                        assert!(seen.lock().unwrap().insert(t), "task {t} delivered twice");
                        if stolen {
                            *steals.lock().unwrap() += 1;
                        }
                        queues.task_done();
                    }
                });
            }
        });
        assert_eq!(seen.lock().unwrap().len(), 97);
    }

    #[test]
    fn owner_pops_in_seed_order_and_thief_steals_from_the_back() {
        let queues = StealQueues::new(vec![10, 11, 12, 13], 2);
        // Worker 0 owns [10, 12], worker 1 owns [11, 13].
        assert_eq!(queues.pop(0), Some((10, false)));
        queues.task_done();
        // Worker 1's own deque front comes first...
        assert_eq!(queues.pop(1), Some((11, false)));
        queues.task_done();
        assert_eq!(queues.pop(1), Some((13, false)));
        queues.task_done();
        // ...and once empty it steals worker 0's back task.
        assert_eq!(queues.pop(1), Some((12, true)));
        queues.task_done();
        assert_eq!(queues.pop(0), None);
        assert_eq!(queues.pop(1), None);
    }

    #[test]
    fn single_worker_gets_everything_in_order() {
        let queues = StealQueues::new(vec![1, 2, 3], 1);
        assert_eq!(queues.pop(0), Some((1, false)));
        queues.task_done();
        assert_eq!(queues.pop(0), Some((2, false)));
        queues.task_done();
        assert_eq!(queues.pop(0), Some((3, false)));
        queues.task_done();
        assert_eq!(queues.pop(0), None);
    }

    #[test]
    fn donated_task_lands_at_the_stealable_back() {
        let queues = StealQueues::new(vec![1, 2], 2);
        // Worker 0 executes task 1 and donates 10 mid-run.
        assert_eq!(queues.pop(0), Some((1, false)));
        queues.donate(0, 10);
        queues.donate(0, 11);
        // A thief takes the back-most donation first (coldest).
        assert_eq!(queues.pop(1), Some((2, false)));
        queues.task_done();
        assert_eq!(queues.pop(1), Some((11, true)));
        queues.task_done();
        // The donor's own front pop sees the remaining donation.
        queues.task_done(); // task 1 finishes
        assert_eq!(queues.pop(0), Some((10, false)));
        queues.task_done();
        assert_eq!(queues.pop(0), None);
        assert_eq!(queues.pop(1), None);
    }

    #[test]
    fn parked_worker_wakes_for_a_donation() {
        // Worker 1 starts with nothing; worker 0 donates only after worker
        // 1 has actually parked. A lost wakeup here would hang the test.
        let queues = StealQueues::new(vec![7usize], 2);
        // Take the seed before the thief starts so it cannot be stolen.
        let (t, _) = queues.pop(0).expect("seed task");
        assert_eq!(t, 7);
        let got = StdMutex::new(Vec::new());
        std::thread::scope(|scope| {
            let q = &queues;
            let got = &got;
            scope.spawn(move || {
                while let Some((t, _)) = q.pop(1) {
                    got.lock().unwrap().push(t);
                    q.task_done();
                }
            });
            // Still executing task 7 on worker 0: wait until the thief has
            // actually parked, then donate. A lost wakeup would hang here.
            while queues.parked_workers() == 0 {
                std::thread::yield_now();
            }
            queues.donate(0, 8);
            queues.task_done();
            while let Some((t, _)) = queues.pop(0) {
                got.lock().unwrap().push(t);
                queues.task_done();
            }
        });
        let mut got = got.into_inner().unwrap();
        got.sort_unstable();
        assert_eq!(got, vec![8]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Spawn-after-start termination: tasks donate children according
        /// to a random recipe while random workers race to steal them.
        /// Every task must be delivered exactly once and the scope must
        /// join (no lost-wakeup hang).
        #[test]
        fn donations_terminate_and_deliver_exactly_once(
            seeds in 1usize..5,
            workers in 1usize..7,
            fanout in proptest::collection::vec(0usize..4, 12),
        ) {
            // Task ids are indices into `fanout` (wrapping): a popped task
            // `t` donates `fanout[t % 12]` children with fresh ids while
            // the total stays below a fixed budget.
            let total_budget = 64usize;
            let next_id = AtomicUsize::new(seeds);
            let queues = StealQueues::new((0..seeds).collect::<Vec<usize>>(), workers);
            let seen = StdMutex::new(HashSet::new());
            std::thread::scope(|scope| {
                for w in 0..workers {
                    let queues = &queues;
                    let seen = &seen;
                    let next_id = &next_id;
                    let fanout = &fanout;
                    scope.spawn(move || {
                        while let Some((t, _stolen)) = queues.pop(w) {
                            assert!(
                                seen.lock().unwrap().insert(t),
                                "task {t} delivered twice"
                            );
                            for _ in 0..fanout[t % fanout.len()] {
                                let id = next_id.fetch_add(1, Ordering::SeqCst);
                                if id < total_budget {
                                    queues.donate(w, id);
                                }
                            }
                            queues.task_done();
                        }
                    });
                }
            });
            let seen = seen.into_inner().unwrap();
            // Exactly the ids that were actually donated (plus seeds) were
            // delivered, each once.
            let spawned = next_id.load(Ordering::SeqCst).min(total_budget);
            prop_assert_eq!(seen.len(), spawned);
            for id in 0..spawned {
                prop_assert!(seen.contains(&id), "task {} lost", id);
            }
        }
    }
}
