//! A dependency-free work-stealing task pool for the parallel search.
//!
//! The parallel DFS splits a check at its root placements: every top-level
//! `(transaction, placement)` candidate seeds an independent subtree. Those
//! subtrees are wildly uneven — the witness-biased first candidate often
//! finishes in linear time while a dead root exhausts a large subspace — so
//! static sharding would idle most workers. Instead each worker owns a
//! deque, seeded round-robin in the witness-biased candidate order, and a
//! worker whose deque runs dry **steals from the back** of the nearest
//! victim's deque (the classic Arora–Blumofe–Plaxton discipline: owners pop
//! FIFO from the front where the bias-ordered tasks sit, thieves take the
//! coldest work from the back, minimizing contention on the hot end).
//!
//! The pool is deliberately built from `std` only (`Mutex<VecDeque>` per
//! worker, scoped threads at the call site) so `tm-opacity` stays free of
//! harness and external dependencies. Tasks are all enqueued before the
//! workers start and never spawn new tasks, which makes termination
//! trivial: a worker exits when every deque is empty — no task can appear
//! afterwards.

use std::collections::VecDeque;
use std::sync::Mutex;

/// Per-worker task deques with stealing. `T` is the root-subtree seed.
pub(crate) struct StealQueues<T> {
    deques: Vec<Mutex<VecDeque<T>>>,
}

impl<T> StealQueues<T> {
    /// Distributes `tasks` round-robin over `workers` deques, preserving
    /// order within each deque (task `i` goes to deque `i % workers`, so
    /// worker 0's first task is the globally first — witness-biased —
    /// candidate).
    pub(crate) fn new(tasks: Vec<T>, workers: usize) -> Self {
        let workers = workers.max(1);
        let mut deques: Vec<VecDeque<T>> = (0..workers).map(|_| VecDeque::new()).collect();
        for (i, t) in tasks.into_iter().enumerate() {
            deques[i % workers].push_back(t);
        }
        StealQueues {
            deques: deques.into_iter().map(Mutex::new).collect(),
        }
    }

    /// Number of worker deques.
    #[cfg(test)]
    pub(crate) fn workers(&self) -> usize {
        self.deques.len()
    }

    /// Takes the next task for worker `w`: the front of its own deque, or —
    /// once that is empty — the back of the first non-empty victim deque
    /// (scanning the others in ring order). Returns the task and whether it
    /// was stolen; `None` means every deque is empty, which is final
    /// because tasks are never added after construction.
    pub(crate) fn pop(&self, w: usize) -> Option<(T, bool)> {
        fn lock<T>(d: &Mutex<VecDeque<T>>) -> std::sync::MutexGuard<'_, VecDeque<T>> {
            d.lock().unwrap_or_else(|e| e.into_inner())
        }
        if let Some(t) = lock(&self.deques[w]).pop_front() {
            return Some((t, false));
        }
        let n = self.deques.len();
        for step in 1..n {
            if let Some(t) = lock(&self.deques[(w + step) % n]).pop_back() {
                return Some((t, true));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Mutex as StdMutex;

    #[test]
    fn every_task_delivered_exactly_once_across_workers() {
        let queues = StealQueues::new((0..97usize).collect(), 5);
        assert_eq!(queues.workers(), 5);
        let seen = StdMutex::new(HashSet::new());
        let steals = StdMutex::new(0usize);
        std::thread::scope(|scope| {
            for w in 0..5 {
                let queues = &queues;
                let seen = &seen;
                let steals = &steals;
                scope.spawn(move || {
                    while let Some((t, stolen)) = queues.pop(w) {
                        assert!(seen.lock().unwrap().insert(t), "task {t} delivered twice");
                        if stolen {
                            *steals.lock().unwrap() += 1;
                        }
                    }
                });
            }
        });
        assert_eq!(seen.lock().unwrap().len(), 97);
    }

    #[test]
    fn owner_pops_in_seed_order_and_thief_steals_from_the_back() {
        let queues = StealQueues::new(vec![10, 11, 12, 13], 2);
        // Worker 0 owns [10, 12], worker 1 owns [11, 13].
        assert_eq!(queues.pop(0), Some((10, false)));
        // Worker 1's own deque front comes first...
        assert_eq!(queues.pop(1), Some((11, false)));
        assert_eq!(queues.pop(1), Some((13, false)));
        // ...and once empty it steals worker 0's back task.
        assert_eq!(queues.pop(1), Some((12, true)));
        assert_eq!(queues.pop(0), None);
        assert_eq!(queues.pop(1), None);
    }

    #[test]
    fn single_worker_gets_everything_in_order() {
        let queues = StealQueues::new(vec![1, 2, 3], 1);
        assert_eq!(queues.pop(0), Some((1, false)));
        assert_eq!(queues.pop(0), Some((2, false)));
        assert_eq!(queues.pop(0), Some((3, false)));
        assert_eq!(queues.pop(0), None);
    }

    #[test]
    fn more_workers_than_tasks() {
        let queues = StealQueues::new(vec![42], 8);
        let mut got = 0;
        for w in 0..8 {
            if let Some((t, _)) = queues.pop(w) {
                assert_eq!(t, 42);
                got += 1;
            }
        }
        assert_eq!(got, 1);
    }
}
