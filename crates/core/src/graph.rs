//! The graph characterization of opacity (Section 5.4).
//!
//! For histories over read/write registers — with the paper's two
//! conventions: unique writes, and an initializing committed transaction
//! `T0` that writes to every register — opacity is equivalent to the
//! existence of a total order `≪` and a set `V` of commit-pending
//! transactions such that the *opacity graph* `OPG(nonlocal(H), ≪, V)` is
//! well-formed and acyclic (Theorem 2).
//!
//! This module implements every ingredient: local operations and
//! `nonlocal(H)`, local consistency and consistency, the labelled graph
//! `OPG(H, ≪, V)`, well-formedness, acyclicity, and DOT export for
//! visualizing dependencies and opacity violations.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

use tm_model::{Event, History, ObjId, OpExec, OpName, RealTimeOrder, SpecRegistry, TxId, Value};

/// Node labels of the opacity graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NodeLabel {
    /// `Lvis`: the transaction is committed or in `V` — its writes are
    /// visible.
    Vis,
    /// `Lloc`: the transaction's writes must remain local.
    Loc,
}

/// Edge labels of the opacity graph (the four rules of Section 5.4).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum EdgeLabel {
    /// Rule 1, `Lrt`: real-time order `Ti ≺_H Tk`.
    Rt,
    /// Rule 2, `Lrf`: `Tk` reads from `Ti`.
    Rf,
    /// Rule 3, `Lrw`: `Ti ≪ Tk` and `Ti` reads a register written by `Tk`.
    Rw,
    /// Rule 4, `Lww`: visible `Ti` writes a register that some `Tm` after it
    /// (`Ti ≪ Tm`) reads from `Tk`.
    Ww,
}

/// The opacity graph `OPG(H, ≪, V)`: a directed, labelled graph over the
/// transactions of `H`.
#[derive(Clone, Debug)]
pub struct OpacityGraph {
    /// Vertices with their labels, in `H.txs()` order.
    pub nodes: Vec<(TxId, NodeLabel)>,
    /// Labelled edges; an edge may carry several labels.
    pub edges: BTreeMap<(TxId, TxId), BTreeSet<EdgeLabel>>,
}

impl OpacityGraph {
    /// True if the graph is well-formed: no `Lloc` vertex has an outgoing
    /// `Lrf` edge (a non-visible transaction must not be read from).
    pub fn is_well_formed(&self) -> bool {
        let loc: HashSet<TxId> = self
            .nodes
            .iter()
            .filter(|(_, l)| *l == NodeLabel::Loc)
            .map(|(t, _)| *t)
            .collect();
        !self
            .edges
            .iter()
            .any(|((from, _), labels)| loc.contains(from) && labels.contains(&EdgeLabel::Rf))
    }

    /// True if the graph is acyclic (self-loops count as cycles).
    pub fn is_acyclic(&self) -> bool {
        // Kahn's algorithm over the vertex set.
        let mut indeg: HashMap<TxId, usize> = self.nodes.iter().map(|(t, _)| (*t, 0)).collect();
        for &(from, to) in self.edges.keys() {
            if from == to {
                return false;
            }
            if indeg.contains_key(&from) {
                if let Some(d) = indeg.get_mut(&to) {
                    *d += 1;
                }
            }
        }
        let mut queue: Vec<TxId> = indeg
            .iter()
            .filter(|(_, &d)| d == 0)
            .map(|(t, _)| *t)
            .collect();
        let mut removed = 0usize;
        while let Some(t) = queue.pop() {
            removed += 1;
            for &(from, to) in self.edges.keys() {
                if from == t {
                    if let Some(d) = indeg.get_mut(&to) {
                        *d -= 1;
                        if *d == 0 {
                            queue.push(to);
                        }
                    }
                }
            }
        }
        removed == self.nodes.len()
    }

    /// A topological order of the vertices, if the graph is acyclic.
    pub fn topological_order(&self) -> Option<Vec<TxId>> {
        let mut indeg: HashMap<TxId, usize> = self.nodes.iter().map(|(t, _)| (*t, 0)).collect();
        for &(from, to) in self.edges.keys() {
            if from == to {
                return None;
            }
            if indeg.contains_key(&from) {
                if let Some(d) = indeg.get_mut(&to) {
                    *d += 1;
                }
            }
        }
        let mut queue: std::collections::BinaryHeap<std::cmp::Reverse<TxId>> = indeg
            .iter()
            .filter(|(_, &d)| d == 0)
            .map(|(t, _)| std::cmp::Reverse(*t))
            .collect();
        let mut out = Vec::with_capacity(self.nodes.len());
        while let Some(std::cmp::Reverse(t)) = queue.pop() {
            out.push(t);
            for &(from, to) in self.edges.keys() {
                if from == t {
                    if let Some(d) = indeg.get_mut(&to) {
                        *d -= 1;
                        if *d == 0 {
                            queue.push(std::cmp::Reverse(to));
                        }
                    }
                }
            }
        }
        (out.len() == self.nodes.len()).then_some(out)
    }

    /// Renders the graph in Graphviz DOT format, labelling nodes `Lvis`/
    /// `Lloc` and edges with their rule labels.
    pub fn to_dot(&self) -> String {
        let mut s = String::from("digraph OPG {\n  rankdir=LR;\n");
        for (t, l) in &self.nodes {
            let (shape, label) = match l {
                NodeLabel::Vis => ("ellipse", "Lvis"),
                NodeLabel::Loc => ("box", "Lloc"),
            };
            s.push_str(&format!("  \"{t}\" [shape={shape}, xlabel=\"{label}\"];\n"));
        }
        for ((from, to), labels) in &self.edges {
            let names: Vec<&str> = labels
                .iter()
                .map(|l| match l {
                    EdgeLabel::Rt => "rt",
                    EdgeLabel::Rf => "rf",
                    EdgeLabel::Rw => "rw",
                    EdgeLabel::Ww => "ww",
                })
                .collect();
            s.push_str(&format!(
                "  \"{from}\" -> \"{to}\" [label=\"{}\"];\n",
                names.join(",")
            ));
        }
        s.push_str("}\n");
        s
    }
}

/// Errors from the graph machinery (which is register-specific).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GraphError {
    /// The history contains an operation that is not a register read/write.
    NonRegisterOperation(String),
    /// Two writes of the same value to the same register (the unique-writes
    /// convention is violated).
    DuplicateWrite {
        /// The register written twice with the same value.
        obj: ObjId,
        /// The duplicated value.
        value: Value,
    },
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::NonRegisterOperation(op) => {
                write!(
                    f,
                    "graph characterization requires register histories; found {op}"
                )
            }
            GraphError::DuplicateWrite { obj, value } => {
                write!(f, "unique-writes violated: {value} written to {obj} twice")
            }
        }
    }
}

impl std::error::Error for GraphError {}

/// Verifies the Section 5.4 preconditions: registers only, unique writes.
pub fn check_graph_preconditions(h: &History) -> Result<(), GraphError> {
    let mut written: HashSet<(ObjId, Value)> = HashSet::new();
    for e in h.events() {
        if let Event::Inv { obj, op, args, .. } = e {
            match op {
                OpName::Read => {}
                OpName::Write => {
                    let v = args.first().cloned().unwrap_or(Value::Unit);
                    if !written.insert((obj.clone(), v.clone())) {
                        return Err(GraphError::DuplicateWrite {
                            obj: obj.clone(),
                            value: v,
                        });
                    }
                }
                other => return Err(GraphError::NonRegisterOperation(other.to_string())),
            }
        }
    }
    Ok(())
}

/// The transaction id used for the synthetic initializing transaction.
pub const INIT_TX: TxId = TxId(0);

/// Prepends the paper's initializing committed transaction `T0`, writing the
/// registry-defined initial value to every register of `h`.
///
/// The caller must ensure no other transaction writes an initial value
/// (unique writes); [`check_graph_preconditions`] will detect violations.
pub fn with_initial_tx(h: &History, specs: &SpecRegistry) -> History {
    let mut events = Vec::new();
    for obj in h.objects() {
        let init = specs.initial_of(&obj).unwrap_or(Value::int(0));
        events.push(Event::Inv {
            tx: INIT_TX,
            obj: obj.clone(),
            op: OpName::Write,
            args: vec![init.clone()],
        });
        events.push(Event::Ret {
            tx: INIT_TX,
            obj,
            op: OpName::Write,
            val: Value::Ok,
        });
    }
    events.push(Event::TryCommit(INIT_TX));
    events.push(Event::Commit(INIT_TX));
    events.extend(h.events().iter().cloned());
    History::from_events(events)
}

/// Returns, per transaction, its operation executions with a `local` flag.
///
/// A read is local if preceded (in `H|Ti`) by a write of `Ti` to the same
/// register; a write is local if followed (in `H|Ti`) by another write of
/// `Ti` to the same register.
pub fn classify_local_ops(h: &History) -> Vec<(OpExec, bool)> {
    // Work per transaction over its op sequence.
    let mut flags: HashMap<(TxId, usize), bool> = HashMap::new();
    for t in h.txs() {
        let view = h.tx_view(t);
        for (i, op) in view.ops.iter().enumerate() {
            let local = match op.op {
                OpName::Read => view.ops[..i]
                    .iter()
                    .any(|w| w.op == OpName::Write && w.obj == op.obj),
                OpName::Write => view.ops[i + 1..]
                    .iter()
                    .any(|w| w.op == OpName::Write && w.obj == op.obj),
                _ => false,
            };
            flags.insert((t, i), local);
        }
    }
    // Re-emit in history (invocation) order.
    let mut counters: HashMap<TxId, usize> = HashMap::new();
    h.all_ops()
        .into_iter()
        .map(|op| {
            let c = counters.entry(op.tx).or_insert(0);
            let local = flags.get(&(op.tx, *c)).copied().unwrap_or(false);
            *c += 1;
            (op, local)
        })
        .collect()
}

/// `nonlocal(H)`: the longest subsequence of `H` without local operation
/// executions (both events of each local execution are removed).
pub fn nonlocal(h: &History) -> History {
    // Identify local op indices per transaction.
    let mut local_idx: HashSet<(TxId, usize)> = HashSet::new();
    for t in h.txs() {
        let view = h.tx_view(t);
        for (i, op) in view.ops.iter().enumerate() {
            let local = match op.op {
                OpName::Read => view.ops[..i]
                    .iter()
                    .any(|w| w.op == OpName::Write && w.obj == op.obj),
                OpName::Write => view.ops[i + 1..]
                    .iter()
                    .any(|w| w.op == OpName::Write && w.obj == op.obj),
                _ => false,
            };
            if local {
                local_idx.insert((t, i));
            }
        }
    }
    // Walk events, tracking per-tx completed-op counters, and drop the
    // inv/ret pairs of local executions.
    let mut out = Vec::new();
    let mut op_counter: HashMap<TxId, usize> = HashMap::new();
    let mut drop_pending_ret: HashSet<TxId> = HashSet::new();
    for e in h.events() {
        match e {
            Event::Inv { tx, .. } => {
                let c = *op_counter.get(tx).unwrap_or(&0);
                if local_idx.contains(&(*tx, c)) {
                    drop_pending_ret.insert(*tx);
                } else {
                    out.push(e.clone());
                }
            }
            Event::Ret { tx, .. } => {
                let c = op_counter.entry(*tx).or_insert(0);
                *c += 1;
                if !drop_pending_ret.remove(tx) {
                    out.push(e.clone());
                }
            }
            _ => out.push(e.clone()),
        }
    }
    History::from_events(out)
}

/// Local consistency: every local read returns the latest preceding write of
/// its own transaction to that register.
pub fn is_locally_consistent(h: &History) -> bool {
    for t in h.txs() {
        let view = h.tx_view(t);
        for (i, op) in view.ops.iter().enumerate() {
            if op.op != OpName::Read {
                continue;
            }
            let latest_own_write = view.ops[..i]
                .iter()
                .rev()
                .find(|w| w.op == OpName::Write && w.obj == op.obj);
            if let Some(w) = latest_own_write {
                if w.args.first() != Some(&op.val) {
                    return false;
                }
            }
        }
    }
    true
}

/// Consistency (Section 5.4): local consistency, plus every non-local read
/// returns a value written by some transaction in `nonlocal(H)`.
pub fn is_consistent(h: &History) -> bool {
    if !is_locally_consistent(h) {
        return false;
    }
    let nl = nonlocal(h);
    let written: HashSet<(ObjId, Value)> = nl
        .all_ops()
        .iter()
        .filter(|o| o.op == OpName::Write)
        .filter_map(|o| o.args.first().map(|v| (o.obj.clone(), v.clone())))
        .collect();
    nl.all_ops()
        .iter()
        .filter(|o| o.op == OpName::Read)
        .all(|o| written.contains(&(o.obj.clone(), o.val.clone())))
}

/// Builds `OPG(nonlocal(H), ≪, V)` for a register history `h`.
///
/// `order` is the total order `≪` (every transaction of `h` must appear);
/// `visible` is the set `V` of commit-pending transactions treated as
/// visible.
///
/// The access relations (reads, writes, reads-from) are taken from
/// `nonlocal(h)` as Theorem 2 prescribes; the real-time edges (rule 1) are
/// taken from the **original** `h`. Removing local operations can only
/// *shrink* a transaction's event span, which can manufacture happen-before
/// pairs that do not exist in the real execution — a genuinely opaque
/// history (whose serialization legitimately orders such transactions the
/// other way) would then appear cyclic. The paper's proof concerns the
/// execution's actual real-time order, so that is what rule 1 uses here.
pub fn build_opg(h: &History, order: &[TxId], visible: &HashSet<TxId>) -> OpacityGraph {
    let txs = h.txs();
    let pos: HashMap<TxId, usize> = order.iter().enumerate().map(|(i, t)| (*t, i)).collect();
    let before = |a: TxId, b: TxId| match (pos.get(&a), pos.get(&b)) {
        (Some(x), Some(y)) => x < y,
        _ => false,
    };

    let nodes: Vec<(TxId, NodeLabel)> = txs
        .iter()
        .map(|&t| {
            let vis = h.status(t).is_committed() || visible.contains(&t);
            (t, if vis { NodeLabel::Vis } else { NodeLabel::Loc })
        })
        .collect();

    // Access relations on nonlocal(h).
    let nl = nonlocal(h);
    let ops = nl.all_ops();
    let reads: Vec<&OpExec> = ops.iter().filter(|o| o.op == OpName::Read).collect();
    // "Ti writes to r" is invocation-level: include pending write invocations.
    let mut writes: Vec<(TxId, ObjId, Value)> = Vec::new();
    for e in nl.events() {
        if let Event::Inv {
            tx,
            obj,
            op: OpName::Write,
            args,
        } = e
        {
            if let Some(v) = args.first() {
                writes.push((*tx, obj.clone(), v.clone()));
            }
        }
    }
    // reads-from: unique writes make the writer of each read value unique.
    let writer_of = |obj: &ObjId, v: &Value| -> Option<TxId> {
        writes
            .iter()
            .find(|(_, o, w)| o == obj && w == v)
            .map(|(t, _, _)| *t)
    };
    let mut reads_from: Vec<(TxId, TxId, ObjId)> = Vec::new(); // (reader, writer, r)
    for r in &reads {
        if let Some(w) = writer_of(&r.obj, &r.val) {
            if w != r.tx {
                reads_from.push((r.tx, w, r.obj.clone()));
            }
        }
    }

    let mut edges: BTreeMap<(TxId, TxId), BTreeSet<EdgeLabel>> = BTreeMap::new();
    let mut add = |from: TxId, to: TxId, l: EdgeLabel| {
        edges.entry((from, to)).or_default().insert(l);
    };

    // Rule 1: real-time edges.
    let rt = RealTimeOrder::of(h);
    for &a in &txs {
        for &b in &txs {
            if rt.precedes(a, b) {
                add(a, b, EdgeLabel::Rt);
            }
        }
    }

    // Rule 2: reads-from edges (writer -> reader).
    for (reader, writer, _) in &reads_from {
        add(*writer, *reader, EdgeLabel::Rf);
    }

    // Rule 3: read-write (anti-dependency) edges under ≪.
    for r in &reads {
        for (wt, wobj, _) in &writes {
            if *wt != r.tx && wobj == &r.obj && before(r.tx, *wt) {
                add(r.tx, *wt, EdgeLabel::Rw);
            }
        }
    }

    // Rule 4: write-write edges under ≪: visible Ti writes r, and some Tm
    // with Ti ≪ Tm reads r from Tk (Tk ≠ Ti) — then Ti must precede Tk.
    let visible_tx = |t: TxId| h.status(t).is_committed() || visible.contains(&t);
    for &(ti, ref robj, _) in writes.iter() {
        if !visible_tx(ti) {
            continue;
        }
        for (tm, tk, robj2) in &reads_from {
            if robj2 == robj && before(ti, *tm) && *tk != ti {
                add(ti, *tk, EdgeLabel::Ww);
            }
        }
    }

    OpacityGraph { nodes, edges }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_model::builder::{paper, HistoryBuilder};

    fn regs() -> SpecRegistry {
        SpecRegistry::registers()
    }

    #[test]
    fn preconditions_detect_violations() {
        let ok = paper::h1();
        assert!(check_graph_preconditions(&ok).is_ok());
        let dup = HistoryBuilder::new()
            .write(1, "x", 5)
            .write(2, "x", 5)
            .build();
        assert!(matches!(
            check_graph_preconditions(&dup),
            Err(GraphError::DuplicateWrite { .. })
        ));
        let nonreg = HistoryBuilder::new().inc(1, "c").build();
        assert!(matches!(
            check_graph_preconditions(&nonreg),
            Err(GraphError::NonRegisterOperation(_))
        ));
    }

    #[test]
    fn local_classification() {
        // T1: write x 1; read x 1 (local); write x 2 (makes first write
        // local); read y 0 (nonlocal).
        let h = HistoryBuilder::new()
            .write(1, "x", 1)
            .read(1, "x", 1)
            .write(1, "x", 2)
            .read(1, "y", 0)
            .build();
        let flags = classify_local_ops(&h);
        let locality: Vec<bool> = flags.iter().map(|(_, l)| *l).collect();
        assert_eq!(locality, vec![true, true, false, false]);
        let nl = nonlocal(&h);
        assert_eq!(nl.all_ops().len(), 2);
        assert_eq!(nl.all_ops()[0].to_string(), "write1(x,2)");
    }

    #[test]
    fn local_consistency() {
        let good = HistoryBuilder::new()
            .write(1, "x", 1)
            .read(1, "x", 1)
            .build();
        assert!(is_locally_consistent(&good));
        let bad = HistoryBuilder::new()
            .write(1, "x", 1)
            .read(1, "x", 9)
            .build();
        assert!(!is_locally_consistent(&bad));
    }

    #[test]
    fn consistency_requires_written_values() {
        let h = with_initial_tx(&paper::h1(), &regs());
        assert!(is_consistent(&h));
        // Reading a value nobody wrote is inconsistent.
        let bad = HistoryBuilder::new().read(1, "x", 42).build();
        let bad = with_initial_tx(&bad, &regs());
        assert!(!is_consistent(&bad));
    }

    #[test]
    fn h5_opg_with_paper_witness_is_acyclic() {
        // Witness: S = T2 · T1 · T3, V = ∅ (no commit-pending tx in H5).
        let h = with_initial_tx(&paper::h5(), &regs());
        let order = vec![INIT_TX, TxId(2), TxId(1), TxId(3)];
        let g = build_opg(&h, &order, &HashSet::new());
        assert!(g.is_well_formed());
        assert!(g.is_acyclic(), "{}", g.to_dot());
        // rf edges: T2 -> T1 (x), T2 -> T1 (y)?? T1 reads x=1 from T2 and
        // y=2 from T2; T3 reads x=1 from T2.
        assert!(g
            .edges
            .get(&(TxId(2), TxId(1)))
            .unwrap()
            .contains(&EdgeLabel::Rf));
        assert!(g
            .edges
            .get(&(TxId(2), TxId(3)))
            .unwrap()
            .contains(&EdgeLabel::Rf));
    }

    #[test]
    fn h1_opg_cyclic_under_all_orders() {
        // H1 is not opaque: for every total order, the OPG has a cycle.
        let h = with_initial_tx(&paper::h1(), &regs());
        assert!(is_consistent(&h));
        let txs = h.txs();
        let mut perm = txs.clone();
        let mut found_acyclic = false;
        permutohedron_heap(&mut perm, &mut |order: &[TxId]| {
            let g = build_opg(&h, order, &HashSet::new());
            if g.is_well_formed() && g.is_acyclic() {
                found_acyclic = true;
            }
        });
        assert!(!found_acyclic, "H1 must have no acyclic OPG");
    }

    /// Minimal Heap's-algorithm permutation visitor for tests.
    fn permutohedron_heap<T: Clone, F: FnMut(&[T])>(items: &mut Vec<T>, f: &mut F) {
        fn heap<T: Clone, F: FnMut(&[T])>(k: usize, items: &mut Vec<T>, f: &mut F) {
            if k == 1 {
                f(items);
                return;
            }
            for i in 0..k {
                heap(k - 1, items, f);
                if k % 2 == 0 {
                    items.swap(i, k - 1);
                } else {
                    items.swap(0, k - 1);
                }
            }
        }
        let n = items.len();
        heap(n, items, f);
    }

    #[test]
    fn dirty_read_needs_visible_writer() {
        // T2 reads commit-pending T1's write: OPG is well-formed only when
        // T1 ∈ V.
        let h = with_initial_tx(&paper::h3(), &regs());
        let order = vec![INIT_TX, TxId(1), TxId(2)];
        let without_v = build_opg(&h, &order, &HashSet::new());
        assert!(!without_v.is_well_formed());
        let mut v = HashSet::new();
        v.insert(TxId(1));
        let with_v = build_opg(&h, &order, &v);
        assert!(with_v.is_well_formed());
        assert!(with_v.is_acyclic());
    }

    #[test]
    fn rw_edge_follows_order() {
        // T1 reads x=0 (initial), T2 writes x=1. With T1 ≪ T2: rw edge
        // T1 -> T2; with T2 ≪ T1 the rf-from-T0 + ww machinery must create
        // a cycle (T1 cannot read 0 after T2's write is visible).
        let h = HistoryBuilder::new()
            .read(1, "x", 0)
            .commit_ok(1)
            .write(2, "x", 1)
            .commit_ok(2)
            .build();
        let h = with_initial_tx(&h, &regs());
        let good = build_opg(&h, &[INIT_TX, TxId(1), TxId(2)], &HashSet::new());
        assert!(good.is_acyclic());
        assert!(good
            .edges
            .get(&(TxId(1), TxId(2)))
            .unwrap()
            .contains(&EdgeLabel::Rw));
        let bad = build_opg(&h, &[INIT_TX, TxId(2), TxId(1)], &HashSet::new());
        assert!(!bad.is_acyclic(), "{}", bad.to_dot());
    }

    #[test]
    fn topological_order_is_a_valid_order() {
        let h = with_initial_tx(&paper::h5(), &regs());
        let order = vec![INIT_TX, TxId(2), TxId(1), TxId(3)];
        let g = build_opg(&h, &order, &HashSet::new());
        let topo = g.topological_order().unwrap();
        assert_eq!(topo.len(), 4);
        // T2 must come before T1 and T3 (rf edges).
        let pos = |t: TxId| topo.iter().position(|&x| x == t).unwrap();
        assert!(pos(TxId(2)) < pos(TxId(1)));
        assert!(pos(TxId(2)) < pos(TxId(3)));
    }

    #[test]
    fn dot_export_mentions_labels() {
        let h = with_initial_tx(&paper::h3(), &regs());
        let mut v = HashSet::new();
        v.insert(TxId(1));
        let g = build_opg(&h, &[INIT_TX, TxId(1), TxId(2)], &v);
        let dot = g.to_dot();
        assert!(dot.contains("digraph OPG"));
        assert!(dot.contains("rf"));
        assert!(dot.contains("Lvis"));
    }
}
