//! # tm-lint — the repository's source-discipline pass
//!
//! The step-level race analysis is only trustworthy if the memory-ordering
//! surface it instruments is the *whole* surface: a raw `AtomicU64` access
//! added anywhere else in `tm-stm` would be a shared-memory step the
//! explorer never sees. This binary pins that discipline (and two house
//! rules) as a CI gate, with `file:line` diagnostics:
//!
//! 1. **ordering-containment** — no `Ordering::` token in
//!    `crates/stm/src` outside the sanctioned instrumentation layer
//!    (`base.rs`, `clock.rs`, `recorder.rs`). TMs must go through the
//!    metered `tm_stm::base` helpers, never raw atomics. (`std::cmp::Ordering`
//!    counts too: the blanket token rule keeps the check un-foolable, and
//!    comparator code has no business in the TM algorithms either.)
//! 2. **forbid-unsafe** — every `crates/*/src/lib.rs` carries
//!    `#![forbid(unsafe_code)]`.
//! 3. **no-unwrap-in-cli** — no `.unwrap()` in non-test `crates/cli/src`
//!    code; user-facing paths return friendly errors instead of panicking.
//!    Everything from the first `#[cfg(test)]` line to the end of a file is
//!    considered test code (the house style keeps test modules last).
//!
//! ```text
//! tm-lint [--root DIR]     # DIR defaults to the workspace root
//! ```
//!
//! Exit codes: `0` clean, `1` findings, `2` usage error. The std-only
//! directory walk keeps the binary dependency-free.

#![forbid(unsafe_code)]

use std::path::{Path, PathBuf};

/// One rule violation, rendered as `file:line: [rule] excerpt`.
#[derive(Clone, Debug, PartialEq, Eq)]
struct Finding {
    file: PathBuf,
    line: usize,
    rule: &'static str,
    excerpt: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule,
            self.excerpt
        )
    }
}

/// Collects every `.rs` file under `dir`, depth-first, sorted for
/// deterministic output.
fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    let mut paths: Vec<PathBuf> = Vec::new();
    for entry in entries {
        paths.push(entry.map_err(|e| format!("{}: {e}", dir.display()))?.path());
    }
    paths.sort();
    for path in paths {
        if path.is_dir() {
            rust_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn read(path: &Path) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))
}

/// Comment lines are prose, not code: the token rules skip them (a doc
/// sentence *about* `Ordering::` or `.unwrap()` is not a violation).
fn is_comment(line: &str) -> bool {
    line.trim_start().starts_with("//")
}

/// Rule 1: `Ordering::` stays inside the instrumentation layer.
fn lint_ordering_containment(root: &Path, findings: &mut Vec<Finding>) -> Result<(), String> {
    const ALLOWED: [&str; 3] = ["base.rs", "clock.rs", "recorder.rs"];
    let dir = root.join("crates/stm/src");
    let mut files = Vec::new();
    rust_files(&dir, &mut files)?;
    for file in files {
        let name = file
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        if ALLOWED.contains(&name.as_str()) {
            continue;
        }
        for (i, line) in read(&file)?.lines().enumerate() {
            if !is_comment(line) && line.contains("Ordering::") {
                findings.push(Finding {
                    file: file.clone(),
                    line: i + 1,
                    rule: "ordering-containment",
                    excerpt: format!(
                        "raw memory-ordering token outside base/clock/recorder: {}",
                        line.trim()
                    ),
                });
            }
        }
    }
    Ok(())
}

/// Rule 2: every crate root forbids `unsafe`.
fn lint_forbid_unsafe(root: &Path, findings: &mut Vec<Finding>) -> Result<(), String> {
    let crates = root.join("crates");
    let entries = std::fs::read_dir(&crates).map_err(|e| format!("{}: {e}", crates.display()))?;
    let mut roots: Vec<PathBuf> = Vec::new();
    for entry in entries {
        let path = entry
            .map_err(|e| format!("{}: {e}", crates.display()))?
            .path();
        let lib = path.join("src/lib.rs");
        if lib.is_file() {
            roots.push(lib);
        }
    }
    roots.sort();
    for lib in roots {
        if !read(&lib)?.contains("#![forbid(unsafe_code)]") {
            findings.push(Finding {
                file: lib,
                line: 1,
                rule: "forbid-unsafe",
                excerpt: "crate root lacks #![forbid(unsafe_code)]".to_string(),
            });
        }
    }
    Ok(())
}

/// Rule 3: no `.unwrap()` on the CLI's user-facing paths.
fn lint_no_unwrap_in_cli(root: &Path, findings: &mut Vec<Finding>) -> Result<(), String> {
    let dir = root.join("crates/cli/src");
    let mut files = Vec::new();
    rust_files(&dir, &mut files)?;
    for file in files {
        let mut in_tests = false;
        for (i, line) in read(&file)?.lines().enumerate() {
            if line.contains("#[cfg(test)]") {
                in_tests = true;
            }
            if !in_tests && !is_comment(line) && line.contains(".unwrap()") {
                findings.push(Finding {
                    file: file.clone(),
                    line: i + 1,
                    rule: "no-unwrap-in-cli",
                    excerpt: format!(
                        "panic on the user-facing path; return an error instead: {}",
                        line.trim()
                    ),
                });
            }
        }
    }
    Ok(())
}

/// Runs all rules under `root`, returning findings sorted by location.
fn lint(root: &Path) -> Result<Vec<Finding>, String> {
    if !root.join("crates").is_dir() {
        return Err(format!(
            "'{}' is not the workspace root (no crates/ directory); \
             pass it with --root",
            root.display()
        ));
    }
    let mut findings = Vec::new();
    lint_ordering_containment(root, &mut findings)?;
    lint_forbid_unsafe(root, &mut findings)?;
    lint_no_unwrap_in_cli(root, &mut findings)?;
    findings.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(findings)
}

/// Usage text shown on argument errors.
const USAGE: &str = "\
tm-lint — source-discipline gate (ordering containment, forbid(unsafe), no CLI unwraps)

USAGE:
  tm-lint [--root DIR]     DIR defaults to the workspace root containing crates/
";

/// Parses the argument list (without the program name).
fn parse_args(args: &[String]) -> Result<PathBuf, String> {
    let mut root: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--root" => {
                let dir = it
                    .next()
                    .ok_or_else(|| "--root needs a directory".to_string())?;
                let path = PathBuf::from(dir);
                if !path.is_dir() {
                    return Err(format!("--root '{dir}' is not a directory"));
                }
                root = Some(path);
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    match root {
        Some(r) => Ok(r),
        // Default: walk up from the current directory to the workspace root.
        None => {
            let mut dir = std::env::current_dir().map_err(|e| format!("cwd: {e}"))?;
            loop {
                if dir.join("crates").is_dir() {
                    return Ok(dir);
                }
                if !dir.pop() {
                    return Err("no workspace root (crates/ directory) above the current \
                         directory; pass --root"
                        .to_string());
                }
            }
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match parse_args(&args).and_then(|root| lint(&root)) {
        Ok(findings) if findings.is_empty() => {
            println!("tm-lint: clean");
            0
        }
        Ok(findings) => {
            for f in &findings {
                println!("{f}");
            }
            println!("tm-lint: {} finding(s)", findings.len());
            1
        }
        Err(e) => {
            eprintln!("tm-lint: {e}");
            2
        }
    };
    std::process::exit(code);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The workspace root of this checkout.
    fn repo_root() -> PathBuf {
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .canonicalize()
            .unwrap()
    }

    /// A scratch workspace with one stm file, one crate root, one cli file.
    struct Scratch(PathBuf);

    impl Scratch {
        fn new(tag: &str) -> Scratch {
            let dir = std::env::temp_dir().join(format!("tm-lint-{tag}-{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            for sub in ["crates/stm/src", "crates/cli/src"] {
                std::fs::create_dir_all(dir.join(sub)).unwrap();
            }
            std::fs::write(
                dir.join("crates/stm/src/lib.rs"),
                "#![forbid(unsafe_code)]\npub mod base;\n",
            )
            .unwrap();
            std::fs::write(dir.join("crates/stm/src/base.rs"), "// sanctioned\n").unwrap();
            std::fs::write(
                dir.join("crates/cli/src/lib.rs"),
                "#![forbid(unsafe_code)]\nfn ok() {}\n",
            )
            .unwrap();
            Scratch(dir)
        }

        fn write(&self, rel: &str, content: &str) {
            std::fs::write(self.0.join(rel), content).unwrap();
        }
    }

    impl Drop for Scratch {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    #[test]
    fn the_tree_is_clean() {
        // The gate the CI job runs: this checkout has no violations.
        let findings = lint(&repo_root()).unwrap();
        assert!(
            findings.is_empty(),
            "{}",
            findings
                .iter()
                .map(|f| f.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }

    #[test]
    fn a_stray_ordering_token_is_flagged_with_file_and_line() {
        let s = Scratch::new("ordering");
        s.write(
            "crates/stm/src/sneaky.rs",
            "use std::sync::atomic::Ordering;\nfn f(x: &std::sync::atomic::AtomicU64) -> u64 {\n    x.load(Ordering::Relaxed)\n}\n",
        );
        let findings = lint(&s.0).unwrap();
        let hit = findings
            .iter()
            .find(|f| f.rule == "ordering-containment")
            .expect("the deliberate violation must be caught");
        assert!(hit.file.ends_with("crates/stm/src/sneaky.rs"));
        assert_eq!(hit.line, 3);
        // The sanctioned files stay exempt.
        s.write(
            "crates/stm/src/base.rs",
            "pub fn peek(x: &std::sync::atomic::AtomicU64) -> u64 {\n    x.load(std::sync::atomic::Ordering::SeqCst)\n}\n",
        );
        let findings = lint(&s.0).unwrap();
        assert_eq!(
            findings
                .iter()
                .filter(|f| f.rule == "ordering-containment")
                .count(),
            1
        );
    }

    #[test]
    fn a_crate_root_without_forbid_unsafe_is_flagged() {
        let s = Scratch::new("unsafe");
        s.write("crates/stm/src/lib.rs", "pub mod base;\n");
        let findings = lint(&s.0).unwrap();
        let hit = findings
            .iter()
            .find(|f| f.rule == "forbid-unsafe")
            .expect("missing forbid(unsafe_code) must be caught");
        assert!(hit.file.ends_with("crates/stm/src/lib.rs"));
    }

    #[test]
    fn an_unwrap_on_the_cli_path_is_flagged_but_test_code_is_exempt() {
        let s = Scratch::new("unwrap");
        s.write(
            "crates/cli/src/lib.rs",
            "#![forbid(unsafe_code)]\nfn f() { std::fs::read(\"x\").unwrap(); }\n\
             #[cfg(test)]\nmod tests {\n    fn g() { std::fs::read(\"y\").unwrap(); }\n}\n",
        );
        let findings = lint(&s.0).unwrap();
        let hits: Vec<_> = findings
            .iter()
            .filter(|f| f.rule == "no-unwrap-in-cli")
            .collect();
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].line, 2);
    }

    #[test]
    fn args_are_validated_with_friendly_errors() {
        let a = |s: &str| -> Vec<String> { s.split(' ').map(String::from).collect() };
        assert!(parse_args(&a("--root"))
            .unwrap_err()
            .contains("--root needs a directory"));
        assert!(parse_args(&a("--root /nonexistent/nowhere"))
            .unwrap_err()
            .contains("is not a directory"));
        assert!(parse_args(&a("--bogus"))
            .unwrap_err()
            .contains("unknown flag"));
        let root = repo_root();
        assert_eq!(
            parse_args(&["--root".to_string(), root.display().to_string()]).unwrap(),
            root
        );
        // A root without crates/ is rejected by lint() itself.
        assert!(lint(Path::new("/tmp")).is_err());
    }
}
