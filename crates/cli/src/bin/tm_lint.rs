//! # tm-lint — the repository's source-discipline pass
//!
//! The step-level race analysis is only trustworthy if the memory-ordering
//! surface it instruments is the *whole* surface: a raw `AtomicU64` access
//! added anywhere else in `tm-stm` would be a shared-memory step the
//! explorer never sees. This binary pins that discipline (and two house
//! rules) as a CI gate, with `file:line` diagnostics:
//!
//! 1. **ordering-containment** — no `Ordering::` token in
//!    `crates/stm/src` outside the sanctioned instrumentation layer
//!    (`base.rs`, `clock.rs`, `recorder.rs`). TMs must go through the
//!    metered `tm_stm::base` helpers, never raw atomics. (`std::cmp::Ordering`
//!    counts too: the blanket token rule keeps the check un-foolable, and
//!    comparator code has no business in the TM algorithms either.)
//! 2. **forbid-unsafe** — every `crates/*/src/lib.rs` carries
//!    `#![forbid(unsafe_code)]`.
//! 3. **no-unwrap** — no `.unwrap()` / `.expect(` in non-test
//!    `crates/cli/src` or `crates/serve/src` code; the CLI and the serve
//!    daemon are the two long-lived user-facing surfaces, and a panic there
//!    kills every multiplexed session instead of failing one check. Errors
//!    return friendly messages or positioned `error` frames instead.
//!    Everything from the first `#[cfg(test)]` line to the end of a file is
//!    considered test code (the house style keeps test modules last).
//! 4. **atomic-telemetry** — telemetry counters live in `tm-obs`, not on
//!    raw atomics. Any `AtomicU64`/`AtomicUsize` declared under a
//!    telemetry-flavoured name (`count`, `stat`, `hits`, `evict`, …)
//!    outside `crates/obs` and the sanctioned synchronization files
//!    (`base.rs`, `clock.rs`, `steal.rs`) is flagged: one counter type
//!    means one merge semantics and one snapshot surface. The rule matches
//!    the *declared identifier* (the name left of `:`/`=`), not the whole
//!    line, so `AtomicUsize::new(stats.nodes)` bound to a clean name stays
//!    legal. Test code is exempt, as in rule 3.
//! 5. **socket-containment** — no `std::net` / `std::os::unix::net` token
//!    outside `crates/serve`. The serve daemon owns the process's entire
//!    network surface: a listener opened anywhere else would be an ingest
//!    path with none of the session table's backpressure, governance, or
//!    shutdown discipline (and an audit surface CI doesn't know about).
//!    Test code is exempt, as in rule 3: integration tests dial sockets to
//!    exercise the daemon.
//!
//! ```text
//! tm-lint [--root DIR]     # DIR defaults to the workspace root
//! ```
//!
//! Exit codes: `0` clean, `1` findings, `2` usage error. The std-only
//! directory walk keeps the binary dependency-free.

#![forbid(unsafe_code)]

use std::path::{Path, PathBuf};

/// One rule violation, rendered as `file:line: [rule] excerpt`.
#[derive(Clone, Debug, PartialEq, Eq)]
struct Finding {
    file: PathBuf,
    line: usize,
    rule: &'static str,
    excerpt: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule,
            self.excerpt
        )
    }
}

/// Collects every `.rs` file under `dir`, depth-first, sorted for
/// deterministic output.
fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    let mut paths: Vec<PathBuf> = Vec::new();
    for entry in entries {
        paths.push(entry.map_err(|e| format!("{}: {e}", dir.display()))?.path());
    }
    paths.sort();
    for path in paths {
        if path.is_dir() {
            rust_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn read(path: &Path) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))
}

/// Comment lines are prose, not code: the token rules skip them (a doc
/// sentence *about* `Ordering::` or `.unwrap()` is not a violation).
fn is_comment(line: &str) -> bool {
    line.trim_start().starts_with("//")
}

/// Rule 1: `Ordering::` stays inside the instrumentation layer.
fn lint_ordering_containment(root: &Path, findings: &mut Vec<Finding>) -> Result<(), String> {
    const ALLOWED: [&str; 3] = ["base.rs", "clock.rs", "recorder.rs"];
    let dir = root.join("crates/stm/src");
    let mut files = Vec::new();
    rust_files(&dir, &mut files)?;
    for file in files {
        let name = file
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        if ALLOWED.contains(&name.as_str()) {
            continue;
        }
        for (i, line) in read(&file)?.lines().enumerate() {
            if !is_comment(line) && line.contains("Ordering::") {
                findings.push(Finding {
                    file: file.clone(),
                    line: i + 1,
                    rule: "ordering-containment",
                    excerpt: format!(
                        "raw memory-ordering token outside base/clock/recorder: {}",
                        line.trim()
                    ),
                });
            }
        }
    }
    Ok(())
}

/// Rule 2: every crate root forbids `unsafe`.
fn lint_forbid_unsafe(root: &Path, findings: &mut Vec<Finding>) -> Result<(), String> {
    let crates = root.join("crates");
    let entries = std::fs::read_dir(&crates).map_err(|e| format!("{}: {e}", crates.display()))?;
    let mut roots: Vec<PathBuf> = Vec::new();
    for entry in entries {
        let path = entry
            .map_err(|e| format!("{}: {e}", crates.display()))?
            .path();
        let lib = path.join("src/lib.rs");
        if lib.is_file() {
            roots.push(lib);
        }
    }
    roots.sort();
    for lib in roots {
        if !read(&lib)?.contains("#![forbid(unsafe_code)]") {
            findings.push(Finding {
                file: lib,
                line: 1,
                rule: "forbid-unsafe",
                excerpt: "crate root lacks #![forbid(unsafe_code)]".to_string(),
            });
        }
    }
    Ok(())
}

/// The `#[cfg(test)]` marker, assembled so this binary's own source never
/// contains the contiguous token (which would exempt everything below the
/// rule implementations from the token rules).
const TEST_MARKER: &str = concat!("#[cfg(", "test)]");

/// Rule 3: no `.unwrap()` / `.expect(` on the user-facing paths of the
/// CLI and the serve daemon — the two long-lived process surfaces, where a
/// panic kills real sessions instead of failing one check. Errors must
/// flow to `error` frames or friendly messages instead.
fn lint_no_unwrap(root: &Path, findings: &mut Vec<Finding>) -> Result<(), String> {
    // Assembled with concat! so this rule's own source passes its gate.
    const TOKENS: [&str; 2] = [concat!(".unwrap", "()"), concat!(".expect", "(")];
    const DIRS: [&str; 2] = ["crates/cli/src", "crates/serve/src"];
    for dir in DIRS {
        let dir = root.join(dir);
        if !dir.is_dir() {
            continue;
        }
        let mut files = Vec::new();
        rust_files(&dir, &mut files)?;
        for file in files {
            let mut in_tests = false;
            for (i, line) in read(&file)?.lines().enumerate() {
                if line.contains(TEST_MARKER) {
                    in_tests = true;
                }
                if !in_tests && !is_comment(line) && TOKENS.iter().any(|t| line.contains(t)) {
                    findings.push(Finding {
                        file: file.clone(),
                        line: i + 1,
                        rule: "no-unwrap",
                        excerpt: format!(
                            "panic on the user-facing path; return an error instead: {}",
                            line.trim()
                        ),
                    });
                }
            }
        }
    }
    Ok(())
}

/// Identifier names that mark an atomic as a telemetry counter.
const TELEMETRY_TOKENS: [&str; 10] = [
    "count", "counter", "meter", "stat", "hits", "evict", "sample", "tick", "total", "steals",
];

/// The identifier a declaration binds, given the text *before* the atomic
/// type token: the last word left of the nearest `:` or `=` separator
/// (skipping `::` path segments, so `name: std::sync::atomic::AtomicU64`
/// resolves to `name`). `None` when the token is not a declaration site —
/// imports, references in signatures, tuple structs.
fn declared_identifier(before: &str) -> Option<&str> {
    let bytes = before.as_bytes();
    let mut i = bytes.len();
    let mut sep = None;
    while i > 0 {
        i -= 1;
        match bytes[i] {
            b'=' => {
                sep = Some(i);
                break;
            }
            // A `::` path separator: skip both colons and keep scanning.
            b':' if i > 0 && bytes[i - 1] == b':' => i -= 1,
            b':' => {
                sep = Some(i);
                break;
            }
            _ => {}
        }
    }
    let head = before[..sep?].trim_end();
    let start = head
        .rfind(|c: char| !(c.is_alphanumeric() || c == '_'))
        .map_or(0, |p| p + 1);
    let ident = &head[start..];
    (!ident.is_empty()).then_some(ident)
}

/// Rule 4: telemetry counters go through `tm_obs::Counter`, never raw
/// atomics — otherwise merge/snapshot semantics fragment per call site.
fn lint_atomic_telemetry(root: &Path, findings: &mut Vec<Finding>) -> Result<(), String> {
    const ALLOWED: [&str; 3] = ["base.rs", "clock.rs", "steal.rs"];
    const KINDS: [&str; 2] = ["AtomicU64", "AtomicUsize"];
    let crates = root.join("crates");
    let entries = std::fs::read_dir(&crates).map_err(|e| format!("{}: {e}", crates.display()))?;
    let mut dirs: Vec<PathBuf> = Vec::new();
    for entry in entries {
        let path = entry
            .map_err(|e| format!("{}: {e}", crates.display()))?
            .path();
        // The obs crate *implements* the sanctioned counter type.
        if path.file_name().is_some_and(|n| n == "obs") {
            continue;
        }
        let src = path.join("src");
        if src.is_dir() {
            dirs.push(src);
        }
    }
    dirs.sort();
    for dir in dirs {
        let mut files = Vec::new();
        rust_files(&dir, &mut files)?;
        for file in files {
            let name = file
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            if ALLOWED.contains(&name.as_str()) {
                continue;
            }
            let mut in_tests = false;
            for (i, line) in read(&file)?.lines().enumerate() {
                if line.contains(TEST_MARKER) {
                    in_tests = true;
                }
                if in_tests || is_comment(line) {
                    continue;
                }
                let Some(pos) = KINDS.iter().filter_map(|k| line.find(k)).min() else {
                    continue;
                };
                let Some(ident) = declared_identifier(&line[..pos]) else {
                    continue;
                };
                let lower = ident.to_lowercase();
                if TELEMETRY_TOKENS.iter().any(|t| lower.contains(t)) {
                    findings.push(Finding {
                        file: file.clone(),
                        line: i + 1,
                        rule: "atomic-telemetry",
                        excerpt: format!(
                            "'{ident}' is a telemetry counter on a raw atomic; \
                             use tm_obs::Counter (or rename if it synchronizes): {}",
                            line.trim()
                        ),
                    });
                }
            }
        }
    }
    Ok(())
}

/// Rule 5: network/socket primitives live only in the serve daemon —
/// every other ingest path would bypass the session table's backpressure,
/// memory governance, and shutdown discipline.
fn lint_socket_containment(root: &Path, findings: &mut Vec<Finding>) -> Result<(), String> {
    // Assembled with concat! so this binary's own source never contains the
    // contiguous tokens it hunts for (the rule must pass its own gate).
    const TOKENS: [&str; 2] = [concat!("std::", "net"), concat!("std::os::unix::", "net")];
    let crates = root.join("crates");
    let entries = std::fs::read_dir(&crates).map_err(|e| format!("{}: {e}", crates.display()))?;
    let mut dirs: Vec<PathBuf> = Vec::new();
    for entry in entries {
        let path = entry
            .map_err(|e| format!("{}: {e}", crates.display()))?
            .path();
        // The serve crate *is* the sanctioned network surface.
        if path.file_name().is_some_and(|n| n == "serve") {
            continue;
        }
        let src = path.join("src");
        if src.is_dir() {
            dirs.push(src);
        }
    }
    dirs.sort();
    for dir in dirs {
        let mut files = Vec::new();
        rust_files(&dir, &mut files)?;
        for file in files {
            let mut in_tests = false;
            for (i, line) in read(&file)?.lines().enumerate() {
                if line.contains(TEST_MARKER) {
                    in_tests = true;
                }
                if !in_tests && !is_comment(line) && TOKENS.iter().any(|t| line.contains(t)) {
                    findings.push(Finding {
                        file: file.clone(),
                        line: i + 1,
                        rule: "socket-containment",
                        excerpt: format!(
                            "socket/network primitive outside crates/serve; \
                             route ingest through the serve daemon: {}",
                            line.trim()
                        ),
                    });
                }
            }
        }
    }
    Ok(())
}

/// Runs all rules under `root`, returning findings sorted by location.
fn lint(root: &Path) -> Result<Vec<Finding>, String> {
    if !root.join("crates").is_dir() {
        return Err(format!(
            "'{}' is not the workspace root (no crates/ directory); \
             pass it with --root",
            root.display()
        ));
    }
    let mut findings = Vec::new();
    lint_ordering_containment(root, &mut findings)?;
    lint_forbid_unsafe(root, &mut findings)?;
    lint_no_unwrap(root, &mut findings)?;
    lint_atomic_telemetry(root, &mut findings)?;
    lint_socket_containment(root, &mut findings)?;
    findings.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(findings)
}

/// Usage text shown on argument errors.
const USAGE: &str = "\
tm-lint — source-discipline gate (ordering containment, forbid(unsafe), no unwraps on
          cli/serve paths, no raw-atomic telemetry outside tm-obs, no sockets
          outside tm-serve)

USAGE:
  tm-lint [--root DIR]     DIR defaults to the workspace root containing crates/
";

/// Parses the argument list (without the program name).
fn parse_args(args: &[String]) -> Result<PathBuf, String> {
    let mut root: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--root" => {
                let dir = it
                    .next()
                    .ok_or_else(|| "--root needs a directory".to_string())?;
                let path = PathBuf::from(dir);
                if !path.is_dir() {
                    return Err(format!("--root '{dir}' is not a directory"));
                }
                root = Some(path);
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    match root {
        Some(r) => Ok(r),
        // Default: walk up from the current directory to the workspace root.
        None => {
            let mut dir = std::env::current_dir().map_err(|e| format!("cwd: {e}"))?;
            loop {
                if dir.join("crates").is_dir() {
                    return Ok(dir);
                }
                if !dir.pop() {
                    return Err("no workspace root (crates/ directory) above the current \
                         directory; pass --root"
                        .to_string());
                }
            }
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match parse_args(&args).and_then(|root| lint(&root)) {
        Ok(findings) if findings.is_empty() => {
            println!("tm-lint: clean");
            0
        }
        Ok(findings) => {
            for f in &findings {
                println!("{f}");
            }
            println!("tm-lint: {} finding(s)", findings.len());
            1
        }
        Err(e) => {
            eprintln!("tm-lint: {e}");
            2
        }
    };
    std::process::exit(code);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The workspace root of this checkout.
    fn repo_root() -> PathBuf {
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .canonicalize()
            .unwrap()
    }

    /// A scratch workspace with one stm file, one crate root, one cli file.
    struct Scratch(PathBuf);

    impl Scratch {
        fn new(tag: &str) -> Scratch {
            let dir = std::env::temp_dir().join(format!("tm-lint-{tag}-{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            for sub in ["crates/stm/src", "crates/cli/src"] {
                std::fs::create_dir_all(dir.join(sub)).unwrap();
            }
            std::fs::write(
                dir.join("crates/stm/src/lib.rs"),
                "#![forbid(unsafe_code)]\npub mod base;\n",
            )
            .unwrap();
            std::fs::write(dir.join("crates/stm/src/base.rs"), "// sanctioned\n").unwrap();
            std::fs::write(
                dir.join("crates/cli/src/lib.rs"),
                "#![forbid(unsafe_code)]\nfn ok() {}\n",
            )
            .unwrap();
            Scratch(dir)
        }

        fn write(&self, rel: &str, content: &str) {
            std::fs::write(self.0.join(rel), content).unwrap();
        }
    }

    impl Drop for Scratch {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    #[test]
    fn the_tree_is_clean() {
        // The gate the CI job runs: this checkout has no violations.
        let findings = lint(&repo_root()).unwrap();
        assert!(
            findings.is_empty(),
            "{}",
            findings
                .iter()
                .map(|f| f.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }

    #[test]
    fn a_stray_ordering_token_is_flagged_with_file_and_line() {
        let s = Scratch::new("ordering");
        s.write(
            "crates/stm/src/sneaky.rs",
            "use std::sync::atomic::Ordering;\nfn f(x: &std::sync::atomic::AtomicU64) -> u64 {\n    x.load(Ordering::Relaxed)\n}\n",
        );
        let findings = lint(&s.0).unwrap();
        let hit = findings
            .iter()
            .find(|f| f.rule == "ordering-containment")
            .expect("the deliberate violation must be caught");
        assert!(hit.file.ends_with("crates/stm/src/sneaky.rs"));
        assert_eq!(hit.line, 3);
        // The sanctioned files stay exempt.
        s.write(
            "crates/stm/src/base.rs",
            "pub fn peek(x: &std::sync::atomic::AtomicU64) -> u64 {\n    x.load(std::sync::atomic::Ordering::SeqCst)\n}\n",
        );
        let findings = lint(&s.0).unwrap();
        assert_eq!(
            findings
                .iter()
                .filter(|f| f.rule == "ordering-containment")
                .count(),
            1
        );
    }

    #[test]
    fn a_crate_root_without_forbid_unsafe_is_flagged() {
        let s = Scratch::new("unsafe");
        s.write("crates/stm/src/lib.rs", "pub mod base;\n");
        let findings = lint(&s.0).unwrap();
        let hit = findings
            .iter()
            .find(|f| f.rule == "forbid-unsafe")
            .expect("missing forbid(unsafe_code) must be caught");
        assert!(hit.file.ends_with("crates/stm/src/lib.rs"));
    }

    #[test]
    fn an_unwrap_on_the_cli_path_is_flagged_but_test_code_is_exempt() {
        let s = Scratch::new("unwrap");
        s.write(
            "crates/cli/src/lib.rs",
            "#![forbid(unsafe_code)]\nfn f() { std::fs::read(\"x\").unwrap(); }\n\
             #[cfg(test)]\nmod tests {\n    fn g() { std::fs::read(\"y\").unwrap(); }\n}\n",
        );
        let findings = lint(&s.0).unwrap();
        let hits: Vec<_> = findings.iter().filter(|f| f.rule == "no-unwrap").collect();
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].line, 2);
    }

    #[test]
    fn an_expect_in_the_serve_crate_is_flagged_too() {
        // The daemon is a long-lived surface: rule 3 covers its crate and
        // both panic spellings. A scratch tree without crates/serve (the
        // other tests') must still lint — the dir is skipped when absent.
        let s = Scratch::new("serve-expect");
        std::fs::create_dir_all(s.0.join("crates/serve/src")).unwrap();
        s.write(
            "crates/serve/src/lib.rs",
            "#![forbid(unsafe_code)]\nfn f() { std::fs::read(\"x\").expect(\"boom\"); }\n\
             #[cfg(test)]\nmod tests {\n    fn g() { std::fs::read(\"y\").expect(\"fine\"); }\n}\n",
        );
        let findings = lint(&s.0).unwrap();
        let hits: Vec<_> = findings.iter().filter(|f| f.rule == "no-unwrap").collect();
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert!(hits[0].file.ends_with("crates/serve/src/lib.rs"));
        assert_eq!(hits[0].line, 2);
    }

    #[test]
    fn a_telemetry_counter_on_a_raw_atomic_is_flagged() {
        let s = Scratch::new("telemetry");
        s.write(
            "crates/stm/src/tally.rs",
            "pub struct Tally {\n    retry_count: std::sync::atomic::AtomicU64,\n    lock: std::sync::atomic::AtomicU64,\n}\n",
        );
        let findings = lint(&s.0).unwrap();
        let hits: Vec<_> = findings
            .iter()
            .filter(|f| f.rule == "atomic-telemetry")
            .collect();
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert!(hits[0].file.ends_with("crates/stm/src/tally.rs"));
        assert_eq!(hits[0].line, 2);
        assert!(hits[0].excerpt.contains("retry_count"), "{}", hits[0]);
    }

    #[test]
    fn telemetry_exemptions_hold() {
        let s = Scratch::new("telemetry-exempt");
        // Sanctioned synchronization files may name their atomics anything:
        // the steal deque's occupancy meters coordinate parking, they are
        // not telemetry.
        s.write(
            "crates/stm/src/steal.rs",
            "pub struct Q {\n    inflight_count: std::sync::atomic::AtomicUsize,\n}\n",
        );
        // The rule matches the declared identifier, not the whole line:
        // `stats.nodes` contains the token \"stat\" but the binding is clean.
        s.write(
            "crates/stm/src/resume.rs",
            "fn f(stats: &S) {\n    let nodes_spent = std::sync::atomic::AtomicUsize::new(stats.nodes);\n    let _ = nodes_spent;\n}\n",
        );
        // Test code may tally however it likes.
        s.write(
            "crates/cli/src/probe.rs",
            "#[cfg(test)]\nmod tests {\n    static HIT_COUNT: std::sync::atomic::AtomicU64 =\n        std::sync::atomic::AtomicU64::new(0);\n}\n",
        );
        // The obs crate implements the counter type itself.
        std::fs::create_dir_all(s.0.join("crates/obs/src")).unwrap();
        s.write(
            "crates/obs/src/registry.rs",
            "pub struct R {\n    dropped_count: std::sync::atomic::AtomicU64,\n}\n",
        );
        let findings = lint(&s.0).unwrap();
        assert!(
            findings.iter().all(|f| f.rule != "atomic-telemetry"),
            "{findings:?}"
        );
    }

    #[test]
    fn a_socket_outside_the_serve_crate_is_flagged_and_serve_is_exempt() {
        let s = Scratch::new("socket");
        s.write(
            "crates/stm/src/net_sneak.rs",
            "// a doc line mentioning std::net is fine\n\
             pub fn listen() {\n    let _l = std::os::unix::net::UnixListener::bind(\"/tmp/x\");\n}\n",
        );
        // The serve crate owns the network surface: identical code is legal there.
        std::fs::create_dir_all(s.0.join("crates/serve/src")).unwrap();
        s.write(
            "crates/serve/src/lib.rs",
            "#![forbid(unsafe_code)]\npub fn listen() {\n    let _l = std::net::TcpListener::bind(\"127.0.0.1:0\");\n}\n",
        );
        let findings = lint(&s.0).unwrap();
        let hits: Vec<_> = findings
            .iter()
            .filter(|f| f.rule == "socket-containment")
            .collect();
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert!(hits[0].file.ends_with("crates/stm/src/net_sneak.rs"));
        assert_eq!(hits[0].line, 3);
        assert!(hits[0].excerpt.contains("crates/serve"), "{}", hits[0]);
    }

    #[test]
    fn declared_identifier_sees_through_paths_and_skips_non_declarations() {
        assert_eq!(
            declared_identifier("    evict_total: "),
            Some("evict_total")
        );
        assert_eq!(
            declared_identifier("    let hits = std::sync::atomic::"),
            Some("hits")
        );
        assert_eq!(
            declared_identifier("static TICK_METER: std::sync::atomic::"),
            Some("TICK_METER")
        );
        // Imports, bare references, and tuple structs bind no identifier.
        assert_eq!(declared_identifier("use std::sync::atomic::{"), None);
        assert_eq!(declared_identifier("struct Padded("), None);
        assert_eq!(declared_identifier(""), None);
    }

    #[test]
    fn args_are_validated_with_friendly_errors() {
        let a = |s: &str| -> Vec<String> { s.split(' ').map(String::from).collect() };
        assert!(parse_args(&a("--root"))
            .unwrap_err()
            .contains("--root needs a directory"));
        assert!(parse_args(&a("--root /nonexistent/nowhere"))
            .unwrap_err()
            .contains("is not a directory"));
        assert!(parse_args(&a("--bogus"))
            .unwrap_err()
            .contains("unknown flag"));
        let root = repo_root();
        assert_eq!(
            parse_args(&["--root".to_string(), root.display().to_string()]).unwrap(),
            root
        );
        // A root without crates/ is rejected by lint() itself.
        assert!(lint(Path::new("/tmp")).is_err());
    }
}
