//! # tm-cli — the `tmcheck` command-line opacity checker
//!
//! The paper's criterion is only useful to practitioners if arbitrary TM
//! traces can be judged without writing Rust. `tmcheck` reads a history in
//! either trace format of `tm-trace` (JSON or line-oriented text,
//! auto-detected) and runs the full `tm-opacity` toolbox over it:
//!
//! ```text
//! tmcheck check    <file>   # opacity verdict + serialization witness
//! tmcheck explain  <file>   # first fatal event + stuck-transaction analysis
//! tmcheck criteria <file>   # the Section-3 criteria lattice, one verdict per row
//! tmcheck graph    <file>   # Graphviz DOT of the Section-5.4 opacity graph
//! tmcheck convert  <file> --json|--text   # format conversion
//! tmcheck generate [--seed N --txs N --objs N --ops N --json]
//! tmcheck conformance [--jobs N] [--tm SPEC] [--clock SCHEME] [--mutants]
//! tmcheck race     [--tm SPEC] [--steps N] [--preemptions K]
//! tmcheck serve    [--socket PATH | --replay FILE | --stdin] [--memo-budget BYTES]
//! tmcheck list              # the TM registry and its configuration axes
//! ```
//!
//! `race` is the *step-level* analogue of `conformance`: it drives each
//! non-blocking TM through the DPOR interleaving explorer (yield points at
//! every instrumented base-object access, not every operation), runs the
//! vector-clock clock-discipline checker and the committed-subset
//! serializability oracle over every explored schedule, and — in suite
//! mode — re-convicts the two seeded concurrency mutants as a self-test,
//! printing each conviction's minimized replayable schedule.
//!
//! `serve` turns the checker into a long-lived streaming daemon (the
//! `tm-serve` crate): line-delimited `tm-serve/v1.1` JSON frames open,
//! feed, and close thousands of concurrent check sessions, each answered
//! with a per-event opacity verdict — over stdin, a Unix socket, or a
//! recorded replay file (the deterministic CI mode). `--journal`/`--resume`
//! give it crash recovery (a restarted daemon continues every session with
//! unchanged seq numbering), `--fault-plan` injects a seeded fault
//! schedule for chaos testing, and the watermark/reap flags turn overload
//! into `busy` pushback instead of failure.
//!
//! `conformance` runs the `tm-harness` conformance kit over the in-tree TM
//! suite; `--jobs N` shards the interleaving sweep across `N` worker
//! threads with deterministic merging, so the output is identical for every
//! `N`. TM selection goes through the fallible `tm_stm::TmRegistry`: `--tm`
//! accepts full specs (`tl2+sharded:16`) and a typo prints the menu of
//! valid names instead of panicking; `--clock single|sharded[:N]|deferred`
//! sweeps the clocked TMs (tl2, mvstm, sistm) under that version-clock
//! scheme.
//!
//! Exit codes: `0` — the property holds (or output was produced), `1` — the
//! history violates opacity, `2` — usage or input error, `3` — a `serve`
//! fault-plan injected crash fired (the crash-recovery harness's signal).
//! `-` reads stdin.
//!
//! The library surface (`run`) is exercised directly by the test-suite; the
//! binary in `main.rs` is a thin wrapper.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::collections::HashSet;
use std::io::{Read as _, Write};

use tm_harness::{random_history, GenConfig, ObjectKind};
use tm_model::{History, RealTimeOrder, SpecRegistry};
use tm_opacity::criteria;
use tm_opacity::explain::explain_violation;
use tm_opacity::graph::{build_opg, nonlocal, with_initial_tx};
use tm_opacity::graphcheck::construct_graph_witness;
use tm_opacity::opacity::is_opaque_with;
use tm_opacity::SearchConfig;
use tm_trace::{from_json, from_text, to_json_pretty, to_text};

/// A parsed command line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Command {
    /// `check <file> [--search-jobs N] [--memo-cap M] [--split-depth D]
    /// [--split-granularity G] [--metrics-out FILE] [--trace-out FILE]
    /// [--progress]`
    Check {
        /// Input path (`-` = stdin).
        file: String,
        /// Worker threads for the serialization search itself (`0` = auto:
        /// one per hardware thread).
        search_jobs: usize,
        /// Bound on resident dead-end memo entries (≥ 1; default
        /// unbounded).
        memo_cap: Option<usize>,
        /// Depth window for dynamic subtree splitting (`0` disables).
        split_depth: usize,
        /// Minimum untried candidates a frame needs to donate one (≥ 1).
        split_granularity: usize,
        /// Write a `tm-metrics/v1` JSON metrics snapshot here.
        metrics_out: Option<String>,
        /// Write a Chrome-trace JSON span file here.
        trace_out: Option<String>,
        /// Render a live single-line progress counter on stderr.
        progress: bool,
    },
    /// `explain <file>`
    Explain(String),
    /// `criteria <file>`
    Criteria(String),
    /// `graph <file>`
    Graph(String),
    /// `convert <file> --json|--text`
    Convert {
        /// Input path (`-` = stdin).
        file: String,
        /// Emit JSON (`true`) or text (`false`).
        json: bool,
    },
    /// `generate [--seed N --txs N --objs N --ops N --json]`
    Generate {
        /// Generator seed.
        seed: u64,
        /// Transactions.
        txs: usize,
        /// Registers.
        objs: usize,
        /// Max operations per transaction.
        ops: usize,
        /// Emit JSON instead of text.
        json: bool,
    },
    /// `conformance [--jobs N] [--search-jobs N] [--memo-cap M] [--tm SPEC]
    /// [--clock SCHEME] [--mutants] [--objects SET]`
    Conformance {
        /// Worker threads for the interleaving sweep (≥ 1).
        jobs: usize,
        /// Worker threads for each individual serialization search (`0` =
        /// auto: one per hardware thread).
        search_jobs: usize,
        /// Bound on each search's resident dead-end memo entries (≥ 1;
        /// default unbounded).
        memo_cap: Option<usize>,
        /// Depth window for dynamic subtree splitting (`0` disables).
        split_depth: usize,
        /// Minimum untried candidates a frame needs to donate one (≥ 1).
        split_granularity: usize,
        /// Restrict to one TM spec (`tl2`, `tl2+sharded:16`, …; default:
        /// the whole suite).
        tm: Option<String>,
        /// Sweep the clocked TMs under this clock scheme instead of the
        /// full suite under the default clock.
        clock: Option<tm_stm::ClockScheme>,
        /// Also run the deliberately broken mutants.
        mutants: bool,
        /// Typed-object probe battery: `--objects all` or a comma list of
        /// kinds. `None` runs the classic register battery.
        objects: Option<Vec<ObjectKind>>,
        /// Write a `tm-metrics/v1` JSON metrics snapshot here.
        metrics_out: Option<String>,
        /// Write a Chrome-trace JSON span file here.
        trace_out: Option<String>,
    },
    /// `race [--tm SPEC] [--steps N] [--preemptions K] [--metrics-out FILE]
    /// [--trace-out FILE]`
    Race {
        /// Restrict to one non-blocking TM spec (default: every
        /// non-blocking TM in the suite, plus the concurrency-mutant
        /// self-test).
        tm: Option<String>,
        /// Budget: maximum explored interleavings per probe (≥ 1).
        steps: usize,
        /// Preemption bound for the real-TM sweep (0 = serial orders only).
        preemptions: usize,
        /// Write a `tm-metrics/v1` JSON metrics snapshot here.
        metrics_out: Option<String>,
        /// Write a Chrome-trace JSON span file here.
        trace_out: Option<String>,
    },
    /// `serve [--socket PATH | --replay FILE | --stdin] [--max-sessions N]
    /// [--memo-budget BYTES] [--node-budget N] [--inbox-cap N]
    /// [--fault-plan FILE|SPEC] [--journal DIR] [--resume]
    /// [--fsync-every N] [--idle-reap N] [--queue-watermark N]
    /// [--memo-watermark BYTES] [--metrics-out FILE] [--trace-out FILE]`
    Serve {
        /// Listen on a Unix socket at this path (mutually exclusive with
        /// `replay`; default is the stdin transport).
        socket: Option<String>,
        /// Offline deterministic mode: drain a recorded frame file.
        replay: Option<String>,
        /// Maximum concurrently open sessions.
        max_sessions: usize,
        /// Global memo-byte ceiling apportioned across open sessions
        /// (default: unbudgeted).
        memo_budget: Option<u64>,
        /// Search nodes one session may burn per scheduler turn.
        node_budget: u64,
        /// Unchecked events buffered per session before `busy` pushback.
        inbox_cap: usize,
        /// Injected fault schedule: a `tm-faults/v1` JSON file path or an
        /// inline `kind@frame[:args],...` spec.
        fault_plan: Option<String>,
        /// Append the crash-recovery session journal under this directory.
        journal: Option<String>,
        /// Rebuild the session table from `--journal`'s journal first.
        resume: bool,
        /// `sync_data` the journal every N records.
        fsync_every: usize,
        /// Reap sessions idle for N scheduler turns (default: never).
        idle_reap: Option<u64>,
        /// Shed feeds with hinted `busy` frames at this run-queue depth.
        queue_watermark: Option<usize>,
        /// Shed opens with hinted `busy` frames past this resident memo.
        memo_watermark: Option<u64>,
        /// Write a `tm-metrics/v1` JSON metrics snapshot here.
        metrics_out: Option<String>,
        /// Write a Chrome-trace JSON span file here.
        trace_out: Option<String>,
    },
    /// `list`
    List,
    /// `help`
    Help,
}

/// Usage text shown by `tmcheck help` and on argument errors.
pub const USAGE: &str = "\
tmcheck — opacity checker for transactional-memory traces
  (Guerraoui & Kapałka, \"On the Correctness of Transactional Memory\", PPoPP 2008)

USAGE:
  tmcheck check    <file> [--search-jobs N] [--memo-cap M]
                          [--split-depth D] [--split-granularity G]
                          [--metrics-out FILE] [--trace-out FILE] [--progress]
                                    opacity verdict + witness (exit 1 if
                                    violated); --search-jobs N drives the
                                    serialization search with N work-stealing
                                    workers sharing the dead-end memo (0 =
                                    auto: one per hardware thread; verdict
                                    identical to the sequential search);
                                    --memo-cap M bounds the resident memo
                                    entries with segmented-LRU eviction;
                                    --split-depth D sets the window (relative
                                    to each task's root) in which busy
                                    workers donate untried branches to hungry
                                    workers (0 = root-only parallelism,
                                    default 8), --split-granularity G the
                                    minimum untried candidates a frame needs
                                    before donating one (default 1);
                                    --metrics-out writes a tm-metrics/v1 JSON
                                    snapshot of search/memo/verdict counters,
                                    --trace-out a Chrome-trace (Perfetto-
                                    loadable) span file, --progress renders a
                                    live node counter on stderr
  tmcheck explain  <file>           localize the first opacity violation
  tmcheck criteria <file>           verdicts for the full Section-3 criteria lattice
  tmcheck graph    <file>           Graphviz DOT of the Section-5.4 opacity graph
  tmcheck convert  <file> --json|--text    convert between trace formats
  tmcheck generate [--seed N] [--txs N] [--objs N] [--ops N] [--json]
  tmcheck conformance [--jobs N] [--search-jobs N] [--memo-cap M]
                      [--split-depth D] [--split-granularity G] [--tm SPEC]
                      [--clock SCHEME] [--mutants] [--objects SET]
                      [--metrics-out FILE] [--trace-out FILE]
                                    run the TM conformance battery (exit 1 if
                                    any swept TM violates a contract); --jobs
                                    shards the sweep deterministically;
                                    --search-jobs/--memo-cap/--split-depth/
                                    --split-granularity configure each
                                    individual history check as in `check`
                                    (output is invariant under all); --tm
                                    takes a spec (tl2, tl2+sharded:16, …);
                                    --clock single|sharded[:N]|deferred sweeps
                                    the clocked TMs (tl2, mvstm, sistm) under
                                    that version-clock scheme;
                                    --objects all (or e.g. --objects set,queue)
                                    sweeps typed-object probes — write-skew
                                    sets, producer/consumer queues, commutative
                                    counter storms — instead of the register
                                    battery; --metrics-out/--trace-out write
                                    the observability artifacts as in `check`
                                    (the battery text itself is unchanged)
  tmcheck race [--tm SPEC] [--steps N] [--preemptions K]
               [--metrics-out FILE] [--trace-out FILE]
                                    step-level race analysis: explore
                                    instrumented base-object interleavings
                                    with dynamic partial-order reduction,
                                    check version-clock discipline
                                    (vector-clock happens-before) and
                                    committed-subset serializability on every
                                    schedule (exit 1 on a conviction);
                                    without --tm, sweeps every non-blocking
                                    TM and re-convicts the two seeded
                                    concurrency mutants as a self-test,
                                    printing minimized replayable schedules;
                                    --steps bounds explored interleavings per
                                    probe, --preemptions bounds context
                                    switches away from a runnable thread
  tmcheck serve [--socket PATH | --replay FILE | --stdin]
                [--max-sessions N] [--memo-budget BYTES] [--node-budget N]
                [--inbox-cap N] [--fault-plan FILE|SPEC] [--journal DIR]
                [--resume] [--fsync-every N] [--idle-reap N]
                [--queue-watermark N] [--memo-watermark BYTES]
                [--metrics-out FILE] [--trace-out FILE]
                                    the streaming monitoring daemon: ingest
                                    line-delimited tm-serve/v1.1 JSON frames
                                    (open/feed/close/shutdown), multiplex one
                                    resumable opacity monitor per session with
                                    fair round-robin turns, and answer every
                                    event with a verdict frame; --socket
                                    listens on a Unix socket (one frame stream
                                    per connection), --replay drains a
                                    recorded frame file deterministically (the
                                    CI mode; output is a pure function of the
                                    file), --stdin is the default live
                                    single-stream mode; --max-sessions caps
                                    open sessions, --memo-budget apportions a
                                    global memo-byte ceiling across sessions,
                                    --node-budget bounds one session's search
                                    nodes per scheduler turn, --inbox-cap the
                                    events buffered before `busy` pushback;
                                    --fault-plan injects a fault schedule
                                    (torn@F:K, drop@F:N, stall@F:T, werr@F:N,
                                    memo@F:BxD, node@F:NxD, crash@F,
                                    gen@SEED:HxC — a file path or inline
                                    spec; injected crashes exit 3);
                                    --journal DIR appends an fsync-batched
                                    session journal, --resume rebuilds the
                                    table from it so a restarted daemon
                                    continues every session with unchanged
                                    seq numbering, --fsync-every batches the
                                    journal syncs; --idle-reap closes
                                    sessions idle that many turns,
                                    --queue-watermark / --memo-watermark
                                    shed load with `busy` frames carrying
                                    retry_after_turns hints; exits 0 on a
                                    clean drain, 1 if any session was
                                    poisoned by a hard error
  tmcheck list                      the TM registry: names, properties, and
                                    which configuration axes each TM accepts
  tmcheck help

  <file> may be '-' for stdin. Formats (JSON / text) are auto-detected;
  see the tm-trace crate documentation for their grammar.
";

/// Parses `--jobs`/`--memo-cap` style values: a number that must be at
/// least 1, with the conformance-flag error style.
fn positive_flag(
    it: &mut std::slice::Iter<'_, String>,
    cmd: &str,
    flag: &str,
) -> Result<usize, String> {
    it.next()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .ok_or_else(|| format!("{cmd}: {flag} needs a number ≥ 1"))
}

/// Parses `--metrics-out`/`--trace-out` style values: a file path.
fn path_flag(
    it: &mut std::slice::Iter<'_, String>,
    cmd: &str,
    flag: &str,
) -> Result<String, String> {
    it.next()
        .cloned()
        .ok_or_else(|| format!("{cmd}: {flag} needs a file path"))
}

/// Parses `--search-jobs`/`--split-depth` style values, where `0` is a
/// meaningful setting (auto-parallelism / splitting disabled).
fn nonneg_flag(
    it: &mut std::slice::Iter<'_, String>,
    cmd: &str,
    flag: &str,
    zero_means: &str,
) -> Result<usize, String> {
    it.next()
        .and_then(|v| v.parse::<usize>().ok())
        .ok_or_else(|| format!("{cmd}: {flag} needs a number ≥ 0 (0 = {zero_means})"))
}

/// Parses command-line arguments (without the program name).
pub fn parse_args(args: &[String]) -> Result<Command, String> {
    let mut it = args.iter();
    let cmd = it.next().ok_or_else(|| "missing command".to_string())?;
    let file_arg = |it: &mut std::slice::Iter<'_, String>| -> Result<String, String> {
        it.next()
            .cloned()
            .ok_or_else(|| format!("{cmd}: missing <file> argument"))
    };
    match cmd.as_str() {
        "check" => {
            let file = file_arg(&mut it)?;
            let defaults = SearchConfig::default();
            let mut search_jobs = 1usize;
            let mut memo_cap = None;
            let mut split_depth = defaults.split_depth;
            let mut split_granularity = defaults.split_granularity;
            let mut metrics_out = None;
            let mut trace_out = None;
            let mut progress = false;
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--search-jobs" => {
                        search_jobs = nonneg_flag(&mut it, "check", "--search-jobs", "auto")?;
                    }
                    "--memo-cap" => {
                        memo_cap = Some(positive_flag(&mut it, "check", "--memo-cap")?);
                    }
                    "--split-depth" => {
                        split_depth = nonneg_flag(&mut it, "check", "--split-depth", "disabled")?;
                    }
                    "--split-granularity" => {
                        split_granularity = positive_flag(&mut it, "check", "--split-granularity")?;
                    }
                    "--metrics-out" => {
                        metrics_out = Some(path_flag(&mut it, "check", "--metrics-out")?);
                    }
                    "--trace-out" => {
                        trace_out = Some(path_flag(&mut it, "check", "--trace-out")?);
                    }
                    "--progress" => progress = true,
                    other => return Err(format!("check: unknown flag '{other}'")),
                }
            }
            Ok(Command::Check {
                file,
                search_jobs,
                memo_cap,
                split_depth,
                split_granularity,
                metrics_out,
                trace_out,
                progress,
            })
        }
        "explain" => Ok(Command::Explain(file_arg(&mut it)?)),
        "criteria" => Ok(Command::Criteria(file_arg(&mut it)?)),
        "graph" => Ok(Command::Graph(file_arg(&mut it)?)),
        "convert" => {
            let file = file_arg(&mut it)?;
            let mut json = None;
            for flag in it {
                match flag.as_str() {
                    "--json" => json = Some(true),
                    "--text" => json = Some(false),
                    other => return Err(format!("convert: unknown flag '{other}'")),
                }
            }
            let json = json.ok_or_else(|| "convert: need --json or --text".to_string())?;
            Ok(Command::Convert { file, json })
        }
        "generate" => {
            let mut g = Command::Generate {
                seed: 1,
                txs: 4,
                objs: 3,
                ops: 4,
                json: false,
            };
            let Command::Generate {
                seed,
                txs,
                objs,
                ops,
                json,
            } = &mut g
            else {
                unreachable!()
            };
            // Sizes must be ≥ 1: a 0-transaction / 0-register / 0-op
            // request is a flag typo, not a meaningful workload.
            fn size_of(v: u64, name: &str) -> Result<usize, String> {
                if v == 0 {
                    return Err(format!("generate: {name} must be ≥ 1"));
                }
                usize::try_from(v).map_err(|_| format!("generate: {name} is too large"))
            }
            while let Some(flag) = it.next() {
                let mut num = |name: &str| -> Result<u64, String> {
                    it.next()
                        .and_then(|v| v.parse::<u64>().ok())
                        .ok_or_else(|| format!("generate: {name} needs a number"))
                };
                match flag.as_str() {
                    "--seed" => *seed = num("--seed")?,
                    "--txs" => *txs = size_of(num("--txs")?, "--txs")?,
                    "--objs" => *objs = size_of(num("--objs")?, "--objs")?,
                    "--ops" => *ops = size_of(num("--ops")?, "--ops")?,
                    "--json" => *json = true,
                    other => return Err(format!("generate: unknown flag '{other}'")),
                }
            }
            Ok(g)
        }
        "list" => Ok(Command::List),
        "conformance" => {
            let defaults = SearchConfig::default();
            let mut jobs = 1usize;
            let mut search_jobs = 1usize;
            let mut memo_cap = None;
            let mut split_depth = defaults.split_depth;
            let mut split_granularity = defaults.split_granularity;
            let mut tm = None;
            let mut clock = None;
            let mut mutants = false;
            let mut objects = None;
            let mut metrics_out = None;
            let mut trace_out = None;
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--jobs" => {
                        jobs = positive_flag(&mut it, "conformance", "--jobs")?;
                    }
                    "--search-jobs" => {
                        search_jobs = nonneg_flag(&mut it, "conformance", "--search-jobs", "auto")?;
                    }
                    "--memo-cap" => {
                        memo_cap = Some(positive_flag(&mut it, "conformance", "--memo-cap")?);
                    }
                    "--split-depth" => {
                        split_depth =
                            nonneg_flag(&mut it, "conformance", "--split-depth", "disabled")?;
                    }
                    "--split-granularity" => {
                        split_granularity =
                            positive_flag(&mut it, "conformance", "--split-granularity")?;
                    }
                    "--tm" => {
                        tm = Some(
                            it.next()
                                .cloned()
                                .ok_or_else(|| "conformance: --tm needs a name".to_string())?,
                        );
                    }
                    "--clock" => {
                        let spec = it
                            .next()
                            .ok_or_else(|| "conformance: --clock needs a scheme".to_string())?;
                        clock = Some(
                            tm_stm::ClockScheme::parse(spec)
                                .map_err(|e| format!("conformance: {e}"))?,
                        );
                    }
                    "--mutants" => mutants = true,
                    "--objects" => {
                        let spec = it.next().ok_or_else(|| {
                            "conformance: --objects needs a set (all or a comma list of kinds)"
                                .to_string()
                        })?;
                        objects = Some(
                            ObjectKind::parse_set(spec).map_err(|e| format!("conformance: {e}"))?,
                        );
                    }
                    "--metrics-out" => {
                        metrics_out = Some(path_flag(&mut it, "conformance", "--metrics-out")?);
                    }
                    "--trace-out" => {
                        trace_out = Some(path_flag(&mut it, "conformance", "--trace-out")?);
                    }
                    other => return Err(format!("conformance: unknown flag '{other}'")),
                }
            }
            Ok(Command::Conformance {
                jobs,
                search_jobs,
                memo_cap,
                split_depth,
                split_granularity,
                tm,
                clock,
                mutants,
                objects,
                metrics_out,
                trace_out,
            })
        }
        "race" => {
            let mut tm = None;
            let mut steps = 200_000usize;
            let mut preemptions = 2usize;
            let mut metrics_out = None;
            let mut trace_out = None;
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--metrics-out" => {
                        metrics_out = Some(path_flag(&mut it, "race", "--metrics-out")?);
                    }
                    "--trace-out" => {
                        trace_out = Some(path_flag(&mut it, "race", "--trace-out")?);
                    }
                    "--tm" => {
                        tm = Some(
                            it.next()
                                .cloned()
                                .ok_or_else(|| "race: --tm needs a name".to_string())?,
                        );
                    }
                    "--steps" => {
                        steps = positive_flag(&mut it, "race", "--steps")?;
                    }
                    "--preemptions" => {
                        // 0 is meaningful here (serial orders only), so the
                        // ≥ 1 helper does not apply.
                        preemptions = it
                            .next()
                            .and_then(|v| v.parse::<usize>().ok())
                            .ok_or_else(|| "race: --preemptions needs a number ≥ 0".to_string())?;
                    }
                    other => return Err(format!("race: unknown flag '{other}'")),
                }
            }
            Ok(Command::Race {
                tm,
                steps,
                preemptions,
                metrics_out,
                trace_out,
            })
        }
        "serve" => {
            let defaults = tm_serve::ServeConfig::default();
            let mut socket = None;
            let mut replay = None;
            let mut stdin = false;
            let mut max_sessions = defaults.max_sessions;
            let mut memo_budget = None;
            let mut node_budget = defaults.node_budget;
            let mut inbox_cap = defaults.inbox_capacity;
            let mut fault_plan = None;
            let mut journal = None;
            let mut resume = false;
            let mut fsync_every = defaults.fsync_every;
            let mut idle_reap = None;
            let mut queue_watermark = None;
            let mut memo_watermark = None;
            let mut metrics_out = None;
            let mut trace_out = None;
            // u64-valued flags (byte/node budgets) that must be ≥ 1.
            fn positive_u64(
                it: &mut std::slice::Iter<'_, String>,
                flag: &str,
            ) -> Result<u64, String> {
                it.next()
                    .and_then(|v| v.parse::<u64>().ok())
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| format!("serve: {flag} needs a number ≥ 1"))
            }
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--socket" => socket = Some(path_flag(&mut it, "serve", "--socket")?),
                    "--replay" => replay = Some(path_flag(&mut it, "serve", "--replay")?),
                    "--stdin" => stdin = true,
                    "--max-sessions" => {
                        max_sessions = positive_flag(&mut it, "serve", "--max-sessions")?;
                    }
                    "--memo-budget" => {
                        memo_budget = Some(positive_u64(&mut it, "--memo-budget")?);
                    }
                    "--node-budget" => node_budget = positive_u64(&mut it, "--node-budget")?,
                    "--inbox-cap" => {
                        inbox_cap = positive_flag(&mut it, "serve", "--inbox-cap")?;
                    }
                    "--fault-plan" => {
                        fault_plan = Some(path_flag(&mut it, "serve", "--fault-plan")?);
                    }
                    "--journal" => journal = Some(path_flag(&mut it, "serve", "--journal")?),
                    "--resume" => resume = true,
                    "--fsync-every" => {
                        fsync_every = positive_flag(&mut it, "serve", "--fsync-every")?;
                    }
                    "--idle-reap" => idle_reap = Some(positive_u64(&mut it, "--idle-reap")?),
                    "--queue-watermark" => {
                        queue_watermark =
                            Some(positive_flag(&mut it, "serve", "--queue-watermark")?);
                    }
                    "--memo-watermark" => {
                        memo_watermark = Some(positive_u64(&mut it, "--memo-watermark")?);
                    }
                    "--metrics-out" => {
                        metrics_out = Some(path_flag(&mut it, "serve", "--metrics-out")?);
                    }
                    "--trace-out" => {
                        trace_out = Some(path_flag(&mut it, "serve", "--trace-out")?);
                    }
                    other => return Err(format!("serve: unknown flag '{other}'")),
                }
            }
            let chosen =
                usize::from(socket.is_some()) + usize::from(replay.is_some()) + usize::from(stdin);
            if chosen > 1 {
                return Err(
                    "serve: --socket, --replay, and --stdin are mutually exclusive".to_string(),
                );
            }
            if resume && journal.is_none() {
                return Err("serve: --resume requires --journal DIR".to_string());
            }
            Ok(Command::Serve {
                socket,
                replay,
                max_sessions,
                memo_budget,
                node_budget,
                inbox_cap,
                fault_plan,
                journal,
                resume,
                fsync_every,
                idle_reap,
                queue_watermark,
                memo_watermark,
                metrics_out,
                trace_out,
            })
        }
        "help" | "--help" | "-h" => Ok(Command::Help),
        other => Err(format!("unknown command '{other}'")),
    }
}

/// Reads a trace from `path` (`-` = stdin) and parses it, auto-detecting
/// the format: inputs whose first non-whitespace byte is `{` are JSON.
pub fn load_history(path: &str) -> Result<History, String> {
    let raw = if path == "-" {
        let mut s = String::new();
        std::io::stdin()
            .read_to_string(&mut s)
            .map_err(|e| format!("stdin: {e}"))?;
        s
    } else {
        std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?
    };
    parse_trace(&raw)
}

/// Parses trace content with format auto-detection.
pub fn parse_trace(raw: &str) -> Result<History, String> {
    if raw.trim_start().starts_with('{') {
        from_json(raw).map_err(|e| format!("JSON trace: {e}"))
    } else {
        from_text(raw).map_err(|e| format!("text trace: {e}"))
    }
}

/// Installs a process-wide observability sink when any observability
/// output was requested; returns the disabled (no-op) handle otherwise, so
/// unobserved runs carry zero instrumentation cost.
fn obs_for(
    metrics_out: &Option<String>,
    trace_out: &Option<String>,
    progress: bool,
) -> tm_obs::ObsHandle {
    if metrics_out.is_some() || trace_out.is_some() || progress {
        tm_obs::ObsHandle::install()
    } else {
        tm_obs::ObsHandle::disabled()
    }
}

/// Writes the versioned observability artifacts: a `tm-metrics/v1` JSON
/// snapshot and/or a Chrome-trace (Perfetto-loadable) span file.
fn write_artifacts(
    obs: tm_obs::ObsHandle,
    metrics_out: Option<&str>,
    trace_out: Option<&str>,
) -> Result<(), String> {
    if let Some(path) = metrics_out {
        let snap = obs
            .snapshot()
            .ok_or_else(|| "--metrics-out: observability sink missing".to_string())?;
        std::fs::write(path, snap.to_json()).map_err(|e| format!("{path}: {e}"))?;
    }
    if let Some(path) = trace_out {
        let trace = tm_trace::chrome_trace_json(&obs.spans());
        std::fs::write(path, trace).map_err(|e| format!("{path}: {e}"))?;
    }
    Ok(())
}

/// A live single-line progress display on stderr, fed by the observability
/// sink's `search.nodes_live` counter (updated once per kilonode by the
/// search workers). Dropping the guard stops the ticker and clears the
/// line, so the verdict output below is never interleaved with it.
struct Progress {
    stop: std::sync::Arc<std::sync::atomic::AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Progress {
    fn spawn(obs: tm_obs::ObsHandle) -> Progress {
        use std::sync::atomic::{AtomicBool, Ordering};
        let stop = std::sync::Arc::new(AtomicBool::new(false));
        let seen = stop.clone();
        let handle = std::thread::spawn(move || {
            let mut printed = false;
            while !seen.load(Ordering::Relaxed) {
                std::thread::sleep(std::time::Duration::from_millis(100));
                if let Some(snap) = obs.snapshot() {
                    let nodes = snap.counter("search.nodes_live").unwrap_or(0);
                    eprint!("\rsearch: {nodes} nodes explored …");
                    printed = true;
                }
            }
            if printed {
                // Clear the counter line before the verdict is printed.
                eprint!("\r\x1b[2K");
            }
        });
        Progress {
            stop,
            handle: Some(handle),
        }
    }
}

impl Drop for Progress {
    fn drop(&mut self) {
        self.stop.store(true, std::sync::atomic::Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// Executes a parsed command, writing human-readable output to `out`.
///
/// Returns the process exit code (0 ok / property holds, 1 opacity
/// violated, 2 error).
pub fn run(cmd: &Command, out: &mut dyn Write) -> i32 {
    match execute(cmd, out) {
        Ok(code) => code,
        Err(e) => {
            let _ = writeln!(out, "error: {e}");
            2
        }
    }
}

fn execute(cmd: &Command, out: &mut dyn Write) -> Result<i32, String> {
    let specs = SpecRegistry::registers();
    let w = |out: &mut dyn Write, s: String| -> Result<(), String> {
        writeln!(out, "{s}").map_err(|e| e.to_string())
    };
    match cmd {
        Command::Help => {
            w(out, USAGE.to_string())?;
            Ok(0)
        }
        Command::Check {
            file,
            search_jobs,
            memo_cap,
            split_depth,
            split_granularity,
            metrics_out,
            trace_out,
            progress,
        } => {
            let h = load_history(file)?;
            tm_model::check_well_formed(&h).map_err(|e| format!("not well-formed: {e}"))?;
            let obs = obs_for(metrics_out, trace_out, *progress);
            let config = SearchConfig {
                search_jobs: *search_jobs,
                memo_capacity: *memo_cap,
                split_depth: *split_depth,
                split_granularity: *split_granularity,
                obs,
                ..SearchConfig::default()
            };
            let ticker = (*progress && obs.enabled()).then(|| Progress::spawn(obs));
            let report = is_opaque_with(&h, &specs, config).map_err(|e| e.to_string())?;
            drop(ticker);
            write_artifacts(obs, metrics_out.as_deref(), trace_out.as_deref())?;
            w(
                out,
                format!(
                    "history: {} events, {} transactions",
                    h.len(),
                    h.txs().len()
                ),
            )?;
            let parallel_line = |out: &mut dyn Write| -> Result<(), String> {
                if *search_jobs != 1 {
                    w(
                        out,
                        format!(
                            "parallel: {} workers, {} steals, {} splits, {} donated tasks, \
                             {} cancelled",
                            report.stats.workers,
                            report.stats.steals,
                            report.stats.splits,
                            report.stats.donated_tasks,
                            report.stats.cancelled_tasks
                        ),
                    )?;
                }
                Ok(())
            };
            if report.opaque {
                w(out, "verdict: OPAQUE".to_string())?;
                if let Some(witness) = &report.witness {
                    let order: Vec<String> = witness
                        .order
                        .iter()
                        .map(|(t, p)| format!("{t}({p:?})"))
                        .collect();
                    w(out, format!("witness serialization: {}", order.join(" ≪ ")))?;
                }
                w(
                    out,
                    format!("search: {} nodes explored", report.stats.nodes),
                )?;
                parallel_line(out)?;
                Ok(0)
            } else {
                w(out, "verdict: NOT OPAQUE".to_string())?;
                w(
                    out,
                    format!("search: {} nodes explored", report.stats.nodes),
                )?;
                parallel_line(out)?;
                w(
                    out,
                    "hint: run `tmcheck explain` for the violation localization".to_string(),
                )?;
                Ok(1)
            }
        }
        Command::Explain(file) => {
            let h = load_history(file)?;
            tm_model::check_well_formed(&h).map_err(|e| format!("not well-formed: {e}"))?;
            match explain_violation(&h, &specs).map_err(|e| e.to_string())? {
                None => {
                    w(out, "history is opaque — nothing to explain".to_string())?;
                    Ok(0)
                }
                Some(ex) => {
                    w(out, format!("{ex}"))?;
                    Ok(1)
                }
            }
        }
        Command::Criteria(file) => {
            let h = load_history(file)?;
            tm_model::check_well_formed(&h).map_err(|e| format!("not well-formed: {e}"))?;
            let profile = criteria::classify(&h, &specs).map_err(|e| e.to_string())?;
            let si = criteria::snapshot_isolated(&h, &specs)
                .map(|b| if b { "yes" } else { "NO" })
                .unwrap_or("n/a (non-register objects)");
            let yn = |b: bool| if b { "yes" } else { "NO" };
            w(
                out,
                format!(
                    "serializable (global atomicity):  {}",
                    yn(profile.serializable)
                ),
            )?;
            w(
                out,
                format!(
                    "strictly serializable:            {}",
                    yn(profile.strictly_serializable)
                ),
            )?;
            w(
                out,
                format!(
                    "recoverable:                      {}",
                    yn(profile.recoverable)
                ),
            )?;
            w(
                out,
                format!(
                    "avoids cascading aborts:          {}",
                    yn(profile.avoids_cascading_aborts)
                ),
            )?;
            w(
                out,
                format!("strict:                           {}", yn(profile.strict)),
            )?;
            w(
                out,
                format!("rigorous (§3.6):                  {}", yn(profile.rigorous)),
            )?;
            w(out, format!("snapshot-isolated:                {si}"))?;
            w(
                out,
                format!("opaque (Definition 1):            {}", yn(profile.opaque)),
            )?;
            Ok(if profile.opaque { 0 } else { 1 })
        }
        Command::Graph(file) => {
            let h = load_history(file)?;
            tm_model::check_well_formed(&h).map_err(|e| format!("not well-formed: {e}"))?;
            match construct_graph_witness(&h, &specs).map_err(|e| e.to_string())? {
                Some(witness) => {
                    let h0 = nonlocal(&with_initial_tx(&h, &specs));
                    let visible: HashSet<_> = witness.visible.iter().copied().collect();
                    let g = build_opg(&h0, &witness.order, &visible);
                    w(
                        out,
                        "// OPG(nonlocal(H·T0), ≪, V) for the opacity witness".to_string(),
                    )?;
                    w(out, g.to_dot())?;
                    Ok(0)
                }
                None => {
                    // No witness exists: render the graph under the
                    // real-time-compatible identity order with V = all
                    // commit-pending, for inspection of the obstruction.
                    let h0 = nonlocal(&with_initial_tx(&h, &specs));
                    let rt = RealTimeOrder::of(&h0);
                    let mut order = h0.txs();
                    order.sort_by(|&a, &b| {
                        if rt.precedes(a, b) {
                            std::cmp::Ordering::Less
                        } else if rt.precedes(b, a) {
                            std::cmp::Ordering::Greater
                        } else {
                            a.cmp(&b)
                        }
                    });
                    let visible: HashSet<_> = h0.commit_pending_txs().into_iter().collect();
                    let g = build_opg(&h0, &order, &visible);
                    w(
                        out,
                        "// history is NOT opaque: no (≪,V) yields a well-formed acyclic OPG;\n\
                         // shown under the identity order with V = all commit-pending"
                            .to_string(),
                    )?;
                    w(out, g.to_dot())?;
                    Ok(1)
                }
            }
        }
        Command::Convert { file, json } => {
            let h = load_history(file)?;
            let rendered = if *json {
                to_json_pretty(&h)
            } else {
                to_text(&h)
            };
            write!(out, "{rendered}").map_err(|e| e.to_string())?;
            if *json {
                w(out, String::new())?;
            }
            Ok(0)
        }
        Command::List => {
            let reg = tm_stm::TmRegistry::suite();
            let yn = |b: bool| if b { "yes" } else { "no " };
            w(
                out,
                format!(
                    "{:<10} {:>11} {:>10} {:>9} {:>6} {:>6} {:>8} {:>4} {:>8}",
                    "tm",
                    "progressive",
                    "single-ver",
                    "invisible",
                    "opaque",
                    "ser",
                    "clock",
                    "cm",
                    "blocking"
                ),
            )?;
            for spec in reg.specs() {
                let p = spec.properties;
                w(
                    out,
                    format!(
                        "{:<10} {:>11} {:>10} {:>9} {:>6} {:>6} {:>8} {:>4} {:>8}",
                        spec.name,
                        yn(p.progressive),
                        yn(p.single_version),
                        yn(p.invisible_reads),
                        yn(p.opaque_by_design),
                        yn(p.serializable_by_design),
                        if spec.clocked { "any" } else { "-" },
                        if spec.cm_tunable { "any" } else { "-" },
                        yn(spec.blocking),
                    ),
                )?;
            }
            w(
                out,
                "\nclock schemes (clocked TMs): single (GV1 counter), sharded:N \
                 (GV5-style padded array), deferred (GV4 pass-on-failure)\n\
                 spec syntax: <tm>[+<clock>], e.g. tl2+sharded:16, mvstm+deferred"
                    .to_string(),
            )?;
            Ok(0)
        }
        Command::Conformance {
            jobs,
            search_jobs,
            memo_cap,
            split_depth,
            split_granularity,
            tm,
            clock,
            mutants,
            objects,
            metrics_out,
            trace_out,
        } => {
            use tm_harness::{conformance_parallel_with, object_conformance_with};
            let obs = obs_for(metrics_out, trace_out, false);
            let search = SearchConfig {
                search_jobs: *search_jobs,
                memo_capacity: *memo_cap,
                split_depth: *split_depth,
                split_granularity: *split_granularity,
                obs,
                ..SearchConfig::default()
            };
            let reg = tm_stm::TmRegistry::suite();
            // Resolve the sweep into TM specs; every lookup is fallible and
            // the errors carry the registry's menu of valid names.
            let specs_to_run: Vec<String> = match (tm, clock) {
                (Some(spec), None) => vec![spec.clone()],
                (Some(spec), Some(scheme)) => {
                    if spec.contains('+') {
                        return Err(format!(
                            "conformance: clock given twice ('{spec}' and --clock {scheme})"
                        ));
                    }
                    vec![format!("{spec}+{scheme}")]
                }
                (None, Some(scheme)) => reg
                    .specs()
                    .iter()
                    .filter(|s| s.clocked)
                    .map(|s| format!("{}+{scheme}", s.name))
                    .collect(),
                (None, None) => reg.names().iter().map(|n| n.to_string()).collect(),
            };
            type Factory = Box<dyn Fn(usize) -> Box<dyn tm_stm::Stm> + Sync>;
            let mut selection: Vec<(String, tm_stm::StmProperties, Factory)> = Vec::new();
            for spec in specs_to_run {
                let props = reg
                    .parse_spec(&spec)
                    .map_err(|e| format!("conformance: {e}"))?
                    .0
                    .properties;
                let factory: Factory = if obs.enabled() {
                    // Thread the observability handle into every TM the
                    // battery builds, so the STM-layer commit/abort/clock
                    // counters land in the metrics snapshot. The spec was
                    // validated by parse_spec above.
                    let spec = spec.clone();
                    Box::new(move |k: usize| {
                        tm_stm::TmRegistry::suite()
                            .build_with(&spec, &tm_stm::StmConfig::new(k).obs(obs))
                            .unwrap_or_else(|e| panic!("validated spec '{spec}': {e}"))
                    })
                } else {
                    Box::new(
                        reg.factory(&spec)
                            .map_err(|e| format!("conformance: {e}"))?,
                    )
                };
                selection.push((spec, props, factory));
            }
            // Deliberately job-count-free output: `--jobs N` must be
            // byte-identical to `--jobs 1` (deterministic sharded merge).
            let mut all_clean = true;
            let mut failures: Vec<String> = Vec::new();
            if let Some(kinds) = objects {
                // Typed-object battery: rich-semantics probes judged
                // against the objects' own sequential specifications.
                w(out, tm_harness::object_header())?;
                for (label, props, factory) in &selection {
                    let report = object_conformance_with(factory.as_ref(), kinds, *jobs, search);
                    // Well-formedness is unconditional; the full battery is
                    // the contract for opaque-by-design TMs, and committed
                    // transactions must stay serializable wherever the TM
                    // advertises it (the object-level analogue of the
                    // register battery's lost-update gate). SI-STM's
                    // convictions are expected rows, not failures.
                    let ok = report.probes.iter().all(|p| p.well_formed)
                        && (!props.opaque_by_design || report.all_clean())
                        && (!props.serializable_by_design
                            || report.probes.iter().all(|p| p.serializable));
                    if !ok {
                        all_clean = false;
                        failures.extend(
                            report
                                .probes
                                .iter()
                                .flat_map(|p| p.violations.iter().cloned()),
                        );
                    }
                    for probe in &report.probes {
                        w(out, probe.row(label))?;
                    }
                }
                if *mutants {
                    use tm_stm::{MutantStm, Mutation};
                    for mutation in [
                        Mutation::None,
                        Mutation::SkipReadValidation,
                        Mutation::SkipCommitValidation,
                    ] {
                        let factory = move |k: usize| -> Box<dyn tm_stm::Stm> {
                            Box::new(MutantStm::new(k, mutation))
                        };
                        let report = object_conformance_with(&factory, kinds, *jobs, search);
                        for probe in &report.probes {
                            w(out, probe.row(&report.name))?;
                        }
                    }
                }
            } else {
                w(out, tm_harness::conformance_header())?;
                for (label, _props, factory) in &selection {
                    let mut report = conformance_parallel_with(factory.as_ref(), *jobs, search);
                    report.name = label.clone();
                    // Opacity is the contract under test; TMs that advertise
                    // a weaker criterion (sistm, nonopaque) are expected
                    // rows, not failures — only well-formedness and lost
                    // updates are unconditional.
                    if !report.well_formed || !report.no_lost_updates {
                        all_clean = false;
                        failures.extend(report.violations.iter().cloned());
                    }
                    w(out, report.row())?;
                }
                if *mutants {
                    use tm_stm::{MutantStm, Mutation};
                    for mutation in [
                        Mutation::None,
                        Mutation::SkipReadValidation,
                        Mutation::SkipCommitValidation,
                    ] {
                        let factory = move |k: usize| -> Box<dyn tm_stm::Stm> {
                            Box::new(MutantStm::new(k, mutation))
                        };
                        let report = conformance_parallel_with(&factory, *jobs, search);
                        w(out, report.row())?;
                    }
                }
            }
            write_artifacts(obs, metrics_out.as_deref(), trace_out.as_deref())?;
            if all_clean {
                Ok(0)
            } else {
                for f in failures.iter().take(8) {
                    w(out, format!("violation: {f}"))?;
                }
                Ok(1)
            }
        }
        Command::Race {
            tm,
            steps,
            preemptions,
            metrics_out,
            trace_out,
        } => {
            let obs = obs_for(metrics_out, trace_out, false);
            let code = run_race(out, tm.as_deref(), *steps, *preemptions, obs)?;
            write_artifacts(obs, metrics_out.as_deref(), trace_out.as_deref())?;
            Ok(code)
        }
        Command::Serve {
            socket,
            replay,
            max_sessions,
            memo_budget,
            node_budget,
            inbox_cap,
            fault_plan,
            journal,
            resume,
            fsync_every,
            idle_reap,
            queue_watermark,
            memo_watermark,
            metrics_out,
            trace_out,
        } => {
            let obs = obs_for(metrics_out, trace_out, false);
            let plan = match fault_plan {
                Some(arg) => {
                    // A path wins when it exists; otherwise the argument is
                    // an inline `kind@frame[:args],...` (or JSON) spec.
                    let text = match std::fs::read_to_string(arg) {
                        Ok(contents) => contents,
                        Err(_) => arg.clone(),
                    };
                    match tm_serve::FaultPlan::parse(&text) {
                        Ok(plan) => plan,
                        Err(e) => return Err(format!("serve: --fault-plan: {e}")),
                    }
                }
                None => tm_serve::FaultPlan::new(),
            };
            let config = tm_serve::ServeConfig {
                max_sessions: *max_sessions,
                memo_budget_bytes: *memo_budget,
                inbox_capacity: *inbox_cap,
                node_budget: *node_budget,
                fault_plan: plan,
                journal_dir: journal.as_ref().map(std::path::PathBuf::from),
                resume: *resume,
                fsync_every: *fsync_every,
                idle_reap_turns: *idle_reap,
                queue_watermark: *queue_watermark,
                memo_watermark_bytes: *memo_watermark,
                obs,
                ..tm_serve::ServeConfig::default()
            };
            let transport = match (socket, replay) {
                (Some(path), _) => tm_serve::Transport::Socket(path.into()),
                (None, Some(path)) => tm_serve::Transport::Replay(path.into()),
                (None, None) => tm_serve::Transport::Stdin,
            };
            let code = tm_serve::run(transport, config, out);
            write_artifacts(obs, metrics_out.as_deref(), trace_out.as_deref())?;
            Ok(code)
        }
        Command::Generate {
            seed,
            txs,
            objs,
            ops,
            json,
        } => {
            let config = GenConfig {
                txs: *txs,
                objs: *objs,
                max_ops: *ops,
                ..GenConfig::default()
            };
            let h = random_history(&config, *seed);
            let rendered = if *json {
                to_json_pretty(&h)
            } else {
                to_text(&h)
            };
            write!(out, "{rendered}").map_err(|e| e.to_string())?;
            Ok(0)
        }
    }
}

/// The step-level probe programs of the `race` sweep — the same §2 hazard
/// shapes as the conformance battery, minus write skew: `sistm` commits
/// write skew *by design* (a documented anomaly, not a clock-discipline
/// race), so a skew probe would convict a TM that is exactly as weak as it
/// advertises. The mutant self-test supplies the skew program where it
/// belongs.
fn race_probes() -> Vec<(&'static str, tm_harness::Program)> {
    use tm_harness::TxScript;
    vec![
        (
            "reader-vs-writer",
            tm_harness::Program::new(vec![
                TxScript::new().read(0).read(1),
                TxScript::new().write(0, 7).write(1, 7),
            ]),
        ),
        (
            "rmw-vs-rmw",
            tm_harness::Program::new(vec![
                TxScript::new().read(0).write(0, 100),
                TxScript::new().read(0).write(0, 200),
            ]),
        ),
    ]
}

/// Explores every probe for one TM factory, printing a row per probe and
/// the minimized replayable schedule for any conviction. Returns whether
/// every probe came back clean.
fn race_sweep_one(
    out: &mut dyn Write,
    label: &str,
    factory: tm_harness::StmFactory<'_>,
    cfg: &tm_harness::DporConfig,
) -> Result<bool, String> {
    use tm_harness::{committed_serializable, explore, replay_schedule, shrink_schedule};
    let w = |out: &mut dyn Write, s: String| -> Result<(), String> {
        writeln!(out, "{s}").map_err(|e| e.to_string())
    };
    let mut clean = true;
    for (pname, program) in race_probes() {
        let res = explore(factory, &program, cfg);
        let complete = if res.truncated {
            "truncated"
        } else {
            "complete"
        };
        if res.violations.is_empty() {
            w(
                out,
                format!(
                    "{label:<28} {pname:<18} {:>13} {complete:>9}  clean",
                    res.interleavings
                ),
            )?;
            continue;
        }
        clean = false;
        let conviction = &res.violations[0];
        w(
            out,
            format!(
                "{label:<28} {pname:<18} {:>13} {complete:>9}  CONVICTED: {}",
                res.interleavings, conviction.kind
            ),
        )?;
        // Minimize towards seriality while the replay still convicts; the
        // printed schedule is the artifact — feeding it back through the
        // stepper reproduces the violation deterministically.
        let violates = |sched: &[usize]| {
            let r = replay_schedule(factory, &program, sched);
            !tm_harness::check_race_trace(&r.trace, program.threads.len()).is_empty()
                || !committed_serializable(factory, &program, &r.outcomes, &r.final_state)
        };
        let minimized = if violates(&conviction.schedule) {
            shrink_schedule(&conviction.schedule, violates)
        } else {
            conviction.schedule.clone()
        };
        let rendered: Vec<String> = minimized.iter().map(usize::to_string).collect();
        w(
            out,
            format!(
                "  minimized schedule (thread per step): {}",
                rendered.join(" ")
            ),
        )?;
    }
    Ok(clean)
}

/// `tmcheck race`: the step-level analysis battery. The observability
/// handle (disabled unless `--metrics-out`/`--trace-out` was given) flows
/// into every TM the battery builds, so STM commit/abort counters land in
/// the metrics snapshot.
fn run_race(
    out: &mut dyn Write,
    tm: Option<&str>,
    steps: usize,
    preemptions: usize,
    obs: tm_obs::ObsHandle,
) -> Result<i32, String> {
    use std::sync::Arc;
    use tm_harness::{DporConfig, SharedStm};
    use tm_stm::trace_cells::StepProbe;
    use tm_stm::StmConfig;
    let w = |out: &mut dyn Write, s: String| -> Result<(), String> {
        writeln!(out, "{s}").map_err(|e| e.to_string())
    };
    let reg = tm_stm::TmRegistry::suite();
    let specs: Vec<String> = match tm {
        Some(s) => vec![s.to_string()],
        None => reg
            .specs()
            .iter()
            .filter(|s| !s.blocking)
            .map(|s| s.name.to_string())
            .collect(),
    };
    w(
        out,
        format!(
            "{:<28} {:<18} {:>13} {:>9}  verdict",
            "tm", "probe", "interleavings", "explored"
        ),
    )?;
    let cfg = DporConfig {
        max_interleavings: steps,
        preemption_bound: Some(preemptions),
        ..DporConfig::default()
    };
    let mut all_clean = true;
    for spec in &specs {
        let (tmspec, scheme) = {
            let (t, scheme) = reg.parse_spec(spec).map_err(|e| format!("race: {e}"))?;
            (*t, scheme)
        };
        if tmspec.blocking {
            return Err(format!(
                "race: '{spec}' is blocking — a transaction would hold the global \
                 lock across yield points; the step-level explorer needs \
                 non-blocking TMs"
            ));
        }
        let factory = move |p: Option<Arc<dyn StepProbe>>| -> SharedStm {
            let cfg = StmConfig::new(2).clock(scheme).recording(false).obs(obs);
            let cfg = match p {
                Some(probe) => cfg.probe(probe),
                None => cfg,
            };
            Arc::from(tmspec.build(&cfg))
        };
        all_clean &= race_sweep_one(out, spec, &factory, &cfg)?;
    }
    // Suite mode doubles as a self-test of the analysis: the two seeded
    // concurrency mutants — invisible to every op-granular sweep — must be
    // convicted at step granularity, each with a replayable schedule. Their
    // programs and preemption bounds are fixed (the smallest known to
    // convict), independent of the sweep knobs.
    let mut mutants_convicted = true;
    if tm.is_none() {
        use tm_harness::TxScript;
        use tm_stm::{MutantStm, Mutation};
        let teeth: [(&str, Mutation, tm_harness::Program, usize); 2] = [
            (
                "mutant:dropped-residue",
                Mutation::DroppedResidue,
                tm_harness::Program::new(vec![
                    TxScript::new().write(0, 1),
                    TxScript::new().write(1, 2),
                ]),
                2,
            ),
            (
                "mutant:unlicensed-fast-path",
                Mutation::UnlicensedFastPath,
                tm_harness::Program::new(vec![
                    TxScript::new().read(0).write(1, 5),
                    TxScript::new().read(1).write(0, 7),
                    TxScript::new().write(2, 1),
                ]),
                3,
            ),
        ];
        for (label, mutation, program, bound) in teeth {
            let k = program.required_k();
            let factory = move |p: Option<Arc<dyn StepProbe>>| -> SharedStm {
                let cfg = StmConfig::new(k).recording(false).obs(obs);
                let cfg = match p {
                    Some(probe) => cfg.probe(probe),
                    None => cfg,
                };
                Arc::new(MutantStm::with_config(&cfg, mutation))
            };
            let mcfg = DporConfig {
                max_interleavings: steps.max(200_000),
                preemption_bound: Some(bound),
                stop_on_violation: true,
                ..DporConfig::default()
            };
            let res = tm_harness::explore(&factory, &program, &mcfg);
            if let Some(conviction) = res.violations.first() {
                w(
                    out,
                    format!(
                        "{label:<28} {:<18} {:>13} {:>9}  CONVICTED (expected): {}",
                        "seeded-hazard",
                        res.interleavings,
                        if res.truncated {
                            "truncated"
                        } else {
                            "complete"
                        },
                        conviction.kind
                    ),
                )?;
                let violates = |sched: &[usize]| {
                    let r = tm_harness::replay_schedule(&factory, &program, sched);
                    !tm_harness::check_race_trace(&r.trace, program.threads.len()).is_empty()
                        || !tm_harness::committed_serializable(
                            &factory,
                            &program,
                            &r.outcomes,
                            &r.final_state,
                        )
                };
                let minimized = if violates(&conviction.schedule) {
                    tm_harness::shrink_schedule(&conviction.schedule, violates)
                } else {
                    conviction.schedule.clone()
                };
                let rendered: Vec<String> = minimized.iter().map(usize::to_string).collect();
                w(
                    out,
                    format!(
                        "  minimized schedule (thread per step): {}",
                        rendered.join(" ")
                    ),
                )?;
            } else {
                mutants_convicted = false;
                w(
                    out,
                    format!(
                        "{label:<28} {:<18} {:>13} {:>9}  ESCAPED — the analysis lost its teeth",
                        "seeded-hazard",
                        res.interleavings,
                        if res.truncated {
                            "truncated"
                        } else {
                            "complete"
                        },
                    ),
                )?;
            }
        }
    }
    Ok(if all_clean && mutants_convicted { 0 } else { 1 })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_str(cmd: &Command) -> (i32, String) {
        let mut buf = Vec::new();
        let code = run(cmd, &mut buf);
        (code, String::from_utf8(buf).unwrap())
    }

    /// A `check` command with default search knobs.
    fn check_cmd(file: String) -> Command {
        Command::Check {
            file,
            search_jobs: 1,
            memo_cap: None,
            split_depth: 8,
            split_granularity: 1,
            metrics_out: None,
            trace_out: None,
            progress: false,
        }
    }

    fn fixture(name: &str, content: &str) -> String {
        let path = std::env::temp_dir().join(format!("tmcheck-test-{name}-{}", std::process::id()));
        std::fs::write(&path, content).unwrap();
        path.to_string_lossy().into_owned()
    }

    const OPAQUE_TRACE: &str = "\
inv T1 x write 1\nret T1 x write ok\ntryC T1\nC T1
inv T2 x read\nret T2 x read 1\ntryC T2\nC T2\n";

    const H1_TRACE: &str = "\
inv T1 x write 1\nret T1 x write ok\ntryC T1\nC T1
inv T2 x read\nret T2 x read 1
inv T3 x write 2\nret T3 x write ok
inv T3 y write 2\nret T3 y write ok\ntryC T3\nC T3
inv T2 y read\nret T2 y read 2\ntryC T2\nA T2\n";

    #[test]
    fn parse_args_all_commands() {
        let a = |s: &str| -> Vec<String> { s.split(' ').map(String::from).collect() };
        assert_eq!(parse_args(&a("check f")), Ok(check_cmd("f".into())));
        assert_eq!(
            parse_args(&a("check f --search-jobs 8 --memo-cap 4096")),
            Ok(Command::Check {
                file: "f".into(),
                search_jobs: 8,
                memo_cap: Some(4096),
                split_depth: 8,
                split_granularity: 1,
                metrics_out: None,
                trace_out: None,
                progress: false,
            })
        );
        assert_eq!(
            parse_args(&a("explain f")),
            Ok(Command::Explain("f".into()))
        );
        assert_eq!(
            parse_args(&a("criteria f")),
            Ok(Command::Criteria("f".into()))
        );
        assert_eq!(parse_args(&a("graph f")), Ok(Command::Graph("f".into())));
        assert_eq!(
            parse_args(&a("convert f --json")),
            Ok(Command::Convert {
                file: "f".into(),
                json: true
            })
        );
        assert_eq!(
            parse_args(&a("generate --seed 7 --txs 3 --json")),
            Ok(Command::Generate {
                seed: 7,
                txs: 3,
                objs: 3,
                ops: 4,
                json: true
            })
        );
        assert_eq!(parse_args(&a("help")), Ok(Command::Help));
        assert_eq!(
            parse_args(&a("conformance")),
            Ok(Command::Conformance {
                jobs: 1,
                search_jobs: 1,
                memo_cap: None,
                split_depth: 8,
                split_granularity: 1,
                tm: None,
                clock: None,
                mutants: false,
                objects: None,
                metrics_out: None,
                trace_out: None
            })
        );
        assert_eq!(
            parse_args(&a("conformance --jobs 4 --tm tl2 --mutants")),
            Ok(Command::Conformance {
                jobs: 4,
                search_jobs: 1,
                memo_cap: None,
                split_depth: 8,
                split_granularity: 1,
                tm: Some("tl2".into()),
                clock: None,
                mutants: true,
                objects: None,
                metrics_out: None,
                trace_out: None
            })
        );
        assert_eq!(
            parse_args(&a("conformance --objects all")),
            Ok(Command::Conformance {
                jobs: 1,
                search_jobs: 1,
                memo_cap: None,
                split_depth: 8,
                split_granularity: 1,
                tm: None,
                clock: None,
                mutants: false,
                objects: Some(ObjectKind::ALL.to_vec()),
                metrics_out: None,
                trace_out: None
            })
        );
        assert_eq!(
            parse_args(&a("conformance --objects set,queue --tm sistm")),
            Ok(Command::Conformance {
                jobs: 1,
                search_jobs: 1,
                memo_cap: None,
                split_depth: 8,
                split_granularity: 1,
                tm: Some("sistm".into()),
                clock: None,
                mutants: false,
                objects: Some(vec![ObjectKind::Queue, ObjectKind::Set]),
                metrics_out: None,
                trace_out: None
            })
        );
        assert!(parse_args(&a("conformance --jobs 0")).is_err());
        assert!(parse_args(&a("conformance --jobs x")).is_err());
        assert!(parse_args(&a("conformance --bogus")).is_err());
        assert!(parse_args(&a("conformance --objects")).is_err());
        assert!(parse_args(&a("conformance --objects bogus")).is_err());
        assert!(parse_args(&a("bogus")).is_err());
        assert!(parse_args(&a("convert f")).is_err());
        assert!(parse_args(&[]).is_err());
    }

    #[test]
    fn numeric_flags_are_validated_with_friendly_errors() {
        let a = |s: &str| -> Vec<String> { s.split(' ').map(String::from).collect() };
        for (args, needle) in [
            ("generate --txs 0", "--txs must be ≥ 1"),
            ("generate --objs 0", "--objs must be ≥ 1"),
            ("generate --ops 0", "--ops must be ≥ 1"),
            ("generate --txs x", "--txs needs a number"),
            ("generate --seed", "--seed needs a number"),
            ("conformance --jobs 0", "--jobs needs a number ≥ 1"),
            ("conformance --jobs -3", "--jobs needs a number ≥ 1"),
            (
                "conformance --search-jobs x",
                "--search-jobs needs a number ≥ 0 (0 = auto)",
            ),
            ("conformance --memo-cap 0", "--memo-cap needs a number ≥ 1"),
            ("conformance --memo-cap", "--memo-cap needs a number ≥ 1"),
            (
                "check f --search-jobs -2",
                "--search-jobs needs a number ≥ 0 (0 = auto)",
            ),
            (
                "check f --search-jobs",
                "--search-jobs needs a number ≥ 0 (0 = auto)",
            ),
            ("check f --memo-cap -1", "--memo-cap needs a number ≥ 1"),
            (
                "check f --split-depth x",
                "--split-depth needs a number ≥ 0 (0 = disabled)",
            ),
            (
                "conformance --split-granularity 0",
                "--split-granularity needs a number ≥ 1",
            ),
        ] {
            let err = parse_args(&a(args)).unwrap_err();
            assert!(err.contains(needle), "{args}: {err}");
        }
        // Boundary values stay accepted; --search-jobs 0 now means "auto".
        assert!(parse_args(&a("generate --txs 1 --objs 1 --ops 1 --seed 0")).is_ok());
        assert!(parse_args(&a("check f --search-jobs 1 --memo-cap 1")).is_ok());
        assert!(parse_args(&a("conformance --search-jobs 1 --memo-cap 1")).is_ok());
        assert!(parse_args(&a(
            "check f --search-jobs 0 --split-depth 0 --split-granularity 1"
        ))
        .is_ok());
        assert!(parse_args(&a("conformance --search-jobs 0 --split-depth 16")).is_ok());
    }

    #[test]
    fn check_verdict_is_invariant_under_search_knobs() {
        // The parallel, bounded search must not change any verdict the CLI
        // reports — same exit code and same OPAQUE/NOT OPAQUE line.
        for (trace, expected) in [(OPAQUE_TRACE, 0), (H1_TRACE, 1)] {
            let f = fixture("knobs", trace);
            let (code, _out) = run_str(&check_cmd(f.clone()));
            assert_eq!(code, expected);
            let (code_p, out_p) = run_str(&Command::Check {
                file: f,
                search_jobs: 4,
                memo_cap: Some(8),
                split_depth: 8,
                split_granularity: 1,
                metrics_out: None,
                trace_out: None,
                progress: false,
            });
            assert_eq!(code_p, expected, "{out_p}");
        }
    }

    #[test]
    fn parallel_check_surfaces_split_counters() {
        // With more than one search job the check report must expose the
        // work-stealing telemetry, including the new split counters.
        let f = fixture("split-counters", OPAQUE_TRACE);
        let (code, out) = run_str(&Command::Check {
            file: f,
            search_jobs: 4,
            memo_cap: None,
            split_depth: 8,
            split_granularity: 1,
            metrics_out: None,
            trace_out: None,
            progress: false,
        });
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("workers,"), "{out}");
        assert!(!out.contains(" 0 workers"), "{out}");
        assert!(out.contains("splits"), "{out}");
        assert!(out.contains("donated tasks"), "{out}");
        // The sequential engine stays quiet about parallel telemetry.
        let f = fixture("split-counters-seq", OPAQUE_TRACE);
        let (code, out) = run_str(&check_cmd(f));
        assert_eq!(code, 0, "{out}");
        assert!(!out.contains("splits"), "{out}");
    }

    #[test]
    fn conformance_output_is_invariant_under_search_knobs() {
        let cmd = |search_jobs, memo_cap, split_depth, split_granularity| Command::Conformance {
            jobs: 1,
            search_jobs,
            memo_cap,
            split_depth,
            split_granularity,
            tm: Some("tl2".into()),
            clock: None,
            mutants: false,
            objects: None,
            metrics_out: None,
            trace_out: None,
        };
        let (code1, baseline) = run_str(&cmd(1, None, 8, 1));
        assert_eq!(code1, 0, "{baseline}");
        // Parallelism, bounded memo, and the splitting discipline (every
        // split_depth/split_granularity corner incl. disabled and auto
        // jobs) may only change speed, never a byte of the battery.
        for (sj, cap, sd, sg) in [
            (2, None, 8, 1),
            (1, Some(32), 8, 1),
            (3, Some(8), 8, 1),
            (4, None, 0, 1),
            (4, None, 1, 1),
            (4, None, 64, 3),
            (0, Some(16), 2, 2),
        ] {
            let (code, out) = run_str(&cmd(sj, cap, sd, sg));
            assert_eq!(code, 0, "{out}");
            assert_eq!(
                out, baseline,
                "search-jobs={sj} memo-cap={cap:?} split-depth={sd} \
                 split-granularity={sg} changed the battery"
            );
        }
    }

    #[test]
    fn check_opaque_trace_exits_zero() {
        let f = fixture("ok", OPAQUE_TRACE);
        let (code, output) = run_str(&check_cmd(f));
        assert_eq!(code, 0, "{output}");
        assert!(output.contains("OPAQUE"));
        assert!(output.contains("witness serialization"));
    }

    #[test]
    fn check_h1_exits_one() {
        let f = fixture("h1", H1_TRACE);
        let (code, output) = run_str(&check_cmd(f));
        assert_eq!(code, 1, "{output}");
        assert!(output.contains("NOT OPAQUE"));
    }

    #[test]
    fn explain_localizes_h1() {
        let f = fixture("h1e", H1_TRACE);
        let (code, output) = run_str(&Command::Explain(f));
        assert_eq!(code, 1);
        // The fatal event is T2's read of y returning 2.
        assert!(output.contains("ret2(y,read)→2"), "{output}");
    }

    #[test]
    fn criteria_table_shows_the_separation() {
        let f = fixture("h1c", H1_TRACE);
        let (code, output) = run_str(&Command::Criteria(f));
        assert_eq!(code, 1);
        assert!(
            output.contains("serializable (global atomicity):  yes"),
            "{output}"
        );
        assert!(
            output.contains("opaque (Definition 1):            NO"),
            "{output}"
        );
    }

    #[test]
    fn graph_emits_dot() {
        let f = fixture("g", OPAQUE_TRACE);
        let (code, output) = run_str(&Command::Graph(f));
        assert_eq!(code, 0, "{output}");
        assert!(output.contains("digraph"), "{output}");
        let f = fixture("g1", H1_TRACE);
        let (code, output) = run_str(&Command::Graph(f));
        assert_eq!(code, 1);
        assert!(output.contains("NOT opaque"), "{output}");
        assert!(output.contains("digraph"), "{output}");
    }

    #[test]
    fn convert_roundtrips_between_formats() {
        let f = fixture("conv", OPAQUE_TRACE);
        let (code, json) = run_str(&Command::Convert {
            file: f,
            json: true,
        });
        assert_eq!(code, 0);
        let f2 = fixture("conv2", &json);
        let (code, text) = run_str(&Command::Convert {
            file: f2,
            json: false,
        });
        assert_eq!(code, 0);
        assert_eq!(
            parse_trace(&text).unwrap().events(),
            parse_trace(OPAQUE_TRACE).unwrap().events()
        );
    }

    #[test]
    fn generate_emits_parsable_wellformed_history() {
        let (code, text) = run_str(&Command::Generate {
            seed: 11,
            txs: 4,
            objs: 3,
            ops: 4,
            json: false,
        });
        assert_eq!(code, 0);
        let h = parse_trace(&text).unwrap();
        assert!(tm_model::is_well_formed(&h));
        let (code, json) = run_str(&Command::Generate {
            seed: 11,
            txs: 4,
            objs: 3,
            ops: 4,
            json: true,
        });
        assert_eq!(code, 0);
        assert_eq!(parse_trace(&json).unwrap().events(), h.events());
    }

    #[test]
    fn conformance_output_is_identical_across_job_counts() {
        // The acceptance contract of the parallel pipeline: sharding the
        // sweep across 4 workers is invisible in the rendered battery.
        let (code1, seq) = run_str(&Command::Conformance {
            jobs: 1,
            search_jobs: 1,
            memo_cap: None,
            split_depth: 8,
            split_granularity: 1,
            tm: None,
            clock: None,
            mutants: false,
            objects: None,
            metrics_out: None,
            trace_out: None,
        });
        let (code4, par) = run_str(&Command::Conformance {
            jobs: 4,
            search_jobs: 1,
            memo_cap: None,
            split_depth: 8,
            split_granularity: 1,
            tm: None,
            clock: None,
            mutants: false,
            objects: None,
            metrics_out: None,
            trace_out: None,
        });
        assert_eq!(code1, 0, "{seq}");
        assert_eq!(code4, 0, "{par}");
        assert_eq!(seq, par, "jobs=4 output diverged from jobs=1");
        assert!(seq.contains("tl2"));
        assert!(seq.contains("glock"));
    }

    #[test]
    fn conformance_single_tm_and_unknown_tm() {
        let (code, out) = run_str(&Command::Conformance {
            jobs: 2,
            search_jobs: 1,
            memo_cap: None,
            split_depth: 8,
            split_granularity: 1,
            tm: Some("tl2".into()),
            clock: None,
            mutants: false,
            objects: None,
            metrics_out: None,
            trace_out: None,
        });
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("tl2"));
        assert!(!out.contains("glock"));
        let (code, out) = run_str(&Command::Conformance {
            jobs: 1,
            search_jobs: 1,
            memo_cap: None,
            split_depth: 8,
            split_granularity: 1,
            tm: Some("nonesuch".into()),
            clock: None,
            mutants: false,
            objects: None,
            metrics_out: None,
            trace_out: None,
        });
        assert_eq!(code, 2);
        assert!(out.contains("unknown TM"), "{out}");
    }

    #[test]
    fn conformance_objects_sweeps_rich_probes() {
        // The SI conviction is visible from the CLI: the set write-skew row
        // shows NO for opacity/serializability, yet sistm is an expected
        // row, not a battery failure — exit code stays 0.
        let (code, out) = run_str(&Command::Conformance {
            jobs: 2,
            search_jobs: 1,
            memo_cap: None,
            split_depth: 8,
            split_granularity: 1,
            tm: Some("sistm".into()),
            clock: None,
            mutants: false,
            objects: Some(vec![ObjectKind::Set]),
            metrics_out: None,
            trace_out: None,
        });
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("set-write-skew"), "{out}");
        let skew_row = out
            .lines()
            .find(|l| l.contains("set-write-skew"))
            .expect("row present");
        assert!(skew_row.contains("NO"), "{skew_row}");
        // An opaque TM passes the same probe.
        let (code, out) = run_str(&Command::Conformance {
            jobs: 1,
            search_jobs: 1,
            memo_cap: None,
            split_depth: 8,
            split_granularity: 1,
            tm: Some("tl2".into()),
            clock: None,
            mutants: false,
            objects: Some(vec![ObjectKind::Set, ObjectKind::Queue]),
            metrics_out: None,
            trace_out: None,
        });
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("queue-producer-consumer"), "{out}");
        assert!(
            !out.lines().any(|l| l.contains("tl2") && l.contains("NO")),
            "{out}"
        );
    }

    #[test]
    fn conformance_objects_output_is_identical_across_job_counts() {
        let cmd = |jobs| Command::Conformance {
            jobs,
            search_jobs: 1,
            memo_cap: None,
            split_depth: 8,
            split_granularity: 1,
            tm: Some("tl2".into()),
            clock: None,
            mutants: false,
            objects: Some(vec![ObjectKind::Counter, ObjectKind::Set]),
            metrics_out: None,
            trace_out: None,
        };
        let (code1, seq) = run_str(&cmd(1));
        let (code3, par) = run_str(&cmd(3));
        assert_eq!(code1, 0, "{seq}");
        assert_eq!(code3, 0, "{par}");
        assert_eq!(seq, par, "jobs=3 object battery diverged from jobs=1");
    }

    #[test]
    fn list_renders_the_registry() {
        let (code, out) = run_str(&Command::List);
        assert_eq!(code, 0);
        for name in tm_stm::TmRegistry::suite().names() {
            assert!(out.contains(name), "{out}");
        }
        assert!(out.contains("sharded:N"), "{out}");
        assert!(out.contains("tl2+sharded:16"), "{out}");
    }

    #[test]
    fn conformance_clock_flag_sweeps_the_clocked_tms() {
        let (code, out) = run_str(&Command::Conformance {
            jobs: 2,
            search_jobs: 1,
            memo_cap: None,
            split_depth: 8,
            split_granularity: 1,
            tm: None,
            clock: Some(tm_stm::ClockScheme::Sharded(4)),
            mutants: false,
            objects: None,
            metrics_out: None,
            trace_out: None,
        });
        assert_eq!(code, 0, "{out}");
        for row in ["tl2+sharded:4", "mvstm+sharded:4", "sistm+sharded:4"] {
            assert!(out.contains(row), "{out}");
        }
        assert!(
            !out.contains("dstm"),
            "clockless TMs must be skipped: {out}"
        );
    }

    #[test]
    fn conformance_tm_accepts_full_specs() {
        let (code, out) = run_str(&Command::Conformance {
            jobs: 1,
            search_jobs: 1,
            memo_cap: None,
            split_depth: 8,
            split_granularity: 1,
            tm: Some("tl2+deferred".into()),
            clock: None,
            mutants: false,
            objects: None,
            metrics_out: None,
            trace_out: None,
        });
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("tl2+deferred"), "{out}");
    }

    #[test]
    fn conformance_clock_errors_are_friendly() {
        // Clock scheme on a clockless TM.
        let (code, out) = run_str(&Command::Conformance {
            jobs: 1,
            search_jobs: 1,
            memo_cap: None,
            split_depth: 8,
            split_granularity: 1,
            tm: Some("dstm".into()),
            clock: Some(tm_stm::ClockScheme::Deferred),
            mutants: false,
            objects: None,
            metrics_out: None,
            trace_out: None,
        });
        assert_eq!(code, 2);
        assert!(out.contains("no global clock"), "{out}");
        // Clock given twice.
        let (code, out) = run_str(&Command::Conformance {
            jobs: 1,
            search_jobs: 1,
            memo_cap: None,
            split_depth: 8,
            split_granularity: 1,
            tm: Some("tl2+sharded:2".into()),
            clock: Some(tm_stm::ClockScheme::Deferred),
            mutants: false,
            objects: None,
            metrics_out: None,
            trace_out: None,
        });
        assert_eq!(code, 2);
        assert!(out.contains("clock given twice"), "{out}");
        // Unparsable scheme at parse_args level.
        let a = |s: &str| -> Vec<String> { s.split(' ').map(String::from).collect() };
        assert!(parse_args(&a("conformance --clock gv9"))
            .unwrap_err()
            .contains("unknown clock scheme"));
        assert!(parse_args(&a("conformance --clock"))
            .unwrap_err()
            .contains("--clock needs a scheme"));
        assert_eq!(parse_args(&a("list")), Ok(Command::List));
        assert_eq!(
            parse_args(&a("conformance --clock sharded:16 --jobs 2")),
            Ok(Command::Conformance {
                jobs: 2,
                search_jobs: 1,
                memo_cap: None,
                split_depth: 8,
                split_granularity: 1,
                tm: None,
                clock: Some(tm_stm::ClockScheme::Sharded(16)),
                mutants: false,
                objects: None,
                metrics_out: None,
                trace_out: None
            })
        );
    }

    #[test]
    fn conformance_objects_with_clock_scheme() {
        let (code, out) = run_str(&Command::Conformance {
            jobs: 2,
            search_jobs: 1,
            memo_cap: None,
            split_depth: 8,
            split_granularity: 1,
            tm: Some("sistm".into()),
            clock: Some(tm_stm::ClockScheme::Sharded(2)),
            mutants: false,
            objects: Some(vec![ObjectKind::Set]),
            metrics_out: None,
            trace_out: None,
        });
        assert_eq!(code, 0, "{out}");
        let skew_row = out
            .lines()
            .find(|l| l.contains("set-write-skew"))
            .expect("row present");
        assert!(skew_row.contains("sistm+sharded:2"), "{skew_row}");
        assert!(
            skew_row.contains("NO"),
            "conviction must survive: {skew_row}"
        );
    }

    #[test]
    fn race_flags_parse_with_friendly_errors() {
        let a = |s: &str| -> Vec<String> { s.split(' ').map(String::from).collect() };
        assert_eq!(
            parse_args(&a("race")),
            Ok(Command::Race {
                tm: None,
                steps: 200_000,
                preemptions: 2,
                metrics_out: None,
                trace_out: None
            })
        );
        assert_eq!(
            parse_args(&a("race --tm tl2+deferred --steps 500 --preemptions 0")),
            Ok(Command::Race {
                tm: Some("tl2+deferred".into()),
                steps: 500,
                preemptions: 0,
                metrics_out: None,
                trace_out: None
            })
        );
        for (args, needle) in [
            ("race --steps 0", "--steps needs a number ≥ 1"),
            ("race --steps x", "--steps needs a number ≥ 1"),
            ("race --steps", "--steps needs a number ≥ 1"),
            ("race --preemptions x", "--preemptions needs a number ≥ 0"),
            ("race --preemptions", "--preemptions needs a number ≥ 0"),
            ("race --tm", "--tm needs a name"),
            ("race --bogus", "unknown flag"),
        ] {
            let err = parse_args(&a(args)).unwrap_err();
            assert!(err.contains(needle), "{args}: {err}");
        }
    }

    #[test]
    fn race_acquits_a_single_real_tm() {
        let (code, out) = run_str(&Command::Race {
            tm: Some("tl2".into()),
            steps: 2_000,
            preemptions: 2,
            metrics_out: None,
            trace_out: None,
        });
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("reader-vs-writer"), "{out}");
        assert!(out.contains("rmw-vs-rmw"), "{out}");
        assert!(out.contains("clean"), "{out}");
        assert!(!out.contains("CONVICTED"), "{out}");
        // Single-TM mode has no mutant self-test rows.
        assert!(!out.contains("mutant:"), "{out}");
    }

    #[test]
    fn race_rejects_blocking_and_unknown_tms() {
        let (code, out) = run_str(&Command::Race {
            tm: Some("glock".into()),
            steps: 100,
            preemptions: 1,
            metrics_out: None,
            trace_out: None,
        });
        assert_eq!(code, 2, "{out}");
        assert!(out.contains("blocking"), "{out}");
        let (code, out) = run_str(&Command::Race {
            tm: Some("nonesuch".into()),
            steps: 100,
            preemptions: 1,
            metrics_out: None,
            trace_out: None,
        });
        assert_eq!(code, 2, "{out}");
        assert!(out.contains("unknown TM"), "{out}");
    }

    #[test]
    fn race_suite_convicts_the_mutants_and_acquits_everyone_else() {
        // The full battery: every non-blocking TM clean, both seeded
        // concurrency mutants convicted with a printed schedule artifact.
        let (code, out) = run_str(&Command::Race {
            tm: None,
            steps: 200_000,
            preemptions: 2,
            metrics_out: None,
            trace_out: None,
        });
        assert_eq!(code, 0, "{out}");
        for name in ["tl2", "dstm", "sistm", "nonopaque", "tpl"] {
            assert!(out.contains(name), "{out}");
        }
        assert!(!out.contains("glock"), "blocking TM must be skipped: {out}");
        assert!(out.contains("mutant:dropped-residue"), "{out}");
        assert!(out.contains("mutant:unlicensed-fast-path"), "{out}");
        assert_eq!(out.matches("CONVICTED (expected)").count(), 2, "{out}");
        assert_eq!(out.matches("minimized schedule").count(), 2, "{out}");
        assert!(!out.contains("ESCAPED"), "{out}");
    }

    /// A `check` command with observability artifacts requested.
    fn check_with_artifacts(file: String, metrics: &str, trace: &str) -> Command {
        Command::Check {
            file,
            search_jobs: 1,
            memo_cap: None,
            split_depth: 8,
            split_granularity: 1,
            metrics_out: Some(metrics.to_string()),
            trace_out: Some(trace.to_string()),
            progress: false,
        }
    }

    fn artifact_path(name: &str) -> String {
        std::env::temp_dir()
            .join(format!("tmcheck-art-{name}-{}", std::process::id()))
            .to_string_lossy()
            .into_owned()
    }

    #[test]
    fn observability_flags_parse_with_friendly_errors() {
        let a = |s: &str| -> Vec<String> { s.split(' ').map(String::from).collect() };
        assert_eq!(
            parse_args(&a(
                "check f --progress --metrics-out m.json --trace-out t.json"
            )),
            Ok(Command::Check {
                file: "f".into(),
                search_jobs: 1,
                memo_cap: None,
                split_depth: 8,
                split_granularity: 1,
                metrics_out: Some("m.json".into()),
                trace_out: Some("t.json".into()),
                progress: true,
            })
        );
        for (args, needle) in [
            ("check f --metrics-out", "--metrics-out needs a file path"),
            ("check f --trace-out", "--trace-out needs a file path"),
            (
                "conformance --metrics-out",
                "--metrics-out needs a file path",
            ),
            ("race --trace-out", "--trace-out needs a file path"),
        ] {
            let err = parse_args(&a(args)).unwrap_err();
            assert!(err.contains(needle), "{args}: {err}");
        }
        assert!(parse_args(&a("conformance --metrics-out m --trace-out t")).is_ok());
        assert!(parse_args(&a("race --metrics-out m --trace-out t")).is_ok());
        // --progress is check-only.
        assert!(parse_args(&a("conformance --progress")).is_err());
    }

    #[test]
    fn check_writes_versioned_metrics_and_trace_artifacts() {
        let f = fixture("artifacts", OPAQUE_TRACE);
        let metrics = artifact_path("check-metrics");
        let trace = artifact_path("check-trace");
        // Observability must not change a byte of the verdict output.
        let (code_bare, bare) = run_str(&check_cmd(f.clone()));
        let (code, observed) = run_str(&check_with_artifacts(f, &metrics, &trace));
        assert_eq!(code, code_bare);
        assert_eq!(observed, bare, "observability changed the verdict output");
        let m = std::fs::read_to_string(&metrics).unwrap();
        assert!(m.contains("\"schema\": \"tm-metrics/v1\""), "{m}");
        assert!(m.contains("\"search.nodes\""), "{m}");
        assert!(m.contains("\"check.verdict_ns\""), "{m}");
        assert!(m.contains("\"search.workers\""), "{m}");
        let t = std::fs::read_to_string(&trace).unwrap();
        assert!(t.contains("\"schemaVersion\": 1"), "{t}");
        assert!(t.contains("\"traceEvents\""), "{t}");
        assert!(
            t.contains("\"check\""),
            "the check span must be present: {t}"
        );
        let _ = std::fs::remove_file(&metrics);
        let _ = std::fs::remove_file(&trace);
    }

    #[test]
    fn auto_search_jobs_reports_the_effective_worker_count() {
        // `--search-jobs 0` resolves to the hardware parallelism; the
        // parallel line and the metrics snapshot must both report the
        // resolved count, never the literal 0.
        let f = fixture("auto-workers", OPAQUE_TRACE);
        let metrics = artifact_path("auto-workers-metrics");
        let (code, out) = run_str(&Command::Check {
            file: f,
            search_jobs: 0,
            memo_cap: None,
            split_depth: 8,
            split_granularity: 1,
            metrics_out: Some(metrics.clone()),
            trace_out: None,
            progress: false,
        });
        assert_eq!(code, 0, "{out}");
        let line = out
            .lines()
            .find(|l| l.starts_with("parallel:"))
            .expect("parallel line present under auto jobs");
        assert!(!line.contains(" 0 workers"), "{line}");
        let workers: u64 = line
            .trim_start_matches("parallel: ")
            .split(' ')
            .next()
            .and_then(|n| n.parse().ok())
            .expect("leading worker count");
        assert!(workers >= 1, "{line}");
        let m = std::fs::read_to_string(&metrics).unwrap();
        assert!(
            m.contains(&format!("\"search.workers\": {workers}")),
            "snapshot must record the same effective count: {m}"
        );
        let _ = std::fs::remove_file(&metrics);
    }

    #[test]
    fn conformance_metrics_cover_search_and_stm_layers() {
        let metrics = artifact_path("conf-metrics");
        let trace = artifact_path("conf-trace");
        let cmd = |m: Option<String>, t: Option<String>| Command::Conformance {
            jobs: 1,
            search_jobs: 1,
            memo_cap: None,
            split_depth: 8,
            split_granularity: 1,
            tm: Some("tl2".into()),
            clock: None,
            mutants: false,
            objects: None,
            metrics_out: m,
            trace_out: t,
        };
        let (code_bare, bare) = run_str(&cmd(None, None));
        let (code, observed) = run_str(&cmd(Some(metrics.clone()), Some(trace.clone())));
        assert_eq!(code, code_bare);
        assert_eq!(observed, bare, "observability changed the battery output");
        let m = std::fs::read_to_string(&metrics).unwrap();
        for counter in [
            "\"search.checks\"",
            "\"search.nodes\"",
            "\"memo.probes\"",
            "\"stm.commits\"",
            "\"stm.clock.ticks\"",
        ] {
            assert!(m.contains(counter), "missing {counter}: {m}");
        }
        assert!(std::fs::read_to_string(&trace)
            .unwrap()
            .contains("\"traceEvents\""));
        let _ = std::fs::remove_file(&metrics);
        let _ = std::fs::remove_file(&trace);
    }

    #[test]
    fn conformance_monotone_counters_agree_across_job_counts() {
        // The observability analogue of the byte-identical-output contract:
        // sharding the sweep across jobs may only change timing, never a
        // monotone counter. Counters serialize from a BTreeMap, so the
        // whole section compares as a string.
        let counters_for = |jobs: usize, tag: &str| {
            let metrics = artifact_path(tag);
            let (code, out) = run_str(&Command::Conformance {
                jobs,
                search_jobs: 1,
                memo_cap: None,
                split_depth: 8,
                split_granularity: 1,
                tm: Some("tl2".into()),
                clock: None,
                mutants: false,
                objects: None,
                metrics_out: Some(metrics.clone()),
                trace_out: None,
            });
            assert_eq!(code, 0, "{out}");
            let m = std::fs::read_to_string(&metrics).unwrap();
            let _ = std::fs::remove_file(&metrics);
            let start = m.find("\"counters\"").expect("counters section");
            let end = m.find("\"gauges\"").expect("gauges section");
            m[start..end].to_string()
        };
        let seq = counters_for(1, "jobs1-metrics");
        let par = counters_for(3, "jobs3-metrics");
        assert_eq!(seq, par, "jobs=3 counters diverged from jobs=1");
    }

    #[test]
    fn race_writes_observability_artifacts() {
        let metrics = artifact_path("race-metrics");
        let (code, out) = run_str(&Command::Race {
            tm: Some("tl2".into()),
            steps: 2_000,
            preemptions: 1,
            metrics_out: Some(metrics.clone()),
            trace_out: None,
        });
        assert_eq!(code, 0, "{out}");
        let m = std::fs::read_to_string(&metrics).unwrap();
        assert!(m.contains("\"schema\": \"tm-metrics/v1\""), "{m}");
        assert!(m.contains("\"stm.commits\""), "{m}");
        let _ = std::fs::remove_file(&metrics);
    }

    #[test]
    fn missing_file_is_a_usage_error() {
        let (code, output) = run_str(&check_cmd("/nonexistent/trace".into()));
        assert_eq!(code, 2);
        assert!(output.contains("error:"));
    }

    #[test]
    fn ill_formed_trace_is_rejected() {
        // A response without its invocation.
        let f = fixture("wf", "ret T1 x read 0\n");
        let (code, output) = run_str(&check_cmd(f));
        assert_eq!(code, 2);
        assert!(output.contains("not well-formed"), "{output}");
    }

    #[test]
    fn help_prints_usage() {
        let (code, output) = run_str(&Command::Help);
        assert_eq!(code, 0);
        assert!(output.contains("USAGE"));
    }

    /// A `serve` command with default knobs and the given transport flags.
    fn serve_cmd(socket: Option<String>, replay: Option<String>) -> Command {
        Command::Serve {
            socket,
            replay,
            max_sessions: 4096,
            memo_budget: None,
            node_budget: 50_000,
            inbox_cap: 1024,
            fault_plan: None,
            journal: None,
            resume: false,
            fsync_every: 32,
            idle_reap: None,
            queue_watermark: None,
            memo_watermark: None,
            metrics_out: None,
            trace_out: None,
        }
    }

    #[test]
    fn serve_flags_parse_with_friendly_errors() {
        let a = |s: &str| -> Vec<String> { s.split(' ').map(String::from).collect() };
        assert_eq!(parse_args(&a("serve")), Ok(serve_cmd(None, None)));
        assert_eq!(
            parse_args(&a("serve --stdin")),
            Ok(serve_cmd(None, None)),
            "--stdin is the explicit spelling of the default transport"
        );
        assert_eq!(
            parse_args(&a(
                "serve --replay frames.jsonl --memo-budget 65536 --max-sessions 128"
            )),
            Ok(Command::Serve {
                socket: None,
                replay: Some("frames.jsonl".into()),
                max_sessions: 128,
                memo_budget: Some(65_536),
                node_budget: 50_000,
                inbox_cap: 1024,
                fault_plan: None,
                journal: None,
                resume: false,
                fsync_every: 32,
                idle_reap: None,
                queue_watermark: None,
                memo_watermark: None,
                metrics_out: None,
                trace_out: None,
            })
        );
        assert_eq!(
            parse_args(&a(
                "serve --socket /tmp/tm.sock --node-budget 1000 --inbox-cap 16"
            )),
            Ok(Command::Serve {
                socket: Some("/tmp/tm.sock".into()),
                replay: None,
                max_sessions: 4096,
                memo_budget: None,
                node_budget: 1000,
                inbox_cap: 16,
                fault_plan: None,
                journal: None,
                resume: false,
                fsync_every: 32,
                idle_reap: None,
                queue_watermark: None,
                memo_watermark: None,
                metrics_out: None,
                trace_out: None,
            })
        );
        for (args, needle) in [
            ("serve --memo-budget 0", "--memo-budget needs a number ≥ 1"),
            ("serve --memo-budget x", "--memo-budget needs a number ≥ 1"),
            ("serve --node-budget 0", "--node-budget needs a number ≥ 1"),
            (
                "serve --max-sessions 0",
                "--max-sessions needs a number ≥ 1",
            ),
            ("serve --inbox-cap 0", "--inbox-cap needs a number ≥ 1"),
            ("serve --replay", "--replay needs a file path"),
            ("serve --socket", "--socket needs a file path"),
            ("serve --bogus", "unknown flag"),
            ("serve --socket /tmp/s --replay f", "mutually exclusive"),
            ("serve --stdin --replay f", "mutually exclusive"),
            ("serve --resume", "--resume requires --journal"),
            ("serve --journal", "--journal needs a file path"),
            ("serve --fault-plan", "--fault-plan needs a file path"),
            ("serve --fsync-every 0", "--fsync-every needs a number ≥ 1"),
            ("serve --idle-reap 0", "--idle-reap needs a number ≥ 1"),
            (
                "serve --queue-watermark 0",
                "--queue-watermark needs a number ≥ 1",
            ),
            (
                "serve --memo-watermark 0",
                "--memo-watermark needs a number ≥ 1",
            ),
        ] {
            let err = parse_args(&a(args)).unwrap_err();
            assert!(err.contains(needle), "{args}: {err}");
        }
    }

    #[test]
    fn serve_robustness_flags_parse() {
        let a = |s: &str| -> Vec<String> { s.split(' ').map(String::from).collect() };
        let parsed = parse_args(&a(
            "serve --replay f.jsonl --fault-plan torn@3:10,crash@9 --journal /tmp/j \
             --resume --fsync-every 8 --idle-reap 100 --queue-watermark 32 \
             --memo-watermark 1048576",
        ))
        .unwrap();
        match parsed {
            Command::Serve {
                fault_plan,
                journal,
                resume,
                fsync_every,
                idle_reap,
                queue_watermark,
                memo_watermark,
                ..
            } => {
                assert_eq!(fault_plan.as_deref(), Some("torn@3:10,crash@9"));
                assert_eq!(journal.as_deref(), Some("/tmp/j"));
                assert!(resume);
                assert_eq!(fsync_every, 8);
                assert_eq!(idle_reap, Some(100));
                assert_eq!(queue_watermark, Some(32));
                assert_eq!(memo_watermark, Some(1_048_576));
            }
            other => panic!("parsed to {other:?}"),
        }
    }

    #[test]
    fn serve_rejects_a_bad_fault_plan_spec() {
        let stream = h1_frame_stream("fp");
        let file = fixture("serve-bad-plan", &stream);
        let mut cmd = serve_cmd(None, Some(file));
        if let Command::Serve { fault_plan, .. } = &mut cmd {
            *fault_plan = Some("explode@1".into());
        }
        let (code, out) = run_str(&cmd);
        assert_eq!(code, 2);
        assert!(out.contains("--fault-plan"), "{out}");
        assert!(out.contains("explode"), "{out}");
    }

    #[test]
    fn serve_crash_then_resume_continues_the_replay() {
        // A fault plan kills the daemon mid-replay (exit 3); re-running the
        // same file with --resume completes it, and the concatenated
        // verdict stream matches an uninterrupted run exactly.
        let stream = h1_frame_stream("cr");
        let file = fixture("serve-crash-resume", &stream);
        let journal =
            std::env::temp_dir().join(format!("tmcheck-test-serve-journal-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&journal);
        let journal_s = journal.to_string_lossy().into_owned();

        let (clean_code, clean_out) = run_str(&serve_cmd(None, Some(file.clone())));
        assert_eq!(clean_code, 0);

        let mut crashed = serve_cmd(None, Some(file.clone()));
        if let Command::Serve {
            fault_plan,
            journal,
            ..
        } = &mut crashed
        {
            *fault_plan = Some("crash@5".into());
            *journal = Some(journal_s.clone());
        }
        let (code1, out1) = run_str(&crashed);
        assert_eq!(code1, 3, "injected crash must exit 3: {out1}");

        let mut resumed = serve_cmd(None, Some(file));
        if let Command::Serve {
            journal, resume, ..
        } = &mut resumed
        {
            *journal = Some(journal_s);
            *resume = true;
        }
        let (code2, out2) = run_str(&resumed);
        assert_eq!(code2, clean_code, "{out2}");
        let stitched: Vec<&str> = out1.lines().chain(out2.lines()).collect();
        let clean: Vec<&str> = clean_out.lines().collect();
        assert_eq!(stitched, clean, "resume must continue byte-identically");
        let _ = std::fs::remove_dir_all(&journal);
    }

    /// A recorded frame stream for H1 (violates at its last event).
    fn h1_frame_stream(session: &str) -> String {
        let h = tm_model::builder::paper::h1();
        let mut lines = vec![tm_serve::render_client_frame(
            &tm_serve::ClientFrame::Open {
                session: session.to_string(),
            },
        )];
        for e in h.events() {
            lines.push(tm_serve::render_client_frame(
                &tm_serve::ClientFrame::Feed {
                    session: session.to_string(),
                    event: e.clone(),
                    seq: None,
                },
            ));
        }
        lines.push(tm_serve::render_client_frame(
            &tm_serve::ClientFrame::Close {
                session: session.to_string(),
            },
        ));
        lines.join("\n")
    }

    #[test]
    fn serve_replay_reproduces_the_library_replay_byte_for_byte() {
        let stream = h1_frame_stream("cli");
        let file = fixture("serve-replay", &stream);
        let (code, output) = run_str(&serve_cmd(None, Some(file)));
        assert_eq!(code, 0, "{output}");
        let mut expected = Vec::new();
        let expected_code =
            tm_serve::replay(tm_serve::ServeConfig::default(), &stream, &mut expected);
        assert_eq!(code, expected_code);
        assert_eq!(output, String::from_utf8(expected).unwrap());
        assert!(output.contains("\"verdict\":\"violated\""), "{output}");
        assert!(output.contains("\"frame\":\"closed\""), "{output}");
    }

    #[test]
    fn serve_replay_missing_file_is_a_usage_error() {
        let (code, _out) = run_str(&serve_cmd(None, Some("/nonexistent/frames.jsonl".into())));
        assert_eq!(code, 2);
    }

    #[test]
    fn serve_writes_observability_artifacts() {
        let stream = h1_frame_stream("obs");
        let file = fixture("serve-obs-frames", &stream);
        let metrics = std::env::temp_dir().join(format!(
            "tmcheck-test-serve-metrics-{}.json",
            std::process::id()
        ));
        let cmd = Command::Serve {
            socket: None,
            replay: Some(file),
            max_sessions: 4096,
            memo_budget: Some(1 << 20),
            node_budget: 50_000,
            inbox_cap: 1024,
            fault_plan: None,
            journal: None,
            resume: false,
            fsync_every: 32,
            idle_reap: None,
            queue_watermark: None,
            memo_watermark: None,
            metrics_out: Some(metrics.to_string_lossy().into_owned()),
            trace_out: None,
        };
        let (code, output) = run_str(&cmd);
        assert_eq!(code, 0, "{output}");
        let snapshot = std::fs::read_to_string(&metrics).unwrap();
        let _ = std::fs::remove_file(&metrics);
        assert!(snapshot.contains("tm-metrics/v1"), "{snapshot}");
        for metric in ["serve.sessions_opened", "serve.verdicts", "serve.turns"] {
            assert!(snapshot.contains(metric), "missing {metric}: {snapshot}");
        }
    }
}
