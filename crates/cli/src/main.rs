//! The `tmcheck` binary — see the library crate documentation for the
//! command reference.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut stdout = std::io::stdout().lock();
    match tm_cli::parse_args(&args) {
        Ok(cmd) => ExitCode::from(tm_cli::run(&cmd, &mut stdout) as u8),
        Err(e) => {
            eprintln!("error: {e}\n\n{}", tm_cli::USAGE);
            ExitCode::from(2)
        }
    }
}
