//! Pins the disabled-path guarantee deterministically: with no sink
//! installed, the instrumented operations perform **zero heap
//! allocations** (and the span guard doesn't even read the clock — not
//! observable here, but the allocation count is).
//!
//! This is the cheap, deterministic half of the overhead acceptance
//! criterion; the wall-clock half is the warn-only `search_knot_history`
//! node-throughput comparison in CI.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// The system allocator with an allocation counter bolted on.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates verbatim to `System`; the counter has no effect on the
// returned memory.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

// One test function: the process-global allocation counter would count a
// concurrently running sibling test's allocations into the measured window.
#[test]
fn disabled_path_allocates_nothing() {
    let obs = tm_obs::ObsHandle::disabled();
    // Warm up thread-local machinery outside the measured window.
    obs.counter_add("warmup", 1);
    let before = allocations();
    for i in 0..10_000u64 {
        obs.counter_add("search.nodes", i);
        obs.gauge_set("search.workers", i);
        obs.observe("check.verdict_ns", i);
        let _guard = obs.span("check", "search");
    }
    assert!(obs.spans().is_empty());
    assert_eq!(
        allocations() - before,
        0,
        "disabled observability must not allocate"
    );

    // Sanity check on the harness itself: if the allocator hook were
    // broken, the assertion above would pass vacuously.
    let before = allocations();
    let obs = tm_obs::ObsHandle::install();
    obs.counter_add("k", 1);
    assert!(allocations() > before, "counting allocator is wired up");
}
