//! Property tests for the histogram algebra (satellite of ISSUE 8): the
//! log₂-histogram merge must be associative and commutative, because the
//! parallel search folds per-worker telemetry in worker order while the
//! conformance battery folds per-shard telemetry in shard order — every
//! grouping has to read the same.

use proptest::prelude::*;

use tm_obs::{bucket_index, Histogram, BUCKETS};

fn build(values: &[u64]) -> Histogram {
    let mut h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h
}

fn merged(a: &Histogram, b: &Histogram) -> Histogram {
    let mut out = a.clone();
    out.merge(b);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn merge_is_commutative(
        xs in proptest::collection::vec(0u64..1 << 40, 0..40),
        ys in proptest::collection::vec(0u64..1 << 40, 0..40),
    ) {
        let (a, b) = (build(&xs), build(&ys));
        prop_assert_eq!(merged(&a, &b), merged(&b, &a));
    }

    #[test]
    fn merge_is_associative(
        xs in proptest::collection::vec(0u64..1 << 40, 0..30),
        ys in proptest::collection::vec(0u64..1 << 40, 0..30),
        zs in proptest::collection::vec(0u64..1 << 40, 0..30),
    ) {
        let (a, b, c) = (build(&xs), build(&ys), build(&zs));
        prop_assert_eq!(
            merged(&merged(&a, &b), &c),
            merged(&a, &merged(&b, &c))
        );
    }

    #[test]
    fn any_split_merges_back_to_the_whole(
        values in proptest::collection::vec(0u64..1 << 40, 1..60),
        cut in 0usize..60,
    ) {
        // Recording a stream in one histogram equals recording any split of
        // it in two and merging — the invariant that makes jobs=1 and
        // jobs=N snapshots agree.
        let cut = cut.min(values.len());
        let whole = build(&values);
        let parts = merged(&build(&values[..cut]), &build(&values[cut..]));
        prop_assert_eq!(whole.count(), parts.count());
        prop_assert_eq!(&whole, &parts);
        prop_assert_eq!(whole.count(), values.len() as u64);
        prop_assert_eq!(whole.sum(), values.iter().sum::<u64>());
    }

    #[test]
    fn quantiles_bracket_observations(v in 0u64..1 << 40) {
        let h = build(&[v]);
        let i = bucket_index(v);
        prop_assert!(i < BUCKETS);
        // The p100 read is the recorded value's bucket upper bound: within
        // 2× of the true value (exact for 0).
        let q = h.quantile(1.0);
        prop_assert!(q >= v);
        prop_assert!(i == 0 || q < v.saturating_mul(2).max(2));
    }
}
