//! # tm-obs
//!
//! The observability spine of the opacity checker: one dependency-free
//! metrics registry (monotone counters, gauges, log₂-bucketed latency
//! histograms) plus span-based structured tracing, shared by the search,
//! monitor, and STM layers.
//!
//! ## The one merge primitive
//!
//! Every telemetry merge in the workspace — `SearchStats::absorb` folding
//! per-worker counters in deterministic worker order, histogram merges, the
//! registry snapshot — bottoms out in [`merge_counters`]: element-wise
//! monotone addition of two equal-length counter slices. Addition is
//! associative and commutative, so any merge order yields the same totals;
//! the parallel search still merges in worker order (worker 0 first) so
//! *sequences* of intermediate states are reproducible too.
//!
//! ## Zero cost when disabled
//!
//! Instrumented code holds an [`ObsHandle`] — a `Copy` wrapper around
//! `Option<&'static ObsSink>`. The default handle is *disabled*: every
//! metric and span method is a branch on `None` and returns immediately —
//! no clock read, no lock, no allocation (pinned by the
//! `disabled_path_allocates_nothing` integration test). [`ObsHandle::install`]
//! creates a sink for the lifetime of the process (one deliberate small
//! leak per installation, which is what lets the handle stay `Copy` and
//! thread through `Copy` configs like the search's).
//!
//! ## Overhead discipline when enabled
//!
//! The registry is a mutex-guarded map keyed by `&'static str`. That is
//! fine for *per-check* and *per-commit* granularity and deliberately not
//! fine for per-node granularity: hot loops (the DFS, the STM step meter)
//! keep counting into their existing per-worker locals and **fold** into
//! the registry once per check / per run, exactly like `SearchStats`
//! always merged. Spans go to bounded per-shard ring buffers (overflow is
//! counted, never blocks).
//!
//! ## Artifacts
//!
//! [`Snapshot::to_json`] renders the `tm-metrics/v1` document written by
//! `tmcheck … --metrics-out`; the span records feed the Chrome
//! `chrome://tracing` / Perfetto emitter in `tm-trace` (written by
//! `--trace-out`). Schema versions only ever increment; fields are only
//! added, never repurposed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod histogram;
mod registry;
mod span;

pub use histogram::{bucket_index, bucket_upper_bound, Histogram, BUCKETS};
pub use registry::{ObsSink, Snapshot};
pub use span::{SpanGuard, SpanRecord};

use std::sync::atomic::{AtomicU64, Ordering};

/// The version tag written into every `tm-metrics` document.
pub const METRICS_SCHEMA: &str = "tm-metrics/v1";

/// Element-wise monotone merge of two equal-length counter slices — the
/// single merge implementation behind `SearchStats::absorb`, histogram
/// merges, and every other telemetry fold in the workspace.
///
/// Saturating so that a pathological counter sum can never wrap a monotone
/// reading backwards.
///
/// # Panics
///
/// Panics if the slices differ in length (merging differently-shaped
/// telemetry is a bug, not an input error).
pub fn merge_counters(into: &mut [u64], from: &[u64]) {
    assert_eq!(
        into.len(),
        from.len(),
        "merge_counters: shape mismatch ({} vs {} cells)",
        into.len(),
        from.len()
    );
    for (a, b) in into.iter_mut().zip(from) {
        *a = a.saturating_add(*b);
    }
}

/// A standalone monotone counter: the sanctioned home for cross-thread
/// telemetry tallies that live *inside* another data structure (the memo
/// table's eviction count, a step probe's access count) rather than in a
/// registry. Relaxed ordering — readings are monotone and eventually
/// consistent, which is all telemetry needs.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter at zero.
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A `Copy` capability to the process's observability sink; disabled by
/// default. See the crate docs for the cost model.
#[derive(Clone, Copy, Default)]
pub struct ObsHandle {
    sink: Option<&'static ObsSink>,
}

impl std::fmt::Debug for ObsHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(if self.sink.is_some() {
            "ObsHandle(enabled)"
        } else {
            "ObsHandle(disabled)"
        })
    }
}

impl ObsHandle {
    /// The disabled handle: every operation is a no-op.
    pub const fn disabled() -> Self {
        ObsHandle { sink: None }
    }

    /// Creates a fresh sink living for the rest of the process and returns
    /// an enabled handle to it. The sink is deliberately leaked — a small,
    /// bounded allocation per installation — so the handle can be `Copy`
    /// and flow through `Copy` configuration structs without lifetimes or
    /// reference counting.
    pub fn install() -> Self {
        ObsHandle {
            sink: Some(Box::leak(Box::new(ObsSink::new()))),
        }
    }

    /// Is a sink attached?
    pub fn enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Adds `n` to the monotone counter `name` (no-op when disabled).
    pub fn counter_add(&self, name: &'static str, n: u64) {
        if let Some(sink) = self.sink {
            sink.counter_add(name, n);
        }
    }

    /// Sets the gauge `name` to `v` (no-op when disabled).
    pub fn gauge_set(&self, name: &'static str, v: u64) {
        if let Some(sink) = self.sink {
            sink.gauge_set(name, v);
        }
    }

    /// Records one observation `v` into the log₂ histogram `name` (no-op
    /// when disabled).
    pub fn observe(&self, name: &'static str, v: u64) {
        if let Some(sink) = self.sink {
            sink.observe(name, v);
        }
    }

    /// Opens a scoped span; the guard records `{name, cat, start, duration,
    /// thread}` into the sink's ring buffers when dropped. Disabled handles
    /// return an inert guard without reading the clock.
    pub fn span(&self, name: &'static str, cat: &'static str) -> SpanGuard {
        SpanGuard::open(self.sink, name, cat)
    }

    /// A point-in-time copy of all metrics; `None` when disabled.
    pub fn snapshot(&self) -> Option<Snapshot> {
        self.sink.map(ObsSink::snapshot)
    }

    /// All span records captured so far, in start-time order; empty when
    /// disabled.
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.sink.map(ObsSink::spans).unwrap_or_default()
    }

    /// Spans lost to ring-buffer overflow (0 when disabled).
    pub fn dropped_spans(&self) -> u64 {
        self.sink.map(ObsSink::dropped_spans).unwrap_or(0)
    }
}

/// Opens a scoped span on an [`ObsHandle`] expression: `span!(obs, "check",
/// "search")` binds the guard to the enclosing scope.
#[macro_export]
macro_rules! span {
    ($obs:expr, $name:expr, $cat:expr) => {
        let _tm_obs_span = $obs.span($name, $cat);
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_counters_adds_elementwise_and_saturates() {
        let mut a = [1, 2, u64::MAX - 1];
        merge_counters(&mut a, &[10, 0, 5]);
        assert_eq!(a, [11, 2, u64::MAX]);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn merge_counters_rejects_shape_mismatch() {
        merge_counters(&mut [0, 0], &[1]);
    }

    #[test]
    fn counter_is_monotone_across_threads() {
        let c = Counter::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..1000 {
                        c.add(2);
                    }
                });
            }
        });
        assert_eq!(c.get(), 8000);
    }

    #[test]
    fn disabled_handle_is_inert() {
        let obs = ObsHandle::disabled();
        assert!(!obs.enabled());
        obs.counter_add("x", 1);
        obs.gauge_set("g", 7);
        obs.observe("h", 123);
        {
            span!(obs, "nothing", "test");
        }
        assert!(obs.snapshot().is_none());
        assert!(obs.spans().is_empty());
        assert_eq!(obs.dropped_spans(), 0);
        assert_eq!(format!("{obs:?}"), "ObsHandle(disabled)");
        assert!(!format!("{:?}", ObsHandle::default()).contains("enabled)"));
    }

    #[test]
    fn installed_handle_collects_metrics_and_spans() {
        let obs = ObsHandle::install();
        assert!(obs.enabled());
        assert_eq!(format!("{obs:?}"), "ObsHandle(enabled)");
        obs.counter_add("search.nodes", 10);
        obs.counter_add("search.nodes", 5);
        obs.gauge_set("search.workers", 4);
        obs.gauge_set("search.workers", 8);
        obs.observe("check.verdict_ns", 1500);
        {
            span!(obs, "check", "search");
        }
        let snap = obs.snapshot().expect("enabled");
        assert_eq!(snap.counter("search.nodes"), Some(15));
        assert_eq!(snap.gauge("search.workers"), Some(8));
        let h = snap.histogram("check.verdict_ns").expect("recorded");
        assert_eq!(h.count(), 1);
        assert_eq!(h.sum(), 1500);
        let spans = obs.spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "check");
        assert_eq!(spans[0].cat, "search");
    }

    #[test]
    fn handle_is_copy_and_both_copies_hit_the_same_sink() {
        let obs = ObsHandle::install();
        let copy = obs;
        copy.counter_add("k", 1);
        obs.counter_add("k", 1);
        assert_eq!(obs.snapshot().unwrap().counter("k"), Some(2));
    }
}
