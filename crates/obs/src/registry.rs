//! The metrics sink: named counters, gauges, and histograms behind one
//! mutex, plus the span ring buffers and the `tm-metrics/v1` JSON writer.
//!
//! Names are `&'static str` by design: the instrumentation vocabulary is
//! fixed at compile time, map keys cost nothing to intern, and snapshots
//! iterate in `BTreeMap` order so the JSON document is deterministic.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::Instant;

use crate::histogram::Histogram;
use crate::span::{SpanRecord, SpanRing, RING_CAPACITY, RING_SHARDS};
use crate::METRICS_SCHEMA;

#[derive(Default)]
struct Metrics {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, u64>,
    histograms: BTreeMap<&'static str, Histogram>,
}

/// The process-wide observability sink an enabled
/// [`ObsHandle`](crate::ObsHandle) points at.
pub struct ObsSink {
    /// Creation time — span timestamps are microseconds since this instant.
    t0: Instant,
    metrics: Mutex<Metrics>,
    /// Span rings sharded by thread id, so concurrent workers rarely
    /// contend on one ring lock.
    rings: Vec<Mutex<SpanRing>>,
    /// Spans lost to ring overflow.
    dropped: AtomicU64,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl ObsSink {
    pub(crate) fn new() -> Self {
        ObsSink {
            t0: Instant::now(),
            metrics: Mutex::new(Metrics::default()),
            rings: (0..RING_SHARDS)
                .map(|_| Mutex::new(SpanRing::new(RING_CAPACITY)))
                .collect(),
            dropped: AtomicU64::new(0),
        }
    }

    /// Creation time of the sink (span timestamps are relative to this).
    pub fn t0(&self) -> Instant {
        self.t0
    }

    pub(crate) fn counter_add(&self, name: &'static str, n: u64) {
        let mut m = lock(&self.metrics);
        let c = m.counters.entry(name).or_insert(0);
        *c = c.saturating_add(n);
    }

    pub(crate) fn gauge_set(&self, name: &'static str, v: u64) {
        lock(&self.metrics).gauges.insert(name, v);
    }

    pub(crate) fn observe(&self, name: &'static str, v: u64) {
        lock(&self.metrics)
            .histograms
            .entry(name)
            .or_default()
            .record(v);
    }

    pub(crate) fn push_span(&self, record: SpanRecord) {
        let ring = &self.rings[(record.tid as usize) % self.rings.len()];
        if !lock(ring).push(record) {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    pub(crate) fn spans(&self) -> Vec<SpanRecord> {
        let mut all: Vec<SpanRecord> = self
            .rings
            .iter()
            .flat_map(|r| lock(r).records().to_vec())
            .collect();
        // Open order breaks microsecond timestamp ties, so an enclosing
        // span sorts before the spans it contains.
        all.sort_by_key(|s| (s.ts_us, s.seq));
        all
    }

    pub(crate) fn dropped_spans(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    pub(crate) fn snapshot(&self) -> Snapshot {
        let m = lock(&self.metrics);
        Snapshot {
            counters: m.counters.clone(),
            gauges: m.gauges.clone(),
            histograms: m.histograms.clone(),
        }
    }
}

/// A point-in-time copy of every metric in a sink, iterable in
/// deterministic (name) order and renderable as `tm-metrics/v1` JSON.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Snapshot {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, u64>,
    histograms: BTreeMap<&'static str, Histogram>,
}

impl Snapshot {
    /// The value of counter `name`, if it was ever touched.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    /// The value of gauge `name`, if it was ever set.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.get(name).copied()
    }

    /// The histogram `name`, if it ever recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// All counters, in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(&k, &v)| (k, v))
    }

    /// All gauges, in name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.gauges.iter().map(|(&k, &v)| (k, v))
    }

    /// All histograms, in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&'static str, &Histogram)> + '_ {
        self.histograms.iter().map(|(&k, v)| (k, v))
    }

    /// Renders the snapshot as a `tm-metrics/v1` JSON document: a stable
    /// schema tag, then `counters` and `gauges` as flat objects and each
    /// histogram as `{count, sum, p50, p95, p99, buckets: [[index, n], …]}`
    /// (sparse buckets). Deterministic: names iterate in order and nothing
    /// depends on wall-clock time.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("{\n  \"schema\": \"");
        out.push_str(METRICS_SCHEMA);
        out.push_str("\",\n  \"counters\": {");
        push_map(&mut out, self.counters());
        out.push_str("},\n  \"gauges\": {");
        push_map(&mut out, self.gauges());
        out.push_str("},\n  \"histograms\": {");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    \"");
            out.push_str(name);
            out.push_str("\": {\"count\": ");
            out.push_str(&h.count().to_string());
            out.push_str(", \"sum\": ");
            out.push_str(&h.sum().to_string());
            for (label, q) in [("p50", 0.5), ("p95", 0.95), ("p99", 0.99)] {
                out.push_str(", \"");
                out.push_str(label);
                out.push_str("\": ");
                out.push_str(&h.quantile(q).to_string());
            }
            out.push_str(", \"buckets\": [");
            for (j, (idx, n)) in h.nonzero_buckets().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("[{idx}, {n}]"));
            }
            out.push_str("]}");
        }
        if !self.histograms.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("}\n}\n");
        out
    }
}

fn push_map<'a>(out: &mut String, entries: impl Iterator<Item = (&'a str, u64)>) {
    for (i, (name, v)) in entries.enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    \"");
        out.push_str(name);
        out.push_str("\": ");
        out.push_str(&v.to_string());
    }
}

#[cfg(test)]
mod tests {
    use crate::ObsHandle;

    #[test]
    fn snapshot_json_is_deterministic_and_tagged() {
        let obs = ObsHandle::install();
        obs.counter_add("b.two", 2);
        obs.counter_add("a.one", 1);
        obs.gauge_set("g", 3);
        obs.observe("lat", 5);
        obs.observe("lat", 9);
        let json = obs.snapshot().unwrap().to_json();
        assert!(json.contains("\"schema\": \"tm-metrics/v1\""), "{json}");
        // Counter names are emitted in sorted order.
        let a = json.find("a.one").unwrap();
        let b = json.find("b.two").unwrap();
        assert!(a < b, "{json}");
        assert!(json.contains("\"count\": 2"), "{json}");
        assert!(json.contains("\"sum\": 14"), "{json}");
        assert_eq!(json, obs.snapshot().unwrap().to_json());
    }

    #[test]
    fn empty_snapshot_still_renders() {
        let obs = ObsHandle::install();
        let json = obs.snapshot().unwrap().to_json();
        assert!(json.contains("\"counters\": {}"), "{json}");
        assert!(json.contains("\"histograms\": {}"), "{json}");
    }

    #[test]
    fn many_threads_fold_into_one_registry() {
        let obs = ObsHandle::install();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(move || {
                    for _ in 0..250 {
                        obs.counter_add("hits", 1);
                        obs.observe("lat", 4);
                    }
                });
            }
        });
        let snap = obs.snapshot().unwrap();
        assert_eq!(snap.counter("hits"), Some(1000));
        assert_eq!(snap.histogram("lat").unwrap().count(), 1000);
    }
}
