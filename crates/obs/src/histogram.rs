//! Log₂-bucketed latency histograms.
//!
//! A histogram is a flat array of monotone counters — cell 0 is the sum of
//! all observations, cells `1..=65` are the per-bucket counts — so merging
//! two histograms *is* [`merge_counters`](crate::merge_counters) on the
//! cells: associative, commutative, and shared with every other telemetry
//! fold in the workspace (property-tested in `tests/histogram_props.rs`).
//!
//! Bucket `0` holds exactly the value `0`; bucket `i ≥ 1` holds the values
//! in `[2^(i-1), 2^i - 1]`. Quantiles are read as the upper bound of the
//! bucket where the cumulative count crosses the rank — a ≤2× relative
//! error, plenty for p50/p95/p99 SLO trend lines.

use crate::merge_counters;

/// Number of buckets: one for zero plus one per power of two up to `2^63`.
pub const BUCKETS: usize = 65;

/// The bucket index of observation `v`: `0` for `0`, else
/// `⌊log₂ v⌋ + 1`.
pub fn bucket_index(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

/// The largest value bucket `i` can hold (`u64::MAX` for the last bucket).
pub fn bucket_upper_bound(i: usize) -> u64 {
    match i {
        0 => 0,
        64.. => u64::MAX,
        _ => (1u64 << i) - 1,
    }
}

/// A log₂-bucketed histogram of `u64` observations (latencies in
/// nanoseconds, sizes, …).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    /// `cells[0]` = saturating sum of observations; `cells[1 + i]` = count
    /// of bucket `i`. One flat counter array so the merge is exactly
    /// [`merge_counters`].
    cells: [u64; BUCKETS + 1],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            cells: [0; BUCKETS + 1],
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one observation.
    pub fn record(&mut self, v: u64) {
        self.cells[0] = self.cells[0].saturating_add(v);
        self.cells[1 + bucket_index(v)] += 1;
    }

    /// Folds `other` into `self` (element-wise monotone addition — the one
    /// merge implementation).
    pub fn merge(&mut self, other: &Histogram) {
        merge_counters(&mut self.cells, &other.cells);
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.cells[1..].iter().sum()
    }

    /// Saturating sum of all observations.
    pub fn sum(&self) -> u64 {
        self.cells[0]
    }

    /// The count of bucket `i`.
    pub fn bucket(&self, i: usize) -> u64 {
        self.cells[1 + i]
    }

    /// `(bucket index, count)` for every non-empty bucket, in index order.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.cells[1..]
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (i, n))
    }

    /// The upper bound of the bucket containing the `q`-quantile
    /// (`0.0 ≤ q ≤ 1.0`); `0` for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, n) in self.nonzero_buckets() {
            seen += n;
            if seen >= rank {
                return bucket_upper_bound(i);
            }
        }
        bucket_upper_bound(BUCKETS - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        // Every bucket's upper bound maps back into that bucket.
        for i in 0..BUCKETS {
            assert_eq!(bucket_index(bucket_upper_bound(i)), i, "bucket {i}");
        }
    }

    #[test]
    fn record_count_sum_quantile() {
        let mut h = Histogram::new();
        for v in [0, 1, 1, 7, 100, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1109);
        assert_eq!(h.bucket(0), 1);
        assert_eq!(h.bucket(1), 2);
        assert_eq!(h.quantile(0.0), 0);
        // Rank 3 of 6 at q=0.5 lands in the bucket of the two 1s.
        assert_eq!(h.quantile(0.5), 1);
        assert!(h.quantile(1.0) >= 1000);
        assert_eq!(Histogram::new().quantile(0.99), 0);
    }

    #[test]
    fn merge_is_elementwise() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(5);
        b.record(5);
        b.record(300);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.sum(), 310);
        assert_eq!(a.bucket(bucket_index(5)), 2);
        assert_eq!(a.bucket(bucket_index(300)), 1);
    }
}
