//! Scoped spans and their bounded per-shard ring buffers.
//!
//! A [`SpanGuard`] measures the lifetime of a scope: opened through
//! [`ObsHandle::span`](crate::ObsHandle::span) (or the [`span!`](crate::span)
//! macro), it records `{name, category, start, duration, thread}` into the
//! sink when dropped. Records land in fixed-capacity rings sharded by
//! thread id — a full ring *counts* the overflow instead of blocking or
//! growing, so tracing can stay on in long runs without unbounded memory.
//! Thread ids are small dense integers handed out on a thread's first span
//! (stable across sinks within a process), which is what the Chrome trace
//! viewer wants for its per-row lanes.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use crate::registry::ObsSink;

/// Span ring shards per sink.
pub(crate) const RING_SHARDS: usize = 8;
/// Capacity of each shard's ring.
pub(crate) const RING_CAPACITY: usize = 8192;

/// One completed span.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span name (e.g. `"check"`).
    pub name: &'static str,
    /// Category/layer (e.g. `"search"`, `"stm"`).
    pub cat: &'static str,
    /// Start, in microseconds since the sink was created.
    pub ts_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
    /// Dense per-process thread id (first span wins the next id).
    pub tid: u64,
    /// Monotone open-order sequence number — breaks microsecond timestamp
    /// ties so an enclosing span always orders before its children.
    pub seq: u64,
}

/// A fixed-capacity buffer of span records; `push` reports whether the
/// record was kept.
pub(crate) struct SpanRing {
    buf: Vec<SpanRecord>,
    cap: usize,
}

impl SpanRing {
    pub(crate) fn new(cap: usize) -> Self {
        SpanRing {
            buf: Vec::new(),
            cap,
        }
    }

    pub(crate) fn push(&mut self, r: SpanRecord) -> bool {
        if self.buf.len() < self.cap {
            self.buf.push(r);
            true
        } else {
            false
        }
    }

    pub(crate) fn records(&self) -> &[SpanRecord] {
        &self.buf
    }
}

static NEXT_TID: AtomicU64 = AtomicU64::new(0);
static NEXT_SEQ: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static TID: Cell<u64> = const { Cell::new(u64::MAX) };
}

/// The calling thread's dense span-thread id, assigned on first use.
fn current_tid() -> u64 {
    TID.with(|cell| {
        let mut id = cell.get();
        if id == u64::MAX {
            id = NEXT_TID.fetch_add(1, Ordering::Relaxed);
            cell.set(id);
        }
        id
    })
}

/// An RAII guard measuring one span; inert (no clock read, no allocation)
/// when opened from a disabled handle.
pub struct SpanGuard {
    active: Option<ActiveSpan>,
}

struct ActiveSpan {
    sink: &'static ObsSink,
    name: &'static str,
    cat: &'static str,
    start: Instant,
    seq: u64,
}

impl SpanGuard {
    pub(crate) fn open(
        sink: Option<&'static ObsSink>,
        name: &'static str,
        cat: &'static str,
    ) -> Self {
        SpanGuard {
            active: sink.map(|sink| ActiveSpan {
                sink,
                name,
                cat,
                start: Instant::now(),
                seq: NEXT_SEQ.fetch_add(1, Ordering::Relaxed),
            }),
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(span) = self.active.take() {
            let ts_us = span
                .start
                .saturating_duration_since(span.sink.t0())
                .as_micros() as u64;
            let dur_us = span.start.elapsed().as_micros() as u64;
            span.sink.push_span(SpanRecord {
                name: span.name,
                cat: span.cat,
                ts_us,
                dur_us,
                tid: current_tid(),
                seq: span.seq,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ObsHandle;

    #[test]
    fn spans_record_nesting_and_order() {
        let obs = ObsHandle::install();
        {
            let _outer = obs.span("outer", "test");
            let _inner = obs.span("inner", "test");
        }
        let spans = obs.spans();
        assert_eq!(spans.len(), 2);
        // Start-time order, enclosing span first on a timestamp tie.
        assert_eq!(spans[0].name, "outer");
        assert_eq!(spans[1].name, "inner");
        assert!(spans[0].ts_us <= spans[1].ts_us);
        assert!(spans[0].dur_us >= spans[1].dur_us);
        assert_eq!(spans[0].tid, spans[1].tid);
    }

    #[test]
    fn overflow_is_counted_not_grown() {
        let obs = ObsHandle::install();
        // All spans of one thread land in one shard of capacity
        // RING_CAPACITY; push past it.
        for _ in 0..(RING_CAPACITY + 10) {
            let _s = obs.span("tick", "test");
        }
        assert_eq!(obs.spans().len(), RING_CAPACITY);
        assert_eq!(obs.dropped_spans(), 10);
    }

    #[test]
    fn concurrent_spans_get_distinct_tids() {
        let obs = ObsHandle::install();
        std::thread::scope(|scope| {
            for _ in 0..3 {
                scope.spawn(move || {
                    let _s = obs.span("work", "test");
                });
            }
        });
        let spans = obs.spans();
        assert_eq!(spans.len(), 3);
        let mut tids: Vec<u64> = spans.iter().map(|s| s.tid).collect();
        tids.sort_unstable();
        tids.dedup();
        assert_eq!(tids.len(), 3, "each thread has its own span lane");
    }
}
