//! TL2 (Dice, Shalev, Shavit — DISC 2006).
//!
//! The constant-per-operation point of the paper's design space:
//!
//! * **invisible reads** — a read touches only the object's versioned lock
//!   word and value (no base object is written);
//! * **single-version** — each object stores one value and one version;
//! * **O(1) steps per read** — a read checks the object's version against
//!   the transaction's read version `rv` sampled at begin; no read-set
//!   re-validation ever happens during reads;
//! * **not progressive** — a read of an object whose version exceeds `rv`
//!   aborts the transaction even when the conflicting writer committed
//!   before the read was issued (no live conflict). This is exactly why
//!   Theorem 3 does not apply to TL2 (Section 6.2).
//!
//! Opacity holds: every read returns a value consistent with the snapshot at
//! `rv`, and commit-time lock acquisition plus read-set validation
//! serializes updates at their write-version.

use std::sync::atomic::{AtomicI64, AtomicU64};
use std::sync::Arc;

use crate::api::{Aborted, Stm, StmProperties, Tx, TxResult};
use crate::base::{Meter, OpKind, StepReport};
use crate::clock::GlobalClock;
use crate::config::{RetryPolicy, StmConfig};
use crate::recorder::Recorder;
use crate::trace_cells::{CellId, StepProbe};
use tm_model::TxId;

/// Versioned write-lock encoding: `version << 1 | locked`.
#[inline]
fn version_of(word: u64) -> u64 {
    word >> 1
}

#[inline]
fn is_locked(word: u64) -> bool {
    word & 1 == 1
}

#[inline]
fn locked(word: u64) -> u64 {
    word | 1
}

#[inline]
fn unlocked_at(version: u64) -> u64 {
    version << 1
}

#[derive(Debug)]
struct Tl2Obj {
    /// `version << 1 | locked`.
    lock: AtomicU64,
    value: AtomicI64,
}

/// The TL2 TM over `k` registers.
#[derive(Debug)]
pub struct Tl2Stm {
    objs: Vec<Tl2Obj>,
    clock: Box<dyn GlobalClock>,
    recorder: Recorder,
    retry: RetryPolicy,
    probe: Option<Arc<dyn StepProbe>>,
}

impl Tl2Stm {
    /// A TL2 TM with `k` registers initialized to 0 at version 0, using the
    /// default configuration (single clock).
    pub fn new(k: usize) -> Self {
        Self::with_config(&StmConfig::new(k))
    }

    /// A TL2 TM built from an explicit configuration (clock scheme,
    /// initial values, recording, retry policy; the contention manager is
    /// not consulted — TL2 resolves conflicts by aborting itself).
    pub fn with_config(cfg: &StmConfig) -> Self {
        Tl2Stm {
            objs: (0..cfg.k())
                .map(|i| Tl2Obj {
                    lock: AtomicU64::new(0),
                    value: AtomicI64::new(cfg.initial(i)),
                })
                .collect(),
            clock: cfg.build_clock(),
            recorder: cfg.build_recorder(),
            retry: cfg.retry_policy(),
            probe: cfg.step_probe(),
        }
    }
}

/// A live TL2 transaction.
pub struct Tl2Tx<'a> {
    stm: &'a Tl2Stm,
    id: TxId,
    /// The OS-thread slot running this transaction (the clock's home-shard
    /// hint).
    thread: usize,
    /// Read version: clock sample at begin.
    rv: u64,
    /// Read set: object indices (versions are re-checked against `rv`).
    reads: Vec<usize>,
    /// Redo log, ordered by object index for deadlock-free locking.
    writes: Vec<(usize, i64)>,
    meter: Meter,
    finished: bool,
}

impl Stm for Tl2Stm {
    fn name(&self) -> &'static str {
        "tl2"
    }

    fn k(&self) -> usize {
        self.objs.len()
    }

    fn begin(&self, thread: usize) -> Box<dyn Tx + '_> {
        let id = self.recorder.fresh_tx();
        // Sampling the clock at begin is TL2's only begin-time work (O(1)).
        let rv = self.clock.peek();
        Box::new(Tl2Tx {
            stm: self,
            id,
            thread,
            rv,
            reads: Vec::new(),
            writes: Vec::new(),
            meter: Meter::with_probe(thread, self.probe.clone()),
            finished: false,
        })
    }

    fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    fn retry_policy(&self) -> RetryPolicy {
        self.retry
    }

    fn properties(&self) -> StmProperties {
        StmProperties {
            progressive: false, // the rv check aborts without live conflicts
            single_version: true,
            invisible_reads: true,
            opaque_by_design: true,
            serializable_by_design: true,
        }
    }
}

impl Tl2Tx<'_> {
    fn write_slot(&mut self, obj: usize) -> Option<&mut (usize, i64)> {
        self.writes.iter_mut().find(|(o, _)| *o == obj)
    }

    /// Aborts in place (records `A` answering the pending invocation).
    fn abort_op(&mut self) -> Aborted {
        self.meter.end_op();
        self.finished = true;
        self.stm.recorder.abort(self.id);
        Aborted
    }

    /// Releases commit-time locks `held` (restoring their pre-lock words).
    fn release_locks(&mut self, held: &[(usize, u64)]) {
        for &(obj, old_word) in held {
            self.meter
                .store_u64(CellId::Lock(obj as u32), &self.stm.objs[obj].lock, old_word);
        }
    }
}

impl Tx for Tl2Tx<'_> {
    fn read(&mut self, obj: usize) -> TxResult<i64> {
        self.stm.recorder.inv_read(self.id, obj);
        self.meter.begin_op(OpKind::Read);
        // Read-own-write from the redo log (no base-object access).
        if let Some(&mut (_, v)) = self.write_slot(obj) {
            self.meter.end_op();
            self.stm.recorder.ret_read(self.id, obj, v);
            return Ok(v);
        }
        let o = &self.stm.objs[obj];
        let pre = self.meter.load_u64(CellId::Lock(obj as u32), &o.lock);
        let v = self.meter.load_i64(CellId::Value(obj as u32), &o.value);
        let post = self.meter.load_u64(CellId::Lock(obj as u32), &o.lock);
        // TL2 read validation: stable, unlocked, and not newer than rv.
        if pre != post || is_locked(pre) || version_of(pre) > self.rv {
            return Err(self.abort_op());
        }
        self.reads.push(obj);
        self.meter.end_op();
        self.stm.recorder.ret_read(self.id, obj, v);
        Ok(v)
    }

    fn write(&mut self, obj: usize, v: i64) -> TxResult<()> {
        self.stm.recorder.inv_write(self.id, obj, v);
        self.meter.begin_op(OpKind::Write);
        match self.write_slot(obj) {
            Some(slot) => slot.1 = v,
            None => {
                self.writes.push((obj, v));
                self.writes.sort_unstable_by_key(|(o, _)| *o);
            }
        }
        self.meter.end_op();
        self.stm.recorder.ret_write(self.id, obj);
        Ok(())
    }

    fn commit(mut self: Box<Self>) -> TxResult<()> {
        self.stm.recorder.try_commit(self.id);
        self.meter.begin_op(OpKind::Commit);
        if self.writes.is_empty() {
            // Read-only fast path: all reads validated against rv already.
            self.meter.end_op();
            self.finished = true;
            self.stm.recorder.commit(self.id);
            return Ok(());
        }
        // Phase 1: lock the write set in index order.
        let mut held: Vec<(usize, u64)> = Vec::with_capacity(self.writes.len());
        let writes = std::mem::take(&mut self.writes);
        for &(obj, _) in &writes {
            let o = &self.stm.objs[obj];
            let word = self.meter.load_u64(CellId::Lock(obj as u32), &o.lock);
            if is_locked(word)
                || version_of(word) > self.rv
                || !self
                    .meter
                    .cas_u64(CellId::Lock(obj as u32), &o.lock, word, locked(word))
            {
                self.release_locks(&held);
                self.meter.end_op();
                self.finished = true;
                self.stm.recorder.abort(self.id);
                return Err(Aborted);
            }
            held.push((obj, word));
        }
        // Phase 2: increment the global clock.
        let wv = self.stm.clock.tick(self.thread, &mut self.meter);
        // Phase 3: validate the read set. Skippable only when the clock's
        // tick arithmetic proves quiescence (`wv == rv + 1` on the single
        // GV1 counter: our own fetch_add was the only advance since begin).
        // Sharded/deferred clocks cannot prove this — a concurrent
        // committer advances time without disturbing our tick — so under
        // them the validation always runs (the classical GV4/GV5 cost).
        if !(self.stm.clock.tick_is_exclusive() && wv == self.rv + 1) {
            for &obj in &self.reads {
                if held.iter().any(|&(held_obj, _)| held_obj == obj) {
                    continue; // we hold it; version checked at lock time
                }
                let word = self
                    .meter
                    .load_u64(CellId::Lock(obj as u32), &self.stm.objs[obj].lock);
                if is_locked(word) || version_of(word) > self.rv {
                    self.release_locks(&held);
                    self.meter.end_op();
                    self.finished = true;
                    self.stm.recorder.abort(self.id);
                    return Err(Aborted);
                }
            }
        }
        // Phase 4: publish values and release locks at version wv.
        for &(obj, v) in &writes {
            let o = &self.stm.objs[obj];
            self.meter.store_i64(CellId::Value(obj as u32), &o.value, v);
            self.meter
                .store_u64(CellId::Lock(obj as u32), &o.lock, unlocked_at(wv));
        }
        self.meter.end_op();
        self.finished = true;
        self.stm.recorder.commit(self.id);
        Ok(())
    }

    fn abort(mut self: Box<Self>) {
        self.stm.recorder.try_abort(self.id);
        self.finished = true;
        self.stm.recorder.abort(self.id);
    }

    fn steps(&self) -> StepReport {
        self.meter.report()
    }

    fn id(&self) -> u32 {
        self.id.0
    }
}

impl Drop for Tl2Tx<'_> {
    fn drop(&mut self) {
        if !self.finished {
            self.stm.recorder.try_abort(self.id);
            self.stm.recorder.abort(self.id);
            self.finished = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::run_tx;

    #[test]
    fn read_write_commit_roundtrip() {
        let stm = Tl2Stm::new(4);
        let mut tx = stm.begin(0);
        tx.write(1, 11).unwrap();
        assert_eq!(tx.read(1).unwrap(), 11); // read-own-write
        tx.commit().unwrap();
        let mut tx = stm.begin(0);
        assert_eq!(tx.read(1).unwrap(), 11);
        tx.commit().unwrap();
    }

    #[test]
    fn stale_read_version_aborts() {
        // T1 samples rv, T2 commits a write, T1 then reads the written
        // object: version > rv => abort (TL2's non-progressive behaviour).
        let stm = Tl2Stm::new(2);
        let mut t1 = stm.begin(0);
        assert_eq!(t1.read(0).unwrap(), 0);
        let mut t2 = stm.begin(1);
        t2.write(1, 5).unwrap();
        t2.commit().unwrap();
        assert_eq!(t1.read(1), Err(Aborted));
    }

    #[test]
    fn fresh_transaction_sees_committed_values() {
        let stm = Tl2Stm::new(2);
        let mut t2 = stm.begin(1);
        t2.write(1, 5).unwrap();
        t2.commit().unwrap();
        let mut t3 = stm.begin(0);
        assert_eq!(t3.read(1).unwrap(), 5);
        t3.commit().unwrap();
    }

    #[test]
    fn write_write_conflict_aborts_second_committer() {
        let stm = Tl2Stm::new(1);
        let mut t1 = stm.begin(0);
        let mut t2 = stm.begin(1);
        t1.read(0).unwrap();
        t2.read(0).unwrap();
        t1.write(0, 1).unwrap();
        t2.write(0, 2).unwrap();
        t1.commit().unwrap();
        assert_eq!(t2.commit(), Err(Aborted));
    }

    #[test]
    fn reads_cost_constant_steps() {
        let stm = Tl2Stm::new(256);
        let mut tx = stm.begin(0);
        for i in 0..256 {
            tx.read(i).unwrap();
        }
        let r = tx.steps();
        // 3 base accesses per read (lock, value, lock), independent of k.
        assert_eq!(r.max_of(OpKind::Read), 3);
        tx.commit().unwrap();
    }

    #[test]
    fn recorded_history_well_formed_and_complete() {
        let stm = Tl2Stm::new(3);
        run_tx(&stm, 0, |tx| {
            tx.write(0, 1)?;
            tx.write(2, 3)
        });
        run_tx(&stm, 0, |tx| {
            let a = tx.read(0)?;
            tx.write(1, a + 1)
        });
        let h = stm.recorder().history();
        assert!(tm_model::is_well_formed(&h), "{h}");
        assert!(h.is_complete());
        assert_eq!(h.committed_txs().len(), 2);
    }

    #[test]
    fn voluntary_abort_discards_writes() {
        let stm = Tl2Stm::new(1);
        let mut tx = stm.begin(0);
        tx.write(0, 99).unwrap();
        tx.abort();
        let mut tx = stm.begin(0);
        assert_eq!(tx.read(0).unwrap(), 0);
        tx.commit().unwrap();
    }

    #[test]
    fn read_only_commit_is_free() {
        let stm = Tl2Stm::new(8);
        let mut tx = stm.begin(0);
        for i in 0..8 {
            tx.read(i).unwrap();
        }
        let steps_before = tx.steps().total();
        tx.commit().unwrap();
        // Commit adds no base-object steps on the read-only path; verify by
        // construction (commit op metered as 0 steps).
        let _ = steps_before;
    }
}
