//! Typed transactional objects: the full object universe on top of any TM.
//!
//! The paper treats the sequential specification as an *input parameter* of
//! opacity — yet every TM in this crate natively speaks only `read`/`write`
//! over `k` integer registers (Section 6's model). This module lifts that
//! register universe to the rich objects of `tm_model::objects` (counters,
//! FIFO queues, stacks, sets, CAS registers, key-value maps, priority
//! queues, append logs) **without touching a single TM implementation**:
//!
//! * an [`ObjEncoding`] maps one typed object onto a fixed block of base
//!   registers and executes each object operation as a read-modify-write
//!   sequence of register operations *through the transaction* — so every
//!   conflict-detection, versioning, and validation mechanism of the
//!   underlying TM applies unchanged;
//! * a [`TypedSpace`] lays several typed objects out over one register
//!   universe and knows, for each, the [`tm_model::SeqSpec`] the recorded
//!   history must be judged against ([`TypedSpace::registry`]);
//! * a [`TypedStm`] pairs a space with any [`Stm`] and hands out
//!   [`TypedTx`] transaction handles whose operations are recorded at the
//!   *object level* (one `inv`/`ret` pair per object operation, carrying
//!   the object's `ObjId`, operation name, arguments, and return value — see
//!   [`crate::recorder`]), which is what lets the `tm-opacity` checkers and
//!   the `tm-harness` conformance kit judge the history against the object
//!   specifications instead of the register encoding.
//!
//! # Why this is the interesting direction
//!
//! Register probes exercise only the weakest slice of the theory. Richer
//! semantics both *reduce* conflicts (Section 3.4's commutative counter:
//! two increments need not conflict semantically, even though their
//! read-modify-write encodings do) and *surface anomalies that registers
//! cannot express*: snapshot isolation's write skew is invisible to any
//! single-register probe but convicts SI-STM immediately on a two-element
//! set probe, and a torn `get`/`get` pair on a counter catches
//! commit-time-only validation red-handed. The conformance kit in
//! `tm-harness` packages exactly those probes.
//!
//! # Correctness inheritance
//!
//! Each object operation is a deterministic function of the registers it
//! reads, and the encodings are exact implementations of their sequential
//! specifications over the decoded register state. Hence any serialization
//! witnessing register-level opacity replays every object operation
//! according to its spec — an opaque TM stays opaque at the object level.
//! The converse direction is where the probes bite: a TM that lets a
//! transaction observe a register state no serial execution produces (SI's
//! skewed snapshots, commit-time validation's torn reads) produces an
//! object-level history that the object's specification rejects.
//!
//! ```
//! use tm_stm::objects::{encodings::{CounterEnc, SetEnc}, TypedSpace, TypedStm, run_typed_tx};
//! use tm_stm::Tl2Stm;
//!
//! let space = TypedSpace::builder()
//!     .with("hits", CounterEnc)
//!     .with("seen", SetEnc { domain: 8 })
//!     .build();
//! let tm = TypedStm::new(space, |k| Box::new(Tl2Stm::new(k)));
//! let (newly, _) = run_typed_tx(&tm, 0, |tx| {
//!     tx.inc(tx.handle("hits"))?;
//!     tx.insert(tx.handle("seen"), 3)
//! });
//! assert!(newly);
//! let h = tm.history();
//! let specs = tm.registry();
//! assert!(tm_opacity::opacity::is_opaque(&h, &specs).unwrap().opaque);
//! ```

pub mod encodings;

use std::fmt;
use std::sync::Arc;

use crate::api::{Aborted, Livelock, RunStats, Stm, Tx, TxResult};
use crate::recorder::Recorder;
use tm_model::{History, ObjId, OpName, SeqSpec, SpecRegistry, TxId, Value};

/// A view of one typed object's register block inside a live transaction.
///
/// Encodings address registers `0..len` relative to the object's base
/// offset; all accesses go through the underlying [`Tx`], so the TM's
/// conflict detection applies to them like to any other transactional
/// operation.
pub struct RegBlock<'a, 'b> {
    tx: &'a mut (dyn Tx + 'b),
    base: usize,
    len: usize,
}

impl RegBlock<'_, '_> {
    /// Reads slot `i` of the block (aborting the transaction on conflict).
    ///
    /// # Panics
    /// Panics if `i` is outside the object's footprint.
    pub fn read(&mut self, i: usize) -> TxResult<i64> {
        assert!(
            i < self.len,
            "slot {i} outside object footprint {}",
            self.len
        );
        self.tx.read(self.base + i)
    }

    /// Writes `v` to slot `i` of the block.
    ///
    /// # Panics
    /// Panics if `i` is outside the object's footprint.
    pub fn write(&mut self, i: usize, v: i64) -> TxResult<()> {
        assert!(
            i < self.len,
            "slot {i} outside object footprint {}",
            self.len
        );
        self.tx.write(self.base + i, v)
    }

    /// The number of registers in this block.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the block is empty (no object needs zero registers, but the
    /// accessor pair is conventional).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// How one typed object maps onto base registers.
///
/// Implementations must satisfy two contracts:
///
/// 1. **Spec fidelity** — starting from all-zero registers (every register's
///    initial value), the decoded object state is the spec's initial state,
///    and `apply` transforms register state and computes the return value
///    exactly as [`SeqSpec::step`] prescribes for the decoded states.
/// 2. **Transactional purity** — all shared state lives in the registers;
///    `apply` keeps no hidden state across calls, so the TM's abort/retry
///    machinery composes with it freely.
pub trait ObjEncoding: Send + Sync + fmt::Debug {
    /// The sequential specification the recorded object history is judged
    /// against.
    fn spec(&self) -> Arc<dyn SeqSpec>;

    /// The number of base registers the object occupies.
    fn footprint(&self) -> usize;

    /// Executes `op(args)` as register reads/writes through `regs`.
    ///
    /// Returns the operation's return value, or `Err(Aborted)` when the
    /// underlying TM aborted the transaction on a register access.
    ///
    /// # Panics
    /// Panics if `op`/`args` are outside the object's interface or outside
    /// the encoding's configured capacity/domain — both are programming
    /// errors of the workload, not runtime conditions.
    fn apply(&self, regs: &mut RegBlock<'_, '_>, op: &OpName, args: &[Value]) -> TxResult<Value>;
}

/// A handle to one typed object of a [`TypedSpace`].
///
/// Handles are plain indices — cheap to copy and valid for any
/// [`TypedTx`]/[`TypedStm`] built over the same space.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TObj(usize);

/// One typed object as laid out in a space.
#[derive(Debug)]
struct TypedEntry {
    id: ObjId,
    encoding: Arc<dyn ObjEncoding>,
    base: usize,
}

/// A set of typed objects laid out over one register universe.
#[derive(Debug)]
pub struct TypedSpace {
    entries: Vec<TypedEntry>,
    k: usize,
}

/// Builder for [`TypedSpace`] (objects are laid out in insertion order).
#[derive(Debug, Default)]
pub struct TypedSpaceBuilder {
    objs: Vec<(ObjId, Arc<dyn ObjEncoding>)>,
}

impl TypedSpaceBuilder {
    /// Adds a typed object named `name` with the given encoding.
    ///
    /// # Panics
    /// Panics if `name` is already taken.
    pub fn with(mut self, name: &str, encoding: impl ObjEncoding + 'static) -> Self {
        assert!(
            self.objs.iter().all(|(id, _)| id.name() != name),
            "duplicate typed object '{name}'"
        );
        self.objs.push((ObjId::new(name), Arc::new(encoding)));
        self
    }

    /// Finalizes the layout: assigns each object a contiguous register
    /// block, in insertion order.
    pub fn build(self) -> TypedSpace {
        let mut entries = Vec::with_capacity(self.objs.len());
        let mut base = 0;
        for (id, encoding) in self.objs {
            let fp = encoding.footprint();
            entries.push(TypedEntry { id, encoding, base });
            base += fp;
        }
        TypedSpace { entries, k: base }
    }
}

impl TypedSpace {
    /// Starts building a space.
    pub fn builder() -> TypedSpaceBuilder {
        TypedSpaceBuilder::default()
    }

    /// The number of base registers the whole space occupies — the `k` to
    /// construct the underlying TM with.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of typed objects.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the space has no objects.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The handle for the object named `name`.
    ///
    /// # Panics
    /// Panics if no such object exists.
    pub fn handle(&self, name: &str) -> TObj {
        TObj(
            self.entries
                .iter()
                .position(|e| e.id.name() == name)
                .unwrap_or_else(|| panic!("no typed object named '{name}'")),
        )
    }

    /// The model-level object identifier behind a handle.
    pub fn id_of(&self, obj: TObj) -> &ObjId {
        &self.entries[obj.0].id
    }

    /// The object-level specification registry: exactly the specs the
    /// recorded history must be checked against (no register default — a
    /// typed history should contain typed events only).
    pub fn registry(&self) -> SpecRegistry {
        let mut reg = SpecRegistry::new();
        for e in &self.entries {
            reg.insert(e.id.clone(), e.encoding.spec());
        }
        reg
    }
}

/// Any [`Stm`] lifted to a [`TypedSpace`] of rich objects.
///
/// The TM is constructed with exactly the number of registers the space
/// needs; all access goes through [`TypedTx`] handles, so the recorded
/// history is purely object-level.
pub struct TypedStm {
    stm: Box<dyn Stm>,
    space: TypedSpace,
}

impl fmt::Debug for TypedStm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TypedStm")
            .field("stm", &self.stm.name())
            .field("space", &self.space)
            .finish()
    }
}

impl TypedStm {
    /// Lifts the TM built by `make` (called with the space's register
    /// count) to the typed space.
    pub fn new(space: TypedSpace, make: impl FnOnce(usize) -> Box<dyn Stm>) -> Self {
        let stm = make(space.k().max(1));
        assert!(
            stm.k() >= space.k(),
            "TM has k={} but the space needs {}",
            stm.k(),
            space.k()
        );
        TypedStm { stm, space }
    }

    /// The underlying TM.
    pub fn stm(&self) -> &dyn Stm {
        self.stm.as_ref()
    }

    /// The TM's self-reported name.
    pub fn name(&self) -> &'static str {
        self.stm.name()
    }

    /// True if the underlying TM blocks (the global lock): its transactions
    /// cannot be interleaved on one OS thread.
    pub fn blocking(&self) -> bool {
        self.stm.blocking()
    }

    /// The typed-object layout.
    pub fn space(&self) -> &TypedSpace {
        &self.space
    }

    /// The handle for the object named `name` (see [`TypedSpace::handle`]).
    pub fn handle(&self, name: &str) -> TObj {
        self.space.handle(name)
    }

    /// The object-level spec registry for checking [`TypedStm::history`].
    pub fn registry(&self) -> SpecRegistry {
        self.space.registry()
    }

    /// A snapshot of the recorded (object-level) history.
    pub fn history(&self) -> History {
        self.stm.recorder().history()
    }

    /// Starts a typed transaction on behalf of `thread`.
    pub fn begin(&self, thread: usize) -> TypedTx<'_> {
        TypedTx {
            tx: self.stm.begin(thread),
            space: &self.space,
            recorder: self.stm.recorder(),
        }
    }
}

/// A live typed transaction: object operations recorded at object level,
/// executed as register read-modify-writes through the underlying TM.
pub struct TypedTx<'a> {
    tx: Box<dyn Tx + 'a>,
    space: &'a TypedSpace,
    recorder: &'a Recorder,
}

impl TypedTx<'_> {
    /// The model-level transaction identifier.
    pub fn id(&self) -> u32 {
        self.tx.id()
    }

    /// The handle for the object named `name` (convenience mirror of
    /// [`TypedSpace::handle`], usable inside transaction bodies).
    pub fn handle(&self, name: &str) -> TObj {
        self.space.handle(name)
    }

    /// Invokes `op(args)` on `obj`: records the object-level invocation,
    /// runs the encoding's register program through the TM (register events
    /// suppressed), and records the object-level response — or leaves the
    /// invocation pending for the TM's abort event when the transaction
    /// dies mid-operation.
    pub fn invoke(&mut self, obj: TObj, op: &OpName, args: &[Value]) -> TxResult<Value> {
        let entry = &self.space.entries[obj.0];
        let t = TxId(self.tx.id());
        self.recorder
            .begin_object_op(t, entry.id.clone(), op.clone(), args.to_vec());
        let mut regs = RegBlock {
            tx: self.tx.as_mut(),
            base: entry.base,
            len: entry.encoding.footprint(),
        };
        match entry.encoding.apply(&mut regs, op, args) {
            Ok(ret) => {
                self.recorder
                    .end_object_op(t, entry.id.clone(), op.clone(), ret.clone());
                Ok(ret)
            }
            Err(Aborted) => {
                self.recorder.cancel_object_op(t);
                Err(Aborted)
            }
        }
    }

    /// Requests commit.
    pub fn commit(self) -> TxResult<()> {
        self.tx.commit()
    }

    /// Voluntarily aborts.
    pub fn abort(self) {
        self.tx.abort()
    }

    // ---- typed sugar over `invoke` ------------------------------------

    /// `inc()` on a counter.
    pub fn inc(&mut self, obj: TObj) -> TxResult<()> {
        self.invoke(obj, &OpName::Inc, &[]).map(|_| ())
    }

    /// `dec()` on a counter.
    pub fn dec(&mut self, obj: TObj) -> TxResult<()> {
        self.invoke(obj, &OpName::Dec, &[]).map(|_| ())
    }

    /// `get()` on a counter.
    pub fn get(&mut self, obj: TObj) -> TxResult<i64> {
        Ok(self
            .invoke(obj, &OpName::Get, &[])?
            .as_int()
            .expect("get returns Int"))
    }

    /// `enq(v)` on a FIFO queue.
    pub fn enq(&mut self, obj: TObj, v: i64) -> TxResult<()> {
        self.invoke(obj, &OpName::Enq, &[Value::int(v)]).map(|_| ())
    }

    /// `deq()` on a FIFO queue (`None` when empty).
    pub fn deq(&mut self, obj: TObj) -> TxResult<Option<i64>> {
        Ok(self.invoke(obj, &OpName::Deq, &[])?.as_int())
    }

    /// `push(v)` on a stack.
    pub fn push(&mut self, obj: TObj, v: i64) -> TxResult<()> {
        self.invoke(obj, &OpName::Push, &[Value::int(v)])
            .map(|_| ())
    }

    /// `pop()` on a stack (`None` when empty).
    pub fn pop(&mut self, obj: TObj) -> TxResult<Option<i64>> {
        Ok(self.invoke(obj, &OpName::Pop, &[])?.as_int())
    }

    /// `insert(v)` on a set (true iff newly added).
    pub fn insert(&mut self, obj: TObj, v: i64) -> TxResult<bool> {
        Ok(self
            .invoke(obj, &OpName::Insert, &[Value::int(v)])?
            .as_bool()
            .expect("insert returns Bool"))
    }

    /// `remove(v)` on a set (true iff present).
    pub fn remove(&mut self, obj: TObj, v: i64) -> TxResult<bool> {
        Ok(self
            .invoke(obj, &OpName::Remove, &[Value::int(v)])?
            .as_bool()
            .expect("remove returns Bool"))
    }

    /// `contains(v)` on a set.
    pub fn contains(&mut self, obj: TObj, v: i64) -> TxResult<bool> {
        Ok(self
            .invoke(obj, &OpName::Contains, &[Value::int(v)])?
            .as_bool()
            .expect("contains returns Bool"))
    }

    /// `read()` on a register or CAS register.
    pub fn read_reg(&mut self, obj: TObj) -> TxResult<i64> {
        Ok(self
            .invoke(obj, &OpName::Read, &[])?
            .as_int()
            .expect("read returns Int"))
    }

    /// `write(v)` on a register or CAS register.
    pub fn write_reg(&mut self, obj: TObj, v: i64) -> TxResult<()> {
        self.invoke(obj, &OpName::Write, &[Value::int(v)])
            .map(|_| ())
    }

    /// `cas(expected, new)` on a CAS register.
    pub fn cas(&mut self, obj: TObj, expected: i64, new: i64) -> TxResult<bool> {
        Ok(self
            .invoke(obj, &OpName::Cas, &[Value::int(expected), Value::int(new)])?
            .as_bool()
            .expect("cas returns Bool"))
    }

    /// `put(k, v)` on a key-value map (returns the previous binding).
    pub fn put(&mut self, obj: TObj, k: i64, v: i64) -> TxResult<Option<i64>> {
        Ok(self
            .invoke(obj, &OpName::Insert, &[Value::int(k), Value::int(v)])?
            .as_int())
    }

    /// `get(k)` on a key-value map.
    pub fn map_get(&mut self, obj: TObj, k: i64) -> TxResult<Option<i64>> {
        Ok(self.invoke(obj, &OpName::Get, &[Value::int(k)])?.as_int())
    }

    /// `remove(k)` on a key-value map (returns the removed binding).
    pub fn map_remove(&mut self, obj: TObj, k: i64) -> TxResult<Option<i64>> {
        Ok(self
            .invoke(obj, &OpName::Remove, &[Value::int(k)])?
            .as_int())
    }

    /// `insert(v)` on a priority queue.
    pub fn pq_insert(&mut self, obj: TObj, v: i64) -> TxResult<()> {
        self.invoke(obj, &OpName::Insert, &[Value::int(v)])
            .map(|_| ())
    }

    /// `extract_min()` on a priority queue (`None` when empty).
    pub fn extract_min(&mut self, obj: TObj) -> TxResult<Option<i64>> {
        Ok(self
            .invoke(obj, &tm_model::objects::pqueue::extract_min(), &[])?
            .as_int())
    }

    /// `peek_min()` on a priority queue (`None` when empty).
    pub fn peek_min(&mut self, obj: TObj) -> TxResult<Option<i64>> {
        Ok(self
            .invoke(obj, &tm_model::objects::pqueue::peek_min(), &[])?
            .as_int())
    }

    /// `append(v)` on an append log.
    pub fn append(&mut self, obj: TObj, v: i64) -> TxResult<()> {
        self.invoke(obj, &OpName::Append, &[Value::int(v)])
            .map(|_| ())
    }

    /// `read()` on an append log (the full contents).
    pub fn log_read(&mut self, obj: TObj) -> TxResult<Vec<i64>> {
        Ok(self
            .invoke(obj, &OpName::Read, &[])?
            .as_list()
            .expect("log read returns List")
            .iter()
            .filter_map(Value::as_int)
            .collect())
    }
}

/// Runs `body` as a typed transaction, retrying on abort under the inner
/// TM's configured [`crate::RetryPolicy`] (attempt cap + optional
/// backoff). The typed twin of [`crate::api::try_run_tx`]; returns
/// [`Livelock`] once the cap is exhausted.
pub fn try_run_typed_tx<R>(
    stm: &TypedStm,
    thread: usize,
    mut body: impl FnMut(&mut TypedTx<'_>) -> TxResult<R>,
) -> Result<(R, RunStats), Livelock> {
    let policy = stm.stm().retry_policy();
    let mut stats = RunStats::default();
    for attempt in 0..policy.max_attempts {
        if attempt > 0 {
            if let Some(backoff) = policy.backoff {
                backoff.wait(attempt - 1);
            }
        }
        let mut tx = stm.begin(thread);
        match body(&mut tx) {
            Ok(result) => match tx.commit() {
                Ok(()) => {
                    stats.commits += 1;
                    return Ok((result, stats));
                }
                Err(Aborted) => stats.aborts += 1,
            },
            Err(Aborted) => stats.aborts += 1,
        }
    }
    Err(Livelock {
        attempts: policy.max_attempts,
    })
}

/// Runs `body` as a typed transaction, retrying on abort (each retry is a
/// fresh transaction, as the model requires). The typed twin of
/// [`crate::api::run_tx`].
///
/// # Panics
/// Panics when the inner TM's retry policy is exhausted, to surface
/// livelock; use [`try_run_typed_tx`] for the typed error.
pub fn run_typed_tx<R>(
    stm: &TypedStm,
    thread: usize,
    body: impl FnMut(&mut TypedTx<'_>) -> TxResult<R>,
) -> (R, RunStats) {
    match try_run_typed_tx(stm, thread, body) {
        Ok(out) => out,
        Err(Livelock { attempts }) => {
            panic!("typed transaction did not commit after {attempts} retries (livelock?)")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::encodings::*;
    use super::*;
    use tm_model::is_well_formed;
    use tm_opacity::opacity::is_opaque;

    fn playground() -> TypedSpace {
        TypedSpace::builder()
            .with("c", CounterEnc)
            .with("q", QueueEnc { cap: 8 })
            .with("s", SetEnc { domain: 4 })
            .build()
    }

    #[test]
    fn typed_retry_honors_the_inner_tms_configured_policy() {
        use crate::config::{RetryPolicy, StmConfig};
        let tm = TypedStm::new(playground(), |k| {
            Box::new(crate::tl2::Tl2Stm::with_config(
                &StmConfig::new(k).retry(RetryPolicy::bounded(3)),
            ))
        });
        let out = try_run_typed_tx(&tm, 0, |_tx| -> TxResult<()> { Err(Aborted) });
        assert_eq!(out, Err(Livelock { attempts: 3 }));
        // A committing body still succeeds under the bounded policy.
        let c = tm.handle("c");
        let (v, stats) = try_run_typed_tx(&tm, 0, |tx| {
            tx.inc(c)?;
            tx.get(c)
        })
        .expect("commits on the first attempt");
        assert_eq!(v, 1);
        assert_eq!(stats.commits, 1);
    }

    #[test]
    fn layout_assigns_disjoint_blocks() {
        let space = playground();
        assert_eq!(space.len(), 3);
        // counter(1) + queue(2 + 8) + set(4)
        assert_eq!(space.k(), 1 + 10 + 4);
        assert_eq!(space.id_of(space.handle("q")).name(), "q");
        assert!(!space.is_empty());
    }

    #[test]
    #[should_panic(expected = "duplicate typed object")]
    fn duplicate_names_rejected() {
        let _ = TypedSpace::builder()
            .with("x", CounterEnc)
            .with("x", CounterEnc);
    }

    #[test]
    #[should_panic(expected = "no typed object named")]
    fn unknown_handle_panics() {
        playground().handle("nope");
    }

    #[test]
    fn registry_binds_each_object_to_its_spec() {
        let space = playground();
        let reg = space.registry();
        assert_eq!(reg.spec_for(&ObjId::new("c")).unwrap().name(), "counter");
        assert_eq!(reg.spec_for(&ObjId::new("q")).unwrap().name(), "fifo-queue");
        assert_eq!(reg.spec_for(&ObjId::new("s")).unwrap().name(), "int-set");
        // No register default: unknown objects have no spec.
        assert!(reg.spec_for(&ObjId::new("r0")).is_none());
    }

    #[test]
    fn every_tm_serves_typed_objects_with_object_level_histories() {
        for make in crate::all_stms(1)
            .into_iter()
            .map(|s| crate::factory_by_name(s.name()))
        {
            let tm = TypedStm::new(playground(), make);
            let c = tm.handle("c");
            let q = tm.handle("q");
            let s = tm.handle("s");
            let ((), _) = run_typed_tx(&tm, 0, |tx| {
                tx.inc(c)?;
                tx.inc(c)?;
                tx.enq(q, 7)?;
                tx.insert(s, 2).map(|_| ())
            });
            let (observed, _) = run_typed_tx(&tm, 0, |tx| {
                let count = tx.get(c)?;
                let head = tx.deq(q)?;
                let present = tx.contains(s, 2)?;
                Ok((count, head, present))
            });
            assert_eq!(observed, (2, Some(7), true), "{}", tm.name());
            let h = tm.history();
            assert!(is_well_formed(&h), "{}: {h}", tm.name());
            // Every operation event names a typed object, never a register.
            assert!(
                h.events().iter().all(|e| e
                    .obj()
                    .map_or(true, |o| ["c", "q", "s"].contains(&o.name()))),
                "{}: register-level events leaked into the typed history: {h}",
                tm.name()
            );
            let report = is_opaque(&h, &tm.registry()).unwrap();
            assert!(report.opaque, "{}: {h}", tm.name());
        }
    }

    #[test]
    fn aborted_object_op_leaves_a_well_formed_history() {
        // Force a TL2 conflict mid-object-op: the object-level invocation
        // stays pending and the TM's abort answers it.
        let space = TypedSpace::builder().with("c", CounterEnc).build();
        let tm = TypedStm::new(space, |k| Box::new(crate::Tl2Stm::new(k)));
        let c = tm.handle("c");
        let mut t1 = tm.begin(0);
        assert_eq!(t1.get(c), Ok(0));
        // A concurrent committed inc makes t1's next read stale under TL2.
        run_typed_tx(&tm, 1, |tx| tx.inc(c));
        assert_eq!(t1.get(c), Err(Aborted));
        drop(t1);
        let h = tm.history();
        assert!(is_well_formed(&h), "{h}");
        assert!(is_opaque(&h, &tm.registry()).unwrap().opaque, "{h}");
    }

    #[test]
    fn typed_handles_compose_with_all_sugar() {
        let space = TypedSpace::builder()
            .with("r", RegisterEnc)
            .with("cas", CasEnc)
            .with("m", MapEnc { keys: 4 })
            .with("pq", PQueueEnc { domain: 5 })
            .with("log", LogEnc { cap: 4 })
            .with("st", StackEnc { cap: 4 })
            .build();
        let tm = TypedStm::new(space, |k| Box::new(crate::DstmStm::new(k)));
        let (out, _) = run_typed_tx(&tm, 0, |tx| {
            let r = tx.handle("r");
            let cas = tx.handle("cas");
            let m = tx.handle("m");
            let pq = tx.handle("pq");
            let log = tx.handle("log");
            let st = tx.handle("st");
            tx.write_reg(r, 9)?;
            let rv = tx.read_reg(r)?;
            let ok = tx.cas(cas, 0, 5)?;
            let failed = tx.cas(cas, 0, 6)?;
            let old = tx.put(m, 1, 10)?;
            let newer = tx.put(m, 1, 20)?;
            let got = tx.map_get(m, 1)?;
            let gone = tx.map_remove(m, 1)?;
            tx.pq_insert(pq, 4)?;
            tx.pq_insert(pq, 2)?;
            let peek = tx.peek_min(pq)?;
            let min = tx.extract_min(pq)?;
            tx.append(log, 1)?;
            tx.append(log, 2)?;
            let contents = tx.log_read(log)?;
            tx.push(st, 8)?;
            let top = tx.pop(st)?;
            let empty = tx.pop(st)?;
            Ok((
                rv, ok, failed, old, newer, got, gone, peek, min, contents, top, empty,
            ))
        });
        assert_eq!(
            out,
            (
                9,
                true,
                false,
                None,
                Some(10),
                Some(20),
                Some(20),
                Some(2),
                Some(2),
                vec![1, 2],
                Some(8),
                None
            )
        );
        let h = tm.history();
        assert!(is_well_formed(&h), "{h}");
        assert!(is_opaque(&h, &tm.registry()).unwrap().opaque, "{h}");
    }
}
