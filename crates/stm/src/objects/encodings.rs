//! Register encodings for the nine objects of `tm_model::objects`.
//!
//! Every encoding maps an object's state onto a fixed block of `i64`
//! registers such that **all-zero registers decode to the spec's initial
//! state**, and executes each operation as a read-modify-write register
//! program through the transaction. Capacity/domain bounds are encoding
//! parameters (registers are a dense universe, so unbounded objects get a
//! configured ceiling); exceeding them is a workload programming error and
//! panics with a description of the bound.
//!
//! | encoding | registers | layout |
//! |---|---|---|
//! | [`CounterEnc`] | 1 | the count |
//! | [`RegisterEnc`] | 1 | the value |
//! | [`CasEnc`] | 1 | the value |
//! | [`QueueEnc`] | `cap + 2` | head index, tail index, slots (no reuse) |
//! | [`StackEnc`] | `cap + 1` | top index, slots |
//! | [`SetEnc`] | `domain` | membership flag per element of `0..domain` |
//! | [`MapEnc`] | `keys` | per key: `0` = absent, else `value + 1` |
//! | [`PQueueEnc`] | `domain` | multiplicity per priority of `0..domain` |
//! | [`LogEnc`] | `cap + 1` | length, slots |

use std::sync::Arc;

use super::{ObjEncoding, RegBlock};
use crate::api::TxResult;
use tm_model::objects::{
    AppendLog, CasRegister, Counter, FifoQueue, IntSet, KvMap, PriorityQueue, Register, Stack,
};
use tm_model::{OpName, SeqSpec, Value};

fn int_arg(args: &[Value], what: &str) -> i64 {
    match args {
        [Value::Int(v)] => *v,
        _ => panic!("{what} takes exactly one integer argument, got {args:?}"),
    }
}

fn bad_op(obj: &str, op: &OpName) -> ! {
    panic!("operation '{op}' is not part of the {obj} interface")
}

/// The commutative counter of Section 3.4: `inc`/`dec`/`get` over one
/// register holding the count.
#[derive(Clone, Copy, Debug, Default)]
pub struct CounterEnc;

impl ObjEncoding for CounterEnc {
    fn spec(&self) -> Arc<dyn SeqSpec> {
        Arc::new(Counter)
    }

    fn footprint(&self) -> usize {
        1
    }

    fn apply(&self, regs: &mut RegBlock<'_, '_>, op: &OpName, args: &[Value]) -> TxResult<Value> {
        assert!(args.is_empty(), "counter operations take no arguments");
        let v = regs.read(0)?;
        match op {
            OpName::Inc => regs.write(0, v + 1).map(|()| Value::Ok),
            OpName::Dec => regs.write(0, v - 1).map(|()| Value::Ok),
            OpName::Get => Ok(Value::int(v)),
            other => bad_op("counter", other),
        }
    }
}

/// A plain read/write register over one base register.
#[derive(Clone, Copy, Debug, Default)]
pub struct RegisterEnc;

impl ObjEncoding for RegisterEnc {
    fn spec(&self) -> Arc<dyn SeqSpec> {
        Arc::new(Register::new(0))
    }

    fn footprint(&self) -> usize {
        1
    }

    fn apply(&self, regs: &mut RegBlock<'_, '_>, op: &OpName, args: &[Value]) -> TxResult<Value> {
        match op {
            OpName::Read => {
                assert!(args.is_empty(), "read takes no arguments");
                Ok(Value::int(regs.read(0)?))
            }
            OpName::Write => {
                let v = int_arg(args, "write");
                regs.write(0, v).map(|()| Value::Ok)
            }
            other => bad_op("register", other),
        }
    }
}

/// A compare-and-swap register: `read`/`write`/`cas` over one register.
#[derive(Clone, Copy, Debug, Default)]
pub struct CasEnc;

impl ObjEncoding for CasEnc {
    fn spec(&self) -> Arc<dyn SeqSpec> {
        Arc::new(CasRegister::new(0))
    }

    fn footprint(&self) -> usize {
        1
    }

    fn apply(&self, regs: &mut RegBlock<'_, '_>, op: &OpName, args: &[Value]) -> TxResult<Value> {
        match op {
            OpName::Read => {
                assert!(args.is_empty(), "read takes no arguments");
                Ok(Value::int(regs.read(0)?))
            }
            OpName::Write => {
                let v = int_arg(args, "write");
                regs.write(0, v).map(|()| Value::Ok)
            }
            OpName::Cas => {
                let (expected, new) = match args {
                    [Value::Int(e), Value::Int(n)] => (*e, *n),
                    _ => panic!("cas takes (expected, new), got {args:?}"),
                };
                let v = regs.read(0)?;
                if v == expected {
                    regs.write(0, new)?;
                    Ok(Value::Bool(true))
                } else {
                    Ok(Value::Bool(false))
                }
            }
            other => bad_op("cas-register", other),
        }
    }
}

/// A FIFO queue: `enq`/`deq` over head index, tail index, and `cap` slots.
///
/// Slots are *not* reused: `cap` bounds the total number of enqueues over
/// the object's lifetime (registers are cheap; reuse would require the
/// overflow check to read the consumer-owned head index, putting every
/// producer in conflict with every consumer).
#[derive(Clone, Copy, Debug)]
pub struct QueueEnc {
    /// Total enqueue capacity over the object lifetime.
    pub cap: usize,
}

impl ObjEncoding for QueueEnc {
    fn spec(&self) -> Arc<dyn SeqSpec> {
        Arc::new(FifoQueue)
    }

    fn footprint(&self) -> usize {
        self.cap + 2
    }

    fn apply(&self, regs: &mut RegBlock<'_, '_>, op: &OpName, args: &[Value]) -> TxResult<Value> {
        match op {
            OpName::Enq => {
                let v = int_arg(args, "enq");
                let t = regs.read(1)?;
                assert!(
                    (t as usize) < self.cap,
                    "typed queue capacity {} exhausted (raise QueueEnc.cap)",
                    self.cap
                );
                regs.write(2 + t as usize, v)?;
                regs.write(1, t + 1)?;
                Ok(Value::Ok)
            }
            OpName::Deq => {
                assert!(args.is_empty(), "deq takes no arguments");
                let h = regs.read(0)?;
                let t = regs.read(1)?;
                // `h >= t` (not `==`) tolerates the torn head/tail pairs a
                // non-opaque TM can expose to live transactions.
                if h >= t {
                    return Ok(Value::Unit);
                }
                let v = regs.read(2 + h as usize)?;
                regs.write(0, h + 1)?;
                Ok(Value::int(v))
            }
            other => bad_op("fifo-queue", other),
        }
    }
}

/// A LIFO stack: `push`/`pop` over a top index and `cap` slots.
#[derive(Clone, Copy, Debug)]
pub struct StackEnc {
    /// Maximum stack depth.
    pub cap: usize,
}

impl ObjEncoding for StackEnc {
    fn spec(&self) -> Arc<dyn SeqSpec> {
        Arc::new(Stack)
    }

    fn footprint(&self) -> usize {
        self.cap + 1
    }

    fn apply(&self, regs: &mut RegBlock<'_, '_>, op: &OpName, args: &[Value]) -> TxResult<Value> {
        match op {
            OpName::Push => {
                let v = int_arg(args, "push");
                let t = regs.read(0)?;
                assert!(
                    (t as usize) < self.cap,
                    "typed stack capacity {} exhausted (raise StackEnc.cap)",
                    self.cap
                );
                regs.write(1 + t as usize, v)?;
                regs.write(0, t + 1)?;
                Ok(Value::Ok)
            }
            OpName::Pop => {
                assert!(args.is_empty(), "pop takes no arguments");
                let t = regs.read(0)?;
                if t <= 0 {
                    return Ok(Value::Unit);
                }
                let v = regs.read(t as usize)?;
                regs.write(0, t - 1)?;
                Ok(Value::int(v))
            }
            other => bad_op("stack", other),
        }
    }
}

/// An integer set over the bounded domain `0..domain`: one membership
/// register per element.
#[derive(Clone, Copy, Debug)]
pub struct SetEnc {
    /// Elements are restricted to `0..domain`.
    pub domain: usize,
}

impl SetEnc {
    fn slot(&self, args: &[Value], what: &str) -> usize {
        let v = int_arg(args, what);
        assert!(
            v >= 0 && (v as usize) < self.domain,
            "set element {v} outside encoding domain 0..{}",
            self.domain
        );
        v as usize
    }
}

impl ObjEncoding for SetEnc {
    fn spec(&self) -> Arc<dyn SeqSpec> {
        Arc::new(IntSet)
    }

    fn footprint(&self) -> usize {
        self.domain
    }

    fn apply(&self, regs: &mut RegBlock<'_, '_>, op: &OpName, args: &[Value]) -> TxResult<Value> {
        match op {
            OpName::Insert => {
                let slot = self.slot(args, "insert");
                let present = regs.read(slot)? != 0;
                regs.write(slot, 1)?;
                Ok(Value::Bool(!present))
            }
            OpName::Remove => {
                let slot = self.slot(args, "remove");
                let present = regs.read(slot)? != 0;
                regs.write(slot, 0)?;
                Ok(Value::Bool(present))
            }
            OpName::Contains => {
                let slot = self.slot(args, "contains");
                Ok(Value::Bool(regs.read(slot)? != 0))
            }
            other => bad_op("int-set", other),
        }
    }
}

/// An integer→integer map over the bounded key domain `0..keys`; values
/// must be non-negative (stored as `value + 1`, with `0` meaning absent).
#[derive(Clone, Copy, Debug)]
pub struct MapEnc {
    /// Keys are restricted to `0..keys`.
    pub keys: usize,
}

impl MapEnc {
    fn key_slot(&self, k: i64) -> usize {
        assert!(
            k >= 0 && (k as usize) < self.keys,
            "map key {k} outside encoding domain 0..{}",
            self.keys
        );
        k as usize
    }

    fn decode(stored: i64) -> Value {
        if stored == 0 {
            Value::Unit
        } else {
            Value::int(stored - 1)
        }
    }
}

impl ObjEncoding for MapEnc {
    fn spec(&self) -> Arc<dyn SeqSpec> {
        Arc::new(KvMap)
    }

    fn footprint(&self) -> usize {
        self.keys
    }

    fn apply(&self, regs: &mut RegBlock<'_, '_>, op: &OpName, args: &[Value]) -> TxResult<Value> {
        match op {
            OpName::Insert => {
                let (k, v) = match args {
                    [Value::Int(k), Value::Int(v)] => (*k, *v),
                    _ => panic!("put takes (key, value), got {args:?}"),
                };
                assert!(
                    v >= 0,
                    "map value {v} must be non-negative (encoded as v + 1)"
                );
                let slot = self.key_slot(k);
                let old = regs.read(slot)?;
                regs.write(slot, v + 1)?;
                Ok(Self::decode(old))
            }
            OpName::Remove => {
                let slot = self.key_slot(int_arg(args, "remove"));
                let old = regs.read(slot)?;
                regs.write(slot, 0)?;
                Ok(Self::decode(old))
            }
            OpName::Get => {
                let slot = self.key_slot(int_arg(args, "get"));
                Ok(Self::decode(regs.read(slot)?))
            }
            other => bad_op("kv-map", other),
        }
    }
}

/// A min-priority queue over the bounded priority domain `0..domain`: one
/// multiplicity register per priority; `extract_min`/`peek_min` scan from
/// the lowest priority up.
#[derive(Clone, Copy, Debug)]
pub struct PQueueEnc {
    /// Priorities are restricted to `0..domain`.
    pub domain: usize,
}

impl ObjEncoding for PQueueEnc {
    fn spec(&self) -> Arc<dyn SeqSpec> {
        Arc::new(PriorityQueue)
    }

    fn footprint(&self) -> usize {
        self.domain
    }

    fn apply(&self, regs: &mut RegBlock<'_, '_>, op: &OpName, args: &[Value]) -> TxResult<Value> {
        match op {
            OpName::Insert => {
                let v = int_arg(args, "insert");
                assert!(
                    v >= 0 && (v as usize) < self.domain,
                    "priority {v} outside encoding domain 0..{}",
                    self.domain
                );
                let c = regs.read(v as usize)?;
                regs.write(v as usize, c + 1)?;
                Ok(Value::Ok)
            }
            OpName::Custom(name) if &**name == "extract_min" => {
                assert!(args.is_empty(), "extract_min takes no arguments");
                for p in 0..self.domain {
                    let c = regs.read(p)?;
                    if c > 0 {
                        regs.write(p, c - 1)?;
                        return Ok(Value::int(p as i64));
                    }
                }
                Ok(Value::Unit)
            }
            OpName::Custom(name) if &**name == "peek_min" => {
                assert!(args.is_empty(), "peek_min takes no arguments");
                for p in 0..self.domain {
                    if regs.read(p)? > 0 {
                        return Ok(Value::int(p as i64));
                    }
                }
                Ok(Value::Unit)
            }
            other => bad_op("priority-queue", other),
        }
    }
}

/// An append-only log: a length register and `cap` slots.
#[derive(Clone, Copy, Debug)]
pub struct LogEnc {
    /// Total append capacity over the object lifetime.
    pub cap: usize,
}

impl ObjEncoding for LogEnc {
    fn spec(&self) -> Arc<dyn SeqSpec> {
        Arc::new(AppendLog)
    }

    fn footprint(&self) -> usize {
        self.cap + 1
    }

    fn apply(&self, regs: &mut RegBlock<'_, '_>, op: &OpName, args: &[Value]) -> TxResult<Value> {
        match op {
            OpName::Append => {
                let v = int_arg(args, "append");
                let n = regs.read(0)?;
                assert!(
                    (n as usize) < self.cap,
                    "typed log capacity {} exhausted (raise LogEnc.cap)",
                    self.cap
                );
                regs.write(1 + n as usize, v)?;
                regs.write(0, n + 1)?;
                Ok(Value::Ok)
            }
            OpName::Read => {
                assert!(args.is_empty(), "read takes no arguments");
                let n = (regs.read(0)?.max(0) as usize).min(self.cap);
                let mut out = Vec::with_capacity(n);
                for i in 0..n {
                    out.push(Value::int(regs.read(1 + i)?));
                }
                Ok(Value::List(out))
            }
            other => bad_op("append-log", other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objects::{run_typed_tx, TypedSpace, TypedStm};
    use crate::Tl2Stm;

    /// Replays a random-ish operation mix through the encoding on a real TM
    /// and through the sequential spec, asserting identical return values —
    /// the spec-fidelity contract of every encoding.
    fn assert_matches_spec(enc: impl ObjEncoding + Copy + 'static, ops: &[(OpName, Vec<Value>)]) {
        let spec = enc.spec();
        let space = TypedSpace::builder().with("o", enc).build();
        let tm = TypedStm::new(space, |k| Box::new(Tl2Stm::new(k)));
        let o = tm.handle("o");
        let mut state = spec.initial();
        for (op, args) in ops {
            let (observed, _) = run_typed_tx(&tm, 0, |tx| tx.invoke(o, op, args));
            let (next, expected) = spec
                .step(&state, op, args)
                .unwrap_or_else(|| panic!("spec rejects {op}({args:?}) in state {state}"));
            assert_eq!(observed, expected, "{op}({args:?}) in state {state}");
            state = next;
        }
    }

    fn i(v: i64) -> Vec<Value> {
        vec![Value::int(v)]
    }

    #[test]
    fn counter_matches_spec() {
        assert_matches_spec(
            CounterEnc,
            &[
                (OpName::Inc, vec![]),
                (OpName::Inc, vec![]),
                (OpName::Get, vec![]),
                (OpName::Dec, vec![]),
                (OpName::Get, vec![]),
            ],
        );
    }

    #[test]
    fn register_and_cas_match_spec() {
        assert_matches_spec(
            RegisterEnc,
            &[
                (OpName::Read, vec![]),
                (OpName::Write, i(5)),
                (OpName::Read, vec![]),
            ],
        );
        assert_matches_spec(
            CasEnc,
            &[
                (OpName::Cas, vec![Value::int(0), Value::int(3)]),
                (OpName::Cas, vec![Value::int(0), Value::int(9)]),
                (OpName::Read, vec![]),
                (OpName::Write, i(1)),
                (OpName::Cas, vec![Value::int(1), Value::int(2)]),
            ],
        );
    }

    #[test]
    fn queue_matches_spec_including_empty_deq() {
        assert_matches_spec(
            QueueEnc { cap: 8 },
            &[
                (OpName::Deq, vec![]),
                (OpName::Enq, i(1)),
                (OpName::Enq, i(2)),
                (OpName::Deq, vec![]),
                (OpName::Enq, i(3)),
                (OpName::Deq, vec![]),
                (OpName::Deq, vec![]),
                (OpName::Deq, vec![]),
            ],
        );
    }

    #[test]
    fn stack_matches_spec() {
        assert_matches_spec(
            StackEnc { cap: 4 },
            &[
                (OpName::Pop, vec![]),
                (OpName::Push, i(1)),
                (OpName::Push, i(2)),
                (OpName::Pop, vec![]),
                (OpName::Pop, vec![]),
                (OpName::Pop, vec![]),
            ],
        );
    }

    #[test]
    fn set_matches_spec() {
        assert_matches_spec(
            SetEnc { domain: 4 },
            &[
                (OpName::Contains, i(2)),
                (OpName::Insert, i(2)),
                (OpName::Insert, i(2)),
                (OpName::Contains, i(2)),
                (OpName::Remove, i(2)),
                (OpName::Remove, i(2)),
                (OpName::Contains, i(2)),
                (OpName::Insert, i(0)),
                (OpName::Insert, i(3)),
            ],
        );
    }

    #[test]
    fn map_matches_spec() {
        assert_matches_spec(
            MapEnc { keys: 3 },
            &[
                (OpName::Get, i(1)),
                (OpName::Insert, vec![Value::int(1), Value::int(10)]),
                (OpName::Insert, vec![Value::int(1), Value::int(0)]),
                (OpName::Get, i(1)),
                (OpName::Remove, i(1)),
                (OpName::Get, i(1)),
                (OpName::Remove, i(2)),
            ],
        );
    }

    #[test]
    fn pqueue_matches_spec_with_ties() {
        assert_matches_spec(
            PQueueEnc { domain: 6 },
            &[
                (tm_model::objects::pqueue::extract_min(), vec![]),
                (OpName::Insert, i(4)),
                (OpName::Insert, i(4)),
                (OpName::Insert, i(1)),
                (tm_model::objects::pqueue::peek_min(), vec![]),
                (tm_model::objects::pqueue::extract_min(), vec![]),
                (tm_model::objects::pqueue::extract_min(), vec![]),
                (tm_model::objects::pqueue::extract_min(), vec![]),
                (tm_model::objects::pqueue::extract_min(), vec![]),
            ],
        );
    }

    #[test]
    fn log_matches_spec() {
        assert_matches_spec(
            LogEnc { cap: 4 },
            &[
                (OpName::Read, vec![]),
                (OpName::Append, i(7)),
                (OpName::Append, i(8)),
                (OpName::Read, vec![]),
            ],
        );
    }

    #[test]
    #[should_panic(expected = "capacity 2 exhausted")]
    fn queue_capacity_guard() {
        let space = TypedSpace::builder().with("q", QueueEnc { cap: 2 }).build();
        let tm = TypedStm::new(space, |k| Box::new(Tl2Stm::new(k)));
        let q = tm.handle("q");
        run_typed_tx(&tm, 0, |tx| {
            tx.enq(q, 1)?;
            tx.enq(q, 2)?;
            tx.enq(q, 3)
        });
    }

    #[test]
    #[should_panic(expected = "outside encoding domain")]
    fn set_domain_guard() {
        let space = TypedSpace::builder()
            .with("s", SetEnc { domain: 2 })
            .build();
        let tm = TypedStm::new(space, |k| Box::new(Tl2Stm::new(k)));
        let s = tm.handle("s");
        run_typed_tx(&tm, 0, |tx| tx.insert(s, 5));
    }

    #[test]
    #[should_panic(expected = "not part of the counter interface")]
    fn foreign_op_rejected() {
        let space = TypedSpace::builder().with("c", CounterEnc).build();
        let tm = TypedStm::new(space, |k| Box::new(Tl2Stm::new(k)));
        let c = tm.handle("c");
        run_typed_tx(&tm, 0, |tx| tx.invoke(c, &OpName::Enq, &[]));
    }
}
