//! An ASTM-like TM (Marathe, Scherer, Scott — DISC 2005), lazy-acquire
//! flavour.
//!
//! The *second* system the paper places at the Θ(k) point ("DSTM and ASTM
//! ensure opacity and have the above three properties, and require, in the
//! worst case, Θ(k) steps to complete a single operation"). Like DSTM it is
//! progressive, single-version, invisible-read, and opaque — so Theorem 3
//! binds it — but the write path differs materially:
//!
//! * **lazy acquire**: writes are buffered locally; objects are acquired
//!   only at commit time (DSTM acquires eagerly at the write). Write
//!   operations therefore cost 0 base-object steps and writer-writer
//!   conflicts surface only between committers;
//! * **per-read incremental validation**: identical to DSTM — Θ(read set)
//!   steps per read, the cost opacity forces on invisible readers.
//!
//! Having both protocols at the same design-space point demonstrates that
//! the Ω(k) bound is a property of the *point*, not of one algorithm.

use parking_lot::Mutex;
use std::sync::atomic::AtomicU64;
use std::sync::Arc;

use crate::api::{Aborted, Stm, StmProperties, Tx, TxResult};
use crate::base::{Meter, OpKind, StepReport};
use crate::config::{RetryPolicy, StmConfig};
use crate::recorder::Recorder;
use crate::trace_cells::{AccessKind, CellId, StepProbe};
use tm_model::{NestingInfo, NestingMode, TxId};

/// Committed object state: value plus a modification counter that lets
/// invisible readers detect overwrites (a "version" in the loose sense —
/// there is still only ever one stored value, so the TM is single-version).
#[derive(Debug)]
struct AstmObj {
    inner: Mutex<(i64, u64)>, // (value, modification count)
    /// Commit-time ownership flag (one writer at a time per object).
    owned: AtomicU64, // 0 = free, else owner tx id
}

/// The ASTM-like TM over `k` registers.
#[derive(Debug)]
pub struct AstmStm {
    objs: Vec<AstmObj>,
    recorder: Recorder,
    retry: RetryPolicy,
    /// (child, parent) pairs of closed-nested scopes opened so far, for
    /// flattening recorded histories (Section 7 / experiment E22).
    nested: Mutex<Vec<(u32, u32)>>,
    probe: Option<Arc<dyn StepProbe>>,
}

impl AstmStm {
    /// An ASTM with `k` registers initialized to 0.
    pub fn new(k: usize) -> Self {
        Self::with_config(&StmConfig::new(k))
    }

    /// An ASTM built from an explicit configuration (initial values,
    /// recording, retry policy; no clock, no contention manager).
    pub fn with_config(cfg: &StmConfig) -> Self {
        AstmStm {
            objs: (0..cfg.k())
                .map(|i| AstmObj {
                    inner: Mutex::new((cfg.initial(i), 0)),
                    owned: AtomicU64::new(0),
                })
                .collect(),
            recorder: cfg.build_recorder(),
            retry: cfg.retry_policy(),
            nested: Mutex::new(Vec::new()),
            probe: cfg.step_probe(),
        }
    }

    /// Starts a transaction with the concrete handle, which additionally
    /// exposes the closed-nesting scope API ([`AstmTx::begin_nested`]).
    pub fn begin_astm(&self, _thread: usize) -> AstmTx<'_> {
        let id = self.recorder.fresh_tx();
        AstmTx {
            stm: self,
            id,
            reads: Vec::new(),
            writes: Vec::new(),
            scope: None,
            meter: Meter::with_probe(_thread, self.probe.clone()),
            finished: false,
        }
    }

    /// The nesting structure of the recorded history: pass it with
    /// [`Stm::recorder`]'s history to [`tm_model::flatten`] before
    /// checking opacity.
    pub fn nesting_info(&self) -> NestingInfo {
        let mut info = NestingInfo::new();
        for &(child, parent) in self.nested.lock().iter() {
            info = info.child(child, parent, NestingMode::Closed);
        }
        info
    }

    /// One metered load of the object's committed (value, modcount).
    fn snapshot(&self, obj: usize, m: &mut Meter) -> (i64, u64) {
        m.touch(CellId::Record(obj as u32), AccessKind::Read);
        *self.objs[obj].inner.lock()
    }
}

/// A live closed-nested scope inside an [`AstmTx`] (one level, matching
/// the Section 7 translation).
#[derive(Debug)]
struct NestedScope {
    /// The child's model-level transaction id.
    child: TxId,
    /// Parent read-set length at scope entry (child reads come after).
    reads_mark: usize,
    /// Parent redo log at scope entry, restored on child abort.
    writes_before: Vec<(usize, i64)>,
}

/// A live ASTM transaction.
pub struct AstmTx<'a> {
    stm: &'a AstmStm,
    id: TxId,
    /// Invisible read set: (object, modcount observed).
    reads: Vec<(usize, u64)>,
    /// Lazy redo log, sorted by object index for deadlock-free acquisition.
    writes: Vec<(usize, i64)>,
    /// The open closed-nested scope, if any.
    scope: Option<NestedScope>,
    meter: Meter,
    finished: bool,
}

impl Stm for AstmStm {
    fn name(&self) -> &'static str {
        "astm"
    }

    fn k(&self) -> usize {
        self.objs.len()
    }

    fn begin(&self, thread: usize) -> Box<dyn Tx + '_> {
        Box::new(self.begin_astm(thread))
    }

    fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    fn retry_policy(&self) -> RetryPolicy {
        self.retry
    }

    fn properties(&self) -> StmProperties {
        StmProperties {
            progressive: true,
            single_version: true,
            invisible_reads: true,
            opaque_by_design: true,
            serializable_by_design: true,
        }
    }
}

impl AstmTx<'_> {
    /// The id operations are recorded under: the child's while a nested
    /// scope is open, the transaction's own otherwise.
    fn rec_id(&self) -> TxId {
        self.scope.as_ref().map(|s| s.child).unwrap_or(self.id)
    }

    /// Opens a closed-nested transaction (Section 7; experiment E22).
    ///
    /// Until [`AstmTx::commit_nested`] or [`AstmTx::abort_nested`], reads
    /// and writes execute in the child's name: the child sees the parent's
    /// buffered writes (the paper: "a nested transaction should observe
    /// the changes done by its parent") and aborting the child restores
    /// the parent's redo log exactly — a partial abort the flat `Tx`
    /// interface cannot express.
    ///
    /// One level deep, matching [`tm_model::flatten`]'s translation.
    ///
    /// # Panics
    /// Panics if a nested scope is already open.
    pub fn begin_nested(&mut self) {
        assert!(
            self.scope.is_none(),
            "nesting is one level deep (flatten bottom-up)"
        );
        let child = self.stm.recorder.fresh_tx();
        self.stm.nested.lock().push((child.0, self.id.0));
        self.scope = Some(NestedScope {
            child,
            reads_mark: self.reads.len(),
            writes_before: self.writes.clone(),
        });
    }

    /// Commits the open nested scope into the parent (a closed commit is
    /// internal: the child's reads and writes simply remain the parent's).
    ///
    /// # Panics
    /// Panics if no nested scope is open.
    pub fn commit_nested(&mut self) {
        let scope = self.scope.take().expect("no nested scope open");
        self.stm.recorder.try_commit(scope.child);
        self.stm.recorder.commit(scope.child);
    }

    /// Aborts the open nested scope: the parent's redo log is restored to
    /// its state at `begin_nested` and the child's reads stop constraining
    /// the parent's validation.
    ///
    /// # Panics
    /// Panics if no nested scope is open.
    pub fn abort_nested(&mut self) {
        let scope = self.scope.take().expect("no nested scope open");
        self.writes = scope.writes_before;
        self.reads.truncate(scope.reads_mark);
        self.stm.recorder.try_abort(scope.child);
        self.stm.recorder.abort(scope.child);
    }

    /// Incremental validation: every recorded modcount must be current and
    /// no read object may be owned by a committing peer (without the
    /// ownership check, two committers with disjoint write sets could both
    /// validate before either publishes — the classic r-w cycle).
    /// Θ(|read set|) — the Theorem 3 cost.
    fn validate_read_set(&mut self) -> bool {
        let stm = self.stm;
        let me = self.id.0 as u64;
        for i in 0..self.reads.len() {
            let (obj, seen) = self.reads[i];
            let owner = self
                .meter
                .load_u64(CellId::Lock(obj as u32), &stm.objs[obj].owned);
            if owner != 0 && owner != me {
                return false;
            }
            if stm.snapshot(obj, &mut self.meter).1 != seen {
                return false;
            }
        }
        true
    }

    fn abort_op(&mut self) -> Aborted {
        self.meter.end_op();
        self.finished = true;
        if let Some(scope) = self.scope.take() {
            // The forced abort answers the child's pending invocation; the
            // parent then aborts voluntarily (its fate is sealed).
            self.stm.recorder.abort(scope.child);
            self.stm.recorder.try_abort(self.id);
        }
        self.stm.recorder.abort(self.id);
        Aborted
    }

    /// Releases commit-time ownership of `held` objects.
    fn release(&mut self, held: &[usize]) {
        for &obj in held {
            self.meter
                .store_u64(CellId::Lock(obj as u32), &self.stm.objs[obj].owned, 0);
        }
    }
}

impl Tx for AstmTx<'_> {
    fn read(&mut self, obj: usize) -> TxResult<i64> {
        let rid = self.rec_id();
        self.stm.recorder.inv_read(rid, obj);
        self.meter.begin_op(OpKind::Read);
        // Lazy writes: read-own-write from the buffer, no base access.
        // With a nested scope open this is also where the child observes
        // the parent's buffered writes.
        if let Some(&(_, v)) = self.writes.iter().find(|(o, _)| *o == obj) {
            self.meter.end_op();
            self.stm.recorder.ret_read(rid, obj, v);
            return Ok(v);
        }
        let (v, modc) = self.stm.snapshot(obj, &mut self.meter);
        self.reads.push((obj, modc));
        // Opacity's price: re-validate the whole read set on every read.
        if !self.validate_read_set() {
            return Err(self.abort_op());
        }
        self.meter.end_op();
        self.stm.recorder.ret_read(rid, obj, v);
        Ok(v)
    }

    fn write(&mut self, obj: usize, v: i64) -> TxResult<()> {
        let rid = self.rec_id();
        self.stm.recorder.inv_write(rid, obj, v);
        self.meter.begin_op(OpKind::Write);
        // Purely local: lazy acquire defers all conflict work to commit.
        match self.writes.iter_mut().find(|(o, _)| *o == obj) {
            Some(slot) => slot.1 = v,
            None => {
                self.writes.push((obj, v));
                self.writes.sort_unstable_by_key(|(o, _)| *o);
            }
        }
        self.meter.end_op();
        self.stm.recorder.ret_write(rid, obj);
        Ok(())
    }

    fn commit(mut self: Box<Self>) -> TxResult<()> {
        if self.scope.is_some() {
            // A scope left open at top-level commit aborts the child (the
            // conservative reading of an unterminated nested transaction).
            self.abort_nested();
        }
        self.stm.recorder.try_commit(self.id);
        self.meter.begin_op(OpKind::Commit);
        if self.writes.is_empty() {
            // Read-only: the per-read validation already guaranteed a
            // consistent snapshot at the last read; one final validation
            // pins it at commit time.
            let ok = self.validate_read_set();
            self.meter.end_op();
            self.finished = true;
            if ok {
                self.stm.recorder.commit(self.id);
                return Ok(());
            }
            self.stm.recorder.abort(self.id);
            return Err(Aborted);
        }
        // Acquire the write set (index order). A held object means a live
        // committing conflicting peer: abort self (obstruction-style; the
        // peer is live and conflicting, so this is progressive).
        let writes = std::mem::take(&mut self.writes);
        let mut held: Vec<usize> = Vec::with_capacity(writes.len());
        for &(obj, _) in &writes {
            let claimed = self.meter.cas_u64(
                CellId::Lock(obj as u32),
                &self.stm.objs[obj].owned,
                0,
                self.id.0 as u64,
            );
            if !claimed {
                self.release(&held);
                self.meter.end_op();
                self.finished = true;
                self.stm.recorder.abort(self.id);
                return Err(Aborted);
            }
            held.push(obj);
        }
        // Validate reads once more, then publish.
        if !self.validate_read_set() {
            self.release(&held);
            self.meter.end_op();
            self.finished = true;
            self.stm.recorder.abort(self.id);
            return Err(Aborted);
        }
        for &(obj, v) in &writes {
            self.meter
                .touch(CellId::Record(obj as u32), AccessKind::Write);
            let mut g = self.stm.objs[obj].inner.lock();
            *g = (v, g.1 + 1);
        }
        self.release(&held);
        self.meter.end_op();
        self.finished = true;
        self.stm.recorder.commit(self.id);
        Ok(())
    }

    fn abort(mut self: Box<Self>) {
        if self.scope.is_some() {
            self.abort_nested();
        }
        self.stm.recorder.try_abort(self.id);
        self.finished = true;
        self.stm.recorder.abort(self.id);
    }

    fn steps(&self) -> StepReport {
        self.meter.report()
    }

    fn id(&self) -> u32 {
        self.id.0
    }
}

impl Drop for AstmTx<'_> {
    fn drop(&mut self) {
        if !self.finished {
            if self.scope.is_some() {
                self.abort_nested();
            }
            self.stm.recorder.try_abort(self.id);
            self.stm.recorder.abort(self.id);
            self.finished = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::run_tx;

    #[test]
    fn roundtrip_and_lazy_buffering() {
        let stm = AstmStm::new(2);
        let mut tx = stm.begin(0);
        tx.write(0, 7).unwrap();
        assert_eq!(tx.read(0).unwrap(), 7); // buffered
        tx.commit().unwrap();
        let mut tx = stm.begin(0);
        assert_eq!(tx.read(0).unwrap(), 7);
        tx.commit().unwrap();
    }

    #[test]
    fn writes_cost_zero_base_steps() {
        // Lazy acquire: the write path never touches a base object.
        let stm = AstmStm::new(8);
        let mut tx = stm.begin(0);
        for i in 0..8 {
            tx.write(i, 1).unwrap();
        }
        assert_eq!(tx.steps().max_of(OpKind::Write), 0);
        tx.commit().unwrap();
    }

    #[test]
    fn per_read_cost_grows_like_dstm() {
        let k = 64;
        let stm = AstmStm::new(k);
        let mut tx = stm.begin(0);
        for i in 0..k {
            tx.read(i).unwrap();
        }
        let reads: Vec<u64> = tx
            .steps()
            .per_op
            .iter()
            .filter(|(kind, _)| *kind == OpKind::Read)
            .map(|(_, s)| *s)
            .collect();
        assert!(reads.windows(2).all(|w| w[0] < w[1]), "{reads:?}");
        assert!(reads[k - 1] >= k as u64);
        tx.commit().unwrap();
    }

    #[test]
    fn stale_read_set_aborts_at_next_read() {
        let stm = AstmStm::new(2);
        let mut t1 = stm.begin(0);
        assert_eq!(t1.read(0).unwrap(), 0);
        run_tx(&stm, 1, |tx| tx.write(0, 5));
        assert_eq!(t1.read(1), Err(Aborted));
    }

    #[test]
    fn progressive_like_dstm() {
        // Disjoint committed writer does not abort the reader.
        let stm = AstmStm::new(2);
        let mut t1 = stm.begin(0);
        assert_eq!(t1.read(0).unwrap(), 0);
        run_tx(&stm, 1, |tx| tx.write(1, 5));
        assert_eq!(t1.read(1).unwrap(), 5);
        t1.commit().unwrap();
    }

    #[test]
    fn lazy_writers_conflict_only_at_commit() {
        // Two writers of the same object proceed freely; the second
        // committer loses on read-set/ownership grounds only if it read.
        let stm = AstmStm::new(1);
        let mut t1 = stm.begin(0);
        let mut t2 = stm.begin(1);
        t1.write(0, 1).unwrap();
        t2.write(0, 2).unwrap(); // no conflict yet: lazy acquire
        t1.commit().unwrap();
        // Blind write: t2 can still commit (last-writer-wins is legal for
        // blind writes — cf. the Section 3.6 example).
        t2.commit().unwrap();
        let (v, _) = run_tx(&stm, 0, |tx| tx.read(0));
        assert_eq!(v, 2);
    }

    #[test]
    fn read_write_conflict_detected_at_commit() {
        let stm = AstmStm::new(1);
        let mut t1 = stm.begin(0);
        let v = t1.read(0).unwrap();
        t1.write(0, v + 1).unwrap();
        run_tx(&stm, 1, |tx| {
            let v = tx.read(0)?;
            tx.write(0, v + 1)
        });
        assert_eq!(t1.commit(), Err(Aborted), "t1's read set is stale");
        let (v, _) = run_tx(&stm, 0, |tx| tx.read(0));
        assert_eq!(v, 1);
    }

    #[test]
    fn recorded_history_well_formed() {
        let stm = AstmStm::new(2);
        run_tx(&stm, 0, |tx| tx.write(0, 1));
        run_tx(&stm, 1, |tx| {
            let v = tx.read(0)?;
            tx.write(1, v + 1)
        });
        let h = stm.recorder().history();
        assert!(tm_model::is_well_formed(&h), "{h}");
        assert_eq!(h.committed_txs().len(), 2);
    }
}
