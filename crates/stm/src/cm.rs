//! Contention managers.
//!
//! DSTM introduced the contention manager as the modular policy deciding,
//! upon a conflict between a transaction and the current owner of an object,
//! whether to abort the owner or the attacker. The paper notes (Section 6.2)
//! that DSTM/ASTM meet the Θ(k) bound "with most contention managers" —
//! the policy affects progress and throughput, not the validation cost, which
//! the throughput benchmark's CM ablation demonstrates.

use crate::base::{status, Meter, TxDesc};

/// The decision upon a conflict.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Resolution {
    /// Abort the current owner (the "enemy") and proceed.
    AbortOther,
    /// Abort the attacking transaction itself.
    AbortSelf,
}

/// A contention-management policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ContentionManager {
    /// Always aborts the owner. Guarantees obstruction-freedom-style
    /// progress for the attacker; can livelock under symmetric contention
    /// (mitigated by the retry loop's freshness).
    Aggressive,
    /// Always aborts itself ("polite"/"timid"). Never disturbs others.
    Timid,
    /// Aborts whichever transaction has performed fewer operations (a
    /// work-based Karma-like policy); ties favour the attacker.
    Karma,
    /// Greedy (Guerraoui, Herlihy & Pochon, PODC'05 — the paper's
    /// reference \[9\]): the transaction that *started earlier* wins every
    /// conflict. Because transaction identifiers are allocated at begin
    /// and never reused, "earlier" is decidable from the ids alone; the
    /// oldest live transaction is never aborted, which bounds every
    /// transaction's abort count by the number of older concurrent peers
    /// (no livelock). The same seniority rule powers the 2PL TM's
    /// wound-or-die resolution.
    Greedy,
}

/// Everything a policy may consult when resolving a conflict.
#[derive(Clone, Copy, Debug)]
pub struct ConflictCtx {
    /// Operations completed by the attacking transaction.
    pub my_work: usize,
    /// Operations completed by the owner, when known (visible-read TMs
    /// generally do not track foreign work; callers pass a floor of 1).
    pub other_work: usize,
    /// The attacker's transaction id (begin-order timestamp).
    pub my_birth: u32,
    /// The owner's transaction id.
    pub other_birth: u32,
}

impl ContentionManager {
    /// Decides a conflict between `me` (attacker, having completed
    /// `my_work` operations) and the owner (having completed `other_work`).
    ///
    /// Timestamp-free entry point kept for policies that don't need
    /// births; [`ContentionManager::Greedy`] resolves ties (equal or
    /// unknown births) in the attacker's favour here — prefer
    /// [`ContentionManager::resolve`] when ids are available.
    pub fn decide(self, my_work: usize, other_work: usize) -> Resolution {
        self.resolve(ConflictCtx {
            my_work,
            other_work,
            my_birth: 0,
            other_birth: 0,
        })
    }

    /// Decides a conflict with full context.
    pub fn resolve(self, ctx: ConflictCtx) -> Resolution {
        match self {
            ContentionManager::Aggressive => Resolution::AbortOther,
            ContentionManager::Timid => Resolution::AbortSelf,
            ContentionManager::Karma => {
                if ctx.my_work >= ctx.other_work {
                    Resolution::AbortOther
                } else {
                    Resolution::AbortSelf
                }
            }
            ContentionManager::Greedy => {
                if ctx.my_birth <= ctx.other_birth {
                    Resolution::AbortOther
                } else {
                    Resolution::AbortSelf
                }
            }
        }
    }
}

/// Attempts to abort `victim` by CAS'ing its status from `ACTIVE` to
/// `ABORTED` (one step). Returns the victim's final status.
pub fn try_abort_tx(victim: &TxDesc, m: &mut Meter) -> u8 {
    if m.cas_u8(
        victim.status_cell(),
        &victim.status,
        status::ACTIVE,
        status::ABORTED,
    ) {
        status::ABORTED
    } else {
        // Lost the race: the victim committed or was already aborted.
        m.load_u8(victim.status_cell(), &victim.status)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::base::OpKind;

    #[test]
    fn policies() {
        assert_eq!(
            ContentionManager::Aggressive.decide(0, 100),
            Resolution::AbortOther
        );
        assert_eq!(
            ContentionManager::Timid.decide(100, 0),
            Resolution::AbortSelf
        );
        assert_eq!(
            ContentionManager::Karma.decide(5, 3),
            Resolution::AbortOther
        );
        assert_eq!(ContentionManager::Karma.decide(3, 5), Resolution::AbortSelf);
        assert_eq!(
            ContentionManager::Karma.decide(4, 4),
            Resolution::AbortOther
        );
    }

    #[test]
    fn greedy_seniority() {
        let ctx = |me: u32, other: u32| ConflictCtx {
            my_work: 0,
            other_work: 100, // work is irrelevant to Greedy
            my_birth: me,
            other_birth: other,
        };
        assert_eq!(
            ContentionManager::Greedy.resolve(ctx(3, 7)),
            Resolution::AbortOther
        );
        assert_eq!(
            ContentionManager::Greedy.resolve(ctx(7, 3)),
            Resolution::AbortSelf
        );
        // Ties (including the id-free decide() path) favour the attacker.
        assert_eq!(
            ContentionManager::Greedy.decide(0, 0),
            Resolution::AbortOther
        );
    }

    #[test]
    fn abort_only_succeeds_on_active() {
        let mut m = Meter::new();
        m.begin_op(OpKind::Commit);
        let v = TxDesc::new(1);
        assert_eq!(try_abort_tx(&v, &mut m), status::ABORTED);
        let c = TxDesc::new(2);
        c.force_status(status::COMMITTED);
        assert_eq!(try_abort_tx(&c, &mut m), status::COMMITTED);
        m.end_op();
    }
}

#[cfg(test)]
mod greedy_integration {
    use super::*;
    use crate::api::{run_tx, Aborted, Stm};
    use crate::dstm::DstmStm;
    use crate::visible::VisibleStm;

    #[test]
    fn greedy_dstm_oldest_writer_wins_symmetric_conflict() {
        let stm = DstmStm::with_cm(1, ContentionManager::Greedy);
        let mut old = stm.begin(0);
        let mut young = stm.begin(1);
        old.write(0, 1).unwrap(); // old acquires r0
                                  // Young attacks the owner: Greedy says the younger attacker
                                  // aborts itself.
        assert_eq!(young.write(0, 2), Err(Aborted));
        old.commit().unwrap();
        let (v, _) = run_tx(&stm, 0, |tx| tx.read(0));
        assert_eq!(v, 1);
    }

    #[test]
    fn greedy_dstm_older_attacker_wounds_younger_owner() {
        let stm = DstmStm::with_cm(1, ContentionManager::Greedy);
        let mut old = stm.begin(0);
        let mut young = stm.begin(1);
        young.write(0, 2).unwrap(); // young acquires r0 first
        old.write(0, 1).unwrap(); // seniority: old wounds young, proceeds
        assert_eq!(young.commit(), Err(Aborted));
        old.commit().unwrap();
        let (v, _) = run_tx(&stm, 0, |tx| tx.read(0));
        assert_eq!(v, 1);
    }

    #[test]
    fn greedy_visible_reader_vs_writer_by_seniority() {
        let stm = VisibleStm::with_cm(1, ContentionManager::Greedy);
        let mut old = stm.begin(0);
        let mut young = stm.begin(1);
        assert_eq!(old.read(0).unwrap(), 0); // old registers as reader
                                             // Young writer must displace the visible reader — but the reader
                                             // is older, so the young writer dies instead.
        assert_eq!(young.write(0, 9), Err(Aborted));
        old.commit().unwrap();
    }

    #[test]
    fn greedy_workloads_conserve_invariants() {
        // Threaded sanity: seniority-based resolution completes the
        // counter workload without losing updates or livelocking.
        let stm = DstmStm::with_cm(1, ContentionManager::Greedy);
        stm.recorder().set_enabled(false);
        std::thread::scope(|scope| {
            for t in 0..3 {
                let stm = &stm;
                scope.spawn(move || {
                    for _ in 0..50 {
                        run_tx(stm, t, |tx| {
                            let v = tx.read(0)?;
                            tx.write(0, v + 1)
                        });
                    }
                });
            }
        });
        let (v, _) = run_tx(&stm, 0, |tx| tx.read(0));
        assert_eq!(v, 150);
    }
}
