//! The global-lock TM: critical sections dressed as transactions.
//!
//! The semantic reference point of the paper's introduction ("a TM should
//! provide the same semantics as critical sections"): a single lock held
//! from `begin` to completion makes every transaction trivially isolated —
//! histories are sequential, hence opaque — at the price of zero
//! concurrency.

use parking_lot::{Mutex, MutexGuard};

use crate::api::{Stm, StmProperties, Tx, TxResult};
use crate::base::{Meter, OpKind, StepReport};
use crate::config::{RetryPolicy, StmConfig};
use crate::recorder::Recorder;
use tm_model::TxId;

/// The global-lock TM over `k` registers.
#[derive(Debug)]
pub struct GlockStm {
    store: Mutex<Vec<i64>>,
    recorder: Recorder,
    retry: RetryPolicy,
}

impl GlockStm {
    /// A global-lock TM with `k` registers initialized to 0.
    pub fn new(k: usize) -> Self {
        Self::with_config(&StmConfig::new(k))
    }

    /// A global-lock TM built from an explicit configuration (initial
    /// values, recording, retry policy; nothing else applies to a TM with
    /// zero concurrency).
    pub fn with_config(cfg: &StmConfig) -> Self {
        GlockStm {
            store: Mutex::new((0..cfg.k()).map(|i| cfg.initial(i)).collect()),
            recorder: cfg.build_recorder(),
            retry: cfg.retry_policy(),
        }
    }
}

/// A live global-lock transaction: owns the store guard for its entire
/// lifetime.
pub struct GlockTx<'a> {
    stm: &'a GlockStm,
    guard: Option<MutexGuard<'a, Vec<i64>>>,
    undo: Vec<(usize, i64)>,
    id: TxId,
    meter: Meter,
    finished: bool,
}

impl Stm for GlockStm {
    fn name(&self) -> &'static str {
        "glock"
    }

    fn k(&self) -> usize {
        self.store.lock().len()
    }

    fn begin(&self, _thread: usize) -> Box<dyn Tx + '_> {
        let id = self.recorder.fresh_tx();
        // The lock acquisition is the transaction's single synchronization
        // point; it happens at begin, outside any operation, and costs O(1).
        let guard = self.store.lock();
        Box::new(GlockTx {
            stm: self,
            guard: Some(guard),
            undo: Vec::new(),
            id,
            meter: Meter::new(),
            finished: false,
        })
    }

    fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    fn retry_policy(&self) -> RetryPolicy {
        self.retry
    }

    fn properties(&self) -> StmProperties {
        StmProperties {
            progressive: true, // never forcefully aborts at all
            single_version: true,
            invisible_reads: false, // the lock word is written at begin
            opaque_by_design: true,
            serializable_by_design: true,
        }
    }

    fn blocking(&self) -> bool {
        true
    }
}

impl Tx for GlockTx<'_> {
    fn read(&mut self, obj: usize) -> TxResult<i64> {
        self.stm.recorder.inv_read(self.id, obj);
        self.meter.begin_op(OpKind::Read);
        self.meter.step(); // one store access
        let v = self.guard.as_ref().expect("live tx holds guard")[obj];
        self.meter.end_op();
        self.stm.recorder.ret_read(self.id, obj, v);
        Ok(v)
    }

    fn write(&mut self, obj: usize, v: i64) -> TxResult<()> {
        self.stm.recorder.inv_write(self.id, obj, v);
        self.meter.begin_op(OpKind::Write);
        self.meter.step();
        let guard = self.guard.as_mut().expect("live tx holds guard");
        self.undo.push((obj, guard[obj]));
        guard[obj] = v;
        self.meter.end_op();
        self.stm.recorder.ret_write(self.id, obj);
        Ok(())
    }

    fn commit(mut self: Box<Self>) -> TxResult<()> {
        self.stm.recorder.try_commit(self.id);
        self.meter.begin_op(OpKind::Commit);
        self.meter.end_op();
        self.guard = None; // release the lock
        self.finished = true;
        self.stm.recorder.commit(self.id);
        Ok(())
    }

    fn abort(mut self: Box<Self>) {
        self.stm.recorder.try_abort(self.id);
        self.rollback();
        self.finished = true;
        self.stm.recorder.abort(self.id);
    }

    fn steps(&self) -> StepReport {
        self.meter.report()
    }

    fn id(&self) -> u32 {
        self.id.0
    }
}

impl GlockTx<'_> {
    fn rollback(&mut self) {
        if let Some(guard) = self.guard.as_mut() {
            // Undo in reverse so earlier values win.
            for (obj, old) in self.undo.drain(..).rev() {
                guard[obj] = old;
            }
        }
        self.guard = None;
    }
}

impl Drop for GlockTx<'_> {
    fn drop(&mut self) {
        if !self.finished {
            // Dropped without commit/abort: treat as a voluntary abort so
            // the recorded history stays well-formed and the lock releases.
            self.stm.recorder.try_abort(self.id);
            self.rollback();
            self.stm.recorder.abort(self.id);
            self.finished = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::run_tx;

    #[test]
    fn read_write_commit() {
        let stm = GlockStm::new(4);
        let mut tx = stm.begin(0);
        assert_eq!(tx.read(0).unwrap(), 0);
        tx.write(0, 42).unwrap();
        assert_eq!(tx.read(0).unwrap(), 42);
        tx.commit().unwrap();
        let mut tx2 = stm.begin(0);
        assert_eq!(tx2.read(0).unwrap(), 42);
        tx2.commit().unwrap();
    }

    #[test]
    fn abort_rolls_back() {
        let stm = GlockStm::new(2);
        let tx = {
            let mut tx = stm.begin(0);
            tx.write(0, 9).unwrap();
            tx.write(1, 9).unwrap();
            tx
        };
        tx.abort();
        let mut tx2 = stm.begin(0);
        assert_eq!(tx2.read(0).unwrap(), 0);
        assert_eq!(tx2.read(1).unwrap(), 0);
        tx2.commit().unwrap();
    }

    #[test]
    fn drop_without_completion_aborts() {
        let stm = GlockStm::new(1);
        {
            let mut tx = stm.begin(0);
            tx.write(0, 5).unwrap();
            // dropped here
        }
        let mut tx = stm.begin(0);
        assert_eq!(tx.read(0).unwrap(), 0);
        tx.commit().unwrap();
        let h = stm.recorder().history();
        assert!(tm_model::is_well_formed(&h), "{h}");
    }

    #[test]
    fn recorded_history_is_sequential() {
        let stm = GlockStm::new(2);
        run_tx(&stm, 0, |tx| {
            tx.write(0, 1)?;
            tx.write(1, 2)
        });
        run_tx(&stm, 0, |tx| {
            let a = tx.read(0)?;
            let b = tx.read(1)?;
            assert_eq!((a, b), (1, 2));
            Ok(())
        });
        let h = stm.recorder().history();
        assert!(h.is_sequential());
        assert!(tm_model::is_well_formed(&h));
    }

    #[test]
    fn steps_are_constant_per_op() {
        let stm = GlockStm::new(64);
        let mut tx = stm.begin(0);
        for i in 0..64 {
            tx.read(i).unwrap();
        }
        let r = tx.steps();
        assert_eq!(r.max_of(OpKind::Read), 1);
        tx.commit().unwrap();
    }
}
