//! A visible-reads TM (SXM / RSTM invalidate-style).
//!
//! The design point that escapes Theorem 3 by *publishing* reads: every read
//! registers the reader in the object's reader list (a base-object write —
//! reads are visible). A writer arriving at an object eagerly resolves the
//! conflict with every registered live reader through the contention
//! manager, so a transaction's read set can never be silently invalidated:
//! **no read-time or commit-time validation is needed at all**, and every
//! operation costs O(1) steps in `k` (write cost depends on the number of
//! concurrent readers of that object, bounded by the thread count, never by
//! `k`).
//!
//! Opacity: reads always return the latest committed value, and any
//! committer that would change a value read by a live transaction aborts
//! that transaction first, so every live transaction's snapshot remains the
//! current committed state throughout its life.

use parking_lot::Mutex;
use std::sync::Arc;

use crate::api::{Aborted, Stm, StmProperties, Tx, TxResult};
use crate::base::{status, Meter, OpKind, StepReport, TxDesc};
use crate::cm::{try_abort_tx, ContentionManager, Resolution};
use crate::config::{RetryPolicy, StmConfig};
use crate::recorder::Recorder;
use crate::trace_cells::{AccessKind, CellId, StepProbe};
use tm_model::TxId;

#[derive(Debug)]
struct VisObj {
    /// Latest committed value.
    committed: i64,
    /// Pending writer and its tentative value.
    writer: Option<(Arc<TxDesc>, i64)>,
    /// Registered readers (the "visible" part).
    readers: Vec<Arc<TxDesc>>,
}

impl VisObj {
    /// Folds a committed/aborted pending writer into the committed value and
    /// prunes completed readers. One logical access (metered by callers).
    fn settle(&mut self, m: &mut Meter) {
        if let Some((d, v)) = &self.writer {
            match m.load_u8(d.status_cell(), &d.status) {
                status::COMMITTED => {
                    self.committed = *v;
                    self.writer = None;
                }
                status::ABORTED => self.writer = None,
                _ => {}
            }
        }
        self.readers.retain(|d| d.status_now() == status::ACTIVE);
    }
}

/// The visible-reads TM over `k` registers.
#[derive(Debug)]
pub struct VisibleStm {
    objs: Vec<Mutex<VisObj>>,
    recorder: Recorder,
    cm: ContentionManager,
    retry: RetryPolicy,
    probe: Option<Arc<dyn StepProbe>>,
}

impl VisibleStm {
    /// A visible-reads TM with `k` registers initialized to 0 (aggressive
    /// contention manager).
    pub fn new(k: usize) -> Self {
        Self::with_config(&StmConfig::new(k))
    }

    /// A visible-reads TM with an explicit contention manager.
    pub fn with_cm(k: usize, cm: ContentionManager) -> Self {
        Self::with_config(&StmConfig::new(k).contention_manager(cm))
    }

    /// A visible-reads TM built from an explicit configuration (contention
    /// manager, initial values, recording, retry policy; no clock).
    pub fn with_config(cfg: &StmConfig) -> Self {
        VisibleStm {
            objs: (0..cfg.k())
                .map(|i| {
                    Mutex::new(VisObj {
                        committed: cfg.initial(i),
                        writer: None,
                        readers: Vec::new(),
                    })
                })
                .collect(),
            recorder: cfg.build_recorder(),
            cm: cfg.cm(),
            retry: cfg.retry_policy(),
            probe: cfg.step_probe(),
        }
    }
}

/// A live visible-reads transaction.
pub struct VisibleTx<'a> {
    stm: &'a VisibleStm,
    id: TxId,
    desc: Arc<TxDesc>,
    work: usize,
    meter: Meter,
    finished: bool,
}

impl Stm for VisibleStm {
    fn name(&self) -> &'static str {
        "visible"
    }

    fn k(&self) -> usize {
        self.objs.len()
    }

    fn begin(&self, _thread: usize) -> Box<dyn Tx + '_> {
        let id = self.recorder.fresh_tx();
        Box::new(VisibleTx {
            stm: self,
            id,
            desc: Arc::new(TxDesc::new(id.0)),
            work: 0,
            meter: Meter::with_probe(_thread, self.probe.clone()),
            finished: false,
        })
    }

    fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    fn retry_policy(&self) -> RetryPolicy {
        self.retry
    }

    fn properties(&self) -> StmProperties {
        StmProperties {
            progressive: true,
            single_version: true,
            invisible_reads: false, // readers register themselves
            opaque_by_design: true,
            serializable_by_design: true,
        }
    }
}

impl VisibleTx<'_> {
    fn still_active(&mut self) -> bool {
        self.meter
            .load_u8(self.desc.status_cell(), &self.desc.status)
            == status::ACTIVE
    }

    fn abort_op(&mut self) -> Aborted {
        self.meter.end_op();
        self.finished = true;
        self.desc.force_status(status::ABORTED);
        self.stm.recorder.abort(self.id);
        Aborted
    }
}

impl Tx for VisibleTx<'_> {
    fn read(&mut self, obj: usize) -> TxResult<i64> {
        self.stm.recorder.inv_read(self.id, obj);
        self.meter.begin_op(OpKind::Read);
        if !self.still_active() {
            return Err(self.abort_op());
        }
        let v = {
            // A visible read *writes* the reader list: model it as one RMW
            // on the object's record.
            self.meter
                .touch(CellId::Record(obj as u32), AccessKind::Rmw);
            let mut o = self.stm.objs[obj].lock();
            self.meter.begin_atomic();
            o.settle(&mut self.meter);
            // A live foreign writer holds the object: resolve.
            if let Some((d, _)) = o.writer.clone() {
                if !Arc::ptr_eq(&d, &self.desc) {
                    match self.stm.cm.resolve(crate::cm::ConflictCtx {
                        my_work: self.work,
                        other_work: 1,
                        my_birth: self.id.0,
                        other_birth: d.id,
                    }) {
                        Resolution::AbortOther => {
                            try_abort_tx(&d, &mut self.meter);
                            o.settle(&mut self.meter);
                        }
                        Resolution::AbortSelf => {
                            self.meter.end_atomic();
                            drop(o);
                            return Err(self.abort_op());
                        }
                    }
                }
            }
            // Register as a visible reader (this is a base-object write).
            if !o.readers.iter().any(|d| Arc::ptr_eq(d, &self.desc)) {
                self.meter.step();
                o.readers.push(self.desc.clone());
            }
            let v = match &o.writer {
                Some((d, v)) if Arc::ptr_eq(d, &self.desc) => *v, // own write
                _ => o.committed,
            };
            self.meter.end_atomic();
            v
        };
        self.work += 1;
        self.meter.end_op();
        self.stm.recorder.ret_read(self.id, obj, v);
        Ok(v)
    }

    fn write(&mut self, obj: usize, v: i64) -> TxResult<()> {
        self.stm.recorder.inv_write(self.id, obj, v);
        self.meter.begin_op(OpKind::Write);
        if !self.still_active() {
            return Err(self.abort_op());
        }
        {
            self.meter
                .touch(CellId::Record(obj as u32), AccessKind::Rmw); // object access
            let mut o = self.stm.objs[obj].lock();
            self.meter.begin_atomic();
            o.settle(&mut self.meter);
            // Resolve a live foreign writer.
            if let Some((d, _)) = o.writer.clone() {
                if !Arc::ptr_eq(&d, &self.desc) {
                    match self.stm.cm.resolve(crate::cm::ConflictCtx {
                        my_work: self.work,
                        other_work: 1,
                        my_birth: self.id.0,
                        other_birth: d.id,
                    }) {
                        Resolution::AbortOther => {
                            try_abort_tx(&d, &mut self.meter);
                            o.settle(&mut self.meter);
                        }
                        Resolution::AbortSelf => {
                            self.meter.end_atomic();
                            drop(o);
                            return Err(self.abort_op());
                        }
                    }
                }
            }
            // Resolve every live foreign reader — eager invalidation.
            let foreign: Vec<Arc<TxDesc>> = o
                .readers
                .iter()
                .filter(|d| !Arc::ptr_eq(d, &self.desc))
                .cloned()
                .collect();
            for d in foreign {
                if self.meter.load_u8(d.status_cell(), &d.status) != status::ACTIVE {
                    continue;
                }
                match self.stm.cm.resolve(crate::cm::ConflictCtx {
                    my_work: self.work,
                    other_work: 1,
                    my_birth: self.id.0,
                    other_birth: d.id,
                }) {
                    Resolution::AbortOther => {
                        try_abort_tx(&d, &mut self.meter);
                    }
                    Resolution::AbortSelf => {
                        self.meter.end_atomic();
                        drop(o);
                        return Err(self.abort_op());
                    }
                }
            }
            o.settle(&mut self.meter);
            self.meter.step(); // install the pending write
            o.writer = Some((self.desc.clone(), v));
            self.meter.end_atomic();
        }
        self.work += 1;
        self.meter.end_op();
        self.stm.recorder.ret_write(self.id, obj);
        Ok(())
    }

    fn commit(mut self: Box<Self>) -> TxResult<()> {
        self.stm.recorder.try_commit(self.id);
        self.meter.begin_op(OpKind::Commit);
        // No validation: conflicts were resolved eagerly. One status CAS.
        let committed = self.meter.cas_u8(
            self.desc.status_cell(),
            &self.desc.status,
            status::ACTIVE,
            status::COMMITTED,
        );
        self.meter.end_op();
        self.finished = true;
        if committed {
            self.stm.recorder.commit(self.id);
            Ok(())
        } else {
            self.stm.recorder.abort(self.id);
            Err(Aborted)
        }
    }

    fn abort(mut self: Box<Self>) {
        self.stm.recorder.try_abort(self.id);
        self.desc.force_status(status::ABORTED);
        self.finished = true;
        self.stm.recorder.abort(self.id);
    }

    fn steps(&self) -> StepReport {
        self.meter.report()
    }

    fn id(&self) -> u32 {
        self.id.0
    }
}

impl Drop for VisibleTx<'_> {
    fn drop(&mut self) {
        if !self.finished {
            self.stm.recorder.try_abort(self.id);
            self.desc.force_status(status::ABORTED);
            self.stm.recorder.abort(self.id);
            self.finished = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::run_tx;

    #[test]
    fn roundtrip() {
        let stm = VisibleStm::new(2);
        let mut tx = stm.begin(0);
        tx.write(0, 5).unwrap();
        assert_eq!(tx.read(0).unwrap(), 5);
        tx.commit().unwrap();
        let mut tx = stm.begin(0);
        assert_eq!(tx.read(0).unwrap(), 5);
        tx.commit().unwrap();
    }

    #[test]
    fn writer_aborts_visible_reader() {
        let stm = VisibleStm::new(1);
        let mut t1 = stm.begin(0);
        assert_eq!(t1.read(0).unwrap(), 0);
        let mut t2 = stm.begin(1);
        t2.write(0, 9).unwrap(); // eagerly aborts the registered reader T1
        t2.commit().unwrap();
        assert_eq!(t1.commit(), Err(Aborted));
    }

    #[test]
    fn reader_never_sees_tentative_value() {
        let stm = VisibleStm::new(1);
        let mut t1 = stm.begin(0);
        t1.write(0, 9).unwrap();
        // T2 reads: aggressive CM aborts T1 (live writer), T2 sees 0.
        let mut t2 = stm.begin(1);
        assert_eq!(t2.read(0).unwrap(), 0);
        t2.commit().unwrap();
        assert_eq!(t1.commit(), Err(Aborted));
    }

    #[test]
    fn timid_reader_aborts_itself() {
        let stm = VisibleStm::with_cm(1, ContentionManager::Timid);
        let mut t1 = stm.begin(0);
        t1.write(0, 9).unwrap();
        let mut t2 = stm.begin(1);
        assert_eq!(t2.read(0), Err(Aborted));
        t1.commit().unwrap();
    }

    #[test]
    fn committed_writer_folds_into_committed_value() {
        let stm = VisibleStm::new(1);
        let mut t1 = stm.begin(0);
        t1.write(0, 4).unwrap();
        t1.commit().unwrap();
        let mut t2 = stm.begin(1);
        assert_eq!(t2.read(0).unwrap(), 4);
        t2.commit().unwrap();
    }

    #[test]
    fn read_cost_independent_of_read_set_size() {
        let k = 128;
        let stm = VisibleStm::new(k);
        let mut tx = stm.begin(0);
        let mut max = 0;
        for i in 0..k {
            tx.read(i).unwrap();
            max = max.max(tx.steps().max_of(OpKind::Read));
        }
        // No validation: cost per read is a small constant, never Θ(k).
        assert!(max <= 6, "visible reads must be O(1), saw {max}");
        tx.commit().unwrap();
    }

    #[test]
    fn recorded_history_well_formed() {
        let stm = VisibleStm::new(2);
        run_tx(&stm, 0, |tx| tx.write(0, 1));
        run_tx(&stm, 1, |tx| {
            let v = tx.read(0)?;
            tx.write(1, v + 1)
        });
        let h = stm.recorder().history();
        assert!(tm_model::is_well_formed(&h), "{h}");
        assert_eq!(h.committed_txs().len(), 2);
    }
}
