//! Cell identities and the step-level access stream.
//!
//! Theorem 3's unit of cost is *one instruction on one base shared object*
//! (Section 6.1). [`crate::base::Meter`] counts those instructions; this
//! module names the objects. Every base shared object a TM touches gets a
//! stable [`CellId`], and the meter — the choke point every load, store,
//! CAS, `fetch_add`, `fetch_max`, and lock acquisition already routes
//! through — can emit an [`AccessEvent`] per step into any [`StepProbe`].
//!
//! Two consumers exist:
//!
//! * [`AccessLog`] — a passive recording probe. The race checker
//!   (`tm_harness::race`) replays its stream through a vector-clock
//!   happens-before analysis.
//! * the cooperative stepper (`tm_harness::dpor`) — an *active* probe that
//!   parks the calling thread at every blocking access until the explorer
//!   grants it the next step, turning probe callbacks into schedule
//!   yield-points.
//!
//! Probes are measurement/control apparatus, like the
//! [`crate::recorder::Recorder`]: their callbacks never count as steps.

use parking_lot::Mutex;
use std::sync::Arc;

/// A stable identity for one base shared object.
///
/// The `u32` payloads index registers (`Lock`/`Value`/`Record`), clock
/// shards (`Clock`), or transaction descriptors (`Status`). Identities are
/// per-TM-instance: two different TM instances may reuse the same ids.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CellId {
    /// The versioned-lock word guarding register `i` (TL2-style TMs).
    Lock(u32),
    /// The value word of register `i`.
    Value(u32),
    /// A mutex-protected record treated as one cell (DSTM locators,
    /// visible-read entries, two-phase-locking cells, version lists).
    Record(u32),
    /// Global-clock shard `i` (`Clock(0)` for the single and deferred
    /// schemes).
    Clock(u32),
    /// The status word of transaction descriptor `id`.
    Status(u32),
    /// The global commit lock of the multi-version TMs.
    CommitLock,
}

impl std::fmt::Display for CellId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CellId::Lock(i) => write!(f, "lock[{i}]"),
            CellId::Value(i) => write!(f, "value[{i}]"),
            CellId::Record(i) => write!(f, "record[{i}]"),
            CellId::Clock(i) => write!(f, "clock[{i}]"),
            CellId::Status(i) => write!(f, "status[{i}]"),
            CellId::CommitLock => write!(f, "commit-lock"),
        }
    }
}

/// What one step did to its cell.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AccessKind {
    /// A plain load.
    Read,
    /// A plain store.
    Write,
    /// An atomic read-modify-write (CAS, `fetch_add`, `fetch_max`).
    Rmw,
    /// Entering a mutual-exclusion section on the cell (lock acquisition).
    Acquire,
    /// Leaving the mutual-exclusion section.
    Release,
}

impl AccessKind {
    /// True if the access can conflict with a concurrent access to the same
    /// cell: everything except a plain [`AccessKind::Read`] modifies (or,
    /// for `Acquire`/`Release`, orders) the cell.
    pub fn writes(self) -> bool {
        !matches!(self, AccessKind::Read)
    }
}

impl std::fmt::Display for AccessKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            AccessKind::Read => "read",
            AccessKind::Write => "write",
            AccessKind::Rmw => "rmw",
            AccessKind::Acquire => "acquire",
            AccessKind::Release => "release",
        };
        write!(f, "{s}")
    }
}

/// One step: `thread` issued one `kind` instruction on `cell`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct AccessEvent {
    /// The issuing thread (the TM-level thread id handed to `begin`).
    pub thread: usize,
    /// The base shared object touched.
    pub cell: CellId,
    /// The instruction kind.
    pub kind: AccessKind,
}

impl std::fmt::Display for AccessEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "T{} {} {}", self.thread, self.kind, self.cell)
    }
}

/// An entry in the access stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// A base-object access.
    Access(AccessEvent),
    /// A commit timestamp obtained by `thread` from the global clock
    /// (`tick` or `reserve`). The race checker's clock invariants
    /// (uniqueness, happens-before monotonicity) key off these.
    Stamp {
        /// The thread the stamp was issued to.
        thread: usize,
        /// The timestamp value.
        ts: u64,
    },
}

/// A sink for the meter's step stream.
///
/// `blocking` is true when the access happens outside any mutex-protected
/// record section — i.e. when it is safe for an active probe (the
/// cooperative stepper) to park the calling thread. Accesses *inside* a
/// record's critical section set `blocking = false`: they are logged, but
/// the section runs to completion atomically (its serialization point is
/// the `Acquire`, or the preceding touch, that opened it).
pub trait StepProbe: std::fmt::Debug + Send + Sync {
    /// One base-object access by `thread`.
    fn on_access(&self, thread: usize, cell: CellId, kind: AccessKind, blocking: bool);

    /// A commit timestamp issued to `thread`.
    fn on_stamp(&self, _thread: usize, _ts: u64) {}
}

/// A passive probe that appends every event to a shared log.
#[derive(Debug, Default)]
pub struct AccessLog {
    events: Mutex<Vec<TraceEvent>>,
}

impl AccessLog {
    /// An empty log.
    pub fn new() -> Self {
        AccessLog::default()
    }

    /// A fresh log behind an [`Arc`], ready to hand to
    /// [`crate::StmConfig::probe`].
    pub fn shared() -> Arc<AccessLog> {
        Arc::new(AccessLog::new())
    }

    /// A snapshot of the recorded stream.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        self.events.lock().clone()
    }

    /// Takes the recorded stream, leaving the log empty.
    pub fn take(&self) -> Vec<TraceEvent> {
        std::mem::take(&mut *self.events.lock())
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl StepProbe for AccessLog {
    fn on_access(&self, thread: usize, cell: CellId, kind: AccessKind, _blocking: bool) {
        self.events
            .lock()
            .push(TraceEvent::Access(AccessEvent { thread, cell, kind }));
    }

    fn on_stamp(&self, thread: usize, ts: u64) {
        self.events.lock().push(TraceEvent::Stamp { thread, ts });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_records_accesses_and_stamps() {
        let log = AccessLog::new();
        log.on_access(1, CellId::Lock(3), AccessKind::Rmw, true);
        log.on_stamp(1, 42);
        log.on_access(0, CellId::Value(3), AccessKind::Read, false);
        assert_eq!(log.len(), 3);
        let events = log.snapshot();
        assert_eq!(
            events[0],
            TraceEvent::Access(AccessEvent {
                thread: 1,
                cell: CellId::Lock(3),
                kind: AccessKind::Rmw,
            })
        );
        assert_eq!(events[1], TraceEvent::Stamp { thread: 1, ts: 42 });
        assert_eq!(log.take().len(), 3);
        assert!(log.is_empty());
    }

    #[test]
    fn only_plain_reads_commute() {
        assert!(!AccessKind::Read.writes());
        for k in [
            AccessKind::Write,
            AccessKind::Rmw,
            AccessKind::Acquire,
            AccessKind::Release,
        ] {
            assert!(k.writes(), "{k}");
        }
    }

    #[test]
    fn cell_and_event_display() {
        let e = AccessEvent {
            thread: 2,
            cell: CellId::Clock(0),
            kind: AccessKind::Rmw,
        };
        assert_eq!(e.to_string(), "T2 rmw clock[0]");
        assert_eq!(CellId::CommitLock.to_string(), "commit-lock");
        assert_eq!(CellId::Status(7).to_string(), "status[7]");
    }
}
