//! Observability adapters for the STM layer.
//!
//! Two decorators connect the existing instrumentation seams to the
//! `tm-obs` registry, both constructed **only when an enabled handle is
//! attached** — a TM built from a default [`crate::StmConfig`] contains
//! neither, so the disabled path is not "a cheap branch" but the complete
//! absence of the adapter:
//!
//! * [`ObsClock`] wraps any [`GlobalClock`] and counts
//!   `stm.clock.samples` / `stm.clock.ticks` (reservations count as
//!   ticks — they issue commit timestamps). Installed by
//!   [`crate::StmConfig::build_clock`].
//! * [`ObsStepProbe`] is a [`StepProbe`] that tallies the meter's
//!   step stream into lock-free [`Counter`]s and publishes the totals as
//!   `stm.steps` / `stm.stamps` on demand — the per-step path never
//!   touches the registry mutex. Attach it like any other probe via
//!   [`crate::StmConfig::probe`].
//!
//! This module deliberately contains no atomic orderings: all atomics live
//! behind [`Counter`], whose relaxed monotone semantics are exactly right
//! for telemetry (and nothing else — synchronization mirrors like the
//! recorder's `suppressed_len` must stay on raw atomics).

use crate::base::Meter;
use crate::clock::GlobalClock;
use crate::trace_cells::{AccessKind, CellId, StepProbe};
use tm_obs::{Counter, ObsHandle};

/// A [`GlobalClock`] decorator that counts samples and ticks on an
/// observability handle while delegating every operation unchanged.
///
/// Metering is untouched: the inner clock charges the [`Meter`] exactly as
/// before, so step counts (Theorem 3's cost model) are identical with and
/// without observability.
#[derive(Debug)]
pub struct ObsClock {
    inner: Box<dyn GlobalClock>,
    obs: ObsHandle,
}

impl ObsClock {
    /// Wraps `inner`, counting on `obs`.
    pub fn new(inner: Box<dyn GlobalClock>, obs: ObsHandle) -> Self {
        ObsClock { inner, obs }
    }
}

impl GlobalClock for ObsClock {
    fn sample(&self, m: &mut Meter) -> u64 {
        self.obs.counter_add("stm.clock.samples", 1);
        self.inner.sample(m)
    }

    fn tick(&self, thread: usize, m: &mut Meter) -> u64 {
        self.obs.counter_add("stm.clock.ticks", 1);
        self.inner.tick(thread, m)
    }

    fn reserve(&self, thread: usize, m: &mut Meter) -> u64 {
        self.obs.counter_add("stm.clock.ticks", 1);
        self.inner.reserve(thread, m)
    }

    fn publish(&self, ts: u64, m: &mut Meter) {
        self.inner.publish(ts, m)
    }

    fn peek(&self) -> u64 {
        self.inner.peek()
    }

    fn tick_is_exclusive(&self) -> bool {
        self.inner.tick_is_exclusive()
    }
}

/// A passive [`StepProbe`] that tallies the step stream into relaxed
/// counters, off the registry mutex.
///
/// The meter calls [`StepProbe::on_access`] once per base-object
/// instruction — the hottest path in the whole STM layer — so this probe
/// does one relaxed `fetch_add` per event and nothing else. Call
/// [`ObsStepProbe::publish`] once, after the workload, to fold the totals
/// into the registry as `stm.steps` and `stm.stamps`.
#[derive(Debug)]
pub struct ObsStepProbe {
    obs: ObsHandle,
    steps: Counter,
    stamps: Counter,
}

impl ObsStepProbe {
    /// A fresh probe publishing to `obs`.
    pub fn new(obs: ObsHandle) -> Self {
        ObsStepProbe {
            obs,
            steps: Counter::new(),
            stamps: Counter::new(),
        }
    }

    /// Steps tallied so far.
    pub fn steps(&self) -> u64 {
        self.steps.get()
    }

    /// Commit timestamps tallied so far.
    pub fn stamps(&self) -> u64 {
        self.stamps.get()
    }

    /// Folds the tallies into the registry (`stm.steps`, `stm.stamps`).
    /// Call once, after the workload — a second call would add the totals
    /// again.
    pub fn publish(&self) {
        self.obs.counter_add("stm.steps", self.steps.get());
        self.obs.counter_add("stm.stamps", self.stamps.get());
    }
}

impl StepProbe for ObsStepProbe {
    fn on_access(&self, _thread: usize, _cell: CellId, _kind: AccessKind, _blocking: bool) {
        self.steps.add(1);
    }

    fn on_stamp(&self, _thread: usize, _ts: u64) {
        self.stamps.add(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{run_tx, Stm};
    use crate::clock::ClockScheme;
    use crate::config::StmConfig;
    use crate::tl2::Tl2Stm;
    use std::sync::Arc;

    fn installed() -> ObsHandle {
        ObsHandle::install()
    }

    fn count(obs: ObsHandle, name: &str) -> u64 {
        obs.snapshot().unwrap().counter(name).unwrap_or(0)
    }

    #[test]
    fn obs_clock_counts_without_changing_timestamps() {
        let obs = installed();
        for scheme in ClockScheme::SWEEP {
            let bare = scheme.build();
            let wrapped = ObsClock::new(scheme.build(), obs);
            let mut m1 = Meter::new();
            let mut m2 = Meter::new();
            m1.begin_op(crate::base::OpKind::Commit);
            m2.begin_op(crate::base::OpKind::Commit);
            for thread in 0..4 {
                assert_eq!(bare.tick(thread, &mut m1), wrapped.tick(thread, &mut m2));
                assert_eq!(bare.sample(&mut m1), wrapped.sample(&mut m2));
            }
            let r = wrapped.reserve(1, &mut m2);
            wrapped.publish(r, &mut m2);
            assert!(wrapped.peek() >= bare.peek());
            assert_eq!(wrapped.tick_is_exclusive(), bare.tick_is_exclusive());
            m1.end_op();
            m2.end_op();
        }
        // 3 schemes × (4 ticks + 1 reserve) and 3 × 4 samples.
        assert_eq!(count(obs, "stm.clock.ticks"), 15);
        assert_eq!(count(obs, "stm.clock.samples"), 12);
    }

    #[test]
    fn configured_tm_counts_commits_aborts_and_clock_traffic() {
        let obs = installed();
        let stm = Tl2Stm::with_config(&StmConfig::new(2).obs(obs));
        let (_, stats) = run_tx(&stm, 0, |tx| {
            tx.write(0, 5)?;
            tx.read(0)
        });
        assert_eq!(stats.commits, 1);
        assert_eq!(count(obs, "stm.commits"), 1);
        assert_eq!(count(obs, "stm.aborts"), 0);
        // Begin-time snapshots go through the unmetered (and uncounted)
        // `peek`, so only the commit-time tick is guaranteed here.
        assert!(count(obs, "stm.clock.ticks") >= 1, "commit tick");
    }

    #[test]
    fn default_config_builds_unwrapped_clock_and_silent_recorder() {
        let cfg = StmConfig::new(1);
        assert!(!cfg.obs_handle().enabled());
        // The debug representation proves no ObsClock wrapper is present.
        let clock = cfg.build_clock();
        assert!(!format!("{clock:?}").contains("ObsClock"));
        let stm = Tl2Stm::with_config(&cfg);
        let (_, _) = run_tx(&stm, 0, |tx| tx.write(0, 1));
        assert_eq!(stm.recorder().history().committed_txs().len(), 1);
    }

    #[test]
    fn step_probe_tallies_and_publishes_once() {
        let obs = installed();
        let probe = Arc::new(ObsStepProbe::new(obs));
        let cfg = StmConfig::new(2).obs(obs).probe(probe.clone());
        let stm = Tl2Stm::with_config(&cfg);
        let (_, _) = run_tx(&stm, 0, |tx| {
            tx.write(0, 3)?;
            tx.read(1)
        });
        assert!(probe.steps() > 0, "metered accesses must reach the probe");
        assert!(probe.stamps() >= 1, "the commit tick stamps");
        probe.publish();
        assert_eq!(count(obs, "stm.steps"), probe.steps());
        assert_eq!(count(obs, "stm.stamps"), probe.stamps());
    }
}
