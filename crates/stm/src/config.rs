//! Configured TM construction — the [`StmConfig`] builder.
//!
//! Every TM in this crate used to be buildable only through a hardwired
//! `new(k)`; the interesting axes of the design space (clock scheme,
//! contention manager, initial state, recording, retry behaviour) were
//! either fixed or reachable through ad-hoc constructors (`with_cm`). The
//! builder collects them in one value that every constructor consumes:
//!
//! ```
//! use tm_stm::{ClockScheme, ContentionManager, RetryPolicy, StmConfig, Tl2Stm, Stm, run_tx};
//!
//! let cfg = StmConfig::new(4)
//!     .clock(ClockScheme::Sharded(8))
//!     .contention_manager(ContentionManager::Greedy)
//!     .initial_value(0, 100)
//!     .recording(false)
//!     .retry(RetryPolicy::bounded(10_000));
//! let stm = Tl2Stm::with_config(&cfg);
//! let (v, _) = run_tx(&stm, 0, |tx| tx.read(0));
//! assert_eq!(v, 100);
//! assert!(stm.recorder().is_empty()); // recording off: no events allocated
//! ```
//!
//! `new(k)` survives on every TM as a thin wrapper over
//! `with_config(&StmConfig::new(k))`, and the default configuration is
//! bit-for-bit the old behaviour: single clock, aggressive contention
//! manager, all-zero registers, recording on, 1 000 000-attempt retry cap.

use crate::clock::{ClockScheme, GlobalClock};
use crate::cm::ContentionManager;
use crate::recorder::Recorder;
use crate::trace_cells::StepProbe;
use std::sync::Arc;

/// Exponential backoff between transaction retries (spin-loop hints,
/// doubling from `base_spins` up to `max_spins`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Backoff {
    /// Spins after the first abort.
    pub base_spins: u32,
    /// Spin ceiling (the doubling stops here).
    pub max_spins: u32,
}

impl Backoff {
    /// Spins for attempt number `attempt` (0-based), then returns.
    pub fn wait(&self, attempt: u64) {
        let shift = attempt.min(16) as u32;
        let spins = self
            .base_spins
            .saturating_mul(1u32.checked_shl(shift).unwrap_or(u32::MAX))
            .min(self.max_spins.max(self.base_spins));
        for _ in 0..spins {
            std::hint::spin_loop();
        }
    }
}

/// How [`crate::run_tx`] / [`crate::try_run_tx`] respond to repeated aborts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum transaction attempts before giving up with
    /// [`crate::Livelock`] (≥ 1).
    pub max_attempts: u64,
    /// Optional backoff between attempts (none = immediate retry, the
    /// historical behaviour).
    pub backoff: Option<Backoff>,
}

impl RetryPolicy {
    /// The historical default: one million attempts, no backoff.
    pub const DEFAULT_MAX_ATTEMPTS: u64 = 1_000_000;

    /// A policy with a custom attempt cap and no backoff.
    pub fn bounded(max_attempts: u64) -> Self {
        RetryPolicy {
            max_attempts: max_attempts.max(1),
            backoff: None,
        }
    }

    /// Adds exponential backoff between attempts.
    pub fn with_backoff(mut self, base_spins: u32, max_spins: u32) -> Self {
        self.backoff = Some(Backoff {
            base_spins,
            max_spins,
        });
        self
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::bounded(Self::DEFAULT_MAX_ATTEMPTS)
    }
}

/// A complete description of how to build a TM instance.
///
/// Fields not consulted by a particular TM are ignored: the clock scheme
/// matters only to the timestamp-based TMs (`tl2`, `mvstm`, `sistm`), the
/// contention manager only to the conflict-resolving TMs (`dstm`,
/// `visible`). [`crate::TmRegistry`] rejects specs that pair a clock scheme
/// with a clockless TM, so typos surface there rather than being silently
/// swallowed.
#[derive(Clone, Debug)]
pub struct StmConfig {
    k: usize,
    clock: ClockScheme,
    cm: ContentionManager,
    /// Initial register values; indices past the end are 0.
    initial: Vec<i64>,
    recording: bool,
    retry: RetryPolicy,
    probe: Option<Arc<dyn StepProbe>>,
    obs: tm_obs::ObsHandle,
}

impl StmConfig {
    /// The default configuration over `k` registers: single clock,
    /// aggressive contention manager, all registers 0, recording on,
    /// default retry policy — exactly what `new(k)` always built.
    pub fn new(k: usize) -> Self {
        StmConfig {
            k,
            clock: ClockScheme::Single,
            cm: ContentionManager::Aggressive,
            initial: Vec::new(),
            recording: true,
            retry: RetryPolicy::default(),
            probe: None,
            obs: tm_obs::ObsHandle::disabled(),
        }
    }

    /// Selects the global-clock scheme (timestamp-based TMs only).
    pub fn clock(mut self, scheme: ClockScheme) -> Self {
        self.clock = scheme;
        self
    }

    /// Selects the contention manager (conflict-resolving TMs only).
    pub fn contention_manager(mut self, cm: ContentionManager) -> Self {
        self.cm = cm;
        self
    }

    /// Sets the initial value of register `obj` (default 0).
    ///
    /// # Panics
    /// Panics if `obj ≥ k`.
    pub fn initial_value(mut self, obj: usize, v: i64) -> Self {
        assert!(
            obj < self.k,
            "initial_value({obj}) out of range for k={}",
            self.k
        );
        if self.initial.len() <= obj {
            self.initial.resize(obj + 1, 0);
        }
        self.initial[obj] = v;
        self
    }

    /// Sets all initial register values at once (shorter vectors are padded
    /// with 0; longer ones must not exceed `k`).
    ///
    /// # Panics
    /// Panics if `values.len() > k`.
    pub fn initial_values(mut self, values: Vec<i64>) -> Self {
        assert!(
            values.len() <= self.k,
            "{} initial values for k={}",
            values.len(),
            self.k
        );
        self.initial = values;
        self
    }

    /// Enables or disables history recording (default on). A TM built with
    /// recording off never allocates events — the hot path pays nothing.
    pub fn recording(mut self, on: bool) -> Self {
        self.recording = on;
        self
    }

    /// Sets the retry policy [`crate::run_tx`]/[`crate::try_run_tx`] apply
    /// to transactions of this TM.
    pub fn retry(mut self, policy: RetryPolicy) -> Self {
        self.retry = policy;
        self
    }

    /// Attaches a [`StepProbe`] that every transaction's [`crate::Meter`]
    /// reports its base-object accesses to (default none). This is how the
    /// `tm-harness` race checker and DPOR explorer observe — and, for the
    /// cooperative stepper, *control* — the step-level schedule.
    pub fn probe(mut self, probe: Arc<dyn StepProbe>) -> Self {
        self.probe = Some(probe);
        self
    }

    /// Attaches an observability handle (default disabled). An enabled
    /// handle makes [`StmConfig::build_recorder`] count
    /// `stm.commits`/`stm.aborts` and [`StmConfig::build_clock`] wrap the
    /// clock in a [`crate::obs::ObsClock`] counting
    /// `stm.clock.samples`/`stm.clock.ticks`. A disabled handle changes
    /// nothing: the built TM is bit-for-bit the uninstrumented one.
    pub fn obs(mut self, obs: tm_obs::ObsHandle) -> Self {
        self.obs = obs;
        self
    }

    // ---- getters (consumed by the TM constructors) -------------------------

    /// The number of registers.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The selected clock scheme.
    pub fn clock_scheme(&self) -> ClockScheme {
        self.clock
    }

    /// The selected contention manager.
    pub fn cm(&self) -> ContentionManager {
        self.cm
    }

    /// The initial value of register `obj`.
    pub fn initial(&self, obj: usize) -> i64 {
        self.initial.get(obj).copied().unwrap_or(0)
    }

    /// Is history recording enabled?
    pub fn recording_enabled(&self) -> bool {
        self.recording
    }

    /// The retry policy.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.retry
    }

    /// The attached step probe, if any (cloned into every transaction's
    /// meter by the TM constructors).
    pub fn step_probe(&self) -> Option<Arc<dyn StepProbe>> {
        self.probe.clone()
    }

    /// The attached observability handle.
    pub fn obs_handle(&self) -> tm_obs::ObsHandle {
        self.obs
    }

    /// Builds the clock this configuration names. With an enabled
    /// observability handle the clock is wrapped in a
    /// [`crate::obs::ObsClock`] decorator; otherwise the bare clock is
    /// returned — the disabled path has no wrapper at all.
    pub fn build_clock(&self) -> Box<dyn GlobalClock> {
        let clock = self.clock.build();
        if self.obs.enabled() {
            Box::new(crate::obs::ObsClock::new(clock, self.obs))
        } else {
            clock
        }
    }

    /// Builds the recorder this configuration names (recording toggle
    /// applied, so a recording-off TM skips event construction entirely;
    /// observability handle attached, so commit/abort chokepoints count).
    pub fn build_recorder(&self) -> Recorder {
        let mut r = Recorder::new(self.k);
        if !self.recording {
            r.set_enabled(false);
        }
        r.set_obs(self.obs);
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_historical_constructor() {
        let cfg = StmConfig::new(3);
        assert_eq!(cfg.k(), 3);
        assert!(cfg.clock_scheme().is_single());
        assert_eq!(cfg.cm(), ContentionManager::Aggressive);
        assert_eq!(cfg.initial(0), 0);
        assert_eq!(cfg.initial(2), 0);
        assert!(cfg.recording_enabled());
        assert_eq!(
            cfg.retry_policy().max_attempts,
            RetryPolicy::DEFAULT_MAX_ATTEMPTS
        );
        assert!(cfg.retry_policy().backoff.is_none());
    }

    #[test]
    fn builder_round_trips_every_axis() {
        let cfg = StmConfig::new(4)
            .clock(ClockScheme::Sharded(2))
            .contention_manager(ContentionManager::Karma)
            .initial_value(1, -7)
            .initial_value(3, 9)
            .recording(false)
            .retry(RetryPolicy::bounded(5).with_backoff(4, 64));
        assert_eq!(cfg.clock_scheme(), ClockScheme::Sharded(2));
        assert_eq!(cfg.cm(), ContentionManager::Karma);
        assert_eq!(
            (
                cfg.initial(0),
                cfg.initial(1),
                cfg.initial(2),
                cfg.initial(3)
            ),
            (0, -7, 0, 9)
        );
        assert!(!cfg.recording_enabled());
        assert_eq!(cfg.retry_policy().max_attempts, 5);
        assert_eq!(
            cfg.retry_policy().backoff,
            Some(Backoff {
                base_spins: 4,
                max_spins: 64
            })
        );
        assert!(!cfg.build_recorder().enabled());
    }

    #[test]
    fn initial_values_bulk_setter() {
        let cfg = StmConfig::new(3).initial_values(vec![1, 2]);
        assert_eq!((cfg.initial(0), cfg.initial(1), cfg.initial(2)), (1, 2, 0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn initial_value_out_of_range_panics() {
        let _ = StmConfig::new(2).initial_value(2, 1);
    }

    #[test]
    fn retry_cap_floor_is_one() {
        assert_eq!(RetryPolicy::bounded(0).max_attempts, 1);
    }

    #[test]
    fn backoff_wait_terminates_even_at_extreme_attempts() {
        let b = Backoff {
            base_spins: 1,
            max_spins: 8,
        };
        b.wait(0);
        b.wait(63);
        b.wait(u64::MAX);
    }
}
