//! A DSTM-like TM (Herlihy, Luchangco, Moir, Scherer — PODC 2003).
//!
//! The implementation occupying *all three* hypotheses of Theorem 3:
//!
//! * **progressive** — a transaction is forcefully aborted only upon an
//!   actual conflict with a concurrent transaction that was live at the
//!   conflict (writer-writer resolution through the contention manager, or
//!   a read-set invalidation caused by a concurrent committer);
//! * **single-version** — each object's locator holds only the latest
//!   committed value (plus the owner's tentative value);
//! * **invisible reads** — reading logically performs loads only; no reader
//!   information is ever published.
//!
//! Consequently (and this is the paper's lower bound made concrete), opacity
//! *forces* incremental validation: every read re-validates the entire read
//! set, costing Θ(|read set|) steps, i.e. Θ(k) worst case per operation and
//! Θ(k²) per transaction. The lower-bound experiment measures exactly this.
//!
//! ### Base-object emulation note (documented substitution)
//!
//! Real DSTM publishes a locator via an atomic pointer that readers load
//! with a single instruction. Safe Rust has no atomic `Arc` swap, so each
//! object's locator sits behind a short `parking_lot::Mutex` critical
//! section; a locator access is *logically* one load and is metered as one
//! step (plus one step to read the owner's status word). Readers still
//! publish nothing — the mutex is measurement-invisible scaffolding, not
//! reader state — so the invisible-reads hypothesis is preserved at the
//! algorithm level. See DESIGN.md.

use parking_lot::Mutex;
use std::sync::Arc;

use crate::api::{Aborted, Stm, StmProperties, Tx, TxResult};
use crate::base::{status, Meter, OpKind, StepReport, TxDesc};
use crate::cm::{try_abort_tx, ContentionManager, Resolution};
use crate::config::{RetryPolicy, StmConfig};
use crate::recorder::Recorder;
use crate::trace_cells::{AccessKind, CellId, StepProbe};
use tm_model::TxId;

/// A DSTM locator: the owner transaction plus its old/new values.
#[derive(Debug, Clone)]
struct Locator {
    owner: Option<Arc<TxDesc>>,
    old: i64,
    new: i64,
}

impl Locator {
    /// The current committed value, given the owner's status.
    fn committed_value(&self, m: &mut Meter) -> i64 {
        match &self.owner {
            None => self.old,
            Some(d) => {
                if m.load_u8(d.status_cell(), &d.status) == status::COMMITTED {
                    self.new
                } else {
                    self.old
                }
            }
        }
    }
}

#[derive(Debug)]
struct DstmObj {
    locator: Mutex<Locator>,
}

/// The DSTM-like TM over `k` registers.
#[derive(Debug)]
pub struct DstmStm {
    objs: Vec<DstmObj>,
    recorder: Recorder,
    cm: ContentionManager,
    retry: RetryPolicy,
    probe: Option<Arc<dyn StepProbe>>,
}

impl DstmStm {
    /// A DSTM with `k` registers initialized to 0, using the aggressive
    /// contention manager.
    pub fn new(k: usize) -> Self {
        Self::with_config(&StmConfig::new(k))
    }

    /// A DSTM with an explicit contention manager.
    pub fn with_cm(k: usize, cm: ContentionManager) -> Self {
        Self::with_config(&StmConfig::new(k).contention_manager(cm))
    }

    /// A DSTM built from an explicit configuration (contention manager,
    /// initial values, recording, retry policy; the clock scheme is not
    /// consulted — DSTM has no global clock).
    pub fn with_config(cfg: &StmConfig) -> Self {
        DstmStm {
            objs: (0..cfg.k())
                .map(|i| DstmObj {
                    locator: Mutex::new(Locator {
                        owner: None,
                        old: cfg.initial(i),
                        new: cfg.initial(i),
                    }),
                })
                .collect(),
            recorder: cfg.build_recorder(),
            cm: cfg.cm(),
            retry: cfg.retry_policy(),
            probe: cfg.step_probe(),
        }
    }

    /// Reads the current committed value of `obj` (one locator load plus
    /// one status load).
    fn current_value(&self, obj: usize, m: &mut Meter) -> i64 {
        m.touch(CellId::Record(obj as u32), AccessKind::Read); // the locator load
        let loc = self.objs[obj].locator.lock();
        m.begin_atomic();
        let v = loc.committed_value(m);
        m.end_atomic();
        v
    }
}

/// A live DSTM transaction.
pub struct DstmTx<'a> {
    stm: &'a DstmStm,
    id: TxId,
    desc: Arc<TxDesc>,
    /// Invisible read set: (object, value observed).
    reads: Vec<(usize, i64)>,
    /// Objects currently owned (acquired) by this transaction.
    writes: Vec<usize>,
    meter: Meter,
    finished: bool,
}

impl Stm for DstmStm {
    fn name(&self) -> &'static str {
        "dstm"
    }

    fn k(&self) -> usize {
        self.objs.len()
    }

    fn begin(&self, _thread: usize) -> Box<dyn Tx + '_> {
        let id = self.recorder.fresh_tx();
        Box::new(DstmTx {
            stm: self,
            id,
            desc: Arc::new(TxDesc::new(id.0)),
            reads: Vec::new(),
            writes: Vec::new(),
            meter: Meter::with_probe(_thread, self.probe.clone()),
            finished: false,
        })
    }

    fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    fn retry_policy(&self) -> RetryPolicy {
        self.retry
    }

    fn properties(&self) -> StmProperties {
        StmProperties {
            progressive: true,
            single_version: true,
            invisible_reads: true,
            opaque_by_design: true,
            serializable_by_design: true,
        }
    }
}

impl DstmTx<'_> {
    /// Is this transaction still active (nobody aborted it)?
    fn still_active(&mut self) -> bool {
        self.meter
            .load_u8(self.desc.status_cell(), &self.desc.status)
            == status::ACTIVE
    }

    /// Re-validates the entire read set: every recorded value must still be
    /// the current committed value. This is the Θ(|read set|) incremental
    /// validation that opacity forces on invisible-read TMs (Theorem 3).
    fn validate_read_set(&mut self) -> bool {
        let stm = self.stm;
        for i in 0..self.reads.len() {
            let (obj, seen) = self.reads[i];
            if stm.current_value(obj, &mut self.meter) != seen {
                return false;
            }
        }
        true
    }

    /// Records the forced abort answering a pending operation invocation.
    fn abort_op(&mut self) -> Aborted {
        self.meter.end_op();
        self.finished = true;
        // Flip our own status so concurrent observers agree.
        self.desc.force_status(status::ABORTED);
        self.stm.recorder.abort(self.id);
        Aborted
    }
}

impl Tx for DstmTx<'_> {
    fn read(&mut self, obj: usize) -> TxResult<i64> {
        self.stm.recorder.inv_read(self.id, obj);
        self.meter.begin_op(OpKind::Read);
        if !self.still_active() {
            return Err(self.abort_op());
        }
        // Current value: our own tentative value if we own the object,
        // otherwise the committed value.
        let v = {
            self.meter
                .touch(CellId::Record(obj as u32), AccessKind::Read); // locator load
            let loc = self.stm.objs[obj].locator.lock();
            self.meter.begin_atomic();
            let v = match &loc.owner {
                Some(d) if Arc::ptr_eq(d, &self.desc) => loc.new,
                _ => loc.committed_value(&mut self.meter),
            };
            self.meter.end_atomic();
            v
        };
        // Incremental validation: the *whole* read set (including this
        // read) must describe the current committed state.
        let own = self.writes.contains(&obj);
        if !own {
            self.reads.push((obj, v));
        }
        if !self.validate_read_set() || !self.still_active() {
            return Err(self.abort_op());
        }
        self.meter.end_op();
        self.stm.recorder.ret_read(self.id, obj, v);
        Ok(v)
    }

    fn write(&mut self, obj: usize, v: i64) -> TxResult<()> {
        self.stm.recorder.inv_write(self.id, obj, v);
        self.meter.begin_op(OpKind::Write);
        if !self.still_active() {
            return Err(self.abort_op());
        }
        loop {
            // Locator access (CAS-like acquisition).
            self.meter
                .touch(CellId::Record(obj as u32), AccessKind::Rmw);
            let mut loc = self.stm.objs[obj].locator.lock();
            self.meter.begin_atomic();
            match loc.owner.clone() {
                Some(d) if Arc::ptr_eq(&d, &self.desc) => {
                    loc.new = v;
                    self.meter.end_atomic();
                    break;
                }
                Some(d) if self.meter.load_u8(d.status_cell(), &d.status) == status::ACTIVE => {
                    // Writer-writer conflict with a live transaction: ask
                    // the contention manager.
                    match self.stm.cm.resolve(crate::cm::ConflictCtx {
                        my_work: self.reads.len() + self.writes.len(),
                        other_work: 1,
                        my_birth: self.id.0,
                        other_birth: d.id,
                    }) {
                        Resolution::AbortOther => {
                            try_abort_tx(&d, &mut self.meter);
                            self.meter.end_atomic();
                            // Loop back and re-resolve the locator.
                        }
                        Resolution::AbortSelf => {
                            self.meter.end_atomic();
                            drop(loc);
                            return Err(self.abort_op());
                        }
                    }
                }
                _ => {
                    // Owner committed/aborted or absent: fold and acquire.
                    let cur = loc.committed_value(&mut self.meter);
                    *loc = Locator {
                        owner: Some(self.desc.clone()),
                        old: cur,
                        new: v,
                    };
                    self.writes.push(obj);
                    self.meter.end_atomic();
                    break;
                }
            }
        }
        self.meter.end_op();
        self.stm.recorder.ret_write(self.id, obj);
        Ok(())
    }

    fn commit(mut self: Box<Self>) -> TxResult<()> {
        self.stm.recorder.try_commit(self.id);
        self.meter.begin_op(OpKind::Commit);
        // Final validation, then the single linearizing status CAS.
        let valid = self.validate_read_set();
        let committed = valid
            && self.meter.cas_u8(
                self.desc.status_cell(),
                &self.desc.status,
                status::ACTIVE,
                status::COMMITTED,
            );
        self.meter.end_op();
        self.finished = true;
        if committed {
            self.stm.recorder.commit(self.id);
            Ok(())
        } else {
            self.desc.force_status(status::ABORTED);
            self.stm.recorder.abort(self.id);
            Err(Aborted)
        }
    }

    fn abort(mut self: Box<Self>) {
        self.stm.recorder.try_abort(self.id);
        self.desc.force_status(status::ABORTED);
        self.finished = true;
        self.stm.recorder.abort(self.id);
    }

    fn steps(&self) -> StepReport {
        self.meter.report()
    }

    fn id(&self) -> u32 {
        self.id.0
    }
}

impl Drop for DstmTx<'_> {
    fn drop(&mut self) {
        if !self.finished {
            self.stm.recorder.try_abort(self.id);
            self.desc.force_status(status::ABORTED);
            self.stm.recorder.abort(self.id);
            self.finished = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::run_tx;

    #[test]
    fn read_write_commit_roundtrip() {
        let stm = DstmStm::new(2);
        let mut tx = stm.begin(0);
        tx.write(0, 7).unwrap();
        assert_eq!(tx.read(0).unwrap(), 7);
        tx.commit().unwrap();
        let mut tx = stm.begin(0);
        assert_eq!(tx.read(0).unwrap(), 7);
        tx.commit().unwrap();
    }

    #[test]
    fn aborted_owner_value_not_visible() {
        let stm = DstmStm::new(1);
        let mut t1 = stm.begin(0);
        t1.write(0, 9).unwrap();
        t1.abort();
        let mut t2 = stm.begin(0);
        assert_eq!(t2.read(0).unwrap(), 0);
        t2.commit().unwrap();
    }

    #[test]
    fn aggressive_cm_aborts_owner_on_write_conflict() {
        let stm = DstmStm::new(1);
        let mut t1 = stm.begin(0);
        t1.write(0, 1).unwrap();
        let mut t2 = stm.begin(1);
        t2.write(0, 2).unwrap(); // aborts T1
        t2.commit().unwrap();
        assert_eq!(t1.commit(), Err(Aborted));
        let mut t3 = stm.begin(0);
        assert_eq!(t3.read(0).unwrap(), 2);
        t3.commit().unwrap();
    }

    #[test]
    fn timid_cm_aborts_self_on_write_conflict() {
        let stm = DstmStm::with_cm(1, ContentionManager::Timid);
        let mut t1 = stm.begin(0);
        t1.write(0, 1).unwrap();
        let mut t2 = stm.begin(1);
        assert_eq!(t2.write(0, 2), Err(Aborted));
        t1.commit().unwrap();
    }

    #[test]
    fn read_invalidation_aborts_reader() {
        // T1 reads r0; T2 writes r0 and commits; T1's next read (of any
        // object) re-validates the read set and aborts: the progressive
        // reaction to a real conflict.
        let stm = DstmStm::new(2);
        let mut t1 = stm.begin(0);
        assert_eq!(t1.read(0).unwrap(), 0);
        let mut t2 = stm.begin(1);
        t2.write(0, 5).unwrap();
        t2.commit().unwrap();
        assert_eq!(t1.read(1), Err(Aborted));
    }

    #[test]
    fn progressive_no_abort_without_conflict() {
        // T2 writes a *disjoint* object and commits; T1 keeps reading
        // happily — unlike TL2 (cf. tl2::tests::stale_read_version_aborts).
        let stm = DstmStm::new(2);
        let mut t1 = stm.begin(0);
        assert_eq!(t1.read(0).unwrap(), 0);
        let mut t2 = stm.begin(1);
        t2.write(1, 5).unwrap();
        t2.commit().unwrap();
        assert_eq!(t1.read(1).unwrap(), 5);
        t1.commit().unwrap();
    }

    #[test]
    fn per_read_cost_grows_with_read_set() {
        // The Θ(k) signature: the i-th read validates i prior reads.
        let k = 64;
        let stm = DstmStm::new(k);
        let mut tx = stm.begin(0);
        for i in 0..k {
            tx.read(i).unwrap();
        }
        let r = tx.steps();
        let reads: Vec<u64> = r
            .per_op
            .iter()
            .filter(|(kind, _)| *kind == OpKind::Read)
            .map(|(_, s)| *s)
            .collect();
        assert_eq!(reads.len(), k);
        // Strictly increasing cost: each read validates a larger read set.
        assert!(reads.windows(2).all(|w| w[0] < w[1]), "{reads:?}");
        assert!(
            reads[k - 1] >= k as u64,
            "last read must cost Ω(k): {reads:?}"
        );
        tx.commit().unwrap();
    }

    #[test]
    fn recorded_history_well_formed() {
        let stm = DstmStm::new(2);
        run_tx(&stm, 0, |tx| tx.write(0, 1));
        run_tx(&stm, 0, |tx| {
            let v = tx.read(0)?;
            tx.write(1, v * 2)
        });
        let h = stm.recorder().history();
        assert!(tm_model::is_well_formed(&h), "{h}");
        assert_eq!(h.committed_txs().len(), 2);
    }

    #[test]
    fn commit_after_invalidation_fails() {
        let stm = DstmStm::new(1);
        let mut t1 = stm.begin(0);
        assert_eq!(t1.read(0).unwrap(), 0);
        let mut t2 = stm.begin(1);
        t2.write(0, 3).unwrap();
        t2.commit().unwrap();
        assert_eq!(t1.commit(), Err(Aborted));
    }
}
