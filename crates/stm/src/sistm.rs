//! A snapshot-isolation TM (SI-STM style) — a *deliberately non-opaque*
//! design point the paper names.
//!
//! Section 1 lists "a version of SI-STM \[26\]" among the implementations that
//! "do not ensure opacity; these, however, explicitly trade safety
//! guarantees, while recognizing the resulting dangers, for improved
//! performance". This module is that trade-off, executable: a multi-version
//! TM whose transactions read the committed snapshot at their begin
//! timestamp (so every *read* is individually consistent — unlike the
//! commit-time-validation TM in [`crate::nonopaque`], no transaction ever
//! observes a fractured state mid-flight) but whose commit validates only
//! the **write set** (first-committer-wins on writes, the classical
//! definition of snapshot isolation [Berenson et al., SIGMOD'95] — the
//! paper's reference \[1\]).
//!
//! The safety gap is *write skew*: two transactions may each read the
//! other's write target from the common snapshot, write disjoint objects,
//! and both commit — producing a committed outcome no sequential execution
//! allows. The recorded histories violate opacity (and even plain
//! serializability of committed transactions), which is why
//! [`StmProperties::opaque_by_design`] and `serializable_by_design` are both
//! `false` here. The separation from [`crate::nonopaque`] is instructive:
//!
//! | TM | live reads consistent? | committed txs serializable? |
//! |----|------------------------|-----------------------------|
//! | `nonopaque` | ✘ (the §2 hazard) | ✔ |
//! | `sistm` | ✔ (snapshot reads) | ✘ (write skew) |
//!
//! Neither is opaque; they fail on *different* conjuncts of Definition 1,
//! which is precisely the paper's argument that opacity is the conjunction
//! users actually need.

use parking_lot::Mutex;
use std::sync::Arc;

use crate::api::{Aborted, Stm, StmProperties, Tx, TxResult};
use crate::base::{Meter, OpKind, StepReport};
use crate::clock::GlobalClock;
use crate::config::{RetryPolicy, StmConfig};
use crate::recorder::Recorder;
use crate::trace_cells::{AccessKind, CellId, StepProbe};
use tm_model::TxId;

#[derive(Debug)]
struct SiObj {
    /// Committed versions `(timestamp, value)`, ascending by timestamp.
    /// Timestamp 0 is the initial value.
    versions: Mutex<Vec<(u64, i64)>>,
}

/// The snapshot-isolation TM over `k` registers.
///
/// ```
/// use tm_stm::{SiStm, Stm, run_tx};
///
/// let stm = SiStm::new(2);
/// // Reads come from the committed snapshot at begin — always consistent.
/// run_tx(&stm, 0, |tx| { tx.write(0, 4)?; tx.write(1, 16) });
/// let mut t = stm.begin(0);
/// assert_eq!(t.read(0).unwrap(), 4);
/// run_tx(&stm, 1, |tx| { tx.write(0, 2)?; tx.write(1, 4) });
/// assert_eq!(t.read(1).unwrap(), 16); // old snapshot, never fractured
/// t.commit().unwrap();
/// assert!(!stm.properties().opaque_by_design); // …but write skew commits
/// ```
#[derive(Debug)]
pub struct SiStm {
    objs: Vec<SiObj>,
    clock: Box<dyn GlobalClock>,
    commit_lock: Mutex<()>,
    recorder: Recorder,
    retry: RetryPolicy,
    probe: Option<Arc<dyn StepProbe>>,
}

impl SiStm {
    /// A snapshot-isolation TM with `k` registers initialized to 0
    /// (default configuration: single clock).
    pub fn new(k: usize) -> Self {
        Self::with_config(&StmConfig::new(k))
    }

    /// A snapshot-isolation TM built from an explicit configuration (clock
    /// scheme, initial values, recording, retry policy).
    pub fn with_config(cfg: &StmConfig) -> Self {
        SiStm {
            objs: (0..cfg.k())
                .map(|i| SiObj {
                    versions: Mutex::new(vec![(0, cfg.initial(i))]),
                })
                .collect(),
            clock: cfg.build_clock(),
            commit_lock: Mutex::new(()),
            recorder: cfg.build_recorder(),
            retry: cfg.retry_policy(),
            probe: cfg.step_probe(),
        }
    }

    /// The value of `obj` in the committed snapshot at `ts`.
    fn value_at(&self, obj: usize, ts: u64, m: &mut Meter) -> i64 {
        m.touch(CellId::Record(obj as u32), AccessKind::Read); // version-list access
        let versions = self.objs[obj].versions.lock();
        let mut lo = 0usize;
        let mut hi = versions.len();
        while hi - lo > 1 {
            m.step();
            let mid = (lo + hi) / 2;
            if versions[mid].0 <= ts {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        versions[lo].1
    }

    /// The newest committed timestamp of `obj`.
    fn latest_ts(&self, obj: usize, m: &mut Meter) -> u64 {
        m.touch(CellId::Record(obj as u32), AccessKind::Read);
        let versions = self.objs[obj].versions.lock();
        versions.last().expect("version list never empty").0
    }
}

/// A live snapshot-isolation transaction.
pub struct SiTx<'a> {
    stm: &'a SiStm,
    id: TxId,
    /// The OS-thread slot running this transaction (the clock's home-shard
    /// hint).
    thread: usize,
    /// Snapshot timestamp sampled at begin.
    start_ts: u64,
    /// Redo log. The read set is deliberately *not* tracked: snapshot
    /// isolation never validates reads — that omission is the write-skew
    /// hole.
    writes: Vec<(usize, i64)>,
    meter: Meter,
    finished: bool,
}

impl Stm for SiStm {
    fn name(&self) -> &'static str {
        "sistm"
    }

    fn k(&self) -> usize {
        self.objs.len()
    }

    fn begin(&self, thread: usize) -> Box<dyn Tx + '_> {
        let id = self.recorder.fresh_tx();
        let start_ts = self.clock.peek();
        Box::new(SiTx {
            stm: self,
            id,
            thread,
            start_ts,
            writes: Vec::new(),
            meter: Meter::with_probe(thread, self.probe.clone()),
            finished: false,
        })
    }

    fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    fn retry_policy(&self) -> RetryPolicy {
        self.retry
    }

    fn properties(&self) -> StmProperties {
        StmProperties {
            progressive: false, // first-committer-wins can abort after the
            // conflicting peer already committed
            single_version: false,
            invisible_reads: true,
            opaque_by_design: false,
            serializable_by_design: false, // write skew
        }
    }
}

impl Tx for SiTx<'_> {
    fn read(&mut self, obj: usize) -> TxResult<i64> {
        self.stm.recorder.inv_read(self.id, obj);
        self.meter.begin_op(OpKind::Read);
        if let Some(&(_, v)) = self.writes.iter().find(|(o, _)| *o == obj) {
            self.meter.end_op();
            self.stm.recorder.ret_read(self.id, obj, v);
            return Ok(v);
        }
        // Snapshot read: never fails, never validates anything.
        let v = self.stm.value_at(obj, self.start_ts, &mut self.meter);
        self.meter.end_op();
        self.stm.recorder.ret_read(self.id, obj, v);
        Ok(v)
    }

    fn write(&mut self, obj: usize, v: i64) -> TxResult<()> {
        self.stm.recorder.inv_write(self.id, obj, v);
        self.meter.begin_op(OpKind::Write);
        match self.writes.iter_mut().find(|(o, _)| *o == obj) {
            Some(slot) => slot.1 = v,
            None => self.writes.push((obj, v)),
        }
        self.meter.end_op();
        self.stm.recorder.ret_write(self.id, obj);
        Ok(())
    }

    fn commit(mut self: Box<Self>) -> TxResult<()> {
        self.stm.recorder.try_commit(self.id);
        self.meter.begin_op(OpKind::Commit);
        if self.writes.is_empty() {
            // Read-only transactions commit unconditionally.
            self.meter.end_op();
            self.finished = true;
            self.stm.recorder.commit(self.id);
            return Ok(());
        }
        self.meter.acquire(CellId::CommitLock);
        let guard = self.stm.commit_lock.lock();
        // First-committer-wins over the WRITE set only (the read set is
        // not consulted — compare MvStm::commit, which also validates
        // reads and is therefore opaque).
        let stm = self.stm;
        let valid = self
            .writes
            .iter()
            .all(|&(obj, _)| stm.latest_ts(obj, &mut self.meter) <= self.start_ts);
        if !valid {
            drop(guard);
            self.meter.release(CellId::CommitLock);
            self.meter.end_op();
            self.finished = true;
            self.stm.recorder.abort(self.id);
            return Err(Aborted);
        }
        // Publish-last ordering, exactly as in MvStm (see the regression
        // note there): reserve the timestamp, install versions, then
        // publish — all under the commit lock, as the clock's
        // reserve/publish contract requires.
        let wv = self.stm.clock.reserve(self.thread, &mut self.meter);
        for &(obj, v) in &self.writes {
            self.meter
                .touch(CellId::Record(obj as u32), AccessKind::Write);
            stm.objs[obj].versions.lock().push((wv, v));
        }
        self.stm.clock.publish(wv, &mut self.meter);
        drop(guard);
        self.meter.release(CellId::CommitLock);
        self.meter.end_op();
        self.finished = true;
        self.stm.recorder.commit(self.id);
        Ok(())
    }

    fn abort(mut self: Box<Self>) {
        self.stm.recorder.try_abort(self.id);
        self.finished = true;
        self.stm.recorder.abort(self.id);
    }

    fn steps(&self) -> StepReport {
        self.meter.report()
    }

    fn id(&self) -> u32 {
        self.id.0
    }
}

impl Drop for SiTx<'_> {
    fn drop(&mut self) {
        if !self.finished {
            self.stm.recorder.try_abort(self.id);
            self.stm.recorder.abort(self.id);
            self.finished = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::run_tx;

    #[test]
    fn roundtrip() {
        let stm = SiStm::new(2);
        let mut tx = stm.begin(0);
        tx.write(0, 3).unwrap();
        assert_eq!(tx.read(0).unwrap(), 3);
        tx.commit().unwrap();
        let mut tx = stm.begin(0);
        assert_eq!(tx.read(0).unwrap(), 3);
        tx.commit().unwrap();
    }

    #[test]
    fn snapshot_reads_are_internally_consistent() {
        // Unlike the commit-time-validation TM, a live SI transaction can
        // never see a fractured two-register invariant: both reads come
        // from the same committed snapshot.
        let stm = SiStm::new(2);
        run_tx(&stm, 0, |tx| {
            tx.write(0, 4)?;
            tx.write(1, 16)
        });
        let mut t1 = stm.begin(0);
        assert_eq!(t1.read(0).unwrap(), 4);
        run_tx(&stm, 1, |tx| {
            tx.write(0, 2)?;
            tx.write(1, 4)
        });
        // The §2 hazard read: under nonopaque this returns 4 (fractured);
        // under SI it returns the old snapshot's 16.
        assert_eq!(t1.read(1).unwrap(), 16, "snapshot must stay consistent");
        t1.commit().unwrap();
    }

    #[test]
    fn write_skew_commits_both() {
        // The canonical SI anomaly: x + y >= 0 as an application invariant,
        // both transactions read (0, 0), each writes one register to -1,
        // write sets are disjoint, both commit — final state (-1, -1)
        // breaks the invariant; no sequential order explains it.
        let stm = SiStm::new(2);
        let mut t1 = stm.begin(0);
        let mut t2 = stm.begin(1);
        assert_eq!(t1.read(0).unwrap(), 0);
        assert_eq!(t1.read(1).unwrap(), 0);
        assert_eq!(t2.read(0).unwrap(), 0);
        assert_eq!(t2.read(1).unwrap(), 0);
        t1.write(0, -1).unwrap();
        t2.write(1, -1).unwrap();
        t1.commit().unwrap();
        t2.commit().unwrap(); // a serializable TM would abort this one
        let ((x, y), _) = run_tx(&stm, 0, |tx| Ok((tx.read(0)?, tx.read(1)?)));
        assert_eq!((x, y), (-1, -1), "write skew must materialize");
    }

    #[test]
    fn write_write_conflicts_still_abort() {
        // First-committer-wins on writes: SI is not a free-for-all.
        let stm = SiStm::new(1);
        let mut t1 = stm.begin(0);
        t1.write(0, 1).unwrap();
        let mut t2 = stm.begin(1);
        t2.write(0, 2).unwrap();
        t2.commit().unwrap();
        assert_eq!(t1.commit(), Err(Aborted));
    }

    #[test]
    fn lost_update_prevented() {
        // read-modify-write on one register: the write set covers the read
        // set, so first-committer-wins prevents lost updates even though
        // reads are never validated.
        let stm = SiStm::new(1);
        let mut t1 = stm.begin(0);
        let v1 = t1.read(0).unwrap();
        let mut t2 = stm.begin(1);
        let v2 = t2.read(0).unwrap();
        t1.write(0, v1 + 1).unwrap();
        t2.write(0, v2 + 1).unwrap();
        t1.commit().unwrap();
        assert_eq!(t2.commit(), Err(Aborted), "lost update must be refused");
        let (v, _) = run_tx(&stm, 0, |tx| tx.read(0));
        assert_eq!(v, 1);
    }

    #[test]
    fn read_only_tx_never_aborts() {
        let stm = SiStm::new(2);
        let mut t1 = stm.begin(0);
        assert_eq!(t1.read(0).unwrap(), 0);
        for v in 1..=5 {
            run_tx(&stm, 1, |tx| {
                tx.write(0, v)?;
                tx.write(1, v)
            });
        }
        assert_eq!(t1.read(1).unwrap(), 0, "still the begin snapshot");
        t1.commit().unwrap();
    }

    #[test]
    fn recorded_history_well_formed() {
        let stm = SiStm::new(2);
        run_tx(&stm, 0, |tx| tx.write(0, 1));
        let mut t = stm.begin(0);
        let _ = t.read(0).unwrap();
        t.abort();
        let h = stm.recorder().history();
        assert!(tm_model::is_well_formed(&h), "{h}");
    }
}
