//! Global version clocks — the commit-timestamp authority shared by
//! TL2-style and multi-version TMs, now a *pluggable* component.
//!
//! Every timestamp-based TM in this crate ([`crate::tl2`], [`crate::mvstm`],
//! [`crate::sistm`]) serializes its commits through a logical clock. The
//! classic implementation — TL2's `GV1`, one `fetch_add` on one atomic — is
//! correct but turns that atomic into the single most contended cache line
//! of the whole system once more than a few threads commit concurrently.
//! The [`GlobalClock`] trait abstracts the clock so the contention strategy
//! becomes a configuration axis ([`ClockScheme`] on
//! [`crate::config::StmConfig`]) instead of a hardwired design decision:
//!
//! | scheme | provenance | tick cost | contention behaviour |
//! |--------|-----------|-----------|----------------------|
//! | [`ClockScheme::Single`] | TL2's GV1 (Dice, Shalev & Shavit, DISC 2006) | 1 `fetch_add` | every committer bounces one cache line |
//! | [`ClockScheme::Sharded`] | GV5-style clock arrays (Felber et al.; TLC-style thread residues) | scan of `N` padded shards + 1 CAS on the *home* shard | committers on distinct home shards never write the same line |
//! | [`ClockScheme::Deferred`] | GV4 "pass on failure" (Felber, Fetzer & Riegel, TinySTM) | 1 CAS, **never retried** | a losing committer adopts the winner's advance instead of re-fighting for the line |
//!
//! # The invariants every scheme guarantees
//!
//! Writing `→` for "completes before" (real time on one clock instance):
//!
//! 1. **Strict monotonicity.** If `a = tick(..)` → `b = tick(..)` then
//!    `a < b`; if `s = sample(..)` → `b = tick(..)` then `s < b`; and
//!    `tick(..) → sample(..)` implies `sample ≥ tick`. Timestamps never
//!    move backwards.
//! 2. **Uniqueness.** Any two `tick` calls return distinct timestamps —
//!    including the GV4-style [`ClockScheme::Deferred`] scheme, which
//!    classically allows concurrent committers to *share* the adopted
//!    timestamp: here every timestamp carries the ticking thread's residue
//!    in its low [`DeferredClock::HOME_BITS`] bits, so two adopters of the
//!    same global advance still differ. (The residue trick is TLC-style;
//!    uniqueness holds for up to 2^8 = 256 distinct thread ids.)
//! 3. **Initial-state dominance.** All committed initial values carry
//!    timestamp 0 and every `sample`/`tick` result is `≥ 0`.
//!
//! The monotonicity argument for the sharded scheme: `tick` first scans all
//! shards for the maximum `M` (every earlier-completed tick stored its
//! timestamp into its home shard *before* returning, so `M` dominates
//! everything that happened before the scan), then CASes its home shard
//! from `cur` to the smallest value `> max(M, cur)` congruent to the home
//! index — strictly above everything observed, and unique because each
//! shard's sequence is strictly increasing and distinct shards produce
//! distinct residues modulo the shard count. See `DESIGN.md` for the long
//! form.
//!
//! # Two-phase commit timestamps (`reserve` / `publish`)
//!
//! The multi-version TMs must install new versions *before* the new
//! timestamp becomes observable, otherwise a transaction beginning between
//! the clock advance and the version append adopts a snapshot timestamp
//! whose versions are not yet visible — a lost update (the regression note
//! in [`crate::mvstm`]). [`GlobalClock::reserve`] hands out the next
//! timestamp without making it sampleable; [`GlobalClock::publish`] makes
//! it (and everything below it) visible. **Contract:** a `reserve` …
//! `publish` pair must be mutually exclusive with every other `reserve`,
//! `publish`, or `tick` on the same clock instance — the multi-version TMs
//! guarantee this by holding their global commit lock across the pair.
//! `sample`/`peek` may run concurrently with anything.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::base::Meter;
use crate::trace_cells::CellId;

/// A monotonically increasing global version clock.
///
/// All methods except [`GlobalClock::peek`] are metered: every access to a
/// base shared object counts as one step (Section 6.1 of the paper), so the
/// step-count experiments see the true cost of each scheme *inside
/// operations*. `peek` is deliberately unmetered — it is the begin-time
/// snapshot read, which happens outside any metered operation (exactly as
/// the pre-trait TL2 sampled its GV1 counter at begin for free). Note that
/// for the sharded scheme a `peek` really costs one load per shard, so
/// begin-time work is O(shards); that cost is visible to wall-clock
/// benchmarks (`clocks/*`) but, like all begin-time work, outside the
/// per-operation step accounting of Theorem 3.
pub trait GlobalClock: std::fmt::Debug + Send + Sync {
    /// The current time: every timestamp published so far is `≤ sample()`.
    fn sample(&self, m: &mut Meter) -> u64;

    /// Advances the clock on behalf of `thread` and returns a fresh
    /// timestamp, strictly greater than every timestamp previously returned
    /// by `tick`/`publish` and every previously completed `sample`.
    fn tick(&self, thread: usize, m: &mut Meter) -> u64;

    /// Reserves the next commit timestamp for `thread` *without* making it
    /// observable: `sample` keeps returning values below it until the
    /// matching [`GlobalClock::publish`]. Requires external mutual
    /// exclusion against all other clock writers (see the module docs).
    fn reserve(&self, thread: usize, m: &mut Meter) -> u64;

    /// Makes a timestamp previously handed out by [`GlobalClock::reserve`]
    /// observable: afterwards `sample() ≥ ts`. Same exclusion contract as
    /// `reserve`.
    fn publish(&self, ts: u64, m: &mut Meter);

    /// Unmetered read of the current time, for begin-time snapshots (like
    /// TL2's `rv` sample, which precedes every metered operation) and
    /// assertions. O(1) for `single`/`deferred`, O(shards) for `sharded`
    /// — see the trait docs for why begin-time work is outside the step
    /// accounting.
    fn peek(&self) -> u64;

    /// True iff a `tick` returning exactly `sample + 1` *proves* that no
    /// other committer advanced the clock in between — the premise of
    /// TL2's "`wv == rv + 1` skips read-set validation" fast path. Only
    /// the single GV1 counter has this property (its `fetch_add` is the
    /// sole way time advances); for the sharded and deferred schemes a
    /// concurrent committer can obtain a timestamp without being visible
    /// in the caller's tick arithmetic, so the fast path must not fire
    /// (the classical reason GV4/GV5 give this optimization up).
    fn tick_is_exclusive(&self) -> bool {
        false
    }
}

/// The `single` scheme: one atomic counter, TL2's `GV1`.
///
/// The strongest and simplest clock — timestamps are exactly the naturals —
/// and the default of every [`crate::config::StmConfig`]. Its `fetch_add`
/// serializes all committers on one cache line, which is precisely the
/// bottleneck the other schemes attack.
#[derive(Debug, Default)]
pub struct VersionClock {
    now: AtomicU64,
}

impl VersionClock {
    /// A clock starting at 0 (the timestamp of all initial values).
    pub fn new() -> Self {
        VersionClock::default()
    }

    /// Samples the clock (one step).
    pub fn sample(&self, m: &mut Meter) -> u64 {
        m.load_u64(CellId::Clock(0), &self.now)
    }

    /// Advances the clock and returns the new unique timestamp (one step).
    pub fn tick(&self, m: &mut Meter) -> u64 {
        let t = m.fetch_add_u64(CellId::Clock(0), &self.now, 1);
        m.note_stamp(t);
        t
    }

    /// Unmetered read for assertions/tests.
    pub fn peek(&self) -> u64 {
        self.now.load(Ordering::Acquire)
    }
}

impl GlobalClock for VersionClock {
    fn sample(&self, m: &mut Meter) -> u64 {
        VersionClock::sample(self, m)
    }

    fn tick(&self, _thread: usize, m: &mut Meter) -> u64 {
        VersionClock::tick(self, m)
    }

    fn reserve(&self, _thread: usize, m: &mut Meter) -> u64 {
        let ts = m.load_u64(CellId::Clock(0), &self.now) + 1;
        m.note_stamp(ts);
        ts
    }

    fn publish(&self, ts: u64, m: &mut Meter) {
        m.fetch_max_u64(CellId::Clock(0), &self.now, ts);
    }

    fn peek(&self) -> u64 {
        VersionClock::peek(self)
    }

    fn tick_is_exclusive(&self) -> bool {
        true
    }
}

/// One shard on its own cache line, so committers with distinct home shards
/// never write-share a line.
#[derive(Debug, Default)]
#[repr(align(64))]
struct PaddedShard(AtomicU64);

/// The `sharded:N` scheme: a cache-padded clock array with per-thread home
/// shards (GV5-style).
///
/// `sample` = max over all shards; `tick` bumps the caller's home shard
/// (`thread % N`) to the smallest value above the observed maximum that is
/// congruent to the home index modulo `N`. Distinct shards therefore issue
/// timestamps from disjoint residue classes — globally unique without any
/// cross-shard write — and the pre-scan makes every tick dominate all
/// previously completed ticks.
#[derive(Debug)]
pub struct ShardedClock {
    shards: Vec<PaddedShard>,
}

impl ShardedClock {
    /// A sharded clock with `n ≥ 1` shards, all starting at 0.
    pub fn new(n: usize) -> Self {
        assert!(n >= 1, "a sharded clock needs at least one shard");
        ShardedClock {
            shards: (0..n).map(|_| PaddedShard::default()).collect(),
        }
    }

    /// The number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Metered max-scan over all shards (one step per shard).
    fn scan_max(&self, m: &mut Meter) -> u64 {
        self.shards
            .iter()
            .enumerate()
            .map(|(i, s)| m.load_u64(CellId::Clock(i as u32), &s.0))
            .max()
            .expect("at least one shard")
    }

    /// The smallest value `> floor` congruent to `home` modulo the shard
    /// count.
    fn next_congruent(&self, floor: u64, home: usize) -> u64 {
        let n = self.shards.len() as u64;
        let aligned = floor - floor % n + home as u64;
        if aligned > floor {
            aligned
        } else {
            aligned + n
        }
    }

    fn home(&self, thread: usize) -> usize {
        thread % self.shards.len()
    }
}

impl GlobalClock for ShardedClock {
    fn sample(&self, m: &mut Meter) -> u64 {
        self.scan_max(m)
    }

    fn tick(&self, thread: usize, m: &mut Meter) -> u64 {
        let home = self.home(thread);
        // One scan yields both the global max and the home shard's value —
        // no second metered load of the home shard needed before the CAS.
        let mut base = 0;
        let mut cur = 0;
        for (i, s) in self.shards.iter().enumerate() {
            let v = m.load_u64(CellId::Clock(i as u32), &s.0);
            if i == home {
                cur = v;
            }
            base = base.max(v);
        }
        loop {
            let cand = self.next_congruent(base.max(cur), home);
            // The CAS can only lose to another committer homed on the SAME
            // shard; distinct home shards never contend here.
            if m.cas_u64(CellId::Clock(home as u32), &self.shards[home].0, cur, cand) {
                m.note_stamp(cand);
                return cand;
            }
            cur = m.load_u64(CellId::Clock(home as u32), &self.shards[home].0);
        }
    }

    fn reserve(&self, thread: usize, m: &mut Meter) -> u64 {
        let home = self.home(thread);
        let ts = self.next_congruent(self.scan_max(m), home);
        m.note_stamp(ts);
        ts
    }

    fn publish(&self, ts: u64, m: &mut Meter) {
        let shard = (ts % self.shards.len() as u64) as usize;
        m.fetch_max_u64(CellId::Clock(shard as u32), &self.shards[shard].0, ts);
    }

    fn peek(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Acquire))
            .max()
            .expect("at least one shard")
    }
}

/// The `deferred` scheme: GV4 pass-on-failure (TinySTM's `GV4`), made
/// uniqueness-preserving.
///
/// A committer attempts **one** CAS to advance the global counter; on
/// failure it does not retry — it adopts the winner's advance (the freshly
/// observed counter value) as its own commit time. Classic GV4 lets both
/// committers share the timestamp (sound for TL2-style validation, but it
/// breaks the uniqueness invariant this crate's checkers lean on), so each
/// timestamp here is `count << HOME_BITS | thread-residue`: adopters of the
/// same advance still differ in their low bits. `sample` returns
/// `count << HOME_BITS | HOME_MASK`, which dominates every timestamp issued
/// at or below `count`.
#[derive(Debug, Default)]
pub struct DeferredClock {
    /// The global advance counter (timestamps are `count << HOME_BITS`).
    now: AtomicU64,
}

impl DeferredClock {
    /// Low bits carrying the ticking thread's residue.
    pub const HOME_BITS: u32 = 8;
    /// Mask of the residue bits.
    pub const HOME_MASK: u64 = (1 << Self::HOME_BITS) - 1;

    /// A deferred clock starting at 0.
    pub fn new() -> Self {
        DeferredClock::default()
    }

    fn stamp(count: u64, thread: usize) -> u64 {
        (count << Self::HOME_BITS) | (thread as u64 & Self::HOME_MASK)
    }
}

impl GlobalClock for DeferredClock {
    fn sample(&self, m: &mut Meter) -> u64 {
        (m.load_u64(CellId::Clock(0), &self.now) << Self::HOME_BITS) | Self::HOME_MASK
    }

    fn tick(&self, thread: usize, m: &mut Meter) -> u64 {
        let cur = m.load_u64(CellId::Clock(0), &self.now);
        let ts = if m.cas_u64(CellId::Clock(0), &self.now, cur, cur + 1) {
            Self::stamp(cur + 1, thread)
        } else {
            // Pass on failure: adopt the winner's advance instead of
            // re-contending for the line. The reload is strictly greater
            // than `cur`, so the adopted stamp stays strictly monotone for
            // this thread; the residue keeps it unique against the winner.
            Self::stamp(m.load_u64(CellId::Clock(0), &self.now), thread)
        };
        m.note_stamp(ts);
        ts
    }

    fn reserve(&self, thread: usize, m: &mut Meter) -> u64 {
        let ts = Self::stamp(m.load_u64(CellId::Clock(0), &self.now) + 1, thread);
        m.note_stamp(ts);
        ts
    }

    fn publish(&self, ts: u64, m: &mut Meter) {
        m.fetch_max_u64(CellId::Clock(0), &self.now, ts >> Self::HOME_BITS);
    }

    fn peek(&self) -> u64 {
        (self.now.load(Ordering::Acquire) << Self::HOME_BITS) | Self::HOME_MASK
    }
}

/// A clock scheme selector — the parse/display form used by
/// [`crate::config::StmConfig`], `tmcheck conformance --clock`, and TM
/// specs like `"tl2+sharded:16"`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ClockScheme {
    /// One atomic counter (TL2's GV1) — the default.
    #[default]
    Single,
    /// A cache-padded array of that many shards with per-thread homes
    /// (GV5-style).
    Sharded(usize),
    /// GV4 pass-on-failure with thread residues.
    Deferred,
}

impl ClockScheme {
    /// The default shard count when `"sharded"` is given without `:N`.
    pub const DEFAULT_SHARDS: usize = 8;

    /// A representative of every scheme family, for sweeping tests and
    /// benchmarks.
    pub const SWEEP: [ClockScheme; 3] = [
        ClockScheme::Single,
        ClockScheme::Sharded(4),
        ClockScheme::Deferred,
    ];

    /// Parses `"single"`, `"sharded"`, `"sharded:N"`, or `"deferred"`.
    pub fn parse(s: &str) -> Result<ClockScheme, String> {
        match s.trim() {
            "single" => Ok(ClockScheme::Single),
            "deferred" => Ok(ClockScheme::Deferred),
            "sharded" => Ok(ClockScheme::Sharded(Self::DEFAULT_SHARDS)),
            other => {
                if let Some(n) = other.strip_prefix("sharded:") {
                    let n: usize = n
                        .parse()
                        .map_err(|_| format!("bad shard count in clock scheme '{other}'"))?;
                    if n == 0 || n > 1024 {
                        return Err(format!(
                            "clock scheme '{other}': shard count must be in 1..=1024"
                        ));
                    }
                    Ok(ClockScheme::Sharded(n))
                } else {
                    Err(format!(
                        "unknown clock scheme '{other}' \
                         (valid: single, sharded[:N], deferred)"
                    ))
                }
            }
        }
    }

    /// Constructs the clock this scheme names.
    pub fn build(self) -> Box<dyn GlobalClock> {
        match self {
            ClockScheme::Single => Box::new(VersionClock::new()),
            ClockScheme::Sharded(n) => Box::new(ShardedClock::new(n)),
            ClockScheme::Deferred => Box::new(DeferredClock::new()),
        }
    }

    /// True for the default single-counter scheme.
    pub fn is_single(self) -> bool {
        self == ClockScheme::Single
    }
}

impl std::fmt::Display for ClockScheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClockScheme::Single => write!(f, "single"),
            ClockScheme::Sharded(n) => write!(f, "sharded:{n}"),
            ClockScheme::Deferred => write!(f, "deferred"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::base::OpKind;

    #[test]
    fn ticks_are_unique_and_monotone() {
        let c = VersionClock::new();
        let mut m = Meter::new();
        m.begin_op(OpKind::Commit);
        let a = c.tick(&mut m);
        let b = c.tick(&mut m);
        let s = c.sample(&mut m);
        m.end_op();
        assert!(a < b);
        assert_eq!(s, b);
        assert_eq!(c.peek(), 2);
        // Three clock accesses = three steps.
        assert_eq!(m.report().per_op, vec![(OpKind::Commit, 3)]);
    }

    /// Sequential monotonicity/uniqueness across every scheme, through the
    /// trait (the multi-threaded versions live in `tests/clocks.rs`).
    #[test]
    fn every_scheme_is_sequentially_monotone_through_the_trait() {
        for scheme in ClockScheme::SWEEP {
            let clock = scheme.build();
            let mut m = Meter::new();
            m.begin_op(OpKind::Commit);
            let mut last_seen = clock.sample(&mut m);
            let mut issued = Vec::new();
            for thread in 0..6 {
                let t = clock.tick(thread, &mut m);
                assert!(t > last_seen, "{scheme}: tick {t} ≤ sample {last_seen}");
                let s = clock.sample(&mut m);
                assert!(s >= t, "{scheme}: sample {s} < tick {t}");
                assert_eq!(clock.peek(), s, "{scheme}: peek diverged from sample");
                last_seen = s;
                issued.push(t);
            }
            m.end_op();
            let mut dedup = issued.clone();
            dedup.sort_unstable();
            dedup.dedup();
            assert_eq!(dedup.len(), issued.len(), "{scheme}: duplicate ticks");
        }
    }

    #[test]
    fn reserve_publish_two_phase_contract() {
        for scheme in ClockScheme::SWEEP {
            let clock = scheme.build();
            let mut m = Meter::new();
            m.begin_op(OpKind::Commit);
            let before = clock.sample(&mut m);
            let wv = clock.reserve(3, &mut m);
            assert!(wv > before, "{scheme}: reserve {wv} ≤ sample {before}");
            // Not yet observable.
            assert!(
                clock.sample(&mut m) < wv,
                "{scheme}: reserved ts leaked into sample"
            );
            clock.publish(wv, &mut m);
            assert!(
                clock.sample(&mut m) >= wv,
                "{scheme}: publish did not surface the ts"
            );
            // The next reservation climbs past it.
            assert!(clock.reserve(3, &mut m) > wv, "{scheme}");
            m.end_op();
        }
    }

    #[test]
    fn sharded_residues_partition_timestamps() {
        let c = ShardedClock::new(4);
        let mut m = Meter::new();
        m.begin_op(OpKind::Commit);
        for thread in 0..8 {
            let t = GlobalClock::tick(&c, thread, &mut m);
            assert_eq!(t % 4, (thread % 4) as u64, "home residue violated");
        }
        m.end_op();
    }

    #[test]
    fn deferred_stamps_carry_the_thread_residue() {
        let c = DeferredClock::new();
        let mut m = Meter::new();
        m.begin_op(OpKind::Commit);
        let t = GlobalClock::tick(&c, 5, &mut m);
        assert_eq!(t & DeferredClock::HOME_MASK, 5);
        assert_eq!(t >> DeferredClock::HOME_BITS, 1);
        m.end_op();
    }

    #[test]
    fn scheme_parse_display_roundtrip() {
        for (text, scheme) in [
            ("single", ClockScheme::Single),
            ("deferred", ClockScheme::Deferred),
            ("sharded:16", ClockScheme::Sharded(16)),
            ("sharded:1", ClockScheme::Sharded(1)),
        ] {
            assert_eq!(ClockScheme::parse(text), Ok(scheme));
            assert_eq!(scheme.to_string(), text);
        }
        assert_eq!(
            ClockScheme::parse("sharded"),
            Ok(ClockScheme::Sharded(ClockScheme::DEFAULT_SHARDS))
        );
        assert!(ClockScheme::parse("sharded:0").is_err());
        assert!(ClockScheme::parse("sharded:x").is_err());
        assert!(ClockScheme::parse("gv9").is_err());
        assert!(ClockScheme::parse("").is_err());
        assert!(ClockScheme::Single.is_single());
        assert!(!ClockScheme::Deferred.is_single());
        assert_eq!(ClockScheme::default(), ClockScheme::Single);
    }

    #[test]
    fn sharded_one_shard_degenerates_to_a_serial_counter() {
        let c = ShardedClock::new(1);
        let mut m = Meter::new();
        m.begin_op(OpKind::Commit);
        assert_eq!(GlobalClock::tick(&c, 0, &mut m), 1);
        assert_eq!(GlobalClock::tick(&c, 7, &mut m), 2);
        assert_eq!(GlobalClock::sample(&c, &mut m), 2);
        m.end_op();
    }
}
