//! The global version clock shared by TL2-style and multi-version TMs.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::base::Meter;

/// A monotonically increasing global version clock (TL2's `GV`).
#[derive(Debug, Default)]
pub struct VersionClock {
    now: AtomicU64,
}

impl VersionClock {
    /// A clock starting at 0 (the timestamp of all initial values).
    pub fn new() -> Self {
        VersionClock::default()
    }

    /// Samples the clock (one step).
    pub fn sample(&self, m: &mut Meter) -> u64 {
        m.load_u64(&self.now)
    }

    /// Advances the clock and returns the new unique timestamp (one step).
    pub fn tick(&self, m: &mut Meter) -> u64 {
        m.fetch_add_u64(&self.now, 1)
    }

    /// Unmetered read for assertions/tests.
    pub fn peek(&self) -> u64 {
        self.now.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::base::OpKind;

    #[test]
    fn ticks_are_unique_and_monotone() {
        let c = VersionClock::new();
        let mut m = Meter::new();
        m.begin_op(OpKind::Commit);
        let a = c.tick(&mut m);
        let b = c.tick(&mut m);
        let s = c.sample(&mut m);
        m.end_op();
        assert!(a < b);
        assert_eq!(s, b);
        assert_eq!(c.peek(), 2);
        // Three clock accesses = three steps.
        assert_eq!(m.report().per_op, vec![(OpKind::Commit, 3)]);
    }
}
