//! Instrumented base shared objects and step metering.
//!
//! Theorem 3 counts *steps*: "in a single step, a process issues a single
//! instruction on a single base shared object" (Section 6.1), and "it does
//! not require information about more than a constant number of shared
//! objects to be retrieved from a single base shared object". We honour both
//! by making every base object a single word (an atomic integer or one
//! mutex-protected record treated as one cell) and by counting every load,
//! store, CAS, and lock acquisition as one step through a per-transaction
//! [`Meter`].
//!
//! The meter belongs to the transaction (single-threaded), so counting is
//! free of synchronization and deterministic — the numbers reported by the
//! lower-bound experiment are exact step counts, not wall-clock noise.
//!
//! # Cell identity and the probe
//!
//! Every typed accessor names the base object it touches with a
//! [`CellId`], and a meter built with [`Meter::with_probe`] reports each
//! step to a [`StepProbe`] as an `AccessEvent {thread, cell, kind}` —
//! the stream the `tm-harness` race checker and DPOR explorer consume.
//! A meter built with [`Meter::new`] has no probe and pays nothing
//! beyond the step counter, so sweeps and benchmarks are unaffected.
//!
//! Mutex-protected records are modeled as single cells: the TM announces
//! the access with [`Meter::touch`] (or [`Meter::acquire`] for lock-shaped
//! cells held across other accesses) *before* taking the `parking_lot`
//! mutex, and brackets the critical section with [`Meter::begin_atomic`] /
//! [`Meter::end_atomic`] so any metered accesses inside it are reported as
//! non-blocking — the cooperative stepper must never park a thread that
//! holds an unmodeled lock.

use std::sync::atomic::{AtomicI64, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;

use crate::trace_cells::{AccessKind, CellId, StepProbe};

/// The kind of transactional operation being metered.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpKind {
    /// A register read (the operation Theorem 3's bound is about).
    Read,
    /// A register write.
    Write,
    /// Commit processing (`tryC` → `C`/`A`).
    Commit,
}

/// Per-operation step accounting for one transaction.
#[derive(Debug, Default)]
pub struct Meter {
    current_op: u64,
    per_op: Vec<(OpKind, u64)>,
    in_op: bool,
    thread: usize,
    probe: Option<Arc<dyn StepProbe>>,
    atomic_depth: u32,
}

/// A summary of the steps a transaction spent per operation.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StepReport {
    /// Steps of each completed operation, in program order, with kinds.
    pub per_op: Vec<(OpKind, u64)>,
}

impl StepReport {
    /// The maximum steps spent in any single operation of kind `kind`.
    pub fn max_of(&self, kind: OpKind) -> u64 {
        self.per_op
            .iter()
            .filter(|(k, _)| *k == kind)
            .map(|(_, s)| *s)
            .max()
            .unwrap_or(0)
    }

    /// The maximum steps spent in any single operation.
    pub fn max_op(&self) -> u64 {
        self.per_op.iter().map(|(_, s)| *s).max().unwrap_or(0)
    }

    /// Total steps across all operations.
    pub fn total(&self) -> u64 {
        self.per_op.iter().map(|(_, s)| *s).sum()
    }

    /// Total steps across operations of one kind.
    pub fn total_of(&self, kind: OpKind) -> u64 {
        self.per_op
            .iter()
            .filter(|(k, _)| *k == kind)
            .map(|(_, s)| *s)
            .sum()
    }

    /// Number of operations metered.
    pub fn ops(&self) -> usize {
        self.per_op.len()
    }
}

impl Meter {
    /// A fresh meter with no probe (thread id 0).
    pub fn new() -> Self {
        Meter::default()
    }

    /// A meter for `thread` that reports every step to `probe` (if any).
    pub fn with_probe(thread: usize, probe: Option<Arc<dyn StepProbe>>) -> Self {
        Meter {
            thread,
            probe,
            ..Meter::default()
        }
    }

    /// The thread this meter reports for.
    pub fn thread(&self) -> usize {
        self.thread
    }

    /// Marks the start of an operation (read/write/commit processing).
    pub fn begin_op(&mut self, kind: OpKind) {
        debug_assert!(!self.in_op, "nested operations are not allowed");
        self.current_op = 0;
        self.in_op = true;
        self.atomic_depth = 0;
        self.per_op.push((kind, 0));
    }

    /// Marks the end of the current operation, recording its step count.
    pub fn end_op(&mut self) {
        debug_assert!(self.in_op);
        if let Some(last) = self.per_op.last_mut() {
            last.1 = self.current_op;
        }
        self.in_op = false;
        self.atomic_depth = 0;
    }

    /// Counts one step *without* naming a cell — for per-probe costs that
    /// are not themselves a distinct base-object access (e.g. the binary
    /// search inside an already-announced version-list record).
    #[inline]
    pub fn step(&mut self) {
        self.current_op += 1;
    }

    /// Steps spent in the operation currently being metered.
    pub fn current(&self) -> u64 {
        self.current_op
    }

    /// The report of all completed operations.
    pub fn report(&self) -> StepReport {
        StepReport {
            per_op: self.per_op.clone(),
        }
    }

    #[inline]
    fn observe(&mut self, cell: CellId, kind: AccessKind) {
        self.step();
        if let Some(p) = &self.probe {
            p.on_access(self.thread, cell, kind, self.atomic_depth == 0);
        }
    }

    // ---- record cells and lock-shaped cells --------------------------------

    /// Counts one step accessing the mutex-protected record `cell` with the
    /// given kind. Call *before* taking the record's mutex: for the
    /// cooperative stepper this is the access's serialization point, and a
    /// thread must never park while holding an unmodeled lock.
    #[inline]
    pub fn touch(&mut self, cell: CellId, kind: AccessKind) {
        self.observe(cell, kind);
    }

    /// Counts one step acquiring the lock-shaped `cell` (held across other
    /// accesses, e.g. the multi-version TMs' global commit lock). Call
    /// before taking the real mutex; the stepper delays the grant until no
    /// other thread holds `cell`.
    #[inline]
    pub fn acquire(&mut self, cell: CellId) {
        self.observe(cell, AccessKind::Acquire);
    }

    /// Marks the release of a lock-shaped `cell` previously announced with
    /// [`Meter::acquire`]. Free (a release piggybacks on the critical
    /// section's last write); call *after* dropping the real mutex guard.
    #[inline]
    pub fn release(&mut self, cell: CellId) {
        if let Some(p) = &self.probe {
            p.on_access(self.thread, cell, AccessKind::Release, false);
        }
    }

    /// Reports a commit timestamp issued to this thread by the global
    /// clock. Not a step — the clock accesses that produced it were.
    #[inline]
    pub fn note_stamp(&mut self, ts: u64) {
        if let Some(p) = &self.probe {
            p.on_stamp(self.thread, ts);
        }
    }

    /// Enters a mutex-protected critical section: metered accesses until
    /// the matching [`Meter::end_atomic`] are reported as non-blocking.
    #[inline]
    pub fn begin_atomic(&mut self) {
        self.atomic_depth += 1;
    }

    /// Leaves the critical section opened by [`Meter::begin_atomic`].
    #[inline]
    pub fn end_atomic(&mut self) {
        debug_assert!(self.atomic_depth > 0);
        self.atomic_depth = self.atomic_depth.saturating_sub(1);
    }

    // ---- typed base-object accessors --------------------------------------

    /// Metered `AtomicU64::load` of `cell`.
    #[inline]
    pub fn load_u64(&mut self, cell: CellId, a: &AtomicU64) -> u64 {
        self.observe(cell, AccessKind::Read);
        a.load(Ordering::Acquire)
    }

    /// Metered `AtomicU64::store` to `cell`.
    #[inline]
    pub fn store_u64(&mut self, cell: CellId, a: &AtomicU64, v: u64) {
        self.observe(cell, AccessKind::Write);
        a.store(v, Ordering::Release);
    }

    /// Metered `AtomicU64::compare_exchange` on `cell`.
    #[inline]
    pub fn cas_u64(&mut self, cell: CellId, a: &AtomicU64, old: u64, new: u64) -> bool {
        self.observe(cell, AccessKind::Rmw);
        a.compare_exchange(old, new, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }

    /// Metered `AtomicU64::fetch_add` on `cell`; returns the *new* value.
    #[inline]
    pub fn fetch_add_u64(&mut self, cell: CellId, a: &AtomicU64, delta: u64) -> u64 {
        self.observe(cell, AccessKind::Rmw);
        a.fetch_add(delta, Ordering::AcqRel) + delta
    }

    /// Metered `AtomicU64::fetch_max` on `cell`; returns the previous value.
    #[inline]
    pub fn fetch_max_u64(&mut self, cell: CellId, a: &AtomicU64, v: u64) -> u64 {
        self.observe(cell, AccessKind::Rmw);
        a.fetch_max(v, Ordering::AcqRel)
    }

    /// Metered `AtomicI64::load` of `cell`.
    #[inline]
    pub fn load_i64(&mut self, cell: CellId, a: &AtomicI64) -> i64 {
        self.observe(cell, AccessKind::Read);
        a.load(Ordering::Acquire)
    }

    /// Metered `AtomicI64::store` to `cell`.
    #[inline]
    pub fn store_i64(&mut self, cell: CellId, a: &AtomicI64, v: i64) {
        self.observe(cell, AccessKind::Write);
        a.store(v, Ordering::Release);
    }

    /// Metered `AtomicU8::load` of `cell` (transaction status words).
    #[inline]
    pub fn load_u8(&mut self, cell: CellId, a: &AtomicU8) -> u8 {
        self.observe(cell, AccessKind::Read);
        a.load(Ordering::Acquire)
    }

    /// Metered `AtomicU8::compare_exchange` on `cell` (status transitions).
    #[inline]
    pub fn cas_u8(&mut self, cell: CellId, a: &AtomicU8, old: u8, new: u8) -> bool {
        self.observe(cell, AccessKind::Rmw);
        a.compare_exchange(old, new, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }
}

/// The lifecycle status word of a transaction descriptor (DSTM/visible-read
/// style TMs): other processes may CAS a transaction from `ACTIVE` to
/// `ABORTED` to resolve conflicts.
pub mod status {
    /// The transaction is live.
    pub const ACTIVE: u8 = 0;
    /// The transaction committed; its pending writes are the current values.
    pub const COMMITTED: u8 = 1;
    /// The transaction aborted; its pending writes are discarded.
    pub const ABORTED: u8 = 2;
}

/// A shared transaction descriptor for TMs whose conflict resolution flips
/// remote transactions' statuses.
#[derive(Debug)]
pub struct TxDesc {
    /// Model-level transaction id.
    pub id: u32,
    /// One of [`status`]'s constants.
    pub status: AtomicU8,
}

impl TxDesc {
    /// A fresh active descriptor.
    pub fn new(id: u32) -> Self {
        TxDesc {
            id,
            status: AtomicU8::new(status::ACTIVE),
        }
    }

    /// The [`CellId`] of this descriptor's status word.
    pub fn status_cell(&self) -> CellId {
        CellId::Status(self.id)
    }

    /// Unmetered status store, for a transaction retiring its *own*
    /// descriptor on a path whose outcome is already decided (the decision
    /// step was the metered CAS or the conflict-resolution CAS that doomed
    /// it). Keeps `Ordering` imports out of the TM modules.
    pub fn force_status(&self, s: u8) {
        self.status.store(s, Ordering::Release);
    }

    /// Unmetered status load, for assertions and lock-free cleanup scans
    /// that are not part of any metered operation.
    pub fn status_now(&self) -> u8 {
        self.status.load(Ordering::Acquire)
    }
}

/// Unmetered acquire-load of a `u64` base word, for begin-time snapshots
/// (clock `peek`s) that deliberately happen outside the step accounting.
/// Keeps `Ordering` imports out of the TM and clock-variant modules.
pub fn peek_u64(a: &AtomicU64) -> u64 {
    a.load(Ordering::Acquire)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace_cells::{AccessEvent, AccessLog, TraceEvent};

    #[test]
    fn meter_counts_per_op() {
        let mut m = Meter::new();
        let a = AtomicU64::new(7);
        let b = AtomicI64::new(-3);
        m.begin_op(OpKind::Read);
        assert_eq!(m.load_u64(CellId::Lock(0), &a), 7);
        assert_eq!(m.load_i64(CellId::Value(0), &b), -3);
        m.store_i64(CellId::Value(0), &b, 5);
        m.end_op();
        m.begin_op(OpKind::Commit);
        assert!(m.cas_u64(CellId::Lock(0), &a, 7, 9));
        assert!(!m.cas_u64(CellId::Lock(0), &a, 7, 10));
        m.end_op();
        let r = m.report();
        assert_eq!(r.per_op, vec![(OpKind::Read, 3), (OpKind::Commit, 2)]);
        assert_eq!(r.max_op(), 3);
        assert_eq!(r.max_of(OpKind::Commit), 2);
        assert_eq!(r.total(), 5);
        assert_eq!(r.total_of(OpKind::Read), 3);
        assert_eq!(r.ops(), 2);
    }

    #[test]
    fn fetch_add_returns_new_value() {
        let mut m = Meter::new();
        let clock = AtomicU64::new(10);
        m.begin_op(OpKind::Commit);
        assert_eq!(m.fetch_add_u64(CellId::Clock(0), &clock, 1), 11);
        m.end_op();
        assert_eq!(clock.load(Ordering::SeqCst), 11);
    }

    #[test]
    fn status_transitions() {
        let mut m = Meter::new();
        let d = TxDesc::new(4);
        m.begin_op(OpKind::Commit);
        assert_eq!(m.load_u8(d.status_cell(), &d.status), status::ACTIVE);
        assert!(m.cas_u8(
            d.status_cell(),
            &d.status,
            status::ACTIVE,
            status::COMMITTED
        ));
        assert!(!m.cas_u8(d.status_cell(), &d.status, status::ACTIVE, status::ABORTED));
        m.end_op();
        assert_eq!(d.status_now(), status::COMMITTED);
    }

    #[test]
    fn empty_report() {
        let m = Meter::new();
        assert_eq!(m.report().max_op(), 0);
        assert_eq!(m.report().total(), 0);
    }

    #[test]
    fn probe_sees_cells_kinds_and_atomic_sections() {
        let log = AccessLog::shared();
        let mut m = Meter::with_probe(3, Some(log.clone()));
        assert_eq!(m.thread(), 3);
        let a = AtomicU64::new(0);
        m.begin_op(OpKind::Commit);
        m.load_u64(CellId::Lock(1), &a);
        m.touch(CellId::Record(2), AccessKind::Write);
        m.begin_atomic();
        m.load_u64(CellId::Value(1), &a); // inside the record's mutex
        m.end_atomic();
        m.acquire(CellId::CommitLock);
        m.note_stamp(9);
        m.release(CellId::CommitLock);
        m.end_op();
        // note_stamp and release are free; the other four calls are steps.
        assert_eq!(m.report().per_op, vec![(OpKind::Commit, 4)]);
        let ev = log.snapshot();
        assert_eq!(ev.len(), 6);
        assert_eq!(
            ev[1],
            TraceEvent::Access(AccessEvent {
                thread: 3,
                cell: CellId::Record(2),
                kind: AccessKind::Write,
            })
        );
        assert_eq!(ev[4], TraceEvent::Stamp { thread: 3, ts: 9 });
        assert_eq!(
            ev[5],
            TraceEvent::Access(AccessEvent {
                thread: 3,
                cell: CellId::CommitLock,
                kind: AccessKind::Release,
            })
        );
    }

    #[test]
    fn probeless_meter_is_just_a_counter() {
        let mut m = Meter::new();
        let a = AtomicU64::new(1);
        m.begin_op(OpKind::Read);
        m.load_u64(CellId::Value(0), &a);
        m.release(CellId::CommitLock); // no probe: nothing to notify
        m.note_stamp(5);
        m.end_op();
        assert_eq!(m.report().total(), 1);
    }
}
