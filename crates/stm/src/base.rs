//! Instrumented base shared objects and step metering.
//!
//! Theorem 3 counts *steps*: "in a single step, a process issues a single
//! instruction on a single base shared object" (Section 6.1), and "it does
//! not require information about more than a constant number of shared
//! objects to be retrieved from a single base shared object". We honour both
//! by making every base object a single word (an atomic integer or one
//! mutex-protected record treated as one cell) and by counting every load,
//! store, CAS, and lock acquisition as one step through a per-transaction
//! [`Meter`].
//!
//! The meter belongs to the transaction (single-threaded), so counting is
//! free of synchronization and deterministic — the numbers reported by the
//! lower-bound experiment are exact step counts, not wall-clock noise.

use std::sync::atomic::{AtomicI64, AtomicU64, AtomicU8, Ordering};

/// The kind of transactional operation being metered.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpKind {
    /// A register read (the operation Theorem 3's bound is about).
    Read,
    /// A register write.
    Write,
    /// Commit processing (`tryC` → `C`/`A`).
    Commit,
}

/// Per-operation step accounting for one transaction.
#[derive(Debug, Default)]
pub struct Meter {
    current_op: u64,
    per_op: Vec<(OpKind, u64)>,
    in_op: bool,
}

/// A summary of the steps a transaction spent per operation.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StepReport {
    /// Steps of each completed operation, in program order, with kinds.
    pub per_op: Vec<(OpKind, u64)>,
}

impl StepReport {
    /// The maximum steps spent in any single operation of kind `kind`.
    pub fn max_of(&self, kind: OpKind) -> u64 {
        self.per_op
            .iter()
            .filter(|(k, _)| *k == kind)
            .map(|(_, s)| *s)
            .max()
            .unwrap_or(0)
    }

    /// The maximum steps spent in any single operation.
    pub fn max_op(&self) -> u64 {
        self.per_op.iter().map(|(_, s)| *s).max().unwrap_or(0)
    }

    /// Total steps across all operations.
    pub fn total(&self) -> u64 {
        self.per_op.iter().map(|(_, s)| *s).sum()
    }

    /// Total steps across operations of one kind.
    pub fn total_of(&self, kind: OpKind) -> u64 {
        self.per_op
            .iter()
            .filter(|(k, _)| *k == kind)
            .map(|(_, s)| *s)
            .sum()
    }

    /// Number of operations metered.
    pub fn ops(&self) -> usize {
        self.per_op.len()
    }
}

impl Meter {
    /// A fresh meter.
    pub fn new() -> Self {
        Meter::default()
    }

    /// Marks the start of an operation (read/write/commit processing).
    pub fn begin_op(&mut self, kind: OpKind) {
        debug_assert!(!self.in_op, "nested operations are not allowed");
        self.current_op = 0;
        self.in_op = true;
        self.per_op.push((kind, 0));
    }

    /// Marks the end of the current operation, recording its step count.
    pub fn end_op(&mut self) {
        debug_assert!(self.in_op);
        if let Some(last) = self.per_op.last_mut() {
            last.1 = self.current_op;
        }
        self.in_op = false;
    }

    /// Counts one step (use for lock acquisitions and other single-cell
    /// accesses not covered by the typed helpers).
    #[inline]
    pub fn step(&mut self) {
        self.current_op += 1;
    }

    /// Steps spent in the operation currently being metered.
    pub fn current(&self) -> u64 {
        self.current_op
    }

    /// The report of all completed operations.
    pub fn report(&self) -> StepReport {
        StepReport {
            per_op: self.per_op.clone(),
        }
    }

    // ---- typed base-object accessors --------------------------------------

    /// Metered `AtomicU64::load`.
    #[inline]
    pub fn load_u64(&mut self, cell: &AtomicU64) -> u64 {
        self.step();
        cell.load(Ordering::Acquire)
    }

    /// Metered `AtomicU64::store`.
    #[inline]
    pub fn store_u64(&mut self, cell: &AtomicU64, v: u64) {
        self.step();
        cell.store(v, Ordering::Release);
    }

    /// Metered `AtomicU64::compare_exchange`.
    #[inline]
    pub fn cas_u64(&mut self, cell: &AtomicU64, old: u64, new: u64) -> bool {
        self.step();
        cell.compare_exchange(old, new, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }

    /// Metered `AtomicU64::fetch_add`; returns the *new* value.
    #[inline]
    pub fn fetch_add_u64(&mut self, cell: &AtomicU64, delta: u64) -> u64 {
        self.step();
        cell.fetch_add(delta, Ordering::AcqRel) + delta
    }

    /// Metered `AtomicU64::fetch_max`; returns the previous value.
    #[inline]
    pub fn fetch_max_u64(&mut self, cell: &AtomicU64, v: u64) -> u64 {
        self.step();
        cell.fetch_max(v, Ordering::AcqRel)
    }

    /// Metered `AtomicI64::load`.
    #[inline]
    pub fn load_i64(&mut self, cell: &AtomicI64) -> i64 {
        self.step();
        cell.load(Ordering::Acquire)
    }

    /// Metered `AtomicI64::store`.
    #[inline]
    pub fn store_i64(&mut self, cell: &AtomicI64, v: i64) {
        self.step();
        cell.store(v, Ordering::Release);
    }

    /// Metered `AtomicU8::load` (transaction status words).
    #[inline]
    pub fn load_u8(&mut self, cell: &AtomicU8) -> u8 {
        self.step();
        cell.load(Ordering::Acquire)
    }

    /// Metered `AtomicU8::compare_exchange` (status transitions).
    #[inline]
    pub fn cas_u8(&mut self, cell: &AtomicU8, old: u8, new: u8) -> bool {
        self.step();
        cell.compare_exchange(old, new, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }
}

/// The lifecycle status word of a transaction descriptor (DSTM/visible-read
/// style TMs): other processes may CAS a transaction from `ACTIVE` to
/// `ABORTED` to resolve conflicts.
pub mod status {
    /// The transaction is live.
    pub const ACTIVE: u8 = 0;
    /// The transaction committed; its pending writes are the current values.
    pub const COMMITTED: u8 = 1;
    /// The transaction aborted; its pending writes are discarded.
    pub const ABORTED: u8 = 2;
}

/// A shared transaction descriptor for TMs whose conflict resolution flips
/// remote transactions' statuses.
#[derive(Debug)]
pub struct TxDesc {
    /// Model-level transaction id.
    pub id: u32,
    /// One of [`status`]'s constants.
    pub status: AtomicU8,
}

impl TxDesc {
    /// A fresh active descriptor.
    pub fn new(id: u32) -> Self {
        TxDesc {
            id,
            status: AtomicU8::new(status::ACTIVE),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meter_counts_per_op() {
        let mut m = Meter::new();
        let a = AtomicU64::new(7);
        let b = AtomicI64::new(-3);
        m.begin_op(OpKind::Read);
        assert_eq!(m.load_u64(&a), 7);
        assert_eq!(m.load_i64(&b), -3);
        m.store_i64(&b, 5);
        m.end_op();
        m.begin_op(OpKind::Commit);
        assert!(m.cas_u64(&a, 7, 9));
        assert!(!m.cas_u64(&a, 7, 10));
        m.end_op();
        let r = m.report();
        assert_eq!(r.per_op, vec![(OpKind::Read, 3), (OpKind::Commit, 2)]);
        assert_eq!(r.max_op(), 3);
        assert_eq!(r.max_of(OpKind::Commit), 2);
        assert_eq!(r.total(), 5);
        assert_eq!(r.total_of(OpKind::Read), 3);
        assert_eq!(r.ops(), 2);
    }

    #[test]
    fn fetch_add_returns_new_value() {
        let mut m = Meter::new();
        let clock = AtomicU64::new(10);
        m.begin_op(OpKind::Commit);
        assert_eq!(m.fetch_add_u64(&clock, 1), 11);
        m.end_op();
        assert_eq!(clock.load(Ordering::SeqCst), 11);
    }

    #[test]
    fn status_transitions() {
        let mut m = Meter::new();
        let d = TxDesc::new(4);
        m.begin_op(OpKind::Commit);
        assert_eq!(m.load_u8(&d.status), status::ACTIVE);
        assert!(m.cas_u8(&d.status, status::ACTIVE, status::COMMITTED));
        assert!(!m.cas_u8(&d.status, status::ACTIVE, status::ABORTED));
        m.end_op();
        assert_eq!(d.status.load(Ordering::SeqCst), status::COMMITTED);
    }

    #[test]
    fn empty_report() {
        let m = Meter::new();
        assert_eq!(m.report().max_op(), 0);
        assert_eq!(m.report().total(), 0);
    }
}
