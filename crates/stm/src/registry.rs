//! The TM registry — fallible, spec-driven construction of the whole suite.
//!
//! The old shape of the suite was a hardwired `all_stms(k)` plus a
//! `factory_by_name` that *panicked* on a typo. [`TmRegistry`] replaces
//! both with data: one [`TmSpec`] per TM carrying its name, its static
//! [`StmProperties`], which configuration axes it honours, and a build
//! function consuming an [`StmConfig`]. Lookups return `Result`s whose
//! errors list every valid name, so a CLI typo produces a menu instead of a
//! backtrace.
//!
//! # Spec strings
//!
//! A *spec* names a TM plus an optional clock scheme, `+`-separated:
//!
//! ```text
//! tl2                 the TL2 TM, default (single) clock
//! tl2+sharded:16      TL2 on a 16-shard GV5-style clock array
//! mvstm+deferred      the multi-version TM on the GV4 pass-on-failure clock
//! ```
//!
//! Clock schemes are rejected for TMs without a global clock
//! ([`TmSpec::clocked`] is false), so `dstm+sharded:4` is an error, not a
//! silent no-op.
//!
//! ```
//! use tm_stm::{ClockScheme, TmRegistry};
//!
//! let reg = TmRegistry::suite();
//! let stm = reg.build("tl2+sharded:4", 8).unwrap();
//! assert_eq!(stm.name(), "tl2");
//! let err = reg.build("tl3", 8).err().expect("typos are errors, not panics");
//! assert!(err.to_string().contains("tl2"));
//!
//! // Sweep the whole design space at every clock scheme it accepts:
//! for spec in reg.specs() {
//!     let schemes = if spec.clocked { ClockScheme::SWEEP.len() } else { 1 };
//!     assert!(schemes >= 1);
//! }
//! ```

use crate::api::{Stm, StmProperties};
use crate::clock::ClockScheme;
use crate::config::StmConfig;

/// One entry of the registry: everything the harness, CLI, and benches
/// need to know about a TM without instantiating it.
#[derive(Clone, Copy)]
pub struct TmSpec {
    /// The TM's stable name (matches [`Stm::name`]).
    pub name: &'static str,
    /// Does this TM consume [`StmConfig::clock`]? (The timestamp-based
    /// TMs: tl2, mvstm, sistm.)
    pub clocked: bool,
    /// Does this TM consume [`StmConfig::contention_manager`]? (dstm,
    /// visible.)
    pub cm_tunable: bool,
    /// Do this TM's transactions block all others for their lifetime
    /// (the global lock)?
    pub blocking: bool,
    /// The design-space position (matches [`Stm::properties`]).
    pub properties: StmProperties,
    build: BuildFn,
}

impl TmSpec {
    /// Builds an instance from a configuration.
    pub fn build(&self, cfg: &StmConfig) -> Box<dyn Stm> {
        (self.build)(cfg)
    }
}

impl std::fmt::Debug for TmSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TmSpec")
            .field("name", &self.name)
            .field("clocked", &self.clocked)
            .field("cm_tunable", &self.cm_tunable)
            .field("blocking", &self.blocking)
            .finish_non_exhaustive()
    }
}

/// A failed registry lookup, carrying enough context to print a menu.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TmLookupError {
    /// No suite TM has this name.
    UnknownTm {
        /// The name that failed to resolve.
        name: String,
        /// Every valid TM name, in registry order.
        available: Vec<&'static str>,
    },
    /// The clock part of the spec did not parse.
    BadClock {
        /// The offending spec.
        spec: String,
        /// The parse error from [`ClockScheme::parse`].
        reason: String,
    },
    /// A clock scheme was given for a TM without a global clock.
    ClocklessTm {
        /// The TM that has no clock.
        name: &'static str,
        /// The scheme that was requested.
        scheme: ClockScheme,
    },
}

impl std::fmt::Display for TmLookupError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TmLookupError::UnknownTm { name, available } => write!(
                f,
                "unknown TM '{name}' (available: {}; a spec may add a clock, \
                 e.g. tl2+sharded:16)",
                available.join(", ")
            ),
            TmLookupError::BadClock { spec, reason } => {
                write!(f, "bad clock in spec '{spec}': {reason}")
            }
            TmLookupError::ClocklessTm { name, scheme } => write!(
                f,
                "TM '{name}' has no global clock — the '{scheme}' scheme only \
                 applies to tl2, mvstm, and sistm"
            ),
        }
    }
}

impl std::error::Error for TmLookupError {}

/// The registry of suite TMs. Cheap to construct and clone: the spec
/// table is a process-wide static built on first use.
#[derive(Clone, Debug)]
pub struct TmRegistry {
    specs: &'static [TmSpec],
}

/// The build-function shape shared by every registry entry.
type BuildFn = fn(&StmConfig) -> Box<dyn Stm>;

/// The registry entries, computed once per process: the cached properties
/// come from one probe instance per TM, built on first use (the registry
/// test cross-checks them against live instances).
fn suite_specs() -> &'static [TmSpec] {
    static SPECS: std::sync::OnceLock<Vec<TmSpec>> = std::sync::OnceLock::new();
    SPECS.get_or_init(build_suite_specs)
}

/// The entry table, in the registry's canonical TM order (the historical
/// `all_stms` order — pinned because rendered tables and swept batteries
/// follow it).
fn build_suite_specs() -> Vec<TmSpec> {
    fn props_of(build: BuildFn) -> (StmProperties, bool) {
        let probe = build(&StmConfig::new(1).recording(false));
        (probe.properties(), probe.blocking())
    }
    let entries: [(&'static str, bool, bool, BuildFn); 9] = [
        ("glock", false, false, |c| {
            Box::new(crate::glock::GlockStm::with_config(c))
        }),
        ("tl2", true, false, |c| {
            Box::new(crate::tl2::Tl2Stm::with_config(c))
        }),
        ("dstm", false, true, |c| {
            Box::new(crate::dstm::DstmStm::with_config(c))
        }),
        ("astm", false, false, |c| {
            Box::new(crate::astm::AstmStm::with_config(c))
        }),
        ("visible", false, true, |c| {
            Box::new(crate::visible::VisibleStm::with_config(c))
        }),
        ("mvstm", true, false, |c| {
            Box::new(crate::mvstm::MvStm::with_config(c))
        }),
        ("nonopaque", false, false, |c| {
            Box::new(crate::nonopaque::NonOpaqueStm::with_config(c))
        }),
        ("sistm", true, false, |c| {
            Box::new(crate::sistm::SiStm::with_config(c))
        }),
        ("tpl", false, false, |c| {
            Box::new(crate::tpl::TplStm::with_config(c))
        }),
    ];
    entries
        .into_iter()
        .map(|(name, clocked, cm_tunable, build)| {
            let (properties, blocking) = props_of(build);
            TmSpec {
                name,
                clocked,
                cm_tunable,
                blocking,
                properties,
                build,
            }
        })
        .collect()
}

impl TmRegistry {
    /// The registry of the nine in-tree TMs, in the canonical sweep order.
    pub fn suite() -> Self {
        TmRegistry {
            specs: suite_specs(),
        }
    }

    /// All specs, in registry order.
    pub fn specs(&self) -> &[TmSpec] {
        self.specs
    }

    /// Every TM name, in registry order.
    pub fn names(&self) -> Vec<&'static str> {
        self.specs.iter().map(|s| s.name).collect()
    }

    /// Looks up a TM by bare name.
    pub fn get(&self, name: &str) -> Result<&TmSpec, TmLookupError> {
        self.specs
            .iter()
            .find(|s| s.name == name)
            .ok_or_else(|| TmLookupError::UnknownTm {
                name: name.to_string(),
                available: self.names(),
            })
    }

    /// Parses a spec string (`"tl2"`, `"tl2+sharded:16"`) into its TM and
    /// clock scheme, validating that the TM accepts the scheme.
    pub fn parse_spec(&self, spec: &str) -> Result<(&TmSpec, ClockScheme), TmLookupError> {
        let (name, scheme) = match spec.split_once('+') {
            None => (spec, ClockScheme::Single),
            Some((name, clock)) => (
                name,
                ClockScheme::parse(clock).map_err(|reason| TmLookupError::BadClock {
                    spec: spec.to_string(),
                    reason,
                })?,
            ),
        };
        let tm = self.get(name.trim())?;
        if !scheme.is_single() && !tm.clocked {
            return Err(TmLookupError::ClocklessTm {
                name: tm.name,
                scheme,
            });
        }
        Ok((tm, scheme))
    }

    /// Builds the TM a spec names over `k` registers (default configuration
    /// except for the spec's clock scheme).
    pub fn build(&self, spec: &str, k: usize) -> Result<Box<dyn Stm>, TmLookupError> {
        let (tm, scheme) = self.parse_spec(spec)?;
        Ok(tm.build(&StmConfig::new(k).clock(scheme)))
    }

    /// Builds the TM a spec names from an explicit configuration; the
    /// spec's clock scheme (when present) overrides the configuration's.
    pub fn build_with(&self, spec: &str, cfg: &StmConfig) -> Result<Box<dyn Stm>, TmLookupError> {
        let (tm, scheme) = self.parse_spec(spec)?;
        let cfg = if spec.contains('+') {
            cfg.clone().clock(scheme)
        } else {
            cfg.clone()
        };
        Ok(tm.build(&cfg))
    }

    /// A `Copy` factory rebuilding the spec'd TM at any register count —
    /// the shape every sweep and conformance battery consumes (and safe to
    /// hand to scoped worker threads). The fallible replacement for the
    /// panicking `factory_by_name`.
    pub fn factory(
        &self,
        spec: &str,
    ) -> Result<impl Fn(usize) -> Box<dyn Stm> + Send + Sync + Copy + 'static, TmLookupError> {
        let (tm, scheme) = self.parse_spec(spec)?;
        let build = tm.build;
        Ok(move |k: usize| build(&StmConfig::new(k).clock(scheme)))
    }
}

impl Default for TmRegistry {
    fn default() -> Self {
        TmRegistry::suite()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::run_tx;

    #[test]
    fn registry_matches_the_historical_suite_order() {
        let reg = TmRegistry::suite();
        assert_eq!(
            reg.names(),
            vec![
                "glock",
                "tl2",
                "dstm",
                "astm",
                "visible",
                "mvstm",
                "nonopaque",
                "sistm",
                "tpl"
            ]
        );
        // The cached spec properties agree with the live instances.
        for spec in reg.specs() {
            let stm = spec.build(&StmConfig::new(1));
            assert_eq!(stm.name(), spec.name);
            assert_eq!(stm.properties(), spec.properties, "{}", spec.name);
            assert_eq!(stm.blocking(), spec.blocking, "{}", spec.name);
        }
        // Exactly the timestamp-based TMs are clocked.
        let clocked: Vec<&str> = reg
            .specs()
            .iter()
            .filter(|s| s.clocked)
            .map(|s| s.name)
            .collect();
        assert_eq!(clocked, vec!["tl2", "mvstm", "sistm"]);
    }

    #[test]
    fn lookup_errors_carry_the_menu() {
        let reg = TmRegistry::suite();
        let err = reg.get("tl3").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("unknown TM 'tl3'"), "{msg}");
        assert!(msg.contains("glock") && msg.contains("tpl"), "{msg}");
        assert_eq!(
            reg.parse_spec("dstm+sharded:4").unwrap_err(),
            TmLookupError::ClocklessTm {
                name: "dstm",
                scheme: ClockScheme::Sharded(4)
            }
        );
        assert!(matches!(
            reg.parse_spec("tl2+gv9").unwrap_err(),
            TmLookupError::BadClock { .. }
        ));
        assert!(matches!(
            reg.parse_spec("nope+sharded:4").unwrap_err(),
            TmLookupError::UnknownTm { .. }
        ));
    }

    #[test]
    fn specs_build_working_tms_at_every_scheme() {
        let reg = TmRegistry::suite();
        for base in ["tl2", "mvstm", "sistm"] {
            for scheme in ClockScheme::SWEEP {
                let spec = if scheme.is_single() {
                    base.to_string()
                } else {
                    format!("{base}+{scheme}")
                };
                let stm = reg.build(&spec, 2).unwrap();
                let (v, _) = run_tx(stm.as_ref(), 0, |tx| {
                    tx.write(0, 7)?;
                    tx.read(0)
                });
                assert_eq!(v, 7, "{spec}");
                let (v2, _) = run_tx(stm.as_ref(), 1, |tx| tx.read(0));
                assert_eq!(v2, 7, "{spec}");
            }
        }
    }

    #[test]
    fn factory_is_copy_and_rebuilds_fresh_instances() {
        let reg = TmRegistry::suite();
        let make = reg.factory("mvstm+sharded:2").unwrap();
        let make2 = make; // Copy
        let a = make(2);
        let b = make2(3);
        assert_eq!(a.k(), 2);
        assert_eq!(b.k(), 3);
        run_tx(a.as_ref(), 0, |tx| tx.write(0, 1));
        let (v, _) = run_tx(b.as_ref(), 0, |tx| tx.read(0));
        assert_eq!(v, 0, "instances must be independent");
    }

    #[test]
    fn build_with_spec_clock_overrides_config_clock() {
        let reg = TmRegistry::suite();
        let cfg = StmConfig::new(2)
            .clock(ClockScheme::Deferred)
            .recording(false);
        // Spec without a clock keeps the config's scheme; with one, the
        // spec wins. Both must produce working TMs with recording off.
        for spec in ["tl2", "tl2+sharded:2"] {
            let stm = reg.build_with(spec, &cfg).unwrap();
            run_tx(stm.as_ref(), 0, |tx| tx.write(0, 3));
            assert!(stm.recorder().is_empty(), "{spec}: recording leaked");
        }
    }
}
