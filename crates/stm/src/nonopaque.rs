//! The commit-time-validation TM: **deliberately not opaque**.
//!
//! This is the Section 6 counterexample made concrete: an algorithm that is
//! progressive, single-version, and invisible-read — the exact hypotheses of
//! Theorem 3 — yet achieves O(1) steps per operation, which is possible
//! only because it guarantees merely *global atomicity (strict
//! serializability) with ACA-style recoverability* instead of opacity:
//!
//! * a read returns the object's latest committed value with no
//!   cross-object validation whatsoever, so a live transaction can observe
//!   an inconsistent (mixed-snapshot) state;
//! * commit locks the write set, validates the read set *once*, and
//!   publishes — committed transactions are perfectly serializable.
//!
//! The recorded histories of this TM are what the `tm-opacity` checker is
//! for: under the right interleaving they satisfy every Section 3 criterion
//! and still fail Definition 1 (experiments E11/E12, the inconsistent-view
//! example of Section 2).

use std::sync::atomic::{AtomicI64, AtomicU64};
use std::sync::Arc;

use crate::api::{Aborted, Stm, StmProperties, Tx, TxResult};
use crate::base::{Meter, OpKind, StepReport};
use crate::config::{RetryPolicy, StmConfig};
use crate::recorder::Recorder;
use crate::trace_cells::{CellId, StepProbe};
use tm_model::TxId;

#[derive(Debug)]
struct NoObj {
    /// `version << 1 | locked`.
    lock: AtomicU64,
    value: AtomicI64,
}

/// The commit-time-validation (non-opaque) TM over `k` registers.
#[derive(Debug)]
pub struct NonOpaqueStm {
    objs: Vec<NoObj>,
    recorder: Recorder,
    retry: RetryPolicy,
    probe: Option<Arc<dyn StepProbe>>,
}

impl NonOpaqueStm {
    /// A non-opaque TM with `k` registers initialized to 0.
    pub fn new(k: usize) -> Self {
        Self::with_config(&StmConfig::new(k))
    }

    /// A commit-time-validation TM built from an explicit configuration
    /// (initial values, recording, retry policy; versions are per-object
    /// counters, so no global clock applies).
    pub fn with_config(cfg: &StmConfig) -> Self {
        NonOpaqueStm {
            objs: (0..cfg.k())
                .map(|i| NoObj {
                    lock: AtomicU64::new(0),
                    value: AtomicI64::new(cfg.initial(i)),
                })
                .collect(),
            recorder: cfg.build_recorder(),
            retry: cfg.retry_policy(),
            probe: cfg.step_probe(),
        }
    }
}

/// A live non-opaque transaction.
pub struct NonOpaqueTx<'a> {
    stm: &'a NonOpaqueStm,
    id: TxId,
    /// Read set: (object, version observed) — used only at commit.
    reads: Vec<(usize, u64)>,
    /// Redo log, kept sorted by object for deadlock-free commit locking.
    writes: Vec<(usize, i64)>,
    meter: Meter,
    finished: bool,
}

impl Stm for NonOpaqueStm {
    fn name(&self) -> &'static str {
        "nonopaque"
    }

    fn k(&self) -> usize {
        self.objs.len()
    }

    fn begin(&self, _thread: usize) -> Box<dyn Tx + '_> {
        let id = self.recorder.fresh_tx();
        Box::new(NonOpaqueTx {
            stm: self,
            id,
            reads: Vec::new(),
            writes: Vec::new(),
            meter: Meter::with_probe(_thread, self.probe.clone()),
            finished: false,
        })
    }

    fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    fn retry_policy(&self) -> RetryPolicy {
        self.retry
    }

    fn properties(&self) -> StmProperties {
        StmProperties {
            progressive: true,
            single_version: true,
            invisible_reads: true,
            opaque_by_design: false,
            serializable_by_design: true,
        }
    }
}

impl NonOpaqueTx<'_> {
    fn abort_op(&mut self) -> Aborted {
        self.meter.end_op();
        self.finished = true;
        self.stm.recorder.abort(self.id);
        Aborted
    }

    fn release_locks(&mut self, held: &[(usize, u64)]) {
        for &(obj, old_word) in held {
            self.meter
                .store_u64(CellId::Lock(obj as u32), &self.stm.objs[obj].lock, old_word);
        }
    }
}

impl Tx for NonOpaqueTx<'_> {
    fn read(&mut self, obj: usize) -> TxResult<i64> {
        self.stm.recorder.inv_read(self.id, obj);
        self.meter.begin_op(OpKind::Read);
        if let Some(&(_, v)) = self.writes.iter().find(|(o, _)| *o == obj) {
            self.meter.end_op();
            self.stm.recorder.ret_read(self.id, obj, v);
            return Ok(v);
        }
        let o = &self.stm.objs[obj];
        // Per-object atomic snapshot (no cross-object validation!).
        let pre = self.meter.load_u64(CellId::Lock(obj as u32), &o.lock);
        let v = self.meter.load_i64(CellId::Value(obj as u32), &o.value);
        let post = self.meter.load_u64(CellId::Lock(obj as u32), &o.lock);
        if pre != post || pre & 1 == 1 {
            // The object is mid-commit by a live conflicting writer: abort
            // (still progressive — the writer is live and conflicting).
            return Err(self.abort_op());
        }
        self.reads.push((obj, pre >> 1));
        self.meter.end_op();
        self.stm.recorder.ret_read(self.id, obj, v);
        Ok(v)
    }

    fn write(&mut self, obj: usize, v: i64) -> TxResult<()> {
        self.stm.recorder.inv_write(self.id, obj, v);
        self.meter.begin_op(OpKind::Write);
        match self.writes.iter_mut().find(|(o, _)| *o == obj) {
            Some(slot) => slot.1 = v,
            None => {
                self.writes.push((obj, v));
                self.writes.sort_unstable_by_key(|(o, _)| *o);
            }
        }
        self.meter.end_op();
        self.stm.recorder.ret_write(self.id, obj);
        Ok(())
    }

    fn commit(mut self: Box<Self>) -> TxResult<()> {
        self.stm.recorder.try_commit(self.id);
        self.meter.begin_op(OpKind::Commit);
        // Lock write set (index order), validate reads once, publish.
        let writes = std::mem::take(&mut self.writes);
        let mut held: Vec<(usize, u64)> = Vec::with_capacity(writes.len());
        for &(obj, _) in &writes {
            let o = &self.stm.objs[obj];
            let word = self.meter.load_u64(CellId::Lock(obj as u32), &o.lock);
            if word & 1 == 1
                || !self
                    .meter
                    .cas_u64(CellId::Lock(obj as u32), &o.lock, word, word | 1)
            {
                self.release_locks(&held);
                self.meter.end_op();
                self.finished = true;
                self.stm.recorder.abort(self.id);
                return Err(Aborted);
            }
            held.push((obj, word));
        }
        let reads = std::mem::take(&mut self.reads);
        for &(obj, seen_ver) in &reads {
            // For objects we hold, validate against the pre-lock word (the
            // lock phase itself checks nothing — unlike TL2's rv check).
            let current_ver = match held.iter().find(|&&(o, _)| o == obj) {
                Some(&(_, old_word)) => old_word >> 1,
                None => {
                    let word = self
                        .meter
                        .load_u64(CellId::Lock(obj as u32), &self.stm.objs[obj].lock);
                    if word & 1 == 1 {
                        self.release_locks(&held);
                        self.meter.end_op();
                        self.finished = true;
                        self.stm.recorder.abort(self.id);
                        return Err(Aborted);
                    }
                    word >> 1
                }
            };
            if current_ver != seen_ver {
                self.release_locks(&held);
                self.meter.end_op();
                self.finished = true;
                self.stm.recorder.abort(self.id);
                return Err(Aborted);
            }
        }
        for &(obj, v) in &writes {
            let o = &self.stm.objs[obj];
            let (_, old_word) = held.iter().find(|&&(ho, _)| ho == obj).copied().unwrap();
            self.meter.store_i64(CellId::Value(obj as u32), &o.value, v);
            // Publish: bump the version, clear the lock bit.
            self.meter.store_u64(
                CellId::Lock(obj as u32),
                &o.lock,
                ((old_word >> 1) + 1) << 1,
            );
        }
        self.meter.end_op();
        self.finished = true;
        self.stm.recorder.commit(self.id);
        Ok(())
    }

    fn abort(mut self: Box<Self>) {
        self.stm.recorder.try_abort(self.id);
        self.finished = true;
        self.stm.recorder.abort(self.id);
    }

    fn steps(&self) -> StepReport {
        self.meter.report()
    }

    fn id(&self) -> u32 {
        self.id.0
    }
}

impl Drop for NonOpaqueTx<'_> {
    fn drop(&mut self) {
        if !self.finished {
            self.stm.recorder.try_abort(self.id);
            self.stm.recorder.abort(self.id);
            self.finished = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::run_tx;

    #[test]
    fn roundtrip() {
        let stm = NonOpaqueStm::new(2);
        run_tx(&stm, 0, |tx| tx.write(0, 5));
        let (v, _) = run_tx(&stm, 0, |tx| tx.read(0));
        assert_eq!(v, 5);
    }

    #[test]
    fn live_tx_observes_inconsistent_snapshot() {
        // The Section 2 hazard: the invariant is r1 == r0 (both written
        // together). T1 reads r0 before T2's commit and r1 after it:
        // a mixed snapshot no opaque TM would return.
        let stm = NonOpaqueStm::new(2);
        run_tx(&stm, 0, |tx| {
            tx.write(0, 4)?;
            tx.write(1, 4)
        });
        let mut t1 = stm.begin(0);
        let a = t1.read(0).unwrap(); // 4
        run_tx(&stm, 1, |tx| {
            tx.write(0, 2)?;
            tx.write(1, 2)
        });
        let b = t1.read(1).unwrap(); // 2 — inconsistent with a == 4!
        assert_eq!((a, b), (4, 2));
        // Commit-time validation catches it: T1 cannot commit…
        assert_eq!(t1.commit(), Err(Aborted));
        // …but the damage (an inconsistent view in live code) already
        // happened; the recorded history is not opaque.
        let h = stm.recorder().history();
        assert!(tm_model::is_well_formed(&h), "{h}");
    }

    #[test]
    fn committed_transactions_stay_serializable() {
        let stm = NonOpaqueStm::new(2);
        run_tx(&stm, 0, |tx| {
            tx.write(0, 1)?;
            tx.write(1, 1)
        });
        let mut t1 = stm.begin(0);
        t1.read(0).unwrap();
        run_tx(&stm, 1, |tx| tx.write(0, 9));
        // T1's read set is stale: commit validation rejects it.
        t1.write(1, 100).unwrap();
        assert_eq!(t1.commit(), Err(Aborted));
        // The committed state is the serial outcome of the two committers.
        let (v0, _) = run_tx(&stm, 0, |tx| tx.read(0));
        let (v1, _) = run_tx(&stm, 0, |tx| tx.read(1));
        assert_eq!((v0, v1), (9, 1));
    }

    #[test]
    fn reads_cost_constant_steps() {
        let k = 256;
        let stm = NonOpaqueStm::new(k);
        let mut tx = stm.begin(0);
        for i in 0..k {
            tx.read(i).unwrap();
        }
        assert_eq!(tx.steps().max_of(OpKind::Read), 3);
        tx.commit().unwrap();
    }

    #[test]
    fn recorded_history_well_formed() {
        let stm = NonOpaqueStm::new(2);
        run_tx(&stm, 0, |tx| tx.write(0, 1));
        run_tx(&stm, 0, |tx| tx.read(1));
        let h = stm.recorder().history();
        assert!(tm_model::is_well_formed(&h), "{h}");
    }

    #[test]
    fn stale_read_of_own_write_target_fails_commit() {
        // Regression (found by the serializability stress harness): a read
        // of an object that is *also in the write set* must still be
        // validated at commit — the lock phase checks nothing here, unlike
        // TL2. T2 reads r0 before T1 commits r0, then overwrites r0: its
        // commit must fail.
        let stm = NonOpaqueStm::new(2);
        let mut t2 = stm.begin(1);
        assert_eq!(t2.read(0).unwrap(), 0);
        let mut t1 = stm.begin(0);
        t1.write(0, 200).unwrap();
        t1.commit().unwrap();
        t2.write(1, 101).unwrap();
        t2.write(0, 102).unwrap();
        assert_eq!(t2.commit(), Err(Aborted));
    }
}
