//! A multi-version TM (JVSTM / LSA-STM style).
//!
//! The design point that escapes Theorem 3 by keeping *old committed
//! versions*: a transaction reads the committed snapshot at its start
//! timestamp, so a read can never observe an inconsistent state and
//! read-only transactions never abort — even when concurrent writers
//! overwrite everything (footnote 2 of the paper: complexity "can be
//! bounded by a function independent of k", here the per-object version
//! count).
//!
//! Update transactions validate their read set once at commit under a
//! global commit lock (first-committer-wins) and install new versions at a
//! fresh timestamp.

use parking_lot::Mutex;
use std::sync::Arc;

use crate::api::{Aborted, Stm, StmProperties, Tx, TxResult};
use crate::base::{Meter, OpKind, StepReport};
use crate::clock::GlobalClock;
use crate::config::{RetryPolicy, StmConfig};
use crate::recorder::Recorder;
use crate::trace_cells::{AccessKind, CellId, StepProbe};
use tm_model::TxId;

#[derive(Debug)]
struct MvObj {
    /// Committed versions `(timestamp, value)`, ascending by timestamp.
    /// Timestamp 0 is the initial value.
    versions: Mutex<Vec<(u64, i64)>>,
}

/// The multi-version TM over `k` registers.
#[derive(Debug)]
pub struct MvStm {
    objs: Vec<MvObj>,
    clock: Box<dyn GlobalClock>,
    commit_lock: Mutex<()>,
    recorder: Recorder,
    retry: RetryPolicy,
    probe: Option<Arc<dyn StepProbe>>,
}

impl MvStm {
    /// A multi-version TM with `k` registers initialized to 0 (default
    /// configuration: single clock).
    pub fn new(k: usize) -> Self {
        Self::with_config(&StmConfig::new(k))
    }

    /// A multi-version TM built from an explicit configuration (clock
    /// scheme, initial values, recording, retry policy).
    pub fn with_config(cfg: &StmConfig) -> Self {
        MvStm {
            objs: (0..cfg.k())
                .map(|i| MvObj {
                    versions: Mutex::new(vec![(0, cfg.initial(i))]),
                })
                .collect(),
            clock: cfg.build_clock(),
            commit_lock: Mutex::new(()),
            recorder: cfg.build_recorder(),
            retry: cfg.retry_policy(),
            probe: cfg.step_probe(),
        }
    }

    /// The value of `obj` in the committed snapshot at `ts` (binary search;
    /// each probe is one step).
    fn value_at(&self, obj: usize, ts: u64, m: &mut Meter) -> i64 {
        m.touch(CellId::Record(obj as u32), AccessKind::Read); // version-list access
        let versions = self.objs[obj].versions.lock();
        // Binary search for the latest version with timestamp <= ts.
        let mut lo = 0usize;
        let mut hi = versions.len();
        while hi - lo > 1 {
            m.step();
            let mid = (lo + hi) / 2;
            if versions[mid].0 <= ts {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        versions[lo].1
    }

    /// The newest committed timestamp of `obj`.
    fn latest_ts(&self, obj: usize, m: &mut Meter) -> u64 {
        m.touch(CellId::Record(obj as u32), AccessKind::Read);
        let versions = self.objs[obj].versions.lock();
        versions.last().expect("version list never empty").0
    }
}

/// A live multi-version transaction.
pub struct MvTx<'a> {
    stm: &'a MvStm,
    id: TxId,
    /// The OS-thread slot running this transaction (the clock's home-shard
    /// hint).
    thread: usize,
    /// Snapshot timestamp sampled at begin.
    start_ts: u64,
    /// Read set (object indices) — needed only for update-commit validation.
    reads: Vec<usize>,
    /// Redo log.
    writes: Vec<(usize, i64)>,
    meter: Meter,
    finished: bool,
}

impl Stm for MvStm {
    fn name(&self) -> &'static str {
        "mvstm"
    }

    fn k(&self) -> usize {
        self.objs.len()
    }

    fn begin(&self, thread: usize) -> Box<dyn Tx + '_> {
        let id = self.recorder.fresh_tx();
        let start_ts = self.clock.peek();
        Box::new(MvTx {
            stm: self,
            id,
            thread,
            start_ts,
            reads: Vec::new(),
            writes: Vec::new(),
            meter: Meter::with_probe(thread, self.probe.clone()),
            finished: false,
        })
    }

    fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    fn retry_policy(&self) -> RetryPolicy {
        self.retry
    }

    fn properties(&self) -> StmProperties {
        StmProperties {
            progressive: false, // first-committer-wins can abort after the
            // conflicting peer already committed
            single_version: false,
            invisible_reads: true,
            opaque_by_design: true,
            serializable_by_design: true,
        }
    }
}

impl Tx for MvTx<'_> {
    fn read(&mut self, obj: usize) -> TxResult<i64> {
        self.stm.recorder.inv_read(self.id, obj);
        self.meter.begin_op(OpKind::Read);
        // Read-own-write first.
        if let Some(&(_, v)) = self.writes.iter().find(|(o, _)| *o == obj) {
            self.meter.end_op();
            self.stm.recorder.ret_read(self.id, obj, v);
            return Ok(v);
        }
        // Snapshot read: never fails, never validates the read set.
        let v = self.stm.value_at(obj, self.start_ts, &mut self.meter);
        if !self.reads.contains(&obj) {
            self.reads.push(obj);
        }
        self.meter.end_op();
        self.stm.recorder.ret_read(self.id, obj, v);
        Ok(v)
    }

    fn write(&mut self, obj: usize, v: i64) -> TxResult<()> {
        self.stm.recorder.inv_write(self.id, obj, v);
        self.meter.begin_op(OpKind::Write);
        match self.writes.iter_mut().find(|(o, _)| *o == obj) {
            Some(slot) => slot.1 = v,
            None => self.writes.push((obj, v)),
        }
        self.meter.end_op();
        self.stm.recorder.ret_write(self.id, obj);
        Ok(())
    }

    fn commit(mut self: Box<Self>) -> TxResult<()> {
        self.stm.recorder.try_commit(self.id);
        self.meter.begin_op(OpKind::Commit);
        if self.writes.is_empty() {
            // Read-only transactions commit unconditionally: their snapshot
            // at start_ts is a legal serialization point.
            self.meter.end_op();
            self.finished = true;
            self.stm.recorder.commit(self.id);
            return Ok(());
        }
        self.meter.acquire(CellId::CommitLock);
        let guard = self.stm.commit_lock.lock();
        // Validation: nothing we read or write was committed past start_ts.
        let stm = self.stm;
        let valid = self
            .reads
            .iter()
            .chain(self.writes.iter().map(|(o, _)| o))
            .all(|&obj| stm.latest_ts(obj, &mut self.meter) <= self.start_ts);
        if !valid {
            drop(guard);
            self.meter.release(CellId::CommitLock);
            self.meter.end_op();
            self.finished = true;
            self.stm.recorder.abort(self.id);
            return Err(Aborted);
        }
        // Publish-last ordering (regression: found by the invariant-checked
        // throughput bench): versions must be installed BEFORE the clock
        // advance makes the new timestamp observable, otherwise a
        // transaction beginning between advance and append adopts a
        // snapshot timestamp whose versions are not yet visible, reads
        // stale data, and still passes first-committer-wins validation — a
        // lost update. The clock's reserve/publish pair expresses exactly
        // this: `reserve` hands out the timestamp without surfacing it,
        // `publish` surfaces it after the appends. We hold the commit
        // lock, satisfying the pair's mutual-exclusion contract.
        let wv = self.stm.clock.reserve(self.thread, &mut self.meter);
        for &(obj, v) in &self.writes {
            self.meter
                .touch(CellId::Record(obj as u32), AccessKind::Write);
            stm.objs[obj].versions.lock().push((wv, v));
        }
        self.stm.clock.publish(wv, &mut self.meter);
        drop(guard);
        self.meter.release(CellId::CommitLock);
        self.meter.end_op();
        self.finished = true;
        self.stm.recorder.commit(self.id);
        Ok(())
    }

    fn abort(mut self: Box<Self>) {
        self.stm.recorder.try_abort(self.id);
        self.finished = true;
        self.stm.recorder.abort(self.id);
    }

    fn steps(&self) -> StepReport {
        self.meter.report()
    }

    fn id(&self) -> u32 {
        self.id.0
    }
}

impl Drop for MvTx<'_> {
    fn drop(&mut self) {
        if !self.finished {
            self.stm.recorder.try_abort(self.id);
            self.stm.recorder.abort(self.id);
            self.finished = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::run_tx;

    #[test]
    fn roundtrip() {
        let stm = MvStm::new(2);
        let mut tx = stm.begin(0);
        tx.write(0, 3).unwrap();
        assert_eq!(tx.read(0).unwrap(), 3);
        tx.commit().unwrap();
        let mut tx = stm.begin(0);
        assert_eq!(tx.read(0).unwrap(), 3);
        tx.commit().unwrap();
    }

    #[test]
    fn reader_keeps_consistent_old_snapshot() {
        // The H4-style multi-version freedom: T1 reads the old snapshot of
        // both registers even though T2 committed new values in between —
        // and still commits (read-only transactions never abort).
        let stm = MvStm::new(2);
        let mut t1 = stm.begin(0);
        assert_eq!(t1.read(0).unwrap(), 0);
        run_tx(&stm, 1, |tx| {
            tx.write(0, 5)?;
            tx.write(1, 5)
        });
        assert_eq!(
            t1.read(1).unwrap(),
            0,
            "snapshot read must see the old value"
        );
        t1.commit().unwrap();
        // A fresh transaction sees the new state.
        let mut t3 = stm.begin(0);
        assert_eq!(t3.read(0).unwrap(), 5);
        t3.commit().unwrap();
    }

    #[test]
    fn update_tx_with_stale_read_aborts() {
        let stm = MvStm::new(2);
        let mut t1 = stm.begin(0);
        assert_eq!(t1.read(0).unwrap(), 0);
        t1.write(1, 7).unwrap();
        run_tx(&stm, 1, |tx| tx.write(0, 9));
        // T1 read r0 before T2's commit: first-committer-wins aborts T1.
        assert_eq!(t1.commit(), Err(Aborted));
    }

    #[test]
    fn write_write_first_committer_wins() {
        let stm = MvStm::new(1);
        let mut t1 = stm.begin(0);
        t1.write(0, 1).unwrap();
        let mut t2 = stm.begin(1);
        t2.write(0, 2).unwrap();
        t2.commit().unwrap();
        assert_eq!(t1.commit(), Err(Aborted));
        let mut t3 = stm.begin(0);
        assert_eq!(t3.read(0).unwrap(), 2);
        t3.commit().unwrap();
    }

    #[test]
    fn read_cost_bounded_by_log_versions_not_k() {
        let k = 128;
        let stm = MvStm::new(k);
        // Create a few versions on r0.
        for v in 1..=8 {
            run_tx(&stm, 0, |tx| tx.write(0, v));
        }
        let mut tx = stm.begin(0);
        for i in 0..k {
            tx.read(i).unwrap();
        }
        let max = tx.steps().max_of(OpKind::Read);
        assert!(max <= 1 + 4, "read cost must be O(log versions): {max}");
        tx.commit().unwrap();
    }

    #[test]
    fn versions_accumulate() {
        let stm = MvStm::new(1);
        for v in 1..=3 {
            run_tx(&stm, 0, |tx| tx.write(0, v));
        }
        let mut m = Meter::new();
        m.begin_op(OpKind::Read);
        assert_eq!(stm.value_at(0, 0, &mut m), 0);
        assert_eq!(stm.value_at(0, 1, &mut m), 1);
        assert_eq!(stm.value_at(0, 2, &mut m), 2);
        assert_eq!(stm.value_at(0, 999, &mut m), 3);
        m.end_op();
    }

    #[test]
    fn recorded_history_well_formed() {
        let stm = MvStm::new(2);
        run_tx(&stm, 0, |tx| tx.write(0, 1));
        run_tx(&stm, 1, |tx| {
            let v = tx.read(0)?;
            tx.write(1, v + 1)
        });
        let h = stm.recorder().history();
        assert!(tm_model::is_well_formed(&h), "{h}");
    }
}
