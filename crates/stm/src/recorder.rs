//! Recording model-level histories from live STM executions.
//!
//! Every TM in this crate emits the paper's transactional events as they
//! happen; the recorder totally orders them (simultaneous events "ordered
//! arbitrarily", here by lock acquisition order — a legitimate arbitrary
//! order because each event is recorded while it is occurring, between the
//! operation's linearization and the response's delivery to the caller).
//! The recorded [`History`] is then fed to the `tm-opacity` checkers — this
//! is how experiment E11 validates the opacity claims about each
//! implementation.
//!
//! Recording can be disabled (throughput benchmarks) — the TMs then skip the
//! event construction entirely. Recorder accesses never count as steps:
//! they are measurement apparatus, not part of the algorithm.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};

use tm_model::{Event, History, ObjId, OpName, TxId, Value};

/// A shared, append-only event log with model-level object names.
#[derive(Debug)]
pub struct Recorder {
    enabled: AtomicBool,
    events: Mutex<Vec<Event>>,
    names: Vec<ObjId>,
    next_tx: AtomicU32,
}

impl Recorder {
    /// A recorder for `k` registers named `r0..r{k-1}`, enabled by default.
    pub fn new(k: usize) -> Self {
        Recorder {
            enabled: AtomicBool::new(true),
            events: Mutex::new(Vec::new()),
            names: (0..k).map(ObjId::register).collect(),
            next_tx: AtomicU32::new(1),
        }
    }

    /// Enables or disables recording.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Release);
    }

    /// Is recording enabled?
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Acquire)
    }

    /// Allocates a fresh model-level transaction identifier.
    pub fn fresh_tx(&self) -> TxId {
        TxId(self.next_tx.fetch_add(1, Ordering::AcqRel))
    }

    /// The object name for register index `i`.
    pub fn obj(&self, i: usize) -> ObjId {
        self.names[i].clone()
    }

    /// Appends a raw event (no-op when disabled).
    pub fn record(&self, e: Event) {
        if self.enabled() {
            self.events.lock().push(e);
        }
    }

    /// Records `inv_t(r_i, read, ⊥)`.
    pub fn inv_read(&self, t: TxId, i: usize) {
        if self.enabled() {
            self.record(Event::Inv {
                tx: t,
                obj: self.obj(i),
                op: OpName::Read,
                args: vec![],
            });
        }
    }

    /// Records `ret_t(r_i, read) → v`.
    pub fn ret_read(&self, t: TxId, i: usize, v: i64) {
        if self.enabled() {
            self.record(Event::Ret {
                tx: t,
                obj: self.obj(i),
                op: OpName::Read,
                val: Value::int(v),
            });
        }
    }

    /// Records `inv_t(r_i, write, v)`.
    pub fn inv_write(&self, t: TxId, i: usize, v: i64) {
        if self.enabled() {
            self.record(Event::Inv {
                tx: t,
                obj: self.obj(i),
                op: OpName::Write,
                args: vec![Value::int(v)],
            });
        }
    }

    /// Records `ret_t(r_i, write) → ok`.
    pub fn ret_write(&self, t: TxId, i: usize) {
        if self.enabled() {
            self.record(Event::Ret {
                tx: t,
                obj: self.obj(i),
                op: OpName::Write,
                val: Value::Ok,
            });
        }
    }

    /// Records `tryC_t`.
    pub fn try_commit(&self, t: TxId) {
        self.record(Event::TryCommit(t));
    }

    /// Records `tryA_t`.
    pub fn try_abort(&self, t: TxId) {
        self.record(Event::TryAbort(t));
    }

    /// Records `C_t`.
    pub fn commit(&self, t: TxId) {
        self.record(Event::Commit(t));
    }

    /// Records `A_t`.
    pub fn abort(&self, t: TxId) {
        self.record(Event::Abort(t));
    }

    /// A snapshot of the recorded history.
    pub fn history(&self) -> History {
        History::from_events(self.events.lock().clone())
    }

    /// Clears the log (the transaction-id counter keeps increasing, so ids
    /// stay unique across clears).
    pub fn clear(&self) {
        self.events.lock().clear();
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_model::is_well_formed;

    #[test]
    fn records_well_formed_history() {
        let r = Recorder::new(2);
        let t = r.fresh_tx();
        r.inv_write(t, 0, 5);
        r.ret_write(t, 0);
        r.inv_read(t, 1);
        r.ret_read(t, 1, 0);
        r.try_commit(t);
        r.commit(t);
        let h = r.history();
        assert_eq!(h.len(), 6);
        assert!(is_well_formed(&h));
        assert!(h.status(t).is_committed());
    }

    #[test]
    fn disabled_recorder_drops_events() {
        let r = Recorder::new(1);
        r.set_enabled(false);
        let t = r.fresh_tx();
        r.inv_read(t, 0);
        r.ret_read(t, 0, 0);
        assert!(r.is_empty());
        r.set_enabled(true);
        r.try_commit(t);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn fresh_tx_ids_are_unique_and_survive_clear() {
        let r = Recorder::new(1);
        let a = r.fresh_tx();
        r.clear();
        let b = r.fresh_tx();
        assert_ne!(a, b);
    }

    #[test]
    fn object_names_follow_register_convention() {
        let r = Recorder::new(3);
        assert_eq!(r.obj(2).name(), "r2");
    }
}
