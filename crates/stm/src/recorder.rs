//! Recording model-level histories from live STM executions.
//!
//! Every TM in this crate emits the paper's transactional events as they
//! happen; the recorder totally orders them (simultaneous events "ordered
//! arbitrarily", here by lock acquisition order — a legitimate arbitrary
//! order because each event is recorded while it is occurring, between the
//! operation's linearization and the response's delivery to the caller).
//! The recorded [`History`] is then fed to the `tm-opacity` checkers — this
//! is how experiment E11 validates the opacity claims about each
//! implementation.
//!
//! Recording can be disabled (throughput benchmarks) — the TMs then skip the
//! event construction entirely. Recorder accesses never count as steps:
//! they are measurement apparatus, not part of the algorithm.
//!
//! # Object-level recording
//!
//! The typed-object layer ([`crate::objects`]) executes one *object*
//! operation (`enq`, `insert`, `extract_min`, …) as a read-modify-write
//! sequence of register operations through the TM. For the recorded history
//! to be checkable against the *object's* sequential specification, the
//! recorder must emit one `inv`/`ret` pair carrying the object's `ObjId`,
//! `OpName`, and arguments — not the storm of register events underneath.
//! [`Recorder::begin_object_op`] records the object-level invocation and
//! *suppresses* register-level events of that transaction until the matching
//! [`Recorder::end_object_op`] (or [`Recorder::cancel_object_op`] when the
//! TM aborted the transaction mid-operation — the `A` event, which is never
//! suppressed, then answers the pending object-level invocation, exactly as
//! the model allows). Suppression is per-transaction, so concurrent
//! transactions recording register-level and object-level operations
//! interleave correctly.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicUsize, Ordering};

use tm_model::{Event, History, ObjId, OpName, TxId, Value};

/// A shared, append-only event log with model-level object names.
#[derive(Debug)]
pub struct Recorder {
    enabled: AtomicBool,
    events: Mutex<Vec<Event>>,
    names: Vec<ObjId>,
    next_tx: AtomicU32,
    /// Transactions currently inside an object-level operation: their
    /// register-level events are dropped (the object-level `inv`/`ret`
    /// stands for the whole read-modify-write sequence).
    suppressed: Mutex<Vec<TxId>>,
    /// Mirror of `suppressed.len()`, so the (hot) register-level event
    /// helpers skip the suppression lock entirely while no typed-object
    /// operation is in flight anywhere — the permanent state of every
    /// register-only workload. (A synchronization fast path, not a
    /// telemetry counter: it needs Acquire/Release and can go down.)
    suppressed_len: AtomicUsize,
    /// Observability handle: [`Recorder::commit`]/[`Recorder::abort`] count
    /// `stm.commits`/`stm.aborts` through it even when event recording is
    /// disabled. Disabled by default — zero cost.
    obs: tm_obs::ObsHandle,
}

impl Recorder {
    /// A recorder for `k` registers named `r0..r{k-1}`, enabled by default.
    pub fn new(k: usize) -> Self {
        Recorder {
            enabled: AtomicBool::new(true),
            events: Mutex::new(Vec::new()),
            names: (0..k).map(ObjId::register).collect(),
            next_tx: AtomicU32::new(1),
            suppressed: Mutex::new(Vec::new()),
            suppressed_len: AtomicUsize::new(0),
            obs: tm_obs::ObsHandle::disabled(),
        }
    }

    /// Attaches an observability handle; subsequent [`Recorder::commit`]
    /// and [`Recorder::abort`] calls count `stm.commits`/`stm.aborts`.
    pub fn set_obs(&mut self, obs: tm_obs::ObsHandle) {
        self.obs = obs;
    }

    /// Enables or disables recording.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Release);
    }

    /// Is recording enabled?
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Acquire)
    }

    /// Allocates a fresh model-level transaction identifier.
    pub fn fresh_tx(&self) -> TxId {
        TxId(self.next_tx.fetch_add(1, Ordering::AcqRel))
    }

    /// The object name for register index `i`.
    pub fn obj(&self, i: usize) -> ObjId {
        self.names[i].clone()
    }

    /// Appends a raw event (no-op when disabled).
    pub fn record(&self, e: Event) {
        if self.enabled() {
            self.events.lock().push(e);
        }
    }

    /// True while `t` is inside an object-level operation scope.
    fn is_suppressed(&self, t: TxId) -> bool {
        // Fast path: no transaction anywhere is inside an object op. A
        // transaction always observes its own suppression (same-thread
        // program order), so the relaxed count can never hide it.
        if self.suppressed_len.load(Ordering::Acquire) == 0 {
            return false;
        }
        self.suppressed.lock().contains(&t)
    }

    /// Adds `t` to the suppression set.
    fn suppress(&self, t: TxId) {
        let mut set = self.suppressed.lock();
        set.push(t);
        self.suppressed_len.store(set.len(), Ordering::Release);
    }

    /// Removes `t` from the suppression set (idempotent).
    fn unsuppress(&self, t: TxId) {
        let mut set = self.suppressed.lock();
        set.retain(|&s| s != t);
        self.suppressed_len.store(set.len(), Ordering::Release);
    }

    /// Opens an object-level operation scope for `t`: records
    /// `inv_t(obj, op, args)` and suppresses `t`'s register-level events
    /// until [`Recorder::end_object_op`] or [`Recorder::cancel_object_op`].
    ///
    /// No-op when recording is disabled.
    pub fn begin_object_op(&self, t: TxId, obj: ObjId, op: OpName, args: Vec<Value>) {
        if self.enabled() {
            self.record(Event::Inv {
                tx: t,
                obj,
                op,
                args,
            });
            self.suppress(t);
        }
    }

    /// Closes `t`'s object-level operation scope successfully: lifts the
    /// suppression and records `ret_t(obj, op) → val`.
    pub fn end_object_op(&self, t: TxId, obj: ObjId, op: OpName, val: Value) {
        self.unsuppress(t);
        if self.enabled() {
            self.record(Event::Ret {
                tx: t,
                obj,
                op,
                val,
            });
        }
    }

    /// Closes `t`'s object-level operation scope without a response — used
    /// when the TM aborted the transaction mid-operation. The `A_t` event
    /// (recorded by the TM, never suppressed) answers the pending
    /// object-level invocation, as the model allows.
    pub fn cancel_object_op(&self, t: TxId) {
        self.unsuppress(t);
    }

    /// Records `inv_t(r_i, read, ⊥)`.
    pub fn inv_read(&self, t: TxId, i: usize) {
        if self.enabled() && !self.is_suppressed(t) {
            self.record(Event::Inv {
                tx: t,
                obj: self.obj(i),
                op: OpName::Read,
                args: vec![],
            });
        }
    }

    /// Records `ret_t(r_i, read) → v`.
    pub fn ret_read(&self, t: TxId, i: usize, v: i64) {
        if self.enabled() && !self.is_suppressed(t) {
            self.record(Event::Ret {
                tx: t,
                obj: self.obj(i),
                op: OpName::Read,
                val: Value::int(v),
            });
        }
    }

    /// Records `inv_t(r_i, write, v)`.
    pub fn inv_write(&self, t: TxId, i: usize, v: i64) {
        if self.enabled() && !self.is_suppressed(t) {
            self.record(Event::Inv {
                tx: t,
                obj: self.obj(i),
                op: OpName::Write,
                args: vec![Value::int(v)],
            });
        }
    }

    /// Records `ret_t(r_i, write) → ok`.
    pub fn ret_write(&self, t: TxId, i: usize) {
        if self.enabled() && !self.is_suppressed(t) {
            self.record(Event::Ret {
                tx: t,
                obj: self.obj(i),
                op: OpName::Write,
                val: Value::Ok,
            });
        }
    }

    /// Records `tryC_t`.
    pub fn try_commit(&self, t: TxId) {
        self.record(Event::TryCommit(t));
    }

    /// Records `tryA_t`.
    pub fn try_abort(&self, t: TxId) {
        self.record(Event::TryAbort(t));
    }

    /// Records `C_t`. Counts `stm.commits` on the attached observability
    /// handle regardless of the recording toggle — the commit happened
    /// whether or not its event is kept.
    pub fn commit(&self, t: TxId) {
        self.obs.counter_add("stm.commits", 1);
        self.record(Event::Commit(t));
    }

    /// Records `A_t`. Counts `stm.aborts` on the attached observability
    /// handle regardless of the recording toggle.
    pub fn abort(&self, t: TxId) {
        self.obs.counter_add("stm.aborts", 1);
        self.record(Event::Abort(t));
    }

    /// A snapshot of the recorded history.
    pub fn history(&self) -> History {
        History::from_events(self.events.lock().clone())
    }

    /// Clears the log (the transaction-id counter keeps increasing, so ids
    /// stay unique across clears).
    pub fn clear(&self) {
        self.events.lock().clear();
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_model::is_well_formed;

    #[test]
    fn records_well_formed_history() {
        let r = Recorder::new(2);
        let t = r.fresh_tx();
        r.inv_write(t, 0, 5);
        r.ret_write(t, 0);
        r.inv_read(t, 1);
        r.ret_read(t, 1, 0);
        r.try_commit(t);
        r.commit(t);
        let h = r.history();
        assert_eq!(h.len(), 6);
        assert!(is_well_formed(&h));
        assert!(h.status(t).is_committed());
    }

    #[test]
    fn disabled_recorder_drops_events() {
        let r = Recorder::new(1);
        r.set_enabled(false);
        let t = r.fresh_tx();
        r.inv_read(t, 0);
        r.ret_read(t, 0, 0);
        assert!(r.is_empty());
        r.set_enabled(true);
        r.try_commit(t);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn fresh_tx_ids_are_unique_and_survive_clear() {
        let r = Recorder::new(1);
        let a = r.fresh_tx();
        r.clear();
        let b = r.fresh_tx();
        assert_ne!(a, b);
    }

    #[test]
    fn object_names_follow_register_convention() {
        let r = Recorder::new(3);
        assert_eq!(r.obj(2).name(), "r2");
    }

    #[test]
    fn object_scope_suppresses_register_events_per_transaction() {
        let r = Recorder::new(2);
        let t1 = r.fresh_tx();
        let t2 = r.fresh_tx();
        r.begin_object_op(t1, ObjId::new("q"), OpName::Enq, vec![Value::int(5)]);
        // t1's register traffic is the encoding of the enq: suppressed.
        r.inv_read(t1, 0);
        r.ret_read(t1, 0, 0);
        r.inv_write(t1, 0, 1);
        r.ret_write(t1, 0);
        // A concurrent register-level transaction records normally.
        r.inv_read(t2, 1);
        r.ret_read(t2, 1, 0);
        r.end_object_op(t1, ObjId::new("q"), OpName::Enq, Value::Ok);
        r.try_commit(t1);
        r.commit(t1);
        r.try_commit(t2);
        r.commit(t2);
        let h = r.history();
        assert!(is_well_formed(&h), "{h}");
        // t1: inv(q,enq) ret(q,enq) tryC C — 4 events; t2: 4 register events.
        assert_eq!(h.len(), 8);
        assert!(h.events().iter().all(|e| {
            e.obj().map_or(true, |o| match e.tx() {
                tx if tx == t1 => o.name() == "q",
                _ => o.name() == "r1",
            })
        }));
    }

    #[test]
    fn cancelled_object_op_leaves_pending_invocation_for_the_abort() {
        let r = Recorder::new(1);
        let t = r.fresh_tx();
        r.begin_object_op(t, ObjId::new("c"), OpName::Inc, vec![]);
        r.inv_read(t, 0); // suppressed
        r.cancel_object_op(t);
        r.abort(t); // the TM's A_t answers the pending inv
        let h = r.history();
        assert_eq!(h.len(), 2);
        assert!(is_well_formed(&h), "{h}");
        // Suppression is lifted after cancel: later events record again.
        let t2 = r.fresh_tx();
        r.inv_read(t2, 0);
        r.ret_read(t2, 0, 0);
        assert_eq!(r.len(), 4);
    }

    #[test]
    fn object_scope_noops_when_disabled() {
        let r = Recorder::new(1);
        r.set_enabled(false);
        let t = r.fresh_tx();
        r.begin_object_op(t, ObjId::new("c"), OpName::Inc, vec![]);
        r.end_object_op(t, ObjId::new("c"), OpName::Inc, Value::Ok);
        assert!(r.is_empty());
    }
}
