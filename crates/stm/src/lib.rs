//! # tm-stm — the paper's TM design space, executable and instrumented
//!
//! Nine software transactional memories over `k` integer registers, chosen to
//! occupy every cell of the design space that Theorem 3 of Guerraoui &
//! Kapałka (PPoPP 2008) carves out:
//!
//! | TM | progressive | single-version | invisible reads | opaque | steps/read |
//! |----|-------------|----------------|-----------------|--------|------------|
//! | [`dstm::DstmStm`] | ✔ | ✔ | ✔ | ✔ | **Θ(read set)** — the lower bound is tight |
//! | [`astm::AstmStm`] | ✔ | ✔ | ✔ | ✔ | **Θ(read set)** — same point, lazy-acquire protocol |
//! | [`tl2::Tl2Stm`] | ✘ | ✔ | ✔ | ✔ | O(1) |
//! | [`visible::VisibleStm`] | ✔ | ✔ | ✘ | ✔ | O(1) |
//! | [`mvstm::MvStm`] | ✘ | ✘ (multi-version) | ✔ | ✔ | O(log versions) |
//! | [`nonopaque::NonOpaqueStm`] | ✔ | ✔ | ✔ | ✘ | O(1) |
//! | [`sistm::SiStm`] | ✘ | ✘ (multi-version) | ✔ | ✘ (write skew) | O(log versions) |
//! | [`tpl::TplStm`] | ✔ | ✔ | ✘ | ✔ (rigorous) | O(1) |
//! | [`glock::GlockStm`] | ✔ | ✔ | ✘ | ✔ | O(1), zero concurrency |
//!
//! Every implementation:
//!
//! * records the paper's transactional events into a [`recorder::Recorder`]
//!   so that recorded executions can be fed to the `tm-opacity` checkers;
//! * meters its accesses to base shared objects per operation through
//!   [`base::Meter`] — the exact step counts of Theorem 3, noise-free.
//!
//! # Typed transactional objects
//!
//! The [`objects`] module lifts every TM above from the register universe
//! to the full object universe of `tm_model::objects` — counters, FIFO
//! queues, stacks, sets, CAS registers, key-value maps, priority queues,
//! and append logs — with **zero per-TM changes**: a [`objects::TypedStm`]
//! encodes each object's state into a block of base registers, executes
//! object operations as read-modify-write register programs *through* the
//! transaction, and records the history at the object level, so the
//! `tm-opacity` checkers judge it against the objects' sequential
//! specifications. Which anomalies each object workload can surface:
//!
//! | object workload | anomaly it can expose | convicted TM |
//! |---|---|---|
//! | set / kv-map **write skew** (read both, update one each) | committed outcomes no serial order allows | `sistm` |
//! | counter **torn reads** (`get`/`get` vs `inc`/`inc`) | live transaction observes a mid-flight state | `nonopaque` |
//! | queue / stack / pqueue producer–consumer | reordering, double- or lost dequeues | any broken mutant |
//! | counter **commutative storms** | over-conservative conflict detection (§3.4) | — (a cost, not a bug) |
//!
//! See `DESIGN.md` for the documented substitutions (e.g. locator atomics
//! emulated with short critical sections).
//!
//! # Configured construction
//!
//! Every TM is built from an [`StmConfig`] (its `new(k)` is a thin wrapper
//! over the default configuration), and the [`TmRegistry`] resolves *spec
//! strings* like `"tl2+sharded:16"` into configured instances with
//! fallible lookup — see [`config`], [`registry`], and the clock-scheme
//! table in [`clock`]. The timestamp-based TMs (`tl2`, `mvstm`, `sistm`)
//! accept any [`ClockScheme`]; the conflict-resolving TMs (`dstm`,
//! `visible`) accept any [`ContentionManager`]; all nine honour initial
//! register values, the recording toggle, and the [`RetryPolicy`] that
//! [`run_tx`]/[`try_run_tx`] apply.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod api;
pub mod astm;
pub mod base;
pub mod clock;
pub mod cm;
pub mod config;
pub mod dstm;
pub mod glock;
pub mod mutants;
pub mod mvstm;
pub mod nonopaque;
pub mod objects;
pub mod obs;
pub mod recorder;
pub mod registry;
pub mod sistm;
pub mod tl2;
pub mod tpl;
pub mod trace_cells;
pub mod visible;

pub use api::{
    run_tx, try_run_tx, try_run_tx_with, Aborted, Livelock, RunStats, Stm, StmProperties, Tx,
    TxResult,
};
pub use astm::AstmStm;
pub use base::{Meter, OpKind, StepReport, TxDesc};
pub use clock::{ClockScheme, DeferredClock, GlobalClock, ShardedClock, VersionClock};
pub use cm::{ConflictCtx, ContentionManager, Resolution};
pub use config::{Backoff, RetryPolicy, StmConfig};
pub use dstm::DstmStm;
pub use glock::GlockStm;
pub use mutants::{MutantStm, Mutation};
pub use mvstm::MvStm;
pub use nonopaque::NonOpaqueStm;
pub use objects::{
    run_typed_tx, try_run_typed_tx, ObjEncoding, TObj, TypedSpace, TypedStm, TypedTx,
};
pub use obs::{ObsClock, ObsStepProbe};
pub use recorder::Recorder;
pub use registry::{TmLookupError, TmRegistry, TmSpec};
pub use sistm::SiStm;
pub use tl2::Tl2Stm;
pub use tpl::TplStm;
pub use trace_cells::{AccessEvent, AccessKind, AccessLog, CellId, StepProbe, TraceEvent};
pub use visible::VisibleStm;

/// Constructs every TM in the suite under the default configuration, for
/// experiments that sweep the design space. `k` is the number of shared
/// registers. (A thin wrapper over [`TmRegistry::suite`].)
pub fn all_stms(k: usize) -> Vec<Box<dyn Stm>> {
    let cfg = StmConfig::new(k);
    TmRegistry::suite()
        .specs()
        .iter()
        .map(|spec| spec.build(&cfg))
        .collect()
}

/// Constructs only the opaque-by-design TMs.
pub fn opaque_stms(k: usize) -> Vec<Box<dyn Stm>> {
    all_stms(k)
        .into_iter()
        .filter(|s| s.properties().opaque_by_design)
        .collect()
}

/// A factory that rebuilds the named suite TM at any register count — the
/// shape every sweep and conformance battery consumes. The returned
/// closure is `Copy`, so it can be handed to scoped threads freely.
///
/// Prefer [`TmRegistry::factory`], which returns a `Result` (and accepts
/// full specs like `"tl2+sharded:16"`); this wrapper survives for callers
/// with statically known names.
///
/// # Panics
/// Panics if `name` is not a suite TM.
pub fn factory_by_name(
    name: &'static str,
) -> impl Fn(usize) -> Box<dyn Stm> + Send + Sync + Copy + 'static {
    TmRegistry::suite()
        .factory(name)
        .unwrap_or_else(|e| panic!("{e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_covers_the_design_space() {
        let stms = all_stms(4);
        assert_eq!(stms.len(), 9);
        // Exactly two TMs satisfy all three Theorem-3 hypotheses AND
        // opacity: DSTM and ASTM — the configurations the lower bound
        // binds (and the two systems the paper names for tightness).
        let bound: Vec<&str> = stms
            .iter()
            .filter(|s| {
                let p = s.properties();
                p.progressive && p.single_version && p.invisible_reads && p.opaque_by_design
            })
            .map(|s| s.name())
            .collect();
        assert_eq!(bound, vec!["dstm", "astm"]);
        // Exactly one TM has the hypotheses but trades opacity away.
        let escape: Vec<&str> = stms
            .iter()
            .filter(|s| {
                let p = s.properties();
                p.progressive && p.single_version && p.invisible_reads && !p.opaque_by_design
            })
            .map(|s| s.name())
            .collect();
        assert_eq!(escape, vec!["nonopaque"]);
    }

    #[test]
    fn opaque_suite_excludes_nonopaque() {
        let names: Vec<&str> = opaque_stms(2).iter().map(|s| s.name()).collect();
        assert!(!names.contains(&"nonopaque"));
        assert!(!names.contains(&"sistm"));
        assert_eq!(names.len(), 7);
    }

    #[test]
    fn all_stms_basic_smoke() {
        for stm in all_stms(3) {
            let (v, stats) = run_tx(stm.as_ref(), 0, |tx| {
                tx.write(0, 7)?;
                tx.read(0)
            });
            assert_eq!(v, 7, "{}", stm.name());
            assert_eq!(stats.commits, 1);
            let (v2, _) = run_tx(stm.as_ref(), 0, |tx| tx.read(0));
            assert_eq!(v2, 7, "{}", stm.name());
            let h = stm.recorder().history();
            assert!(tm_model::is_well_formed(&h), "{}: {h}", stm.name());
            assert_eq!(h.committed_txs().len(), 2, "{}", stm.name());
        }
    }
}
